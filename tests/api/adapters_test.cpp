/// Adapter fidelity: routing an algorithm through the facade must not
/// change its math. Each polynomial adapter is cross-checked against the
/// exhaustive oracle (forced "exact-enumeration") on seeded random
/// instances of its home cell, and heuristic adapters must return valid,
/// constraint-satisfying mappings.

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "core/evaluation.hpp"
#include "gen/random_instances.hpp"
#include "util/random.hpp"

namespace pipeopt::api {
namespace {

constexpr int kInstances = 8;

gen::ProblemShape small_shape(core::PlatformClass cls, std::size_t modes) {
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 4;
  shape.platform_class = cls;
  shape.platform.modes = modes;
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.app.weighted = true;
  return shape;
}

/// Runs `request` twice — auto and forced exact — and requires agreement.
void expect_matches_oracle(const core::Problem& problem, SolveRequest request,
                           const char* expected_solver) {
  const SolveResult automatic = default_registry().solve(problem, request);
  request.solver = "exact-enumeration";
  const SolveResult oracle = default_registry().solve(problem, request);
  ASSERT_EQ(automatic.solved(), oracle.solved())
      << expected_solver << ": feasibility disagrees with the oracle";
  if (!automatic.solved()) return;
  EXPECT_EQ(automatic.solver, expected_solver);
  EXPECT_EQ(automatic.status, SolveStatus::Optimal);
  EXPECT_NEAR(automatic.value, oracle.value, 1e-9 + 1e-9 * oracle.value)
      << expected_solver << " is not optimal";
  ASSERT_TRUE(automatic.mapping.has_value());
  EXPECT_FALSE(automatic.mapping->validate(problem).has_value());
}

TEST(Adapters, IntervalPeriodDpMatchesOracle) {
  util::Rng rng(2024);
  for (int i = 0; i < kInstances; ++i) {
    const auto problem = gen::random_problem(
        rng, small_shape(core::PlatformClass::FullyHomogeneous, 1));
    expect_matches_oracle(problem, SolveRequest{}, "interval-period-dp");
  }
}

TEST(Adapters, OneToOnePeriodMatchesOracle) {
  util::Rng rng(2025);
  auto shape = small_shape(core::PlatformClass::CommHomogeneous, 2);
  shape.processors = 7;  // >= N so one-to-one mappings exist
  for (int i = 0; i < kInstances; ++i) {
    const auto problem = gen::random_problem(rng, shape);
    SolveRequest request;
    request.kind = MappingKind::OneToOne;
    expect_matches_oracle(problem, request, "one-to-one-period");
  }
}

TEST(Adapters, IntervalLatencyMatchesOracle) {
  util::Rng rng(2026);
  for (int i = 0; i < kInstances; ++i) {
    const auto problem = gen::random_problem(
        rng, small_shape(core::PlatformClass::CommHomogeneous, 2));
    SolveRequest request;
    request.objective = Objective::Latency;
    expect_matches_oracle(problem, request, "interval-latency");
  }
}

TEST(Adapters, EnergyIntervalDpMatchesOracle) {
  util::Rng rng(2027);
  for (int i = 0; i < kInstances; ++i) {
    const auto problem = gen::random_problem(
        rng, small_shape(core::PlatformClass::FullyHomogeneous, 2));
    SolveRequest request;
    request.objective = Objective::Energy;
    request.constraints.period =
        core::Thresholds::per_app({8.0, 8.0});
    expect_matches_oracle(problem, request, "energy-interval-dp");
  }
}

TEST(Adapters, EnergyMatchingMatchesOracle) {
  util::Rng rng(2028);
  auto shape = small_shape(core::PlatformClass::CommHomogeneous, 2);
  shape.processors = 7;
  for (int i = 0; i < kInstances; ++i) {
    const auto problem = gen::random_problem(rng, shape);
    SolveRequest request;
    request.objective = Objective::Energy;
    request.kind = MappingKind::OneToOne;
    request.constraints.period = core::Thresholds::per_app({12.0, 12.0});
    expect_matches_oracle(problem, request, "energy-matching");
  }
}

TEST(Adapters, BicriteriaMatchesOracle) {
  util::Rng rng(2029);
  for (int i = 0; i < kInstances; ++i) {
    const auto problem = gen::random_problem(
        rng, small_shape(core::PlatformClass::FullyHomogeneous, 1));
    SolveRequest request;
    request.constraints.latency = core::Thresholds::per_app({25.0, 25.0});
    expect_matches_oracle(problem, request, "bicriteria-period-latency");
  }
}

TEST(Adapters, TricriteriaUnimodalMatchesOracle) {
  util::Rng rng(2030);
  for (int i = 0; i < kInstances; ++i) {
    const auto problem = gen::random_problem(
        rng, small_shape(core::PlatformClass::FullyHomogeneous, 1));
    SolveRequest request;
    request.objective = Objective::Energy;
    request.constraints.period = core::Thresholds::per_app({10.0, 10.0});
    request.constraints.latency = core::Thresholds::per_app({30.0, 30.0});
    expect_matches_oracle(problem, request, "tricriteria-unimodal");
  }
}

TEST(Adapters, HeuristicsReturnValidConstraintSatisfyingMappings) {
  util::Rng rng(2031);
  const auto problem = gen::random_problem(
      rng, small_shape(core::PlatformClass::FullyHeterogeneous, 2));
  for (const char* name :
       {"heuristic-ladder", "greedy-interval", "local-search", "tabu-search",
        "annealing"}) {
    SolveRequest request;
    request.solver = name;
    request.constraints.latency = core::Thresholds::per_app({1e6, 1e6});
    const auto result = default_registry().solve(problem, request);
    ASSERT_TRUE(result.solved()) << name;
    EXPECT_EQ(result.status, SolveStatus::Feasible) << name;
    ASSERT_TRUE(result.mapping.has_value()) << name;
    EXPECT_FALSE(result.mapping->validate(problem).has_value()) << name;
    EXPECT_TRUE(request.constraints.satisfied_by(result.metrics)) << name;
  }
}

TEST(Adapters, OneToOneRequestsNeverGetIntervalMappings) {
  // The shared neighbourhood's split/merge moves leave the one-to-one
  // family, so the search heuristics must refuse OneToOne requests and the
  // ladder must stop after its structure-preserving rungs.
  util::Rng rng(2033);
  auto shape = small_shape(core::PlatformClass::FullyHeterogeneous, 2);
  shape.processors = 7;  // >= N so one-to-one mappings exist
  const auto problem = gen::random_problem(rng, shape);
  for (const char* name : {"heuristic-ladder", "rank-matching"}) {
    SolveRequest request;
    request.kind = MappingKind::OneToOne;
    request.solver = name;
    const auto result = default_registry().solve(problem, request);
    ASSERT_TRUE(result.solved()) << name;
    ASSERT_TRUE(result.mapping.has_value()) << name;
    EXPECT_TRUE(result.mapping->is_one_to_one()) << name;
  }
  for (const char* name : {"local-search", "tabu-search", "annealing"}) {
    SolveRequest request;
    request.kind = MappingKind::OneToOne;
    request.solver = name;
    const auto result = default_registry().solve(problem, request);
    EXPECT_EQ(result.status, SolveStatus::NoSolver) << name;
  }
}

TEST(Adapters, LadderNeverWorseThanGreedyAlone) {
  util::Rng rng(2032);
  for (int i = 0; i < 4; ++i) {
    const auto problem = gen::random_problem(
        rng, small_shape(core::PlatformClass::FullyHeterogeneous, 2));
    SolveRequest greedy;
    greedy.solver = "greedy-interval";
    SolveRequest ladder;
    ladder.solver = "heuristic-ladder";
    const auto greedy_result = default_registry().solve(problem, greedy);
    const auto ladder_result = default_registry().solve(problem, ladder);
    if (!greedy_result.solved()) continue;
    ASSERT_TRUE(ladder_result.solved());
    EXPECT_LE(ladder_result.value, greedy_result.value + 1e-9);
  }
}

}  // namespace
}  // namespace pipeopt::api
