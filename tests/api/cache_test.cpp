/// Solve-cache subsystem (api/cache.hpp): canonical key equivalence (two
/// textually different wire requests share one entry), LRU eviction order,
/// bit-identical hits, concurrent hit/miss hammering (run under TSan by
/// tools/ci.sh), the cacheability policy for non-deterministic request
/// shapes, and the end-to-end guarantee that a hit skips the search
/// entirely (near-zero latency on the needle instance).

#include "api/cache.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "gen/motivating_example.hpp"
#include "io/problem_io.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "util/cancel.hpp"
#include "util/timing.hpp"

namespace pipeopt::api {
namespace {

/// A distinguishable stand-in result (the cache stores whatever it is
/// given; these tests only need to tell entries apart).
SolveResult marker(double value) {
  SolveResult result;
  result.status = SolveStatus::Optimal;
  result.value = value;
  result.solver = "marker";
  return result;
}

/// The PR 2 needle (see executor_test.cpp): branch-and-bound one-to-one
/// search whose only expensive edge is the last stage's output link, so
/// the compute-only lower bounds prune nothing and the tree is enormous.
core::Problem needle_instance() {
  std::vector<core::StageSpec> cheap(5, {0.01, 0.0});
  std::vector<core::StageSpec> tail = cheap;
  tail.back().output_size = 100.0;
  std::vector<core::Application> apps;
  apps.emplace_back(0.0, cheap, 1.0, "A");
  apps.emplace_back(0.0, tail, 1.0, "B");
  const std::size_t p = 12;
  std::vector<core::Processor> procs(p, core::Processor({1.0}));
  std::vector<std::vector<double>> link(p, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> in(2, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> out(2, std::vector<double>(p, 1.0));
  for (std::size_t u = 0; u < p; ++u) out[1][u] = 0.5 + 0.09 * u;
  return core::Problem(std::move(apps),
                       core::Platform(std::move(procs), std::move(link),
                                      std::move(in), std::move(out)),
                       core::CommModel::Overlap);
}

TEST(Cache, KeyCanonicalizesTextuallyDifferentButEqualRequests) {
  // Two wire lines that could not be more different textually — field
  // order, a replicated bound vs the explicit per-application list, a
  // comment and an id in one of them — but mean the same solve.
  const core::Problem problem = gen::motivating_example();
  const std::string text = io::format_problem(problem);
  std::string commented = "# a caller's comment\n" + text;

  io::FlatJsonWriter a;
  a.field("type", "solve");
  a.field("objective", "energy");
  a.field("period_bounds", "5");  // one value replicates per application
  a.field("problem", text);
  io::FlatJsonWriter b;
  b.field("type", "solve");
  b.field("id", "replay-7");  // ids never enter the key
  b.field("problem", commented);
  b.field("period_bounds", "5,5");
  b.field("objective", "energy");

  const io::WireSolveRequest wire_a =
      io::parse_solve_request_line(std::move(a).str());
  const io::WireSolveRequest wire_b =
      io::parse_solve_request_line(std::move(b).str());
  const std::string key_a = SolveCache::key(wire_a.problem, wire_a.request);
  const std::string key_b = SolveCache::key(wire_b.problem, wire_b.request);
  EXPECT_EQ(key_a, key_b);

  // And the canonical equality is what the cache actually shards on: an
  // entry stored under one spelling is a hit under the other.
  SolveCache cache(4);
  cache.insert(key_a, marker(46.0));
  const auto hit = cache.lookup(key_b);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 46.0);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(Cache, KeySeparatesEverythingThatCanChangeTheResult) {
  const core::Problem problem = gen::motivating_example();
  SolveRequest base;
  const std::string key = SolveCache::key(problem, base);

  SolveRequest objective = base;
  objective.objective = Objective::Energy;
  EXPECT_NE(SolveCache::key(problem, objective), key);
  SolveRequest budget = base;
  budget.node_budget = 1234;
  EXPECT_NE(SolveCache::key(problem, budget), key);
  SolveRequest hinted = base;
  hinted.warm_start = 1.0;  // hints change diagnostics, so they key apart
  EXPECT_NE(SolveCache::key(problem, hinted), key);
  SolveRequest bounded = base;
  bounded.constraints.period = core::Thresholds::per_app({2.0, 2.0});
  EXPECT_NE(SolveCache::key(problem, bounded), key);

  // The cancel token is policy, not identity: a token-bearing request has
  // the same key (cacheability is decided separately).
  util::CancelSource source;
  SolveRequest with_token = base;
  with_token.cancel = source.token();
  EXPECT_EQ(SolveCache::key(problem, with_token), key);
}

TEST(Cache, LruEvictsTheLeastRecentlyUsedEntry) {
  SolveCache cache(/*capacity=*/2, /*shards=*/1);  // one shard: total order
  cache.insert("a", marker(1.0));
  cache.insert("b", marker(2.0));
  ASSERT_TRUE(cache.lookup("a").has_value());  // refresh: "b" is now LRU
  cache.insert("c", marker(3.0));              // evicts "b"

  EXPECT_FALSE(cache.lookup("b").has_value());
  ASSERT_TRUE(cache.lookup("a").has_value());
  ASSERT_TRUE(cache.lookup("c").has_value());
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.misses(), 1u);  // only the evicted "b"
  EXPECT_EQ(cache.hits(), 3u);

  // Re-inserting an existing key refreshes recency instead of duplicating.
  cache.insert("a", marker(1.0));
  cache.insert("d", marker(4.0));  // now "c" is the LRU entry
  EXPECT_FALSE(cache.lookup("c").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(Cache, HitsReturnTheStoredResultBitForBit) {
  const core::Problem problem = gen::motivating_example();
  const SolveRequest request;
  const SolveResult solved = solve(problem, request);

  SolveCache cache(8);
  const std::string key = SolveCache::key(problem, request);
  cache.insert(key, solved);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  // Verbatim, wall time included: a replayed stream is byte-stable.
  EXPECT_EQ(io::format_result(*hit, "", /*include_wall=*/true),
            io::format_result(solved, "", /*include_wall=*/true));
}

TEST(Cache, ConcurrentHitMissHammeringStaysConsistent) {
  // Four threads hammer a 4-shard cache with overlapping key sets —
  // intentionally more keys than capacity so inserts, refreshes, hits,
  // misses and evictions all race. Run under TSan by tools/ci.sh.
  SolveCache cache(/*capacity=*/16, /*shards=*/4);
  constexpr int kThreads = 4;
  constexpr int kIterations = 2000;
  constexpr int kKeys = 48;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kIterations; ++i) {
        const std::string key =
            "key-" + std::to_string((i * (t + 1) + t) % kKeys);
        if (const auto hit = cache.lookup(key)) {
          ASSERT_EQ(hit->solver, "marker");
        } else {
          cache.insert(key, marker(static_cast<double>(i)));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every lookup was a hit or a miss, nothing lost; occupancy is bounded.
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_LE(cache.size(), 16u);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(Cache, NonDeterministicRequestShapesAreNotCacheable) {
  SolveRequest deterministic;
  EXPECT_TRUE(SolveCache::cacheable(deterministic));

  SolveRequest deadline = deterministic;
  deadline.deadline_ms = 100;
  EXPECT_FALSE(SolveCache::cacheable(deadline));
  SolveRequest soft_budget = deterministic;
  soft_budget.time_budget_seconds = 0.5;
  EXPECT_FALSE(SolveCache::cacheable(soft_budget));
  SolveRequest deadline_token = deterministic;
  deadline_token.cancel =
      util::CancelToken{}.with_timeout(std::chrono::hours(1));
  EXPECT_FALSE(SolveCache::cacheable(deadline_token));

  // A plain source-connected token is fine: it only matters if it fires,
  // and fired results are never stored.
  util::CancelSource source;
  SolveRequest with_token = deterministic;
  with_token.cancel = source.token();
  EXPECT_TRUE(SolveCache::cacheable(with_token));
}

TEST(Cache, ExecutorBypassesTheCacheForNonCacheableRequests) {
  Executor executor(ExecutorOptions{.jobs = 1, .cache_entries = 8});
  ASSERT_NE(executor.cache(), nullptr);
  const core::Problem problem = gen::motivating_example();

  SolveRequest deadline;
  deadline.deadline_ms = 10'000;  // far away, but enough to disqualify
  EXPECT_TRUE(executor.solve_async(problem, deadline).get().solved());
  EXPECT_EQ(executor.cache()->hits(), 0u);
  EXPECT_EQ(executor.cache()->misses(), 0u);
  EXPECT_EQ(executor.cache()->size(), 0u);

  // A pre-fired token keeps the cold semantics (typed cancelled result)
  // and leaves the cache untouched.
  util::CancelSource source;
  source.request_cancel();
  SolveRequest fired;
  fired.cancel = source.token();
  const SolveResult cancelled = executor.solve_async(problem, fired).get();
  EXPECT_TRUE(cancelled.was_cancelled());
  EXPECT_EQ(executor.cache()->misses(), 0u);
  EXPECT_EQ(executor.cache()->size(), 0u);
}

TEST(Cache, HitSkipsTheSearchEntirelyOnTheNeedleInstance) {
  // First solve: a deterministically long branch-and-bound search that
  // exhausts a 5M-node budget (a typed, deterministic LimitExceeded —
  // cacheable). Second solve: byte-identical request, answered from the
  // cache with the identical bytes at near-zero latency.
  Executor executor(ExecutorOptions{.jobs = 1, .cache_entries = 4});
  const core::Problem problem = needle_instance();
  SolveRequest request;
  request.solver = "branch-and-bound";
  request.kind = MappingKind::OneToOne;
  request.node_budget = 5'000'000;

  const util::Stopwatch cold_watch;
  const SolveResult cold = executor.solve_async(problem, request).get();
  const double cold_s = cold_watch.elapsed_seconds();
  ASSERT_EQ(cold.status, SolveStatus::LimitExceeded);

  const util::Stopwatch warm_watch;
  const SolveResult warm = executor.solve_async(problem, request).get();
  const double warm_s = warm_watch.elapsed_seconds();

  // Identical bytes — wall time included, because the stored result is
  // returned verbatim (the replayed-stream byte-stability guarantee).
  EXPECT_EQ(io::format_result(warm, "", /*include_wall=*/true),
            io::format_result(cold, "", /*include_wall=*/true));
  EXPECT_EQ(executor.cache()->hits(), 1u);
  EXPECT_EQ(executor.cache()->misses(), 1u);
  // "Skips the search": a 5M-node search costs real time; a hit costs one
  // key format + one map probe. Generous margins for a loaded CI box.
  EXPECT_LT(warm_s, std::max(cold_s / 10.0, 0.002));
}

}  // namespace
}  // namespace pipeopt::api
