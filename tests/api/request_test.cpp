#include "api/request.hpp"

#include <gtest/gtest.h>

#include "api/result.hpp"

namespace pipeopt::api {
namespace {

TEST(Request, Defaults) {
  const SolveRequest request;
  EXPECT_EQ(request.objective, Objective::Period);
  EXPECT_EQ(request.kind, MappingKind::Interval);
  EXPECT_EQ(request.weights, core::WeightPolicy::Priority);
  EXPECT_FALSE(request.solver.has_value());
  EXPECT_FALSE(request.constraints.period.has_value());
  EXPECT_FALSE(request.constraints.latency.has_value());
  EXPECT_FALSE(request.constraints.energy_budget.has_value());
  EXPECT_FALSE(request.time_budget_seconds.has_value());
  EXPECT_GT(request.node_budget, 0u);
}

TEST(Request, ObjectiveRoundTrip) {
  for (const Objective o :
       {Objective::Period, Objective::Latency, Objective::Energy}) {
    const auto parsed = parse_objective(to_string(o));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, o);
  }
  EXPECT_FALSE(parse_objective("throughput").has_value());
  EXPECT_FALSE(parse_objective("").has_value());
}

TEST(Request, MappingKindRoundTrip) {
  for (const MappingKind k : {MappingKind::Interval, MappingKind::OneToOne}) {
    const auto parsed = parse_mapping_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_mapping_kind("general").has_value());
}

TEST(Result, StatusNames) {
  EXPECT_STREQ(to_string(SolveStatus::Optimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::Feasible), "feasible");
  EXPECT_STREQ(to_string(SolveStatus::Infeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::LimitExceeded), "limit-exceeded");
  EXPECT_STREQ(to_string(SolveStatus::NoSolver), "no-solver");
}

TEST(Result, SolvedClassification) {
  SolveResult result;
  result.status = SolveStatus::Optimal;
  EXPECT_TRUE(result.solved());
  result.status = SolveStatus::Feasible;
  EXPECT_TRUE(result.solved());
  result.status = SolveStatus::Infeasible;
  EXPECT_FALSE(result.solved());
  result.status = SolveStatus::LimitExceeded;
  EXPECT_FALSE(result.solved());
  result.status = SolveStatus::NoSolver;
  EXPECT_FALSE(result.solved());
}

}  // namespace
}  // namespace pipeopt::api
