/// Plan/execute split: a SolvePlan must reproduce SolverRegistry::solve
/// exactly, be reusable, keep the fast path copy-free, and carry typed
/// planning failures and cancellation.

#include "api/plan.hpp"

#include <gtest/gtest.h>

#include "api/registry.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "util/cancel.hpp"

namespace pipeopt::api {
namespace {

core::Problem example() { return gen::motivating_example(); }

/// Everything but wall time, which legitimately differs run to run.
void expect_same_result(const SolveResult& a, const SolveResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.value, b.value);  // bit-identical, no tolerance
  ASSERT_EQ(a.mapping.has_value(), b.mapping.has_value());
  if (a.mapping) {
    ASSERT_EQ(a.mapping->interval_count(), b.mapping->interval_count());
    for (std::size_t i = 0; i < a.mapping->interval_count(); ++i) {
      EXPECT_EQ(a.mapping->intervals()[i], b.mapping->intervals()[i]);
    }
  }
  EXPECT_EQ(a.diagnostics, b.diagnostics);
}

TEST(Plan, ExecuteMatchesSolveAcrossPlatformClasses) {
  const SolverRegistry& registry = default_registry();
  util::Rng rng(7);
  for (const core::PlatformClass cls :
       {core::PlatformClass::FullyHomogeneous,
        core::PlatformClass::CommHomogeneous,
        core::PlatformClass::FullyHeterogeneous}) {
    gen::ProblemShape shape;
    shape.platform_class = cls;
    const core::Problem problem = gen::random_problem(rng, shape);
    for (const Objective objective :
         {Objective::Period, Objective::Latency}) {
      SolveRequest request;
      request.objective = objective;
      expect_same_result(registry.plan(problem, request).execute(),
                         registry.solve(problem, request));
    }
  }
}

TEST(Plan, IsReusable) {
  const core::Problem problem = example();
  SolveRequest request;
  const SolvePlan plan = default_registry().plan(problem, request);
  const SolveResult first = plan.execute();
  const SolveResult second = plan.execute();
  ASSERT_TRUE(first.solved());
  expect_same_result(first, second);
}

TEST(Plan, FastPathBorrowsTheProblem) {
  const core::Problem problem = example();
  // Priority weights (the default) and the unweighted energy objective must
  // not copy the instance into the plan.
  SolveRequest priority;
  const SolvePlan fast = default_registry().plan(problem, priority);
  EXPECT_TRUE(fast.borrows_problem());
  EXPECT_EQ(&fast.problem(), &problem);

  SolveRequest energy;
  energy.objective = Objective::Energy;
  energy.weights = core::WeightPolicy::Unit;
  EXPECT_TRUE(default_registry().plan(problem, energy).borrows_problem());
}

TEST(Plan, UnitWeightsRebuildTheProblemOnce) {
  const core::Problem problem = example();
  SolveRequest request;
  request.weights = core::WeightPolicy::Unit;
  const SolvePlan plan = default_registry().plan(problem, request);
  EXPECT_FALSE(plan.borrows_problem());
  EXPECT_NE(&plan.problem(), &problem);
  for (const auto& app : plan.problem().applications()) {
    EXPECT_EQ(app.weight(), 1.0);
  }
  expect_same_result(plan.execute(), default_registry().solve(problem, request));
}

TEST(Plan, StretchWeightsMatchPerCallSolve) {
  const core::Problem problem = example();
  SolveRequest request;
  request.weights = core::WeightPolicy::Stretch;
  const SolvePlan plan = default_registry().plan(problem, request);
  EXPECT_FALSE(plan.borrows_problem());
  expect_same_result(plan.execute(), default_registry().solve(problem, request));
}

TEST(Plan, CandidatesAreFilteredAtBindTime) {
  const core::Problem problem = example();
  SolveRequest request;
  const SolvePlan plan = default_registry().plan(problem, request);
  const auto reference = default_registry().candidates(problem, request);
  ASSERT_EQ(plan.candidates().size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(plan.candidates()[i], reference[i]);
  }
  EXPECT_EQ(plan.forced(), nullptr);
}

TEST(Plan, ForcedSolverIsResolvedAtPlanTime) {
  const core::Problem problem = example();
  SolveRequest request;
  request.solver = "exact-enumeration";
  const SolvePlan plan = default_registry().plan(problem, request);
  ASSERT_NE(plan.forced(), nullptr);
  EXPECT_EQ(plan.forced()->name(), "exact-enumeration");
  EXPECT_TRUE(plan.candidates().empty());
  const SolveResult result = plan.execute();
  EXPECT_EQ(result.solver, "exact-enumeration");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
}

TEST(Plan, UnknownForcedSolverIsATypedPlanningFailure) {
  const core::Problem problem = example();
  SolveRequest request;
  request.solver = "imaginary";
  const SolvePlan plan = default_registry().plan(problem, request);
  EXPECT_FALSE(plan.viable());
  EXPECT_EQ(plan.execute().status, SolveStatus::NoSolver);
  expect_same_result(plan.execute(), default_registry().solve(problem, request));
}

TEST(Plan, MismatchedThresholdsAreATypedPlanningFailure) {
  const core::Problem problem = example();  // two applications
  SolveRequest request;
  request.constraints.period = core::Thresholds::per_app({1.0, 1.0, 1.0});
  const SolvePlan plan = default_registry().plan(problem, request);
  EXPECT_FALSE(plan.viable());
  EXPECT_EQ(plan.execute().status, SolveStatus::NoSolver);
}

TEST(Plan, PlatformClassIsClassifiedAtBindTime) {
  const core::Problem problem = example();
  const SolvePlan plan = default_registry().plan(problem, SolveRequest{});
  EXPECT_EQ(plan.platform_class(), problem.platform().classify());
}

TEST(Plan, PreCancelledTokenShortCircuitsExecution) {
  const core::Problem problem = example();
  util::CancelSource source;
  source.request_cancel();
  const SolvePlan plan = default_registry().plan(problem, SolveRequest{});
  const SolveResult result = plan.execute(source.token());
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
  bool noted = false;
  for (const auto& [key, value] : result.diagnostics) noted |= key == "cancelled";
  EXPECT_TRUE(noted);
}

TEST(Plan, CancelledStretchSoloSolvesKeepTheCancellationContract) {
  // A token firing during the bind-time solo solves must surface as the
  // documented LimitExceeded + "cancelled" (CLI exit 1), never as NoSolver
  // (exit 2, the usage-error code).
  const core::Problem problem = example();
  util::CancelSource source;
  source.request_cancel();
  SolveRequest request;
  request.weights = core::WeightPolicy::Stretch;
  request.cancel = source.token();
  const SolvePlan plan = default_registry().plan(problem, request);
  EXPECT_FALSE(plan.viable());
  const SolveResult result = plan.execute();
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
  bool noted = false;
  for (const auto& [key, value] : result.diagnostics) noted |= key == "cancelled";
  EXPECT_TRUE(noted);
}

TEST(Plan, ExecuteWithFreshTokenAfterACancelledOne) {
  // Plan reuse across executions with independent tokens: a cancelled
  // execution must not poison the plan.
  const core::Problem problem = example();
  const SolvePlan plan = default_registry().plan(problem, SolveRequest{});
  util::CancelSource cancelled;
  cancelled.request_cancel();
  EXPECT_EQ(plan.execute(cancelled.token()).status,
            SolveStatus::LimitExceeded);
  util::CancelSource fresh;
  const SolveResult ok = plan.execute(fresh.token());
  EXPECT_TRUE(ok.solved());
}

TEST(DispatchPlan, BindsManyInstances) {
  const SolverRegistry& registry = default_registry();
  SolveRequest request;
  const DispatchPlan dispatch = registry.plan_request(request);
  util::Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    gen::ProblemShape shape;
    shape.platform_class = (i % 2 == 0)
                               ? core::PlatformClass::FullyHomogeneous
                               : core::PlatformClass::FullyHeterogeneous;
    const core::Problem problem = gen::random_problem(rng, shape);
    expect_same_result(dispatch.bind(problem).execute(),
                       registry.solve(problem, request));
  }
}

}  // namespace
}  // namespace pipeopt::api
