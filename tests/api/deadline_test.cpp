/// `SolveRequest::deadline_ms` — the wall-clock deadline armed by
/// `SolvePlan::execute`: an expired deadline aborts even an exact search
/// and comes back as the typed LimitExceeded "cancelled" result, exactly
/// like a fired cancel token; a generous deadline changes nothing.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <limits>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "gen/motivating_example.hpp"
#include "util/cancel.hpp"

namespace pipeopt::api {
namespace {

/// The PR 2 needle: a deterministically long branch-and-bound search. All
/// costs are tiny except the final stage's output link on a fully-het
/// platform, which the compute-only lower bounds never see — one-to-one
/// search degenerates to near-full enumeration (>10^7 nodes, proved by the
/// calibration guard in executor_test.cpp).
core::Problem needle_instance() {
  std::vector<core::StageSpec> cheap(5, {0.01, 0.0});
  std::vector<core::StageSpec> tail = cheap;
  tail.back().output_size = 100.0;
  std::vector<core::Application> apps;
  apps.emplace_back(0.0, cheap, 1.0, "A");
  apps.emplace_back(0.0, tail, 1.0, "B");
  const std::size_t p = 12;
  std::vector<core::Processor> procs(p, core::Processor({1.0}));
  std::vector<std::vector<double>> link(p, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> in(2, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> out(2, std::vector<double>(p, 1.0));
  for (std::size_t u = 0; u < p; ++u) out[1][u] = 0.5 + 0.09 * u;
  return core::Problem(std::move(apps),
                       core::Platform(std::move(procs), std::move(link),
                                      std::move(in), std::move(out)),
                       core::CommModel::Overlap);
}

SolveRequest needle_request() {
  SolveRequest request;
  request.solver = "branch-and-bound";
  request.kind = MappingKind::OneToOne;
  request.node_budget = std::numeric_limits<std::uint64_t>::max();
  return request;
}

bool has_diagnostic(const SolveResult& result, const char* key) {
  for (const auto& [k, v] : result.diagnostics) {
    if (k == key) return true;
  }
  return false;
}

TEST(Deadline, ExpiredDeadlineReturnsTypedCancelledResult) {
  // 50ms of wall clock is far below the needle's >10^7-node search on any
  // plausible machine, so the deadline always lands mid-search.
  SolveRequest request = needle_request();
  request.deadline_ms = 50;
  const SolveResult result = solve(needle_instance(), request);
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
  EXPECT_TRUE(has_diagnostic(result, "cancelled"));
  EXPECT_FALSE(result.mapping.has_value());
}

TEST(Deadline, GenerousDeadlineLeavesTheSolveAlone) {
  SolveRequest plain;
  SolveRequest timed;
  timed.deadline_ms = 3'600'000;  // an hour: never fires
  const core::Problem problem = gen::motivating_example();
  const SolveResult a = solve(problem, plain);
  const SolveResult b = solve(problem, timed);
  ASSERT_TRUE(a.solved());
  ASSERT_TRUE(b.solved());
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.value, b.value);
}

TEST(Deadline, WorksThroughTheExecutorPool) {
  // The service path: deadline armed on the worker thread that executes the
  // plan, not on the submitting thread.
  Executor executor(ExecutorOptions{.jobs = 1});
  SolveRequest request = needle_request();
  request.deadline_ms = 50;
  std::future<SolveResult> future =
      executor.solve_async(needle_instance(), request);
  const SolveResult result = future.get();
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
  EXPECT_TRUE(has_diagnostic(result, "cancelled"));

  // The pool survives and solves on.
  EXPECT_TRUE(
      executor.solve_async(gen::motivating_example(), SolveRequest{}).get().solved());
}

TEST(Deadline, StretchSoloSolveCancelledByDeadlineStaysTyped) {
  // The stretch policy solves each application's solo optimum at bind
  // time. A deadline that expires during those solo solves must surface as
  // the documented typed cancellation (LimitExceeded + "cancelled", CLI
  // exit 1), not as a NoSolver "no solo optimum" planning failure — the
  // deadline arms on a token copy inside the inner execute, so the outer
  // request's own token never reports it.
  SolveRequest request;
  request.weights = core::WeightPolicy::Stretch;
  request.deadline_ms = 0;  // expires immediately, before any solo solve
  const SolveResult result = solve(gen::motivating_example(), request);
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
  EXPECT_TRUE(has_diagnostic(result, "cancelled"));
  EXPECT_TRUE(has_diagnostic(result, "stretch"));
}

TEST(Deadline, CallerTokenStillWinsUnderADeadline) {
  // Deadline and caller token compose: the earlier of the two cancels.
  Executor executor(ExecutorOptions{.jobs = 1});
  util::CancelSource source;
  source.request_cancel();  // pre-fired: cancels long before the hour is up
  SolveRequest request = needle_request();
  request.deadline_ms = 3'600'000;
  request.cancel = source.token();
  const SolveResult result =
      executor.solve_async(needle_instance(), request).get();
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
  EXPECT_TRUE(has_diagnostic(result, "cancelled"));
}

}  // namespace
}  // namespace pipeopt::api
