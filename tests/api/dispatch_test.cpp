/// End-to-end dispatch through the default registry: the ISSUE-level
/// contract. Polynomial paper algorithms win on their home cells,
/// heterogeneous instances degrade to exact search (and to the heuristic
/// ladder when the node budget is exhausted), forced overrides reach every
/// optimizer, and infeasible requests come back as typed statuses.

#include <gtest/gtest.h>

#include <vector>

#include "api/registry.hpp"
#include "core/objectives.hpp"
#include "core/platform.hpp"
#include "gen/motivating_example.hpp"

namespace pipeopt::api {
namespace {

using gen::MotivatingExampleFacts;

/// Fully homogeneous platform: p identical processors, uniform bandwidth.
core::Problem fully_homogeneous_problem(std::size_t p = 4) {
  std::vector<core::Processor> procs(p, core::Processor({2.0}, 0.5));
  core::Platform platform(std::move(procs), /*uniform_bandwidth=*/1.0);
  std::vector<core::Application> apps;
  apps.emplace_back(1.0, std::vector<core::StageSpec>{{3.0, 1.0}, {2.0, 1.0}});
  apps.emplace_back(0.5, std::vector<core::StageSpec>{{4.0, 0.5}, {1.0, 0.0}});
  return core::Problem(std::move(apps), std::move(platform));
}

/// Fully homogeneous multi-modal platform (for the energy DP cell).
core::Problem fully_homogeneous_multimodal(std::size_t p = 4) {
  std::vector<core::Processor> procs(p, core::Processor({1.0, 2.0, 4.0}, 0.5));
  core::Platform platform(std::move(procs), 1.0);
  std::vector<core::Application> apps;
  apps.emplace_back(1.0, std::vector<core::StageSpec>{{3.0, 1.0}, {2.0, 1.0}});
  apps.emplace_back(0.5, std::vector<core::StageSpec>{{4.0, 0.5}, {1.0, 0.0}});
  return core::Problem(std::move(apps), std::move(platform));
}

/// Comm-homogeneous platform with enough (heterogeneous) processors for
/// one-to-one mappings of the 4 total stages.
core::Problem comm_homogeneous_wide() {
  std::vector<core::Processor> procs;
  for (const double speed : {2.0, 3.0, 5.0, 7.0, 11.0}) {
    procs.push_back(core::Processor({speed / 2.0, speed}, 0.25));
  }
  core::Platform platform(std::move(procs), 1.0);
  std::vector<core::Application> apps;
  apps.emplace_back(1.0, std::vector<core::StageSpec>{{3.0, 1.0}, {2.0, 1.0}});
  apps.emplace_back(0.5, std::vector<core::StageSpec>{{4.0, 0.5}, {1.0, 0.0}});
  return core::Problem(std::move(apps), std::move(platform));
}

// ---------------------------------------------------------------- dispatch --

TEST(Dispatch, HomogeneousPeriodPicksIntervalPeriodDp) {
  const auto result = solve(fully_homogeneous_problem(), SolveRequest{});
  EXPECT_EQ(result.solver, "interval-period-dp");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
  ASSERT_TRUE(result.mapping.has_value());
}

TEST(Dispatch, HomogeneousLatencyPicksIntervalLatency) {
  SolveRequest request;
  request.objective = Objective::Latency;
  const auto result = solve(fully_homogeneous_problem(), request);
  EXPECT_EQ(result.solver, "interval-latency");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
}

TEST(Dispatch, HomogeneousEnergyUnderPeriodPicksEnergyDp) {
  SolveRequest request;
  request.objective = Objective::Energy;
  request.constraints.period = core::Thresholds::per_app({10.0, 10.0});
  const auto result = solve(fully_homogeneous_multimodal(), request);
  EXPECT_EQ(result.solver, "energy-interval-dp");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
}

TEST(Dispatch, PeriodUnderLatencyBoundsPicksBicriteria) {
  SolveRequest request;
  request.constraints.latency = core::Thresholds::per_app({20.0, 20.0});
  const auto result = solve(fully_homogeneous_problem(), request);
  EXPECT_EQ(result.solver, "bicriteria-period-latency");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
}

TEST(Dispatch, UniModalEnergyBudgetPicksTricriteria) {
  SolveRequest request;
  // Budget covers two enrolled processors (E_stat + s^alpha = 4.5 each).
  request.constraints.energy_budget = 9.5;
  const auto result = solve(fully_homogeneous_problem(), request);
  EXPECT_EQ(result.solver, "tricriteria-unimodal");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_LE(result.metrics.energy, 9.5);
}

TEST(Dispatch, OneToOnePeriodOnCommHomogeneousPicksMatching) {
  SolveRequest request;
  request.kind = MappingKind::OneToOne;
  const auto result = solve(comm_homogeneous_wide(), request);
  EXPECT_EQ(result.solver, "one-to-one-period");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
  ASSERT_TRUE(result.mapping.has_value());
  EXPECT_TRUE(result.mapping->is_one_to_one());
}

TEST(Dispatch, HeterogeneousPeriodFallsBackToExact) {
  // The §2 instance is comm-homogeneous with heterogeneous processors: the
  // interval period cell is NP-hard there (Thm 5), so no polynomial solver
  // applies and dispatch degrades to the Exact tier.
  const auto result = solve(gen::motivating_example(), SolveRequest{});
  EXPECT_EQ(result.solver, "branch-and-bound");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(result.value, MotivatingExampleFacts::kOptimalPeriod);
}

TEST(Dispatch, ExhaustedNodeBudgetDegradesToHeuristicLadder) {
  SolveRequest request;
  request.node_budget = 10;  // both exact engines blow this immediately
  const auto result = solve(gen::motivating_example(), request);
  EXPECT_EQ(result.solver, "heuristic-ladder");
  EXPECT_EQ(result.status, SolveStatus::Feasible);
  bool skipped_exact = false;
  for (const auto& [key, value] : result.diagnostics) {
    skipped_exact |= key == "skipped";
  }
  EXPECT_TRUE(skipped_exact);
}

TEST(Dispatch, EnergyUnderPeriodOnCommHomFallsBackToExact) {
  // Interval energy minimization is polynomial only on fully homogeneous
  // platforms (Thm 22 NP-hardness); §2's instance must go exact — and
  // reproduce the paper's E=46 under period <= 2.
  SolveRequest request;
  request.objective = Objective::Energy;
  request.constraints.period = core::Thresholds::per_app({2.0, 2.0});
  const auto result = solve(gen::motivating_example(), request);
  EXPECT_EQ(result.solver, "exact-enumeration");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
  EXPECT_DOUBLE_EQ(result.value, MotivatingExampleFacts::kEnergyUnderPeriod2);
}

// -------------------------------------------------------------- overrides --

TEST(Dispatch, ForcedSolverOverridesAutoChoice) {
  SolveRequest request;
  request.solver = "exact-enumeration";
  const auto result = solve(fully_homogeneous_problem(), request);
  EXPECT_EQ(result.solver, "exact-enumeration");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
}

TEST(Dispatch, ForcedSolverAgreesWithPolynomialChoice) {
  const auto automatic = solve(fully_homogeneous_problem(), SolveRequest{});
  SolveRequest forced;
  forced.solver = "exact-enumeration";
  const auto exact = solve(fully_homogeneous_problem(), forced);
  ASSERT_TRUE(automatic.solved());
  ASSERT_TRUE(exact.solved());
  EXPECT_NEAR(automatic.value, exact.value, 1e-9);
}

TEST(Dispatch, EveryAcceptanceOptimizerIsReachable) {
  // ISSUE acceptance list: interval DP, one-to-one matching, energy DP,
  // exact enumeration, greedy, local search, annealing — each reachable by
  // name and solving its home instance.
  struct Case {
    const char* solver;
    core::Problem problem;
    SolveRequest request;
  };
  std::vector<Case> cases;
  {
    SolveRequest r;
    cases.push_back({"interval-period-dp", fully_homogeneous_problem(), r});
  }
  {
    SolveRequest r;
    r.kind = MappingKind::OneToOne;
    cases.push_back({"one-to-one-period", comm_homogeneous_wide(), r});
  }
  {
    SolveRequest r;
    r.objective = Objective::Energy;
    r.constraints.period = core::Thresholds::per_app({10.0, 10.0});
    cases.push_back({"energy-interval-dp", fully_homogeneous_multimodal(), r});
  }
  {
    SolveRequest r;
    cases.push_back({"exact-enumeration", gen::motivating_example(), r});
  }
  {
    SolveRequest r;
    cases.push_back({"greedy-interval", gen::motivating_example(), r});
  }
  {
    SolveRequest r;
    cases.push_back({"local-search", gen::motivating_example(), r});
  }
  {
    SolveRequest r;
    cases.push_back({"annealing", gen::motivating_example(), r});
  }
  for (auto& c : cases) {
    c.request.solver = c.solver;
    const auto result = solve(c.problem, c.request);
    EXPECT_EQ(result.solver, c.solver);
    EXPECT_TRUE(result.solved())
        << c.solver << " -> " << result.status_name();
  }
}

// ------------------------------------------------------------- infeasible --

TEST(Dispatch, OneToOneWithTooFewProcessorsIsTypedInfeasible) {
  // §2: N = 7 stages on p = 3 processors — no one-to-one mapping exists.
  SolveRequest request;
  request.kind = MappingKind::OneToOne;
  const auto result = solve(gen::motivating_example(), request);
  EXPECT_EQ(result.status, SolveStatus::Infeasible);
  EXPECT_FALSE(result.mapping.has_value());
}

TEST(Dispatch, UnmeetablePeriodBoundIsTypedInfeasible) {
  SolveRequest request;
  request.objective = Objective::Energy;
  request.constraints.period = core::Thresholds::per_app({1e-6, 1e-6});
  const auto result = solve(fully_homogeneous_multimodal(), request);
  EXPECT_EQ(result.solver, "energy-interval-dp");
  EXPECT_EQ(result.status, SolveStatus::Infeasible);
  EXPECT_FALSE(result.mapping.has_value());
}

TEST(Dispatch, InfeasibleNeverThrows) {
  SolveRequest request;
  request.objective = Objective::Energy;
  request.constraints.period = core::Thresholds::per_app({1e-9, 1e-9});
  EXPECT_NO_THROW({
    const auto result = solve(gen::motivating_example(), request);
    EXPECT_EQ(result.status, SolveStatus::Infeasible);
  });
}

// ----------------------------------------------------------------- weights --

TEST(Dispatch, UnitWeightsNeutralizePriorities) {
  // Same instance, application weights 1 and 5: the priority-weighted
  // optimum must dominate the unit-weighted one.
  std::vector<core::Processor> procs(3, core::Processor({2.0}));
  core::Platform platform(std::move(procs), 1.0);
  std::vector<core::Application> apps;
  apps.emplace_back(1.0, std::vector<core::StageSpec>{{3.0, 1.0}, {2.0, 1.0}},
                    1.0);
  apps.emplace_back(0.5, std::vector<core::StageSpec>{{4.0, 0.5}}, 5.0);
  const core::Problem problem(std::move(apps), std::move(platform));

  SolveRequest unit;
  unit.weights = core::WeightPolicy::Unit;
  const auto unit_result = solve(problem, unit);
  SolveRequest priority;
  priority.weights = core::WeightPolicy::Priority;
  const auto priority_result = solve(problem, priority);
  ASSERT_TRUE(unit_result.solved());
  ASSERT_TRUE(priority_result.solved());
  EXPECT_GT(priority_result.value, unit_result.value);
}

TEST(Dispatch, StretchWeightsNormalizeBySoloOptimum) {
  // Max stretch >= 1 always (no application can beat its solo optimum when
  // sharing the platform), and the §3.4 fairness objective stays finite.
  SolveRequest request;
  request.weights = core::WeightPolicy::Stretch;
  const auto result = solve(fully_homogeneous_problem(), request);
  ASSERT_TRUE(result.solved());
  EXPECT_GE(result.value, 1.0 - 1e-9);
  EXPECT_LT(result.value, 1e6);
}

}  // namespace
}  // namespace pipeopt::api
