/// Batch & async execution subsystem: bit-identity of `solve_batch` with
/// per-call `api::solve` (one dispatch plan per batch), future-based
/// `solve_async`, FIFO-pool behavior under concurrency, and cooperative
/// cancellation of a branch-and-bound solve mid-search.

#include "api/executor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "tests/support/grid_fixtures.hpp"
#include "util/cancel.hpp"

namespace pipeopt::api {
namespace {

using testing_support::table_grid;

void expect_same_result(const SolveResult& a, const SolveResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.value, b.value);  // bit-identical, no tolerance
  ASSERT_EQ(a.mapping.has_value(), b.mapping.has_value());
  if (a.mapping) {
    ASSERT_EQ(a.mapping->interval_count(), b.mapping->interval_count());
    for (std::size_t i = 0; i < a.mapping->interval_count(); ++i) {
      EXPECT_EQ(a.mapping->intervals()[i], b.mapping->intervals()[i]);
    }
  }
  EXPECT_EQ(a.diagnostics, b.diagnostics);
}

/// A deterministic long-running branch-and-bound search: the only
/// expensive edge is the final stage's output link, whose cost the bnb
/// lower bounds (compute-only) never see before the last placement — so
/// the one-to-one search degenerates to near-full enumeration of ~12P10
/// placements (>> 10^8 nodes; the calibration guard below proves > 10^7).
core::Problem needle_instance() {
  std::vector<core::StageSpec> cheap(5, {0.01, 0.0});
  std::vector<core::StageSpec> tail = cheap;
  tail.back().output_size = 100.0;
  std::vector<core::Application> apps;
  apps.emplace_back(0.0, cheap, 1.0, "A");
  apps.emplace_back(0.0, tail, 1.0, "B");
  const std::size_t p = 12;
  std::vector<core::Processor> procs(p, core::Processor({1.0}));
  std::vector<std::vector<double>> link(p, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> in(2, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> out(2, std::vector<double>(p, 1.0));
  for (std::size_t u = 0; u < p; ++u) out[1][u] = 0.5 + 0.09 * u;
  return core::Problem(std::move(apps),
                       core::Platform(std::move(procs), std::move(link),
                                      std::move(in), std::move(out)),
                       core::CommModel::Overlap);
}

SolveRequest needle_request() {
  SolveRequest request;
  request.solver = "branch-and-bound";
  request.kind = MappingKind::OneToOne;
  // Unlimited node budget: cancellation must be the only way out, so the
  // "cancelled" diagnostic can never race a budget exhaustion.
  request.node_budget = std::numeric_limits<std::uint64_t>::max();
  return request;
}

bool has_diagnostic(const SolveResult& result, const char* key) {
  for (const auto& [k, v] : result.diagnostics) {
    if (k == key) return true;
  }
  return false;
}

TEST(Executor, BatchIsBitIdenticalToPerCallSolveOverTheGrid) {
  const std::vector<core::Problem> grid = table_grid(8);
  SolveRequest request;  // weighted period over interval mappings, auto

  Executor executor(ExecutorOptions{.jobs = 4});
  const BatchResult batch = executor.solve_batch(grid, request);

  // The whole grid shares one request-level dispatch plan.
  EXPECT_EQ(batch.dispatch_plans, 1u);
  ASSERT_EQ(batch.results.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_same_result(batch.results[i], solve(grid[i], request));
  }
}

TEST(Executor, BatchMatchesPerCallUnderConstraintsAndUnitWeights) {
  const std::vector<core::Problem> grid = table_grid(4);
  SolveRequest request;
  request.objective = Objective::Energy;
  request.weights = core::WeightPolicy::Unit;
  request.constraints.period = core::Thresholds::per_app({5.0, 5.0});

  Executor executor(ExecutorOptions{.jobs = 2});
  const BatchResult batch = executor.solve_batch(grid, request);
  EXPECT_EQ(batch.dispatch_plans, 1u);
  ASSERT_EQ(batch.results.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    expect_same_result(batch.results[i], solve(grid[i], request));
  }
}

TEST(Executor, EmptyBatchIsEmpty) {
  Executor executor(ExecutorOptions{.jobs = 1});
  const BatchResult batch =
      executor.solve_batch(std::span<const core::Problem>{}, SolveRequest{});
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.dispatch_plans, 1u);
}

TEST(Executor, AsyncMatchesSyncSolve) {
  const core::Problem problem = gen::motivating_example();
  Executor executor(ExecutorOptions{.jobs = 2});
  SolveRequest request;
  std::future<SolveResult> future = executor.solve_async(problem, request);
  expect_same_result(future.get(), solve(problem, request));
}

TEST(Executor, AsyncJobOutlivesTheCallersProblem) {
  Executor executor(ExecutorOptions{.jobs = 1});
  std::future<SolveResult> future;
  {
    const core::Problem scoped = gen::motivating_example();
    future = executor.solve_async(scoped, SolveRequest{});
    // `scoped` dies here; the job owns its copy.
  }
  EXPECT_TRUE(future.get().solved());
}

TEST(Executor, ConcurrentAsyncStressWithDeterministicSeeds) {
  const std::vector<core::Problem> grid = table_grid(8);
  Executor executor(ExecutorOptions{.jobs = 4});

  // Reference results, computed synchronously.
  std::vector<SolveResult> expected;
  expected.reserve(grid.size());
  SolveRequest request;
  for (const core::Problem& problem : grid) {
    expected.push_back(solve(problem, request));
  }

  // Two async waves over the same instances, all in flight at once.
  std::vector<std::future<SolveResult>> futures;
  for (int wave = 0; wave < 2; ++wave) {
    for (const core::Problem& problem : grid) {
      futures.push_back(executor.solve_async(problem, request));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_same_result(futures[i].get(), expected[i % grid.size()]);
  }
  // The worker decrements its in-flight count only after satisfying the
  // future, so give the bookkeeping a moment before asserting idle.
  for (int i = 0; i < 1000 && executor.pending() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(executor.pending(), 0u);
}

TEST(Executor, DestructorDrainsAcceptedJobs) {
  const core::Problem problem = gen::motivating_example();
  std::vector<std::future<SolveResult>> futures;
  {
    Executor executor(ExecutorOptions{.jobs = 1});
    for (int i = 0; i < 6; ++i) {
      futures.push_back(executor.solve_async(problem, SolveRequest{}));
    }
  }  // destructor joins only after every accepted job ran
  for (auto& future : futures) {
    EXPECT_TRUE(future.get().solved());
  }
}

TEST(Executor, CancelsABranchAndBoundSolveMidSearch) {
  const core::Problem problem = needle_instance();

  // Calibration guard: the search provably needs more than 10^7 nodes (it
  // exhausts that budget), i.e. far more work than the cancellation delay
  // below. Deterministic — same tree on every machine.
  {
    SolveRequest guard = needle_request();
    guard.node_budget = 10'000'000;
    const SolveResult budgeted = solve(problem, guard);
    ASSERT_EQ(budgeted.status, SolveStatus::LimitExceeded);
    ASSERT_TRUE(has_diagnostic(budgeted, "node-budget"));
  }

  Executor executor(ExecutorOptions{.jobs = 1});
  util::CancelSource source;
  SolveRequest request = needle_request();
  request.cancel = source.token();
  std::future<SolveResult> future = executor.solve_async(problem, request);

  // Let the worker get well into the tree, then cancel. 20ms of search is
  // under 10^7 nodes on any plausible machine, so this lands mid-search.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  source.request_cancel();

  const SolveResult result = future.get();  // typed result, no throw
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
  EXPECT_TRUE(has_diagnostic(result, "cancelled"));
  EXPECT_FALSE(result.mapping.has_value());

  // The pool survives a cancelled job: the same worker solves on.
  std::future<SolveResult> next =
      executor.solve_async(gen::motivating_example(), SolveRequest{});
  EXPECT_TRUE(next.get().solved());
}

TEST(Executor, CancelTokenSharedAcrossABatch) {
  // A fired token cancels every not-yet-finished instance of a batch but
  // still yields one typed result per instance.
  std::vector<core::Problem> problems(3, needle_instance());
  util::CancelSource source;
  SolveRequest request = needle_request();
  request.cancel = source.token();

  Executor executor(ExecutorOptions{.jobs = 2});
  auto batch = std::async(std::launch::async, [&] {
    return executor.solve_batch(problems, request);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  source.request_cancel();
  const BatchResult result = batch.get();
  ASSERT_EQ(result.results.size(), problems.size());
  for (const SolveResult& r : result.results) {
    EXPECT_EQ(r.status, SolveStatus::LimitExceeded);
    EXPECT_TRUE(has_diagnostic(r, "cancelled"));
  }
}

TEST(Executor, LadderCancellationIsTypedNotThrown) {
  // The heuristic ladder consults the token between rungs and inside each
  // rung's iteration loop; a pre-fired token yields a typed result.
  const core::Problem problem = gen::motivating_example();
  util::CancelSource source;
  source.request_cancel();
  SolveRequest request;
  request.solver = "heuristic-ladder";
  request.cancel = source.token();
  const SolveResult result = solve(problem, request);
  // The constructive rung may already have produced a feasible incumbent
  // before the first budget check; cancellation never throws either way.
  if (!result.solved()) {
    EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
    EXPECT_TRUE(has_diagnostic(result, "cancelled"));
  }
}

TEST(Executor, DefaultExecutorFreeFunctions) {
  const core::Problem problem = gen::motivating_example();
  std::future<SolveResult> future = solve_async(problem, SolveRequest{});
  EXPECT_TRUE(future.get().solved());

  const std::vector<core::Problem> grid = table_grid(2);
  const BatchResult batch = solve_batch(grid, SolveRequest{});
  EXPECT_EQ(batch.results.size(), grid.size());
  EXPECT_EQ(batch.dispatch_plans, 1u);
}

}  // namespace
}  // namespace pipeopt::api
