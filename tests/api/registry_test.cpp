/// Registry mechanics, exercised with fake solvers so dispatch order,
/// capability filtering, forced overrides and LimitExceeded degradation are
/// tested independently of the real algorithms.

#include "api/registry.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "api/adapters.hpp"
#include "gen/motivating_example.hpp"

namespace pipeopt::api {
namespace {

core::Problem example() { return gen::motivating_example(); }

/// Fake solver: fixed applicability and a canned status.
std::unique_ptr<LambdaSolver> fake(std::string name, CostTier tier, int rank,
                                   bool applicable, SolveStatus status) {
  SolverInfo info;
  info.name = std::move(name);
  info.tier = tier;
  info.rank = rank;
  info.exact = tier != CostTier::Heuristic;
  return std::make_unique<LambdaSolver>(
      std::move(info),
      [applicable](const core::Problem&, const SolveRequest&) {
        return applicable;
      },
      [status](const core::Problem&, const SolveRequest&) {
        SolveResult result;
        result.status = status;
        result.value = status == SolveStatus::Optimal ? 1.0
                       : std::numeric_limits<double>::infinity();
        return result;
      });
}

TEST(Registry, RejectsDuplicateNames) {
  SolverRegistry registry;
  registry.add(fake("a", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  EXPECT_THROW(
      registry.add(fake("a", CostTier::Exact, 0, true, SolveStatus::Optimal)),
      std::invalid_argument);
}

TEST(Registry, FindByName) {
  SolverRegistry registry;
  registry.add(fake("x", CostTier::Exact, 0, true, SolveStatus::Optimal));
  ASSERT_NE(registry.find("x"), nullptr);
  EXPECT_EQ(registry.find("x")->name(), "x");
  EXPECT_EQ(registry.find("y"), nullptr);
}

TEST(Registry, DispatchOrderIsTierThenRankThenName) {
  SolverRegistry registry;
  registry.add(fake("h", CostTier::Heuristic, 0, true, SolveStatus::Feasible));
  registry.add(fake("e", CostTier::Exact, 0, true, SolveStatus::Optimal));
  registry.add(fake("p2", CostTier::Polynomial, 1, true, SolveStatus::Optimal));
  registry.add(fake("pb", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  registry.add(fake("pa", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  const auto order = registry.solvers();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0]->name(), "pa");  // rank 0, name tie-break
  EXPECT_EQ(order[1]->name(), "pb");
  EXPECT_EQ(order[2]->name(), "p2");
  EXPECT_EQ(order[3]->name(), "e");
  EXPECT_EQ(order[4]->name(), "h");
}

TEST(Registry, CandidatesFilterByApplicability) {
  SolverRegistry registry;
  registry.add(fake("yes", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  registry.add(fake("no", CostTier::Polynomial, 1, false, SolveStatus::Optimal));
  const auto candidates = registry.candidates(example(), SolveRequest{});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->name(), "yes");
}

TEST(Registry, AutoDispatchPicksCheapestApplicable) {
  SolverRegistry registry;
  registry.add(fake("slow", CostTier::Exact, 0, true, SolveStatus::Optimal));
  registry.add(fake("cheap", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  registry.add(
      fake("inapplicable", CostTier::Polynomial, 0, false, SolveStatus::Optimal));
  const auto result = registry.solve(example(), SolveRequest{});
  EXPECT_EQ(result.solver, "cheap");
  EXPECT_EQ(result.status, SolveStatus::Optimal);
}

TEST(Registry, LimitExceededDegradesToNextTier) {
  SolverRegistry registry;
  registry.add(fake("exact", CostTier::Exact, 0, true,
                    SolveStatus::LimitExceeded));
  registry.add(fake("ladder", CostTier::Heuristic, 0, true,
                    SolveStatus::Feasible));
  const auto result = registry.solve(example(), SolveRequest{});
  EXPECT_EQ(result.solver, "ladder");
  EXPECT_EQ(result.status, SolveStatus::Feasible);
  // The skipped exact solver is recorded in the diagnostics.
  bool noted = false;
  for (const auto& [key, value] : result.diagnostics) {
    noted |= key == "skipped" && value.find("exact") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(Registry, AllCandidatesOverBudgetReportsLimitExceeded) {
  SolverRegistry registry;
  registry.add(fake("only", CostTier::Exact, 0, true,
                    SolveStatus::LimitExceeded));
  const auto result = registry.solve(example(), SolveRequest{});
  EXPECT_EQ(result.status, SolveStatus::LimitExceeded);
}

TEST(Registry, NoApplicableSolverIsTypedNotThrown) {
  SolverRegistry registry;
  registry.add(fake("no", CostTier::Polynomial, 0, false, SolveStatus::Optimal));
  const auto result = registry.solve(example(), SolveRequest{});
  EXPECT_EQ(result.status, SolveStatus::NoSolver);
}

TEST(Registry, ForcedUnknownSolverIsTypedNoSolver) {
  SolverRegistry registry;
  registry.add(fake("real", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  SolveRequest request;
  request.solver = "imaginary";
  const auto result = registry.solve(example(), request);
  EXPECT_EQ(result.status, SolveStatus::NoSolver);
}

TEST(Registry, ForcedInapplicableSolverIsTypedNoSolver) {
  SolverRegistry registry;
  registry.add(fake("narrow", CostTier::Polynomial, 0, false,
                    SolveStatus::Optimal));
  SolveRequest request;
  request.solver = "narrow";
  const auto result = registry.solve(example(), request);
  EXPECT_EQ(result.status, SolveStatus::NoSolver);
}

TEST(Registry, ForcedSolverBypassesCheaperCandidates) {
  SolverRegistry registry;
  registry.add(fake("cheap", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  registry.add(fake("pricey", CostTier::Heuristic, 0, true,
                    SolveStatus::Feasible));
  SolveRequest request;
  request.solver = "pricey";
  const auto result = registry.solve(example(), request);
  EXPECT_EQ(result.solver, "pricey");
  EXPECT_EQ(result.status, SolveStatus::Feasible);
}

TEST(Registry, MismatchedThresholdSizesAreTypedNoSolver) {
  SolverRegistry registry;
  registry.add(fake("any", CostTier::Polynomial, 0, true, SolveStatus::Optimal));
  SolveRequest request;
  // The example has two applications; three bounds is a caller error.
  request.constraints.period = core::Thresholds::per_app({1.0, 1.0, 1.0});
  const auto result = registry.solve(example(), request);
  EXPECT_EQ(result.status, SolveStatus::NoSolver);
}

TEST(Registry, DefaultRegistryHasEveryAcceptanceSolver) {
  const SolverRegistry& registry = default_registry();
  for (const char* name :
       {"interval-period-dp", "one-to-one-period", "one-to-one-latency",
        "interval-latency", "energy-interval-dp", "energy-matching",
        "bicriteria-period-latency", "one-to-one-tricriteria",
        "tricriteria-unimodal", "branch-and-bound", "exact-enumeration",
        "heuristic-ladder", "greedy-interval", "rank-matching", "local-search",
        "tabu-search", "annealing"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace pipeopt::api
