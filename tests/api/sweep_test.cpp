/// Tests of the Pareto-front sweep subsystem (api/sweep.hpp): grid
/// preparation, the §2 anchors through the facade, agreement with
/// `core::pareto_front`, adaptive refinement, sweep-wide cancellation and
/// deadlines, and bit-identity between the sequential `api::sweep` and the
/// pool-fanned `Executor::sweep`.

#include "api/sweep.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "api/executor.hpp"
#include "api/registry.hpp"
#include "core/pareto.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "io/result_io.hpp"
#include "tests/support/grid_fixtures.hpp"
#include "util/cancel.hpp"

namespace pipeopt::api {
namespace {

/// Energy-under-period sweep over the §2 example (the SweepRequest
/// defaults) with the given grid.
SweepRequest energy_sweep(std::vector<double> bounds, std::size_t refine = 0) {
  SweepRequest request;
  request.bounds = std::move(bounds);
  request.refine = refine;
  return request;
}

/// Canonical wall-less wire line — the same comparator the server tests
/// use for bit-identity.
std::string comparable(const SolveResult& result) {
  return io::format_result(result, "", /*include_wall=*/false);
}

using testing_support::table_grid;

TEST(Sweep, RejectsUnusableRequests) {
  // No grid at all.
  EXPECT_FALSE(validate_sweep(energy_sweep({})).empty());
  // Objective pair collapsed.
  SweepRequest same = energy_sweep({1.0});
  same.base.objective = Objective::Period;
  same.swept = Objective::Period;
  EXPECT_FALSE(validate_sweep(same).empty());
  // The swept axis is already constrained by the base request.
  SweepRequest constrained = energy_sweep({1.0});
  constrained.base.constraints.period = core::Thresholds::per_app({1.0, 1.0});
  EXPECT_FALSE(validate_sweep(constrained).empty());
  SweepRequest budget = energy_sweep({1.0});
  budget.base.objective = Objective::Period;
  budget.swept = Objective::Energy;
  budget.base.constraints.energy_budget = 10.0;
  EXPECT_FALSE(validate_sweep(budget).empty());
  // A good request passes, and an unusable one evaluates nothing.
  EXPECT_TRUE(validate_sweep(energy_sweep({1.0, 2.0})).empty());
  const ParetoFront failed = sweep(gen::motivating_example(), same);
  EXPECT_FALSE(failed.error.empty());
  EXPECT_TRUE(failed.evaluations.empty());
  EXPECT_TRUE(failed.front.empty());
}

TEST(Sweep, MotivatingExampleReproducesThePaperAnchors) {
  // §2: periods 1 / 2 / 14 cost 136 / 46 / 10 — the progression the whole
  // trade-off narrative hangs on, now one facade call.
  const ParetoFront front =
      sweep(gen::motivating_example(), energy_sweep({1.0, 2.0, 14.0}));
  EXPECT_TRUE(front.error.empty());
  EXPECT_FALSE(front.cancelled);
  ASSERT_EQ(front.front.size(), 3u);
  const std::vector<double> energies = {136.0, 46.0, 10.0};
  for (std::size_t i = 0; i < 3; ++i) {
    const SweepEvaluation& evaluation = front.evaluations[front.front[i]];
    EXPECT_EQ(evaluation.result.metrics.energy, energies[i]);
    EXPECT_TRUE(evaluation.result.solved());
    EXPECT_TRUE(evaluation.result.mapping.has_value());
  }
  EXPECT_TRUE(front.monotone());
  // The witness mappings travel into the ParetoPoint view too.
  for (const core::ParetoPoint& point : front.front_points()) {
    EXPECT_TRUE(point.mapping.has_value());
  }
}

TEST(Sweep, GridIsSortedAndDeduplicated) {
  const ParetoFront front = sweep(gen::motivating_example(),
                                  energy_sweep({14.0, 1.0, 2.0, 2.0, 1.0}));
  ASSERT_EQ(front.evaluations.size(), 3u);
  EXPECT_EQ(front.evaluations[0].bound, 1.0);
  EXPECT_EQ(front.evaluations[1].bound, 2.0);
  EXPECT_EQ(front.evaluations[2].bound, 14.0);
}

TEST(Sweep, FrontAgreesWithCoreParetoFront) {
  const ParetoFront front = sweep(
      gen::motivating_example(),
      energy_sweep({1.0, 1.25, 1.5, 1.75, 2.0, 3.0, 4.0, 7.0, 14.0}, 1));
  // Re-filter every solved evaluation's achieved point through the core
  // routine: the sweep's selection must match it value for value.
  std::vector<core::ParetoPoint> points;
  for (const SweepEvaluation& evaluation : front.evaluations) {
    if (!evaluation.result.solved()) continue;
    core::ParetoPoint point;
    point.period = evaluation.result.metrics.max_weighted_period;
    point.latency = evaluation.result.metrics.max_weighted_latency;
    point.energy = evaluation.result.metrics.energy;
    points.push_back(point);
  }
  const std::vector<core::ParetoPoint> expected =
      core::pareto_front(points, front.use_latency);
  const std::vector<core::ParetoPoint> got = front.front_points();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].period, expected[i].period);
    EXPECT_EQ(got[i].energy, expected[i].energy);
  }
  EXPECT_TRUE(front.monotone());
}

TEST(Sweep, RefinementBisectsWhereTheFrontHasStructure) {
  const ParetoFront coarse =
      sweep(gen::motivating_example(), energy_sweep({1.0, 14.0}));
  const ParetoFront refined =
      sweep(gen::motivating_example(), energy_sweep({1.0, 14.0}, 3));
  EXPECT_EQ(coarse.evaluations.size(), 2u);
  EXPECT_GT(refined.evaluations.size(), coarse.evaluations.size());
  EXPECT_GE(refined.front.size(), coarse.front.size());
  // Refinement only ever inserts between existing bounds.
  for (const SweepEvaluation& evaluation : refined.evaluations) {
    EXPECT_GE(evaluation.bound, 1.0);
    EXPECT_LE(evaluation.bound, 14.0);
  }
}

TEST(Sweep, InfeasibleBoundsAreCountedAndExcluded) {
  const ParetoFront front = sweep(gen::motivating_example(),
                                  energy_sweep({1e-4, 2.0, 14.0}));
  EXPECT_EQ(front.infeasible_points, 1u);
  EXPECT_EQ(front.front.size(), 2u);
  EXPECT_EQ(front.evaluations.size(), 3u);
  EXPECT_FALSE(front.cancelled);
}

TEST(Sweep, LatencyInThePairEnablesThreeDimensionalDominance) {
  SweepRequest request = energy_sweep({5.0, 20.0});
  request.swept = Objective::Latency;
  const ParetoFront front = sweep(gen::motivating_example(), request);
  EXPECT_TRUE(front.error.empty());
  EXPECT_TRUE(front.use_latency);
  EXPECT_TRUE(front.monotone());  // vacuously: 3-D fronts skip the 2-D check
}

TEST(Sweep, PrefiredTokenCancelsEveryGridPoint) {
  util::CancelSource source;
  source.request_cancel();
  SweepRequest request = energy_sweep({1.0, 2.0, 14.0});
  request.base.cancel = source.token();
  const ParetoFront front = sweep(gen::motivating_example(), request);
  EXPECT_TRUE(front.cancelled);
  EXPECT_EQ(front.cancelled_points, 3u);
  EXPECT_TRUE(front.front.empty());
  EXPECT_EQ(front.evaluations.size(), 3u);  // every bound still reported
}

TEST(Sweep, DeadlineIsArmedOnceForTheWholeSweep) {
  // An already-expired deadline: every grid point observes the same
  // sweep-wide token (a per-point window would grant each solve a fresh
  // 0ms clock too, but the distinction that matters here is that the
  // deadline cancels typed results instead of hanging or throwing).
  SweepRequest request = energy_sweep({1.0, 2.0, 14.0});
  request.base.deadline_ms = 0;
  const ParetoFront front = sweep(gen::motivating_example(), request);
  EXPECT_TRUE(front.cancelled);
  EXPECT_EQ(front.cancelled_points, 3u);
  EXPECT_TRUE(front.front.empty());
}

TEST(Sweep, RefinementCutShortByTheTokenIsReportedCancelled) {
  // The token fires after the initial grid completes but before the
  // requested refinement rounds run: every evaluated point finished
  // cleanly, yet the front is not the converged one — the sweep must say
  // so instead of reporting "complete".
  util::CancelSource source;
  SweepRequest request = energy_sweep({1.0, 14.0}, /*refine=*/2);
  request.base.cancel = source.token();
  const core::Problem problem = gen::motivating_example();
  std::size_t rounds = 0;
  const ParetoFront front = detail::run_sweep(
      default_registry(), problem, request,
      [&](const SolvePlan& plan, std::vector<SolveRequest> requests) {
        ++rounds;
        std::vector<SolveResult> results;
        for (const SolveRequest& point : requests) {
          results.push_back(plan.execute_for(point));
        }
        source.request_cancel();  // fire once this round's results are in
        return results;
      });
  EXPECT_EQ(rounds, 1u);                  // refinement never ran
  EXPECT_EQ(front.cancelled_points, 0u);  // no evaluated point was lost
  EXPECT_TRUE(front.cancelled);           // ... but the sweep was cut short
  EXPECT_EQ(front.evaluations.size(), 2u);
  EXPECT_EQ(front.front.size(), 2u);      // the honest prefix still returns
}

TEST(Sweep, PlanReusedWarmStartedSweepIsBitIdenticalToColdPerPointSolves) {
  // The acceptance anchor for the PR's redundant-work elimination: a sweep
  // now binds ONE SolvePlan and warm-starts refinement points, and must
  // still produce exactly what the old driver did — one cold
  // registry.solve per grid point, no shared plan, no warm_start. Checked
  // over the Table 1/2 grid and the §2 example, for the default
  // energy-under-period pair, a latency pair (3-D dominance) and the
  // bind-heavy Stretch weight policy: every evaluation's wall-less wire
  // bytes, the front indices, and the witness mappings.
  std::vector<core::Problem> problems = table_grid(2);
  problems.push_back(gen::motivating_example());

  std::vector<SweepRequest> requests;
  requests.push_back(energy_sweep({1.0, 2.0, 4.0, 100.0}, /*refine=*/2));
  {
    SweepRequest latency = energy_sweep({5.0, 20.0, 100.0}, /*refine=*/1);
    latency.swept = Objective::Latency;
    requests.push_back(latency);
    SweepRequest stretch = energy_sweep({2.0, 8.0, 100.0}, /*refine=*/1);
    stretch.base.weights = core::WeightPolicy::Stretch;
    stretch.base.objective = Objective::Period;
    stretch.swept = Objective::Energy;
    requests.push_back(stretch);
  }

  const SolverRegistry& registry = default_registry();
  for (const core::Problem& problem : problems) {
    for (const SweepRequest& request : requests) {
      const ParetoFront front = sweep(registry, problem, request);
      ASSERT_TRUE(front.error.empty());
      for (const SweepEvaluation& evaluation : front.evaluations) {
        // The cold reference: the exact per-point request the old driver
        // issued — swept bound filled in, no warm_start, its own plan.
        const SolveRequest cold = detail::sweep_point_request(
            problem, request, evaluation.bound, request.base.cancel);
        EXPECT_EQ(comparable(evaluation.result),
                  comparable(registry.solve(problem, cold)))
            << "sweep diverged from cold per-point solve at bound "
            << evaluation.bound;
      }
      // Front selection is a pure function of the evaluations, but assert
      // the witness side too: every front point carries its mapping.
      for (const std::size_t index : front.front) {
        EXPECT_TRUE(front.evaluations[index].result.mapping.has_value());
      }
    }
  }
}

TEST(Sweep, RefinementPointsCarryWarmStartSeedsFromTheTighterNeighbour) {
  // The driver seeds every refinement midpoint with the value achieved at
  // the nearest tighter solved bound; the initial grid runs cold (seeds
  // resolve against completed rounds only, so sequential and pooled
  // sweeps issue identical requests).
  const core::Problem problem = gen::motivating_example();
  const SweepRequest request = energy_sweep({1.0, 14.0}, /*refine=*/2);

  struct Captured {
    std::size_t round;
    double bound;
    std::optional<double> warm_start;
    double value = 0.0;
    bool solved = false;
  };
  std::vector<Captured> captured;
  std::size_t round = 0;
  const ParetoFront front = detail::run_sweep(
      default_registry(), problem, request,
      [&](const SolvePlan& plan, std::vector<SolveRequest> requests) {
        std::vector<SolveResult> results;
        for (const SolveRequest& point : requests) {
          EXPECT_TRUE(point.constraints.period.has_value());
          const double bound =
              point.constraints.period ? point.constraints.period->bound(0) : -1.0;
          results.push_back(plan.execute_for(point));
          captured.push_back(Captured{round, bound, point.warm_start,
                                      results.back().value,
                                      results.back().solved()});
        }
        ++round;
        return results;
      });
  ASSERT_TRUE(front.error.empty());
  ASSERT_GT(round, 1u) << "refinement never ran";

  for (const Captured& point : captured) {
    if (point.round == 0) {
      EXPECT_FALSE(point.warm_start.has_value())
          << "initial grid points must run cold (bound " << point.bound << ")";
      continue;
    }
    // The seed must be the value achieved at the nearest tighter (smaller)
    // solved bound among the points of *earlier* rounds — requests for one
    // round are built before any of them runs, so same-round siblings
    // never feed each other (the property that keeps sequential and
    // pooled sweeps issuing identical requests).
    ASSERT_TRUE(point.warm_start.has_value())
        << "refinement point at bound " << point.bound << " ran unseeded";
    double best_bound = -1.0;
    double expected = 0.0;
    for (const Captured& earlier : captured) {
      if (earlier.round < point.round && earlier.solved &&
          earlier.bound < point.bound && earlier.bound > best_bound) {
        best_bound = earlier.bound;
        expected = earlier.value;
      }
    }
    ASSERT_GE(best_bound, 0.0);
    EXPECT_EQ(*point.warm_start, expected);
    // And achievability (the warm_start contract): the seed never lies
    // below the value actually achieved at this point.
    if (point.solved) {
      EXPECT_GE(*point.warm_start, point.value);
    }
  }
}

TEST(Sweep, CacheEnabledExecutorSweepIsBitIdenticalToSequentialSweep) {
  // A cache-enabled executor replays the same sweep twice: the second run
  // is served from the cache point by point and must still match the
  // (uncached) sequential sweep wall-lessly — and byte-for-byte match its
  // own first run, stored wall times included.
  const core::Problem problem = gen::motivating_example();
  const SweepRequest request = energy_sweep({1.0, 2.0, 14.0}, /*refine=*/1);
  const ParetoFront sequential = sweep(problem, request);

  Executor executor(ExecutorOptions{.jobs = 2, .cache_entries = 64});
  const ParetoFront first = executor.sweep(problem, request);
  const ParetoFront replay = executor.sweep(problem, request);
  ASSERT_NE(executor.cache(), nullptr);
  EXPECT_GT(executor.cache()->hits(), 0u);

  ASSERT_EQ(first.evaluations.size(), sequential.evaluations.size());
  ASSERT_EQ(replay.evaluations.size(), sequential.evaluations.size());
  for (std::size_t i = 0; i < sequential.evaluations.size(); ++i) {
    EXPECT_EQ(comparable(first.evaluations[i].result),
              comparable(sequential.evaluations[i].result));
    // The replay returns the stored results verbatim.
    EXPECT_EQ(io::format_result(replay.evaluations[i].result, "", true),
              io::format_result(first.evaluations[i].result, "", true));
  }
  EXPECT_EQ(first.front, sequential.front);
  EXPECT_EQ(replay.front, sequential.front);
}

TEST(Sweep, ExecutorSweepIsBitIdenticalToSequentialSweep) {
  const core::Problem problem = gen::motivating_example();
  const SweepRequest request =
      energy_sweep({1.0, 1.5, 2.0, 3.0, 7.0, 14.0}, 2);
  const ParetoFront sequential = sweep(problem, request);
  Executor executor(ExecutorOptions{2});
  const ParetoFront pooled = executor.sweep(problem, request);
  ASSERT_EQ(pooled.evaluations.size(), sequential.evaluations.size());
  for (std::size_t i = 0; i < pooled.evaluations.size(); ++i) {
    EXPECT_EQ(pooled.evaluations[i].bound, sequential.evaluations[i].bound);
    EXPECT_EQ(comparable(pooled.evaluations[i].result),
              comparable(sequential.evaluations[i].result))
        << "pool and sequential sweeps diverged at bound "
        << pooled.evaluations[i].bound;
  }
  EXPECT_EQ(pooled.front, sequential.front);
  EXPECT_EQ(pooled.cancelled, sequential.cancelled);
  EXPECT_EQ(pooled.infeasible_points, sequential.infeasible_points);
}

}  // namespace
}  // namespace pipeopt::api
