#include "io/problem_io.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::io {
namespace {

const char* kExampleText = R"(
# the paper's §2 example
comm overlap
alpha 2
bandwidth 1
processor P1 static=0 speeds=3,6
processor P2 static=0 speeds=6,8
processor P3 static=0 speeds=1,6
app App1 weight=1 input=1 stages=3:3,2:2,1:0
app App2 weight=1 input=0 stages=2:2,6:1,4:1,2:1
)";

TEST(ProblemIo, ParsesTheExample) {
  const core::Problem p = parse_problem_string(kExampleText);
  EXPECT_EQ(p.application_count(), 2u);
  EXPECT_EQ(p.platform().processor_count(), 3u);
  EXPECT_EQ(p.comm_model(), core::CommModel::Overlap);
  EXPECT_DOUBLE_EQ(p.platform().alpha(), 2.0);
  EXPECT_DOUBLE_EQ(p.platform().uniform_bandwidth(), 1.0);
  EXPECT_EQ(p.application(0).name(), "App1");
  EXPECT_DOUBLE_EQ(p.application(0).compute(0), 3.0);
  EXPECT_DOUBLE_EQ(p.application(0).boundary_size(1), 3.0);
  EXPECT_DOUBLE_EQ(p.application(1).boundary_size(0), 0.0);
  EXPECT_EQ(p.platform().processor(1).speeds(), (std::vector<double>{6.0, 8.0}));
}

TEST(ProblemIo, ParsedInstanceMatchesBuiltIn) {
  // Evaluating the same mapping on the parsed and the built-in instance
  // must agree exactly.
  const core::Problem parsed = parse_problem_string(kExampleText);
  const core::Problem builtin = gen::motivating_example();
  const core::Mapping mapping(
      {{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  const auto a = core::evaluate(parsed, mapping);
  const auto b = core::evaluate(builtin, mapping);
  EXPECT_DOUBLE_EQ(a.max_weighted_period, b.max_weighted_period);
  EXPECT_DOUBLE_EQ(a.max_weighted_latency, b.max_weighted_latency);
  EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(ProblemIo, RoundTripThroughFormat) {
  const core::Problem original = gen::motivating_example();
  const std::string text = format_problem(original);
  const core::Problem reparsed = parse_problem_string(text);
  ASSERT_EQ(reparsed.application_count(), original.application_count());
  for (std::size_t a = 0; a < original.application_count(); ++a) {
    ASSERT_EQ(reparsed.application(a).stage_count(),
              original.application(a).stage_count());
    for (std::size_t k = 0; k < original.application(a).stage_count(); ++k) {
      EXPECT_DOUBLE_EQ(reparsed.application(a).compute(k),
                       original.application(a).compute(k));
      EXPECT_DOUBLE_EQ(reparsed.application(a).boundary_size(k + 1),
                       original.application(a).boundary_size(k + 1));
    }
  }
  for (std::size_t u = 0; u < original.platform().processor_count(); ++u) {
    EXPECT_EQ(reparsed.platform().processor(u).speeds(),
              original.platform().processor(u).speeds());
  }
}

TEST(ProblemIo, NoOverlapAndAlphaParsed) {
  const core::Problem p = parse_problem_string(R"(
comm no-overlap
alpha 3
bandwidth 2
processor P static=1 speeds=4
app A weight=2 input=0 stages=1:0
)");
  EXPECT_EQ(p.comm_model(), core::CommModel::NoOverlap);
  EXPECT_DOUBLE_EQ(p.platform().alpha(), 3.0);
  EXPECT_DOUBLE_EQ(p.platform().processor(0).static_energy(), 1.0);
  EXPECT_DOUBLE_EQ(p.application(0).weight(), 2.0);
}

TEST(ProblemIo, ErrorsNameTheLine) {
  const auto expect_error = [](const std::string& text,
                               const std::string& fragment) {
    try {
      (void)parse_problem_string(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expect_error("frobnicate 3\n", "unknown directive");
  expect_error("comm sideways\n", "comm must be");
  expect_error("bandwidth x\n", "bad number");
  expect_error("processor P static=0 speeds=\n", "empty list");
  expect_error("processor P speeds=1\n", "missing static=");
  expect_error("app A weight=1 input=0 stages=3;2\n", "w:delta");
  // Structural errors reported at end of input.
  expect_error("bandwidth 1\napp A weight=1 input=0 stages=1:0\n",
               "no processors");
  expect_error("bandwidth 1\nprocessor P static=0 speeds=1\n",
               "no applications");
  expect_error("processor P static=0 speeds=1\n"
               "app A weight=1 input=0 stages=1:0\n",
               "bandwidth not declared");
}

TEST(ProblemIo, DomainValidationPropagates) {
  // Negative speed caught by the Processor constructor, reported per line.
  try {
    (void)parse_problem_string("processor P static=0 speeds=-1\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(ProblemIo, HeterogeneousLinksRoundTripThroughText) {
  // Fully heterogeneous platforms travel as link/input/output rows (the
  // wire-format extension); format -> parse preserves every bandwidth.
  std::vector<core::Processor> procs;
  procs.emplace_back(std::vector<double>{1.0});
  procs.emplace_back(std::vector<double>{2.0});
  std::vector<std::vector<double>> links{{1.0, 2.5}, {2.5, 1.0}};
  std::vector<std::vector<double>> in_table{{1.0, 4.0}};
  std::vector<std::vector<double>> out_table{{0.5, 3.0}};
  core::Platform het(std::move(procs), links, in_table, out_table);
  std::vector<core::Application> apps;
  apps.push_back(core::Application(0.0, {core::StageSpec{1.0, 0.0}}));
  const core::Problem p(std::move(apps), std::move(het));

  const core::Problem back = parse_problem_string(format_problem(p));
  EXPECT_EQ(back.platform().classify(), core::PlatformClass::FullyHeterogeneous);
  EXPECT_EQ(back.platform().bandwidth(0, 1), 2.5);
  EXPECT_EQ(back.platform().in_bandwidth(0, 1), 4.0);
  EXPECT_EQ(back.platform().out_bandwidth(0, 0), 0.5);
  EXPECT_EQ(format_problem(back), format_problem(p));
}

TEST(ProblemIo, HeterogeneousRowsMustBeComplete) {
  // A het instance with a missing or conflicting row is rejected with a
  // line-numbered error, like every other malformed directive.
  const std::string base =
      "comm overlap\n"
      "processor P static=0 speeds=1\nprocessor Q static=0 speeds=1\n"
      "app A weight=1 input=0 stages=1:0\n";
  EXPECT_THROW((void)parse_problem_string(base + "link 0 1,1\ninput 0 1,1\n"),
               ParseError);  // missing link row 1 and output row 0
  EXPECT_THROW((void)parse_problem_string(base + "bandwidth 1\nlink 0 1,1\n"),
               ParseError);  // uniform and per-link styles are exclusive
  EXPECT_THROW(
      (void)parse_problem_string(base + "link 0 1,1\nlink 0 1,1\nlink 1 1,1\n" +
                                 "input 0 1,1\noutput 0 1,1\n"),
      ParseError);  // duplicate row
  EXPECT_THROW(
      (void)parse_problem_string(base + "link 0 1\nlink 1 1,1\n" +
                                 "input 0 1,1\noutput 0 1,1\n"),
      ParseError);  // short row
  EXPECT_THROW(
      (void)parse_problem_string(base + "link 0 1,1\nlink 7 1,1\n" +
                                 "input 0 1,1\noutput 0 1,1\n"),
      ParseError);  // index out of range
}

TEST(ProblemIo, MissingFileReported) {
  EXPECT_THROW((void)load_problem("/nonexistent/path/problem.txt"),
               std::runtime_error);
}

TEST(ProblemIo, RandomProblemsRoundTripThroughText) {
  // Property: any comm-homogeneous random problem survives
  // format -> parse -> format identically (the second format string is the
  // fixed point, sidestepping double-printing precision).
  util::Rng rng(2718);
  for (int iter = 0; iter < 25; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(3);
    shape.processors = 2 + rng.index(5);
    shape.platform.modes = 1 + rng.index(3);
    shape.app.weighted = rng.chance(0.5);
    shape.platform_class = rng.chance(0.5)
                               ? core::PlatformClass::FullyHomogeneous
                               : core::PlatformClass::CommHomogeneous;
    shape.comm = rng.chance(0.5) ? core::CommModel::Overlap
                                 : core::CommModel::NoOverlap;
    const auto original = gen::random_problem(rng, shape);
    const std::string once = format_problem(original);
    const auto reparsed = parse_problem_string(once);
    const std::string twice = format_problem(reparsed);
    EXPECT_EQ(once, twice) << "iteration " << iter;
    EXPECT_EQ(reparsed.comm_model(), original.comm_model());
    EXPECT_EQ(reparsed.total_stages(), original.total_stages());
  }
}

}  // namespace
}  // namespace pipeopt::io
