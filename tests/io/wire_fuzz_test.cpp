/// \file wire_fuzz_test.cpp
/// Seeded robustness fuzz over the wire protocol (io/request_io,
/// io/result_io): shuffled field orders, duplicated fields, unknown keys,
/// truncated lines and random byte mutations must either round-trip to the
/// canonical bytes or surface as a typed io::ParseError — never crash, never
/// throw anything else. Runs under the `fuzz` ctest label and in the
/// ASan/UBSan CI pass.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "api/request.hpp"
#include "gen/motivating_example.hpp"
#include "io/json.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "util/random.hpp"

namespace pipeopt::io {
namespace {

/// A request line with most optional fields present, so the fuzz reaches
/// the numeric, list and enum parsing paths; shape varies with the seed.
std::string canonical_request_line(std::uint64_t seed) {
  const core::Problem problem = gen::motivating_example();
  api::SolveRequest request;
  request.objective = std::array{api::Objective::Period,
                                 api::Objective::Latency,
                                 api::Objective::Energy}[seed % 3];
  if (seed % 2 == 0) request.kind = api::MappingKind::OneToOne;
  if (seed % 3 != 0) {
    request.constraints.period = core::Thresholds::per_app(
        std::vector<double>(problem.application_count(), 9.5));
  }
  if (seed % 4 == 0) request.constraints.energy_budget = 123.25;
  request.node_budget = 1000 + seed;
  request.seed = seed;
  return format_solve_request(problem, request, std::to_string(seed));
}

/// A result line covering mapping, metrics and diagnostics serialization.
std::string canonical_result_line(std::uint64_t seed) {
  const core::Problem problem = gen::motivating_example();
  api::SolveRequest request;
  if (seed % 2 == 0) request.objective = api::Objective::Energy;
  const api::SolveResult result = api::solve(problem, request);
  return format_result(result, std::to_string(seed), /*include_wall=*/false);
}

/// Parses with the given line parser; returns true on success, false on a
/// typed ParseError. Anything else escapes and fails the test — that is
/// the property under fuzz.
template <typename Parser>
bool parses(Parser&& parser, const std::string& line) {
  try {
    (void)parser(line);
    return true;
  } catch (const ParseError&) {
    return false;
  }
}

const auto parse_request = [](const std::string& line) {
  return parse_solve_request_line(line);
};
const auto parse_result_l = [](const std::string& line) {
  return parse_result_line(line);
};

/// Re-serializes parsed fields in the given order.
std::string rebuild_line(const JsonFields& fields) {
  FlatJsonWriter writer;
  for (const auto& [key, value] : fields) writer.field(key, value);
  return std::move(writer).str();
}

void shuffle_fields(JsonFields& fields, util::Rng& rng) {
  for (std::size_t i = fields.size(); i > 1; --i) {
    std::swap(fields[i - 1], fields[rng.index(i)]);
  }
}

/// Result-line shuffle: permutes field positions but keeps the relative
/// order of `diag.` entries. Diagnostics are an ordered list on the wire
/// (result_io.hpp — the heuristic ladder's rung sequence is meaningful), so
/// their sequence is part of the decoded result, not presentation.
void shuffle_result_fields(JsonFields& fields, util::Rng& rng) {
  std::vector<std::pair<std::string, std::string>> diag;
  for (const auto& field : fields) {
    if (field.first.rfind("diag.", 0) == 0) diag.push_back(field);
  }
  shuffle_fields(fields, rng);
  std::size_t next = 0;
  for (auto& field : fields) {
    if (field.first.rfind("diag.", 0) == 0) field = diag[next++];
  }
}

class WireFuzz : public ::testing::TestWithParam<int> {
 protected:
  std::uint64_t seed() const {
    return static_cast<std::uint64_t>(GetParam());
  }
};

TEST_P(WireFuzz, TruncatedRequestLinesNeverCrash) {
  const std::string line = canonical_request_line(seed());
  // Every prefix short of the full line is malformed for this line shape
  // (the instance field comes last), so each must throw a typed ParseError.
  for (std::size_t len = 0; len < line.size(); ++len) {
    EXPECT_FALSE(parses(parse_request, line.substr(0, len))) << len;
  }
  EXPECT_TRUE(parses(parse_request, line));
}

TEST_P(WireFuzz, TruncatedResultLinesNeverCrash) {
  const std::string line = canonical_result_line(seed());
  for (std::size_t len = 0; len < line.size(); ++len) {
    (void)parses(parse_result_l, line.substr(0, len));  // must not crash
  }
  EXPECT_TRUE(parses(parse_result_l, line));
}

TEST_P(WireFuzz, ShuffledRequestFieldsRoundTripByteStable) {
  const std::string line = canonical_request_line(seed());
  const WireSolveRequest reference = parse_solve_request_line(line);

  JsonFields fields = parse_flat_json(line);
  util::Rng rng(seed() * 40493 + 5);
  for (int round = 0; round < 8; ++round) {
    shuffle_fields(fields, rng);
    const WireSolveRequest reparsed =
        parse_solve_request_line(rebuild_line(fields));
    // Field order is presentation, not identity: the canonical bytes and
    // the cache key must come out identical.
    EXPECT_EQ(format_solve_request(reparsed.problem, reparsed.request,
                                   reparsed.id),
              line);
    EXPECT_EQ(format_solve_key(reparsed.problem, reparsed.request),
              format_solve_key(reference.problem, reference.request));
  }
}

TEST_P(WireFuzz, ShuffledResultFieldsRoundTripByteStable) {
  const std::string line = canonical_result_line(seed());
  JsonFields fields = parse_flat_json(line);
  util::Rng rng(seed() * 48017 + 11);
  for (int round = 0; round < 8; ++round) {
    shuffle_result_fields(fields, rng);
    const WireResult reparsed = parse_result_line(rebuild_line(fields));
    EXPECT_EQ(format_result(reparsed.result, reparsed.id,
                            /*include_wall=*/false),
              line);
  }
}

TEST_P(WireFuzz, UnknownFieldsAreTypedErrors) {
  util::Rng rng(seed() * 52361 + 17);
  const std::string junk_keys[] = {"bogus", "x-extension", "objective2",
                                   "PROBLEM", "solver_hint"};
  const std::string& key = junk_keys[rng.index(5)];

  JsonFields request_fields = parse_flat_json(canonical_request_line(seed()));
  request_fields.insert(
      request_fields.begin() +
          static_cast<std::ptrdiff_t>(rng.index(request_fields.size() + 1)),
      {key, "1"});
  EXPECT_FALSE(parses(parse_request, rebuild_line(request_fields)));

  JsonFields result_fields = parse_flat_json(canonical_result_line(seed()));
  result_fields.insert(
      result_fields.begin() +
          static_cast<std::ptrdiff_t>(rng.index(result_fields.size() + 1)),
      {key, "1"});
  EXPECT_FALSE(parses(parse_result_l, rebuild_line(result_fields)));
}

TEST_P(WireFuzz, DuplicatedFieldsParseDeterministicallyOrThrow) {
  const std::string line = canonical_request_line(seed());
  util::Rng rng(seed() * 69491 + 23);
  const JsonFields fields = parse_flat_json(line);
  for (int round = 0; round < 4; ++round) {
    JsonFields mutated = fields;
    const std::size_t i = rng.index(mutated.size());
    // Duplicate a random field verbatim somewhere after the original.
    mutated.insert(
        mutated.begin() + static_cast<std::ptrdiff_t>(
                              i + 1 + rng.index(mutated.size() - i)),
        mutated[i]);
    const std::string rebuilt = rebuild_line(mutated);
    if (!parses(parse_request, rebuilt)) continue;  // typed rejection is fine
    // Accepted duplicates must not change the decoded request: the
    // canonical bytes still match the original line.
    const WireSolveRequest reparsed = parse_solve_request_line(rebuilt);
    EXPECT_EQ(format_solve_request(reparsed.problem, reparsed.request,
                                   reparsed.id),
              line);
  }
}

TEST_P(WireFuzz, RandomByteMutationsNeverCrash) {
  util::Rng rng(seed() * 75979 + 29);
  const std::string request_line = canonical_request_line(seed());
  const std::string result_line = canonical_result_line(seed());
  // Printable noise plus structure characters the parser cares about.
  const std::string alphabet = "{}[]\",:\\x0 \t7e.-+infa";
  for (int round = 0; round < 200; ++round) {
    std::string mutated = round % 2 == 0 ? request_line : result_line;
    const std::size_t edits = 1 + rng.index(4);
    for (std::size_t e = 0; e < edits; ++e) {
      mutated[rng.index(mutated.size())] =
          alphabet[rng.index(alphabet.size())];
    }
    if (round % 2 == 0) {
      (void)parses(parse_request, mutated);
    } else {
      (void)parses(parse_result_l, mutated);
    }
  }
}

TEST_P(WireFuzz, GarbageLinesAreTypedErrors) {
  util::Rng rng(seed() * 104729 + 31);
  for (int round = 0; round < 50; ++round) {
    std::string garbage;
    const std::size_t length = rng.index(120);
    for (std::size_t i = 0; i < length; ++i) {
      garbage.push_back(static_cast<char>(32 + rng.index(95)));
    }
    EXPECT_FALSE(parses(parse_request, garbage)) << garbage;
    EXPECT_FALSE(parses(parse_result_l, garbage)) << garbage;
    EXPECT_FALSE(parses(
        [](const std::string& l) { return parse_pareto_request_line(l); },
        garbage))
        << garbage;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WireFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace pipeopt::io
