/// JSONL batch manifest parsing: path and inline entries, escapes, and the
/// typed ParseError contract with line numbers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "io/problem_io.hpp"

namespace pipeopt::io {
namespace {

constexpr const char* kInstanceText =
    "comm overlap\n"
    "bandwidth 1\n"
    "processor P1 static=0 speeds=2\n"
    "processor P2 static=0 speeds=3\n"
    "processor P3 static=0 speeds=1\n"
    "app A weight=1 input=0 stages=2:1,3:0\n";

TEST(BatchIo, ParsesInlineProblems) {
  std::istringstream in(
      "{\"problem\": \"comm overlap\\nbandwidth 1\\n"
      "processor P1 static=0 speeds=2\\nprocessor P2 static=0 speeds=1\\n"
      "app A weight=1 input=0 stages=2:0\\n\"}\n"
      "\n"  // blank lines are skipped
      "{\"problem\": \"comm no-overlap\\nbandwidth 2\\n"
      "processor P1 static=0 speeds=2\\nprocessor P2 static=0 speeds=1\\n"
      "app B weight=1 input=0 stages=4:0,1:0\\n\"}\n");
  const auto problems = parse_batch_jsonl(in);
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_EQ(problems[0].application_count(), 1u);
  EXPECT_EQ(problems[0].comm_model(), core::CommModel::Overlap);
  EXPECT_EQ(problems[1].comm_model(), core::CommModel::NoOverlap);
  EXPECT_EQ(problems[1].application(0).stage_count(), 2u);
}

TEST(BatchIo, ResolvesRelativePathsAgainstBaseDir) {
  const std::string dir = ::testing::TempDir() + "pipeopt_batch_io";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  {
    std::ofstream instance(dir + "/inst.txt");
    instance << kInstanceText;
  }
  {
    std::ofstream manifest(dir + "/batch.jsonl");
    manifest << "{\"path\": \"inst.txt\"}\n";
    manifest << "{\"path\": \"" << dir << "/inst.txt\"}\n";  // absolute too
  }
  const auto problems = load_batch(dir + "/batch.jsonl");
  ASSERT_EQ(problems.size(), 2u);
  EXPECT_EQ(problems[0].total_stages(), 2u);
  EXPECT_EQ(problems[1].total_stages(), 2u);
}

TEST(BatchIo, SupportsStandardEscapes) {
  std::istringstream in(
      "{\"problem\": \"comm overlap\\nbandwidth 1\\n"
      "processor \\u0050X static=0 speeds=1\\n"
      "app \\\"Q\\\" weight=1 input=0 stages=1:0\\n\"}\n");
  const auto problems = parse_batch_jsonl(in);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_EQ(problems[0].platform().processor(0).name(), "PX");
}

TEST(BatchIo, RejectsMalformedLinesWithLineNumbers) {
  const auto line_of = [](const std::string& text) -> std::string {
    std::istringstream in(text);
    try {
      (void)parse_batch_jsonl(in);
    } catch (const ParseError& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(line_of("not json\n"), "");
  EXPECT_NE(line_of("{\"path\": \"a\", \"problem\": \"b\"}\n"), "");
  EXPECT_NE(line_of("{}\n"), "");
  EXPECT_NE(line_of("{\"unknown\": \"x\"}\n"), "");
  EXPECT_NE(line_of("{\"path\": \"x\"} trailing\n"), "");
  EXPECT_NE(line_of("{\"problem\": \"bad instance\"}\n"), "");
  // Malformed \u payloads must be a ParseError too, not a stray
  // std::invalid_argument escaping the documented contract.
  EXPECT_NE(line_of("{\"problem\": \"\\uQQQQ\"}\n"), "");
  EXPECT_NE(line_of("{\"problem\": \"\\u00e9\"}\n"), "");  // non-ASCII
  EXPECT_NE(line_of("{\"problem\": \"\\u12\"}\n"), "");    // truncated
  // The error names the offending line.
  EXPECT_NE(line_of("{\"problem\": \"comm overlap\\nbandwidth 1\\n"
                    "processor P static=0 speeds=1\\n"
                    "app A weight=1 input=0 stages=1:0\\n\"}\n"
                    "garbage\n")
                .find("line 2"),
            std::string::npos);
}

TEST(BatchIo, LoadBatchThrowsOnMissingFile) {
  EXPECT_THROW((void)load_batch("/nonexistent/batch.jsonl"),
               std::runtime_error);
}

}  // namespace
}  // namespace pipeopt::io
