/// Wire-format property tests for the request side: every objective ×
/// mapping kind × weight policy × constraint shape round-trips through
/// `format_solve_request` / `parse_solve_request_line` bit for bit, for
/// instances of every platform class (the heterogeneous text extension);
/// malformed input throws ParseError instead of crashing.

#include "io/request_io.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "io/problem_io.hpp"
#include "util/random.hpp"

namespace pipeopt::io {
namespace {

/// Field-by-field request equality (the cancel token does not travel).
void expect_same_request(const api::SolveRequest& a, const api::SolveRequest& b) {
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.weights, b.weights);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.node_budget, b.node_budget);
  EXPECT_EQ(a.time_budget_seconds, b.time_budget_seconds);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.deadline_ms, b.deadline_ms);
  EXPECT_EQ(a.warm_start, b.warm_start);
  EXPECT_EQ(a.constraints.energy_budget, b.constraints.energy_budget);
  ASSERT_EQ(a.constraints.period.has_value(), b.constraints.period.has_value());
  if (a.constraints.period) {
    ASSERT_EQ(a.constraints.period->size(), b.constraints.period->size());
    for (std::size_t i = 0; i < a.constraints.period->size(); ++i) {
      EXPECT_EQ(a.constraints.period->bound(i), b.constraints.period->bound(i));
    }
  }
  ASSERT_EQ(a.constraints.latency.has_value(), b.constraints.latency.has_value());
  if (a.constraints.latency) {
    ASSERT_EQ(a.constraints.latency->size(), b.constraints.latency->size());
    for (std::size_t i = 0; i < a.constraints.latency->size(); ++i) {
      EXPECT_EQ(a.constraints.latency->bound(i), b.constraints.latency->bound(i));
    }
  }
}

/// Bit-exact problem equality via the (lossless) text serialization.
void expect_same_problem(const core::Problem& a, const core::Problem& b) {
  EXPECT_EQ(format_problem(a), format_problem(b));
}

TEST(RequestIo, RoundTripsEveryObjectiveKindAndWeightPolicy) {
  const core::Problem problem = gen::motivating_example();
  for (const api::Objective objective :
       {api::Objective::Period, api::Objective::Latency, api::Objective::Energy}) {
    for (const api::MappingKind kind :
         {api::MappingKind::Interval, api::MappingKind::OneToOne}) {
      for (const core::WeightPolicy weights :
           {core::WeightPolicy::Unit, core::WeightPolicy::Priority,
            core::WeightPolicy::Stretch}) {
        api::SolveRequest request;
        request.objective = objective;
        request.kind = kind;
        request.weights = weights;
        const WireSolveRequest wire = parse_solve_request_line(
            format_solve_request(problem, request));
        expect_same_request(request, wire.request);
        expect_same_problem(problem, wire.problem);
        EXPECT_TRUE(wire.id.empty());
      }
    }
  }
}

TEST(RequestIo, RoundTripsEveryConstraintAndBudgetShape) {
  const core::Problem problem = gen::motivating_example();  // 2 applications
  std::vector<api::SolveRequest> shapes;
  {
    api::SolveRequest r;  // defaults only
    shapes.push_back(r);
    r.constraints.period = core::Thresholds::per_app({2.0, 0.125});
    shapes.push_back(r);
    r.constraints.latency = core::Thresholds::per_app({5.5, 1e-3});
    shapes.push_back(r);
    r.constraints.energy_budget = 17.25;
    shapes.push_back(r);
    r.solver = "branch-and-bound";
    r.node_budget = 123456789;
    shapes.push_back(r);
    r.time_budget_seconds = 0.1;
    r.seed = 7;
    r.deadline_ms = 250;
    shapes.push_back(r);
    // The warm-start hint travels too (and enters the canonical cache key).
    r.warm_start = 1.0 / 3.0;
    shapes.push_back(r);
    // Unconstrained entries are +inf and must survive the wire too.
    api::SolveRequest inf;
    inf.constraints.period = core::Thresholds::unconstrained(2);
    shapes.push_back(inf);
  }
  for (const api::SolveRequest& request : shapes) {
    const WireSolveRequest wire =
        parse_solve_request_line(format_solve_request(problem, request, "tag-9"));
    expect_same_request(request, wire.request);
    expect_same_problem(problem, wire.problem);
    EXPECT_EQ(wire.id, "tag-9");
  }
}

TEST(RequestIo, RoundTripsInstancesOfEveryPlatformClass) {
  // The server must carry the whole Tables 1/2 grid, so the text format's
  // heterogeneous extension (link/input/output rows) must be lossless too.
  util::Rng rng(20260728);
  for (const core::PlatformClass cls :
       {core::PlatformClass::FullyHomogeneous,
        core::PlatformClass::CommHomogeneous,
        core::PlatformClass::FullyHeterogeneous}) {
    for (int i = 0; i < 4; ++i) {
      gen::ProblemShape shape;
      shape.platform_class = cls;
      shape.applications = 2 + static_cast<std::size_t>(i % 2);
      shape.processors = 4;
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      const core::Problem problem = gen::random_problem(rng, shape);
      const WireSolveRequest wire = parse_solve_request_line(
          format_solve_request(problem, api::SolveRequest{}));
      expect_same_problem(problem, wire.problem);
      EXPECT_EQ(problem.platform().classify(), wire.problem.platform().classify());
    }
  }
}

TEST(RequestIo, SingleBoundReplicatesPerApplication) {
  const std::string line =
      R"({"type":"solve","period_bounds":"3.5","problem":")"
      R"(comm overlap\nbandwidth 1\nprocessor P static=0 speeds=1\n)"
      R"(processor Q static=0 speeds=1\napp A weight=1 input=0 stages=1:0\n)"
      R"(app B weight=1 input=0 stages=1:0\n"})";
  const WireSolveRequest wire = parse_solve_request_line(line);
  ASSERT_TRUE(wire.request.constraints.period.has_value());
  ASSERT_EQ(wire.request.constraints.period->size(), 2u);
  EXPECT_EQ(wire.request.constraints.period->bound(0), 3.5);
  EXPECT_EQ(wire.request.constraints.period->bound(1), 3.5);
}

TEST(RequestIo, MalformedInputThrowsParseError) {
  const core::Problem problem = gen::motivating_example();
  const std::string ok = format_solve_request(problem, api::SolveRequest{});
  const std::vector<std::string> bad = {
      "",                                         // not an object
      "solve",                                    // not JSON at all
      "{\"type\":\"solve\"}",                     // no instance
      "{\"type\":\"nonsense\",\"problem\":\"x\"}",  // wrong type tag
      "{\"type\":\"solve\",\"problem\":\"bandwidth\"}",  // bad instance text
      "{\"type\":\"solve\",\"objective\":\"speed\",\"problem\":\"x\"}",
      "{\"type\":\"solve\",\"nonsense\":\"1\",\"problem\":\"x\"}",
      "{\"type\":\"solve\",\"deadline_ms\":\"-5\",\"problem\":\"x\"}",
      "{\"type\":\"solve\",\"period_bounds\":\"1,2,3\",\"problem\":\"" +
          std::string("comm overlap\\nbandwidth 1\\nprocessor P static=0 ") +
          "speeds=1\\napp A weight=1 input=0 stages=1:0\\n\"}",  // arity
      ok + "trailing",                            // junk after the object
  };
  for (const std::string& line : bad) {
    EXPECT_THROW((void)parse_solve_request_line(line), ParseError)
        << "should reject: " << line;
  }
}

/// Field-by-field sweep-request equality on top of the solve-field check.
void expect_same_sweep(const api::SweepRequest& a, const api::SweepRequest& b) {
  expect_same_request(a.base, b.base);
  EXPECT_EQ(a.swept, b.swept);
  EXPECT_EQ(a.bounds, b.bounds);
  EXPECT_EQ(a.refine, b.refine);
}

TEST(RequestIo, ParetoRequestRoundTripsEveryShape) {
  const core::Problem problem = gen::motivating_example();
  std::vector<api::SweepRequest> shapes;
  {
    api::SweepRequest r;  // defaults: minimize energy, sweep period
    r.bounds = {1.0, 2.0, 14.0};
    shapes.push_back(r);
    r.refine = 3;
    r.base.solver = "exact-enumeration";
    r.base.seed = 11;
    shapes.push_back(r);
    api::SweepRequest latency;  // 3-D pair with a fixed latency threshold
    latency.base.objective = api::Objective::Period;
    latency.swept = api::Objective::Energy;
    latency.bounds = {10.0, 100.5};
    latency.base.constraints.latency = core::Thresholds::per_app({5.0, 6.0});
    latency.base.deadline_ms = 750;  // sweep-wide deadline travels too
    shapes.push_back(latency);
  }
  for (const api::SweepRequest& request : shapes) {
    const WireParetoRequest wire = parse_pareto_request_line(
        format_pareto_request(problem, request, "sweep-1"));
    expect_same_sweep(request, wire.request);
    expect_same_problem(problem, wire.problem);
    EXPECT_EQ(wire.id, "sweep-1");
  }
}

TEST(RequestIo, ParetoObjectiveDefaultsToEnergyOnTheWire) {
  const std::string instance =
      R"(comm overlap\nbandwidth 1\nprocessor P static=0 speeds=1\n)"
      R"(processor Q static=0 speeds=1\napp A weight=1 input=0 stages=1:0\n)";
  const WireParetoRequest defaulted = parse_pareto_request_line(
      R"({"type":"pareto","sweep_bounds":"1,2","problem":")" + instance + "\"}");
  EXPECT_EQ(defaulted.request.base.objective, api::Objective::Energy);
  EXPECT_EQ(defaulted.request.swept, api::Objective::Period);
  EXPECT_EQ(defaulted.request.bounds, (std::vector<double>{1.0, 2.0}));
  // An explicit objective still wins.
  const WireParetoRequest explicit_objective = parse_pareto_request_line(
      R"({"type":"pareto","sweep":"energy","objective":"period",)"
      R"("sweep_bounds":"9","problem":")" + instance + "\"}");
  EXPECT_EQ(explicit_objective.request.base.objective, api::Objective::Period);
  EXPECT_EQ(explicit_objective.request.swept, api::Objective::Energy);
}

TEST(RequestIo, MalformedParetoRequestsThrowParseError) {
  const std::string instance =
      R"(comm overlap\nbandwidth 1\nprocessor P static=0 speeds=1\n)"
      R"(app A weight=1 input=0 stages=1:0\n)";
  const std::vector<std::string> bad = {
      // No grid at all.
      R"({"type":"pareto","problem":")" + instance + "\"}",
      // Empty / malformed grids.
      R"({"type":"pareto","sweep_bounds":"","problem":")" + instance + "\"}",
      R"({"type":"pareto","sweep_bounds":"1,,2","problem":")" + instance + "\"}",
      // Bad swept criterion / unknown field / wrong type tag.
      R"({"type":"pareto","sweep":"speed","sweep_bounds":"1","problem":")" +
          instance + "\"}",
      R"({"type":"pareto","sweep_bounds":"1","grid":"x","problem":")" +
          instance + "\"}",
      R"({"type":"solve","sweep_bounds":"1","problem":")" + instance + "\"}",
      // No instance.
      R"({"type":"pareto","sweep_bounds":"1"})",
  };
  for (const std::string& line : bad) {
    EXPECT_THROW((void)parse_pareto_request_line(line), ParseError)
        << "should reject: " << line;
  }
}

TEST(RequestIo, PathFieldResolvesAgainstBaseDir) {
  // Written to a temp dir, loaded back through the relative-path branch.
  const core::Problem problem = gen::motivating_example();
  const std::string dir = ::testing::TempDir() + "request_io_test";
  ASSERT_EQ(0, std::system(("mkdir -p " + dir).c_str()));
  {
    std::ofstream out(dir + "/inst.txt");
    out << format_problem(problem);
  }
  const WireSolveRequest wire = parse_solve_request_line(
      R"({"type":"solve","path":"inst.txt"})", 1, dir);
  expect_same_problem(problem, wire.problem);
}

}  // namespace
}  // namespace pipeopt::io
