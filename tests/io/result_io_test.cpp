/// Wire-format property tests for the result side: every status, every
/// limit/diagnostic variant and real solver outputs round-trip through
/// `format_result` / `parse_result_line` bit for bit; the mapping wire form
/// inverts exactly; malformed lines throw ParseError.

#include "io/result_io.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/registry.hpp"
#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"
#include "util/numeric.hpp"

namespace pipeopt::io {
namespace {

void expect_same_result(const api::SolveResult& a, const api::SolveResult& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.value, b.value);  // bit-identical, no tolerance
  EXPECT_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.diagnostics, b.diagnostics);
  ASSERT_EQ(a.mapping.has_value(), b.mapping.has_value());
  if (a.mapping) {
    ASSERT_EQ(a.mapping->interval_count(), b.mapping->interval_count());
    for (std::size_t i = 0; i < a.mapping->interval_count(); ++i) {
      EXPECT_EQ(a.mapping->intervals()[i], b.mapping->intervals()[i]);
    }
  }
  ASSERT_EQ(a.metrics.per_app.size(), b.metrics.per_app.size());
  for (std::size_t i = 0; i < a.metrics.per_app.size(); ++i) {
    EXPECT_EQ(a.metrics.per_app[i].period, b.metrics.per_app[i].period);
    EXPECT_EQ(a.metrics.per_app[i].latency, b.metrics.per_app[i].latency);
  }
  EXPECT_EQ(a.metrics.max_weighted_period, b.metrics.max_weighted_period);
  EXPECT_EQ(a.metrics.max_weighted_latency, b.metrics.max_weighted_latency);
  EXPECT_EQ(a.metrics.energy, b.metrics.energy);
}

TEST(ResultIo, RoundTripsARealSolveOfEveryObjective) {
  const core::Problem problem = gen::motivating_example();
  for (const api::Objective objective :
       {api::Objective::Period, api::Objective::Latency, api::Objective::Energy}) {
    api::SolveRequest request;
    request.objective = objective;
    if (objective == api::Objective::Energy) {
      request.constraints.period = core::Thresholds::per_app({10.0, 10.0});
    }
    const api::SolveResult result = api::solve(problem, request);
    ASSERT_TRUE(result.solved());
    const WireResult wire = parse_result_line(format_result(result, "id-1"));
    expect_same_result(result, wire.result);
    EXPECT_EQ(wire.id, "id-1");
  }
}

TEST(ResultIo, RoundTripsEveryStatusAndDiagnosticVariant) {
  std::vector<api::SolveResult> variants;
  {
    api::SolveResult optimal;
    optimal.status = api::SolveStatus::Optimal;
    optimal.solver = "interval-period-dp";
    optimal.value = 0.1 + 0.2;  // a value with no short decimal form
    optimal.mapping = core::Mapping(std::vector<core::IntervalAssignment>{
        {0, 0, 2, 1, 1}, {1, 0, 0, 2, 0}});
    optimal.metrics.per_app = {{1.5, 2.25}, {1.0 / 3.0, 7.0}};
    optimal.metrics.max_weighted_period = 1.5;
    optimal.metrics.max_weighted_latency = 7.0;
    optimal.metrics.energy = 42.0;
    optimal.wall_seconds = 0.00123;
    optimal.diagnostics = {{"nodes", "123"}, {"rung", "greedy"}};
    variants.push_back(optimal);

    api::SolveResult feasible = optimal;
    feasible.status = api::SolveStatus::Feasible;
    feasible.diagnostics = {{"caveat", "heuristic, no optimality proof"}};
    variants.push_back(feasible);

    api::SolveResult infeasible;
    infeasible.status = api::SolveStatus::Infeasible;
    infeasible.solver = "exact-enumeration";
    infeasible.value = util::kInfinity;  // +inf must survive the wire
    infeasible.diagnostics = {{"nodes", "40320"}};
    variants.push_back(infeasible);

    api::SolveResult limit;
    limit.status = api::SolveStatus::LimitExceeded;
    limit.solver = "branch-and-bound";
    limit.value = util::kInfinity;
    limit.diagnostics = {{"node-budget", "exhausted after 1000000 nodes"}};
    variants.push_back(limit);

    api::SolveResult cancelled = limit;
    cancelled.diagnostics = {{"cancelled", "cancel token fired"}};
    variants.push_back(cancelled);

    api::SolveResult no_solver;
    no_solver.status = api::SolveStatus::NoSolver;
    no_solver.value = util::kInfinity;
    no_solver.diagnostics = {
        {"reason", "unknown solver: nope"},
        {"spicy \"quotes\"\n\tand controls", "survive\\the wire"}};
    variants.push_back(no_solver);
  }
  for (const api::SolveResult& result : variants) {
    expect_same_result(result, parse_result_line(format_result(result)).result);
  }
}

TEST(ResultIo, MappingWireFormInvertsExactly) {
  const core::Problem problem = gen::motivating_example();
  const api::SolveResult result = api::solve(problem, api::SolveRequest{});
  ASSERT_TRUE(result.solved());
  const core::Mapping& mapping = *result.mapping;
  const core::Mapping back = parse_mapping(format_mapping(mapping));
  ASSERT_EQ(back.interval_count(), mapping.interval_count());
  for (std::size_t i = 0; i < mapping.interval_count(); ++i) {
    EXPECT_EQ(back.intervals()[i], mapping.intervals()[i]);
  }
  // The round-tripped mapping is still valid and evaluates identically.
  EXPECT_FALSE(back.validate(problem).has_value());
  EXPECT_EQ(core::evaluate(problem, back).energy, result.metrics.energy);
}

TEST(ResultIo, OmittingWallMakesLinesComparableAcrossRuns) {
  const core::Problem problem = gen::motivating_example();
  const api::SolveResult a = api::solve(problem, api::SolveRequest{});
  api::SolveResult b = a;
  b.wall_seconds = a.wall_seconds + 1.0;  // a different run's honest wall
  EXPECT_NE(format_result(a), format_result(b));
  EXPECT_EQ(format_result(a, "", /*include_wall=*/false),
            format_result(b, "", /*include_wall=*/false));
  // Parsing a wall-less line leaves wall at zero.
  EXPECT_EQ(parse_result_line(format_result(a, "", false)).result.wall_seconds,
            0.0);
}

TEST(ResultIo, MalformedLinesThrowParseError) {
  const std::vector<std::string> bad = {
      "",
      "{}",                                    // missing status
      "{\"status\":\"victorious\"}",           // unknown status
      "{\"type\":\"solve\",\"status\":\"optimal\"}",  // wrong type tag
      "{\"status\":\"optimal\",\"value\":\"abc\"}",
      "{\"status\":\"optimal\",\"mapping\":\"0:0-2\"}",   // truncated term
      "{\"status\":\"optimal\",\"mapping\":\"0:2-0@0/0\"}",  // inverted interval
      "{\"status\":\"optimal\",\"periods\":\"1\"}",  // periods without latencies
      "{\"status\":\"optimal\",\"nonsense\":\"1\"}",
  };
  for (const std::string& line : bad) {
    EXPECT_THROW((void)parse_result_line(line), ParseError)
        << "should reject: " << line;
  }
}

TEST(ResultIo, FrontPointLinesCarryTheBoundAndRoundTrip) {
  const core::Problem problem = gen::motivating_example();
  api::SolveRequest request;
  request.objective = api::Objective::Energy;
  request.constraints.period = core::Thresholds::per_app({2.0, 2.0});
  const api::SolveResult result = api::solve(problem, request);
  ASSERT_TRUE(result.solved());

  const std::string line = format_front_point(result, 2.0, "p-1");
  const WireResult wire = parse_result_line(line);
  expect_same_result(result, wire.result);
  EXPECT_EQ(wire.id, "p-1");
  ASSERT_TRUE(wire.bound.has_value());
  EXPECT_EQ(*wire.bound, 2.0);
  // A plain result line has no bound, and the two formats agree otherwise.
  EXPECT_FALSE(parse_result_line(format_result(result)).bound.has_value());
  EXPECT_THROW((void)parse_result_line(
                   R"({"status":"optimal","bound":"nope"})"),
               ParseError);
}

TEST(ResultIo, ParetoSummaryRoundTripsBothStatuses) {
  api::ParetoFront front;
  front.evaluations.resize(9);
  front.front = {0, 2, 5};
  front.infeasible_points = 2;
  front.cancelled_points = 0;
  front.wall_seconds = 0.125;

  const WireParetoSummary complete =
      parse_pareto_summary_line(format_pareto_summary(front, "sum-1"));
  EXPECT_EQ(complete.id, "sum-1");
  EXPECT_TRUE(complete.complete);
  EXPECT_EQ(complete.points, 3u);
  EXPECT_EQ(complete.evaluated, 9u);
  EXPECT_EQ(complete.infeasible, 2u);
  EXPECT_EQ(complete.cancelled_points, 0u);
  EXPECT_EQ(complete.wall_seconds, 0.125);

  front.cancelled = true;
  front.cancelled_points = 4;
  const WireParetoSummary cancelled = parse_pareto_summary_line(
      format_pareto_summary(front, "", /*include_wall=*/false));
  EXPECT_FALSE(cancelled.complete);
  EXPECT_EQ(cancelled.cancelled_points, 4u);
  EXPECT_EQ(cancelled.wall_seconds, 0.0);

  for (const std::string& bad :
       {std::string(R"({"type":"pareto","points":"1"})"),  // missing status
        std::string(R"({"type":"pareto","status":"half"})"),
        std::string(R"({"type":"result","status":"complete"})"),
        std::string(R"({"type":"pareto","status":"complete","points":"x"})"),
        std::string(R"({"type":"pareto","status":"complete","extra":"1"})")}) {
    EXPECT_THROW((void)parse_pareto_summary_line(bad), ParseError)
        << "should reject: " << bad;
  }
}

}  // namespace
}  // namespace pipeopt::io
