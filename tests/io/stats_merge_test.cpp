/// Unit tests of the fleet stats merge (io/stats_io.hpp): the semantics
/// the router's `{"type":"stats"}` fan-out relies on — counters sum
/// field-wise, framing fields are skipped, field order is the
/// first-appearance union (so fields no shard reports stay absent), and
/// malformed counters fail loudly.

#include "io/stats_io.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "io/json.hpp"

namespace pipeopt::io {
namespace {

TEST(StatsMerge, SumsEveryCounterAcrossLines) {
  // Two shard-shaped stats lines (the server's real field set).
  const std::vector<std::string> lines = {
      R"({"type":"stats","requests":"10","solves":"7","errors":"1",)"
      R"("connections":"3","solver.interval-period-dp":"5","jobs":"2",)"
      R"("pending":"1"})",
      R"({"type":"stats","requests":"4","solves":"2","errors":"0",)"
      R"("connections":"1","solver.interval-period-dp":"2","jobs":"2",)"
      R"("pending":"0"})",
  };
  const JsonFields merged = merge_stats_lines(lines);
  EXPECT_EQ(stats_field(merged, "requests"), "14");
  EXPECT_EQ(stats_field(merged, "solves"), "9");
  EXPECT_EQ(stats_field(merged, "errors"), "1");
  EXPECT_EQ(stats_field(merged, "connections"), "4");
  EXPECT_EQ(stats_field(merged, "solver.interval-period-dp"), "7");
  EXPECT_EQ(stats_field(merged, "jobs"), "4");  // pool sizes sum too
  EXPECT_EQ(stats_field(merged, "pending"), "1");
}

TEST(StatsMerge, SkipsTypeAndIdFraming) {
  const JsonFields merged = merge_stats_lines(
      {R"({"type":"stats","id":"s1","requests":"1"})",
       R"({"type":"stats","id":"s2","requests":"2"})"});
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged.front().first, "requests");
  EXPECT_EQ(merged.front().second, "3");
  EXPECT_EQ(stats_field(merged, "type"), "");
  EXPECT_EQ(stats_field(merged, "id"), "");
}

TEST(StatsMerge, FieldOrderIsFirstAppearanceUnion) {
  // Shards with disjoint per-solver counters: the merge is their union in
  // the order the fields first appear across the input lines.
  const JsonFields merged = merge_stats_lines(
      {R"({"type":"stats","requests":"1","solver.a":"1"})",
       R"({"type":"stats","requests":"2","solver.b":"3","solver.a":"1"})"});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].first, "requests");
  EXPECT_EQ(merged[0].second, "3");
  EXPECT_EQ(merged[1].first, "solver.a");
  EXPECT_EQ(merged[1].second, "2");
  EXPECT_EQ(merged[2].first, "solver.b");
  EXPECT_EQ(merged[2].second, "3");
}

TEST(StatsMerge, CacheFieldsStayAbsentWhenNoShardReportsThem) {
  // Presence is information: a cache-off fleet's merged stats line must
  // not invent cache_* fields (each shard's own line omits them, and the
  // merged line keeps that contract).
  const std::vector<std::string> cache_off = {
      R"({"type":"stats","requests":"5","solves":"5"})",
      R"({"type":"stats","requests":"3","solves":"3"})"};
  const JsonFields merged = merge_stats_lines(cache_off);
  EXPECT_EQ(stats_field(merged, "cache_hits"), "");
  EXPECT_EQ(stats_field(merged, "cache_misses"), "");
  for (const auto& [key, value] : merged) {
    EXPECT_EQ(key.find("cache_"), std::string::npos) << key;
  }

  // One cache-on shard is enough to surface the counters — summed with
  // implicit zero for the shards that lack them.
  const JsonFields mixed = merge_stats_lines(
      {R"({"type":"stats","requests":"5","cache_hits":"4"})",
       R"({"type":"stats","requests":"3"})"});
  EXPECT_EQ(stats_field(mixed, "cache_hits"), "4");
}

TEST(StatsMerge, EmptyInputMergesToEmpty) {
  EXPECT_TRUE(merge_stats_lines({}).empty());
  EXPECT_TRUE(merge_stats_fields({}).empty());
}

TEST(StatsMerge, SingleLineMergesToItselfMinusFraming) {
  const JsonFields merged = merge_stats_lines(
      {R"({"type":"stats","requests":"7","errors":"0"})"});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].first, "requests");
  EXPECT_EQ(merged[0].second, "7");
  EXPECT_EQ(merged[1].first, "errors");
  EXPECT_EQ(merged[1].second, "0");
}

TEST(StatsMerge, NonNumericCounterThrowsParseError) {
  EXPECT_THROW(merge_stats_lines({R"({"type":"stats","requests":"many"})"}),
               ParseError);
  EXPECT_THROW(merge_stats_lines({R"({"type":"stats","requests":""})"}),
               ParseError);
}

TEST(StatsMerge, StatsFieldLooksUpOrEmpty) {
  const JsonFields fields = parse_flat_json(
      R"({"type":"stats","requests":"7"})");
  EXPECT_EQ(stats_field(fields, "requests"), "7");
  EXPECT_EQ(stats_field(fields, "type"), "stats");
  EXPECT_EQ(stats_field(fields, "absent"), "");
}

}  // namespace
}  // namespace pipeopt::io
