#include "gen/workloads.hpp"

#include <gtest/gtest.h>

namespace pipeopt::gen {
namespace {

TEST(Workloads, VideoTranscodeShape) {
  const core::Application app = video_transcode_app(2.0, 1.5);
  EXPECT_EQ(app.stage_count(), 6u);
  EXPECT_DOUBLE_EQ(app.weight(), 1.5);
  EXPECT_DOUBLE_EQ(app.boundary_size(0), 2.0);
  // Encode (stage 5, 0-based index 4) is the heaviest stage.
  for (std::size_t k = 0; k < app.stage_count(); ++k) {
    EXPECT_LE(app.compute(k), app.compute(4));
  }
}

TEST(Workloads, DspFilterUniform) {
  const core::Application app = dsp_filter_app(8, 0.25);
  EXPECT_EQ(app.stage_count(), 8u);
  for (std::size_t k = 0; k < 8; ++k) EXPECT_DOUBLE_EQ(app.compute(k), 1.0);
  // Zero taps clamps to one stage.
  EXPECT_EQ(dsp_filter_app(0, 0.25).stage_count(), 1u);
}

TEST(Workloads, ImagePipelineShrinksData) {
  const core::Application app = image_pipeline_app(10.0);
  EXPECT_EQ(app.stage_count(), 5u);
  // Data sizes shrink monotonically after the denoise stage.
  for (std::size_t i = 2; i < app.stage_count(); ++i) {
    EXPECT_LE(app.boundary_size(i + 1), app.boundary_size(i));
  }
}

TEST(Workloads, HomogeneousCluster) {
  const core::Platform p = homogeneous_cluster(4, 3, 2.0, 2.0, 1.0, 0.5);
  EXPECT_EQ(p.processor_count(), 4u);
  EXPECT_EQ(p.classify(), core::PlatformClass::FullyHomogeneous);
  EXPECT_EQ(p.processor(0).mode_count(), 3u);
  EXPECT_DOUBLE_EQ(p.processor(0).min_speed(), 2.0);
  EXPECT_DOUBLE_EQ(p.processor(0).max_speed(), 4.0);
  EXPECT_DOUBLE_EQ(p.processor(0).static_energy(), 0.5);
}

TEST(Workloads, HomogeneousClusterSingleMode) {
  const core::Platform p = homogeneous_cluster(2, 1, 3.0, 2.0, 1.0, 0.0);
  EXPECT_TRUE(p.is_uni_modal());
  EXPECT_DOUBLE_EQ(p.processor(0).max_speed(), 6.0);  // base * turbo^1
}

TEST(Workloads, WorkstationNetworkIsCommHomogeneous) {
  util::Rng rng(11);
  const core::Platform p = workstation_network(rng, 6, 2, 2.0, 0.1);
  EXPECT_EQ(p.processor_count(), 6u);
  EXPECT_TRUE(p.has_uniform_bandwidth());
  EXPECT_DOUBLE_EQ(p.uniform_bandwidth(), 2.0);
  // Mode spread: slowest mode is half the fastest.
  for (std::size_t u = 0; u < 6; ++u) {
    EXPECT_NEAR(p.processor(u).min_speed(), 0.5 * p.processor(u).max_speed(),
                1e-12);
  }
}

}  // namespace
}  // namespace pipeopt::gen
