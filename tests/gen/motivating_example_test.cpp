#include "gen/motivating_example.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"

namespace pipeopt::gen {
namespace {

using core::PlatformClass;

TEST(MotivatingExample, Shape) {
  const core::Problem p = motivating_example();
  EXPECT_EQ(p.application_count(), 2u);
  EXPECT_EQ(p.application(0).stage_count(), 3u);
  EXPECT_EQ(p.application(1).stage_count(), 4u);
  EXPECT_EQ(p.platform().processor_count(), 3u);
  EXPECT_EQ(p.comm_model(), core::CommModel::Overlap);
}

TEST(MotivatingExample, ProcessorModes) {
  const core::Problem p = motivating_example();
  const auto& pf = p.platform();
  EXPECT_EQ(pf.processor(0).speeds(), (std::vector<double>{3.0, 6.0}));
  EXPECT_EQ(pf.processor(1).speeds(), (std::vector<double>{6.0, 8.0}));
  EXPECT_EQ(pf.processor(2).speeds(), (std::vector<double>{1.0, 6.0}));
}

TEST(MotivatingExample, IsCommHomogeneousMultiModal) {
  const core::Problem p = motivating_example();
  EXPECT_EQ(p.platform().classify(), PlatformClass::CommHomogeneous);
  EXPECT_FALSE(p.platform().is_uni_modal());
  EXPECT_TRUE(p.platform().has_uniform_bandwidth());
  EXPECT_DOUBLE_EQ(p.platform().uniform_bandwidth(), 1.0);
}

TEST(MotivatingExample, Paper1stStageData) {
  // "The first stage of App1 receives a data of size 1, then computes 3
  //  operations, and finally sends a data of size 3 to the second stage."
  const core::Problem p = motivating_example();
  const auto& app1 = p.application(0);
  EXPECT_DOUBLE_EQ(app1.boundary_size(0), 1.0);
  EXPECT_DOUBLE_EQ(app1.compute(0), 3.0);
  EXPECT_DOUBLE_EQ(app1.boundary_size(1), 3.0);
}

TEST(MotivatingExample, EnergyIsSquaredSpeed) {
  const core::Problem p = motivating_example();
  EXPECT_DOUBLE_EQ(p.platform().alpha(), 2.0);
  EXPECT_DOUBLE_EQ(p.platform().processor_energy(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.platform().processor_energy(1, 1), 64.0);
}

// The four §2 reference mappings are asserted in detail in the core
// evaluation tests; here we pin the headline constants so the FIG1 bench
// and the tests can never drift apart.
TEST(MotivatingExample, FactsConstants) {
  EXPECT_DOUBLE_EQ(MotivatingExampleFacts::kOptimalPeriod, 1.0);
  EXPECT_DOUBLE_EQ(MotivatingExampleFacts::kOptimalLatency, 2.75);
  EXPECT_DOUBLE_EQ(MotivatingExampleFacts::kMinimalEnergy, 10.0);
  EXPECT_DOUBLE_EQ(MotivatingExampleFacts::kPeriodAtMinimalEnergy, 14.0);
  EXPECT_DOUBLE_EQ(MotivatingExampleFacts::kEnergyUnderPeriod2, 46.0);
  EXPECT_DOUBLE_EQ(MotivatingExampleFacts::kEnergyAtOptimalPeriod, 136.0);
}

}  // namespace
}  // namespace pipeopt::gen
