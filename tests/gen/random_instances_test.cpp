#include "gen/random_instances.hpp"

#include <gtest/gtest.h>

namespace pipeopt::gen {
namespace {

using core::PlatformClass;

TEST(RandomInstances, ApplicationRespectsParams) {
  util::Rng rng(1);
  AppParams params;
  params.min_stages = 3;
  params.max_stages = 3;
  params.min_compute = 2.0;
  params.max_compute = 4.0;
  params.min_data = 1.0;
  params.max_data = 2.0;
  for (int i = 0; i < 20; ++i) {
    const core::Application app = random_application(rng, params);
    EXPECT_EQ(app.stage_count(), 3u);
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_GE(app.compute(k), 2.0);
      EXPECT_LE(app.compute(k), 4.0);
    }
    for (std::size_t i2 = 0; i2 <= 3; ++i2) {
      EXPECT_GE(app.boundary_size(i2), 1.0);
      EXPECT_LE(app.boundary_size(i2), 2.0);
    }
    EXPECT_DOUBLE_EQ(app.weight(), 1.0);
  }
}

TEST(RandomInstances, WeightedApplications) {
  util::Rng rng(2);
  AppParams params;
  params.weighted = true;
  bool saw_non_unit = false;
  for (int i = 0; i < 20; ++i) {
    const core::Application app = random_application(rng, params);
    EXPECT_GE(app.weight(), 0.5);
    EXPECT_LE(app.weight(), 2.0);
    if (app.weight() != 1.0) saw_non_unit = true;
  }
  EXPECT_TRUE(saw_non_unit);
}

TEST(RandomInstances, SpecialAppFamilyShape) {
  util::Rng rng(3);
  const auto apps = special_app_family(rng, 4, 2, 5);
  EXPECT_EQ(apps.size(), 4u);
  for (const auto& app : apps) {
    EXPECT_TRUE(app.is_uniform_no_comm());
    EXPECT_GE(app.stage_count(), 2u);
    EXPECT_LE(app.stage_count(), 5u);
  }
}

TEST(RandomInstances, PlatformClassesMatchRequest) {
  util::Rng rng(4);
  PlatformParams params;
  const auto hom =
      random_platform(rng, 5, 2, PlatformClass::FullyHomogeneous, params);
  EXPECT_EQ(hom.classify(), PlatformClass::FullyHomogeneous);
  EXPECT_EQ(hom.processor_count(), 5u);

  const auto het =
      random_platform(rng, 5, 2, PlatformClass::FullyHeterogeneous, params);
  EXPECT_EQ(het.classify(), PlatformClass::FullyHeterogeneous);

  // Comm-homogeneous platforms have uniform bandwidth; with log-uniform
  // speed draws the processors are (almost surely) non-identical.
  const auto comm =
      random_platform(rng, 5, 2, PlatformClass::CommHomogeneous, params);
  EXPECT_TRUE(comm.has_uniform_bandwidth());
}

TEST(RandomInstances, PlatformModeCount) {
  util::Rng rng(5);
  PlatformParams params;
  params.modes = 3;
  const auto p =
      random_platform(rng, 3, 1, PlatformClass::FullyHomogeneous, params);
  // Modes may collapse if duplicates drawn (unlikely with log-uniform).
  EXPECT_GE(p.processor(0).mode_count(), 1u);
  EXPECT_LE(p.processor(0).mode_count(), 3u);
}

TEST(RandomInstances, ProblemShapeHonored) {
  util::Rng rng(6);
  ProblemShape shape;
  shape.applications = 3;
  shape.processors = 7;
  shape.platform_class = PlatformClass::CommHomogeneous;
  shape.comm = core::CommModel::NoOverlap;
  const core::Problem p = random_problem(rng, shape);
  EXPECT_EQ(p.application_count(), 3u);
  EXPECT_EQ(p.platform().processor_count(), 7u);
  EXPECT_EQ(p.comm_model(), core::CommModel::NoOverlap);
}

TEST(RandomInstances, SpecialAppProblem) {
  util::Rng rng(7);
  ProblemShape shape;
  shape.special_app = true;
  shape.applications = 2;
  const core::Problem p = random_problem(rng, shape);
  EXPECT_TRUE(p.is_special_app_family());
}

TEST(RandomInstances, DeterministicAcrossRuns) {
  ProblemShape shape;
  util::Rng rng1(42), rng2(42);
  const core::Problem p1 = random_problem(rng1, shape);
  const core::Problem p2 = random_problem(rng2, shape);
  ASSERT_EQ(p1.application_count(), p2.application_count());
  for (std::size_t a = 0; a < p1.application_count(); ++a) {
    ASSERT_EQ(p1.application(a).stage_count(), p2.application(a).stage_count());
    for (std::size_t k = 0; k < p1.application(a).stage_count(); ++k) {
      EXPECT_DOUBLE_EQ(p1.application(a).compute(k), p2.application(a).compute(k));
    }
  }
}

TEST(RandomInstances, RejectsZeroProcessors) {
  util::Rng rng(8);
  EXPECT_THROW((void)random_platform(rng, 0, 1, PlatformClass::FullyHomogeneous,
                                     PlatformParams{}),
               std::invalid_argument);
}

TEST(RandomInstances, HeterogeneousBandwidthsWithinRange) {
  util::Rng rng(9);
  PlatformParams params;
  params.min_bandwidth = 2.0;
  params.max_bandwidth = 3.0;
  const auto p =
      random_platform(rng, 4, 2, PlatformClass::FullyHeterogeneous, params);
  for (std::size_t u = 0; u < 4; ++u) {
    for (std::size_t v = 0; v < 4; ++v) {
      if (u == v) continue;
      EXPECT_GE(p.bandwidth(u, v), 2.0);
      EXPECT_LE(p.bandwidth(u, v), 3.0);
      EXPECT_DOUBLE_EQ(p.bandwidth(u, v), p.bandwidth(v, u));
    }
  }
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t u = 0; u < 4; ++u) {
      EXPECT_GE(p.in_bandwidth(a, u), 2.0);
      EXPECT_LE(p.out_bandwidth(a, u), 3.0);
    }
  }
}

}  // namespace
}  // namespace pipeopt::gen
