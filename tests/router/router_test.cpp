/// End-to-end tests of pipeopt-router over real sockets and in-process
/// shard servers: routed responses over the Table 1/2 grid are
/// bit-identical to per-call `api::solve` (and streamed pareto sweeps to
/// `api::sweep`), sticky key-hash routing keeps per-shard solve caches
/// coherent across replays, `{"type":"stats"}` merges the fleet's counters
/// under the router-level fields, saturation sheds typed
/// `code:"overloaded"` errors, and a dead shard fails over without losing
/// admitted requests.

#include "router/router.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "io/stats_io.hpp"
#include "server/server.hpp"
#include "tests/router/fleet_harness.hpp"
#include "tests/server/wire_harness.hpp"

namespace pipeopt::router {
namespace {

using server::Server;
using server::ServerOptions;
using testing_fleet::TestFleet;
using testing_fleet::TestRouter;
using testing_fleet::value_of;
using testing_wire::TestServer;
using testing_wire::WireClient;
using testing_wire::comparable;
using testing_wire::needle_instance;
using testing_wire::needle_request;
using testing_wire::table_grid;

TEST(Router, ResponsesBitIdenticalToPerCallSolveOverTheGrid) {
  TestFleet fleet(3);
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  const std::vector<core::Problem> grid = table_grid(2);
  std::vector<api::SolveRequest> requests;
  {
    api::SolveRequest period;
    requests.push_back(period);
    api::SolveRequest latency;
    latency.objective = api::Objective::Latency;
    requests.push_back(latency);
    api::SolveRequest energy;
    energy.objective = api::Objective::Energy;
    energy.constraints.period = core::Thresholds::per_app({100.0, 100.0});
    requests.push_back(energy);
  }
  std::size_t routed = 0;
  for (const core::Problem& problem : grid) {
    for (const api::SolveRequest& request : requests) {
      client.send_line(io::format_solve_request(problem, request));
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(comparable(*response), comparable(api::solve(problem, request)))
          << "routed solve diverged from api::solve on: " << *response;
      ++routed;
    }
  }
  // The session thread bumps routed_ right after relaying the final byte;
  // give that store a moment to land before reading the counter directly.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fleet.router().routed() < routed &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(fleet.router().routed(), routed);
  EXPECT_EQ(fleet.router().shed(), 0u);
  EXPECT_EQ(fleet.router().shard_lost_errors(), 0u);
}

TEST(Router, StreamedParetoBitIdenticalToInProcessSweep) {
  TestFleet fleet(2);
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  api::SweepRequest request;  // defaults: minimize energy, sweep period
  request.bounds = {1.0, 2.0, 4.0, 100.0};
  request.refine = 1;

  for (const core::Problem& problem : table_grid(1)) {
    client.send_line(io::format_pareto_request(problem, request, "g"));
    std::vector<io::WireResult> streamed;
    std::optional<io::WireParetoSummary> summary;
    for (;;) {
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      const io::JsonFields fields = io::parse_flat_json(*response);
      const std::string type = value_of(fields, "type").value_or("");
      ASSERT_NE(type, "error") << *response;
      if (type == "pareto") {
        summary = io::parse_pareto_summary(fields);
        break;
      }
      streamed.push_back(io::parse_result(fields));
    }
    const api::ParetoFront local = api::sweep(problem, request);
    ASSERT_TRUE(summary.has_value());
    EXPECT_TRUE(summary->complete);
    EXPECT_EQ(summary->id, "g");
    EXPECT_EQ(summary->points, local.front.size());
    ASSERT_EQ(streamed.size(), local.front.size());
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      const api::SweepEvaluation& evaluation = local.evaluations[local.front[i]];
      ASSERT_TRUE(streamed[i].bound.has_value());
      EXPECT_EQ(io::format_front_point(streamed[i].result, *streamed[i].bound,
                                       "", /*include_wall=*/false),
                io::format_front_point(evaluation.result, evaluation.bound, "",
                                       /*include_wall=*/false))
          << "routed front diverged from api::sweep";
    }
  }
}

TEST(Router, PingHealthAndMalformedLinesMatchServerBytes) {
  TestFleet fleet(2);
  WireClient via_router(fleet.port());
  WireClient direct(fleet.shard(0).port());
  ASSERT_TRUE(via_router.connected());
  ASSERT_TRUE(direct.connected());

  // The router answers ping itself with the server's exact bytes.
  via_router.send_line(R"({"type":"ping","id":"p1"})");
  auto routed = via_router.recv_line();
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(*routed, R"({"type":"pong","id":"p1"})");

  // A malformed line is forwarded: the shard's structured error comes back
  // byte-identical to what a direct connection gets, and the routed
  // connection survives.
  for (const std::string& bad :
       {std::string("this is not json"),
        std::string(R"({"type":"solve","objective":"sideways","problem":"x"})"),
        std::string(R"({"type":"dance","id":"d1"})")}) {
    via_router.send_line(bad);
    direct.send_line(bad);
    const auto through = via_router.recv_line();
    const auto straight = direct.recv_line();
    ASSERT_TRUE(through.has_value());
    ASSERT_TRUE(straight.has_value());
    EXPECT_EQ(*through, *straight) << "error bytes diverged for: " << bad;
  }
  via_router.send_line(R"({"type":"ping"})");
  EXPECT_EQ(via_router.recv_line(), R"({"type":"pong"})");

  // Router-level health: the front tier's own identity plus fleet shape.
  via_router.send_line(R"({"type":"health","id":"h"})");
  routed = via_router.recv_line();
  ASSERT_TRUE(routed.has_value());
  const io::JsonFields fields = io::parse_flat_json(*routed);
  EXPECT_EQ(value_of(fields, "type"), "health");
  EXPECT_EQ(value_of(fields, "id"), "h");
  EXPECT_EQ(value_of(fields, "pid"), std::to_string(::getpid()));
  EXPECT_EQ(value_of(fields, "shards"), "2");
  EXPECT_EQ(value_of(fields, "shards_up"), "2");
}

TEST(Router, StatsMergeShardCountersUnderRouterFields) {
  TestFleet fleet(2);
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  // A handful of distinct solves spread over the fleet by key hash.
  const std::vector<core::Problem> grid = table_grid(2);
  for (const core::Problem& problem : grid) {
    client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
    ASSERT_TRUE(client.recv_line().has_value());
  }

  client.send_line(R"({"type":"stats","id":"s"})");
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(value_of(fields, "type"), "stats");
  EXPECT_EQ(value_of(fields, "id"), "s");
  EXPECT_EQ(value_of(fields, "shards"), "2");
  EXPECT_EQ(value_of(fields, "shards_up"), "2");
  EXPECT_EQ(value_of(fields, "routed"), std::to_string(grid.size()));
  EXPECT_EQ(value_of(fields, "shed"), "0");
  EXPECT_EQ(value_of(fields, "restarts"), "0");
  // The merged shard counters ride below the router fields: every routed
  // solve is in the fleet-wide sum exactly once.
  EXPECT_EQ(value_of(fields, "solves"), std::to_string(grid.size()));
  // Both shards were asked for their stats by this very request, plus one
  // pool each: jobs merges to the fleet total.
  EXPECT_EQ(value_of(fields, "jobs"), "4");
  // Cache-off fleet: the merged line must not invent cache counters.
  EXPECT_EQ(response->find("cache_"), std::string::npos);
}

TEST(Router, StickyRoutingKeepsShardCachesCoherentAcrossReplays) {
  // Cache-enabled shards behind the router: replaying the same request
  // stream must land every repeat on the shard that cached it, making the
  // replay byte-identical INCLUDING wall_s and the fleet-wide cache_hits
  // counter equal to the replay length — with no cross-shard protocol.
  TestFleet fleet(3, ServerOptions{.jobs = 2, .cache_entries = 64});
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  std::vector<std::string> lines;
  for (const core::Problem& problem : table_grid(2)) {
    lines.push_back(io::format_solve_request(problem, api::SolveRequest{}));
  }
  const auto replay = [&]() {
    std::vector<std::string> responses;
    for (const std::string& line : lines) {
      client.send_line(line);
      const auto response = client.recv_line();
      EXPECT_TRUE(response.has_value());
      responses.push_back(response.value_or(""));
    }
    return responses;
  };
  const std::vector<std::string> first = replay();
  const std::vector<std::string> second = replay();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i], first[i])
        << "replay diverged (request landed on a different shard?): "
        << lines[i];
  }

  client.send_line(R"({"type":"stats"})");
  const auto stats_line = client.recv_line();
  ASSERT_TRUE(stats_line.has_value());
  const io::JsonFields fields = io::parse_flat_json(*stats_line);
  EXPECT_EQ(value_of(fields, "cache_hits"), std::to_string(lines.size()));
  EXPECT_EQ(value_of(fields, "cache_misses"), std::to_string(lines.size()));
}

TEST(Router, RequestIdDoesNotChangeTheShard) {
  // The routing key is the canonical solve key, not the line bytes: the
  // same request under different ids must hit the same shard's cache.
  TestFleet fleet(3, ServerOptions{.jobs = 2, .cache_entries = 64});
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  const core::Problem problem = gen::motivating_example();
  for (int i = 0; i < 4; ++i) {
    client.send_line(io::format_solve_request(problem, api::SolveRequest{},
                                              "tag-" + std::to_string(i)));
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(io::parse_result_line(*response).result.solved());
  }
  client.send_line(R"({"type":"stats"})");
  const auto stats_line = client.recv_line();
  ASSERT_TRUE(stats_line.has_value());
  const io::JsonFields fields = io::parse_flat_json(*stats_line);
  EXPECT_EQ(value_of(fields, "cache_hits"), "3");  // 1 miss + 3 hits
  EXPECT_EQ(value_of(fields, "cache_misses"), "1");
}

TEST(Router, ShedsTypedOverloadedErrorWhenEveryShardSaturated) {
  // One shard, window 1: a long-running solve occupies the only slot, so
  // a second connection's request must shed immediately with the typed
  // overloaded error — and the connection must survive to solve later.
  RouterOptions options;
  options.window = 1;
  TestFleet fleet(1, ServerOptions{.jobs = 2}, std::move(options));

  WireClient blocker(fleet.port());
  ASSERT_TRUE(blocker.connected());
  api::SolveRequest slow = needle_request();
  slow.deadline_ms = 3000;
  blocker.send_line(io::format_solve_request(needle_instance(), slow));
  // Wait until the router has actually admitted the needle (its slot is
  // what saturates the window) — a fixed sleep races on a loaded host.
  const auto admit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool admitted = false;
  while (!admitted && std::chrono::steady_clock::now() < admit_deadline) {
    for (const ShardInfo& info : fleet.router().shard_infos()) {
      admitted |= info.in_flight >= 1;
    }
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(admitted);

  WireClient shed(fleet.port());
  ASSERT_TRUE(shed.connected());
  const auto t0 = std::chrono::steady_clock::now();
  shed.send_line(io::format_solve_request(gen::motivating_example(),
                                          api::SolveRequest{}, "q1"));
  const auto response = shed.recv_line();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(value_of(fields, "type"), "error");
  EXPECT_EQ(value_of(fields, "id"), "q1");
  EXPECT_EQ(value_of(fields, "code"), "overloaded");
  // Shedding is immediate — not queued behind the 3 s needle.
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_GE(fleet.router().shed(), 1u);

  // Drain the blocker, then the shed connection gets its solve through.
  // The blocker's slot is released just after its response is relayed, so
  // an immediate retry can still shed — which is exactly the documented
  // client contract: retry on "overloaded". Do what a client would.
  ASSERT_TRUE(blocker.recv_line().has_value());
  const auto retry_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  bool solved = false;
  while (!solved && std::chrono::steady_clock::now() < retry_deadline) {
    shed.send_line(io::format_solve_request(gen::motivating_example(),
                                            api::SolveRequest{}, "q2"));
    const auto retry = shed.recv_line();
    ASSERT_TRUE(retry.has_value());
    const io::JsonFields retry_fields = io::parse_flat_json(*retry);
    if (value_of(retry_fields, "type") == "error") {
      ASSERT_EQ(value_of(retry_fields, "code"), "overloaded") << *retry;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    solved = io::parse_result_line(*retry).result.solved();
  }
  EXPECT_TRUE(solved);
}

TEST(Router, BackpressureWaitsForTheStickyShardWhenFleetHasRoom) {
  // Two shards, window 1, one saturated: a request stuck to the saturated
  // shard WAITS (stickiness beats latency while a slot may free) instead
  // of shedding — the overloaded error requires the WHOLE fleet full.
  RouterOptions options;
  options.window = 1;
  TestFleet fleet(2, ServerOptions{.jobs = 2}, std::move(options));
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  // Saturate exactly one shard with a deadline-bounded needle...
  api::SolveRequest slow = needle_request();
  slow.deadline_ms = 1500;
  WireClient blocker(fleet.port());
  ASSERT_TRUE(blocker.connected());
  blocker.send_line(io::format_solve_request(needle_instance(), slow));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ... then push several distinct quick solves through: whichever shard
  // each sticks to, every one must come back solved (the sticky-but-full
  // ones after the needle's deadline), never as an overloaded error.
  for (const core::Problem& problem : table_grid(1)) {
    client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    EXPECT_TRUE(io::parse_result_line(*response).result.solved()) << *response;
  }
  EXPECT_EQ(fleet.router().shed(), 0u);
  ASSERT_TRUE(blocker.recv_line().has_value());
}

TEST(Router, DeadShardFailsOverWithoutLosingRequests) {
  TestFleet fleet(2);
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  // Warm the session across the fleet so cached shard connections exist.
  const std::vector<core::Problem> grid = table_grid(2);
  for (const core::Problem& problem : grid) {
    client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
    ASSERT_TRUE(client.recv_line().has_value());
  }

  // Kill shard 0 outright (listener and sessions die; connects refuse).
  fleet.kill_shard(0);

  // Every request still answers: requests stuck to the dead shard retry on
  // a fresh connection, fail, and fail over to the live shard. Three
  // passes push the dead shard's sticky keys past the breaker threshold
  // (3 consecutive strikes) so the down transition is guaranteed.
  for (int pass = 0; pass < 3; ++pass) {
    for (const core::Problem& problem : grid) {
      client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      EXPECT_TRUE(io::parse_result_line(*response).result.solved())
          << *response;
    }
  }
  EXPECT_GE(fleet.router().retries(), 1u);
  EXPECT_GE(fleet.router().down_transitions(), 1u);
  EXPECT_EQ(fleet.router().shard_lost_errors(), 0u);

  // The health loop converges the fleet view; stats reports one shard up.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool converged = false;
  while (!converged && std::chrono::steady_clock::now() < give_up) {
    client.send_line(R"({"type":"stats"})");
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    converged = value_of(io::parse_flat_json(*response), "shards_up") == "1";
    if (!converged) std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(converged);
}

TEST(Router, NoHealthyShardAnswersTypedUnavailable) {
  // A router whose only endpoint refuses connections: the first request
  // discovers it (connect fails → marked down) and answers the typed
  // unavailable error instead of hanging — and the connection survives.
  const std::uint16_t dead_port = [] {
    TestServer probe(ServerOptions{.jobs = 1});
    return probe.port();  // released when probe drains
  }();
  RouterOptions options;
  options.shards.push_back(ShardAddress{"127.0.0.1", dead_port});
  TestRouter router(std::move(options));

  WireClient client(router.port());
  ASSERT_TRUE(client.connected());
  client.send_line(io::format_solve_request(gen::motivating_example(),
                                            api::SolveRequest{}, "u1"));
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(value_of(fields, "type"), "error");
  EXPECT_EQ(value_of(fields, "id"), "u1");
  EXPECT_EQ(value_of(fields, "code"), "unavailable");
  client.send_line(R"({"type":"ping"})");
  EXPECT_EQ(client.recv_line(), R"({"type":"pong"})");
}

TEST(Router, ConstructorRejectsAmbiguousShardConfiguration) {
  EXPECT_THROW(Router{RouterOptions{}}, std::runtime_error);
  RouterOptions both;
  both.spawn = 2;
  both.shards.push_back(ShardAddress{"127.0.0.1", 1});
  EXPECT_THROW(Router{std::move(both)}, std::runtime_error);
  RouterOptions zero_window;
  zero_window.spawn = 1;
  zero_window.window = 0;
  EXPECT_THROW(Router{std::move(zero_window)}, std::runtime_error);
}

TEST(Router, GracefulShutdownDrainsSessions) {
  auto fleet = std::make_unique<TestFleet>(2);
  const std::uint16_t port = fleet->port();
  WireClient client(port);
  ASSERT_TRUE(client.connected());
  client.send_line(io::format_solve_request(gen::motivating_example(),
                                            api::SolveRequest{}));
  ASSERT_TRUE(client.recv_line().has_value());

  fleet.reset();  // shutdown + join: drain must complete, not hang

  WireClient late(port);
  if (late.connected()) {
    late.send_line(R"({"type":"ping"})");
    EXPECT_FALSE(late.recv_line().has_value());
  }
}

}  // namespace
}  // namespace pipeopt::router
