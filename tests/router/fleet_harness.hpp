#pragma once

/// Shared router-test fixtures: a listening `Router` on a background
/// thread, and a whole in-process fleet (N `TestServer` shards behind an
/// endpoint-mode router). Used by the router end-to-end, observability,
/// and chaos suites; spawn mode forks real processes and is exercised by
/// tools/ci.sh instead.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "io/json.hpp"
#include "router/router.hpp"
#include "server/server.hpp"
#include "tests/server/wire_harness.hpp"

namespace pipeopt::router::testing_fleet {

/// A listening router with its accept loop on a background thread.
class TestRouter {
 public:
  explicit TestRouter(RouterOptions options) : router_(std::move(options)) {
    port_ = router_.listen();
    thread_ = std::thread([this] { router_.serve(); });
  }

  ~TestRouter() {
    router_.shutdown();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] Router& router() noexcept { return router_; }

 private:
  Router router_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// N in-process shard servers plus a router across them (endpoint mode).
class TestFleet {
 public:
  explicit TestFleet(std::size_t shard_count,
                     server::ServerOptions shard_options = {},
                     RouterOptions router_options = {}) {
    if (shard_options.jobs == 0) shard_options.jobs = 2;
    for (std::size_t i = 0; i < shard_count; ++i) {
      shards_.push_back(
          std::make_unique<testing_wire::TestServer>(shard_options));
      router_options.shards.push_back(
          ShardAddress{"127.0.0.1", shards_.back()->port()});
    }
    router_ = std::make_unique<TestRouter>(std::move(router_options));
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return router_->port(); }
  [[nodiscard]] Router& router() noexcept { return router_->router(); }
  [[nodiscard]] testing_wire::TestServer& shard(std::size_t i) {
    return *shards_[i];
  }
  void kill_shard(std::size_t i) { shards_[i].reset(); }

 private:
  std::vector<std::unique_ptr<testing_wire::TestServer>> shards_;
  std::unique_ptr<TestRouter> router_;
};

/// First value for `key` in a parsed JSONL line; nullopt when absent.
inline std::optional<std::string> value_of(const io::JsonFields& fields,
                                           const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return std::nullopt;
}

inline bool has_key(const io::JsonFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

}  // namespace pipeopt::router::testing_fleet
