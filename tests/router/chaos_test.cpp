/// Chaos harness: seeded fault campaigns over an in-process fleet
/// (net/fault.hpp at the shards, retry/failover and circuit breakers in
/// the router). The invariants under fire:
///
///  * every admitted request gets exactly one terminal response, solved
///    and byte-identical (modulo wall_s) to a fault-free run;
///  * a request torn out of a frame is never executed (no double
///    execution: fleet-wide solves == responses in an accept-close
///    campaign, where retried requests provably never reached a session);
///  * a fixed --fault-spec seed replays the exact same campaign;
///  * consecutive failures open a shard's breaker exactly once and the
///    state surfaces through stats/metrics;
///  * a flapping shard converges to Open instead of oscillating (the
///    up/down transition counters stay put);
///  * an expired relative deadline sheds typed before burning a slot.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "gen/motivating_example.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "router/router.hpp"
#include "server/server.hpp"
#include "tests/router/fleet_harness.hpp"
#include "tests/server/wire_harness.hpp"
#include "util/fdio.hpp"

namespace pipeopt::router {
namespace {

using server::ServerOptions;
using testing_fleet::TestFleet;
using testing_fleet::value_of;
using testing_wire::WireClient;
using testing_wire::comparable;
using testing_wire::needle_instance;
using testing_wire::needle_request;
using testing_wire::table_grid;

/// Effectively "off" for a test's lifetime: campaigns must be shaped by
/// the seeded decision streams alone, never by probe traffic racing them.
constexpr std::chrono::milliseconds kProbesOff{3'600'000};

std::uint64_t number_of(const io::JsonFields& fields, const std::string& key) {
  const auto text = value_of(fields, key);
  return text.has_value() ? std::stoull(*text) : 0u;
}

TEST(Chaos, AcceptCloseCampaignDeliversExactlyOneResponsePerRequest) {
  // Shards drop half of freshly accepted relay connections on the
  // floor. A dropped connection provably never read the request, so the
  // router's budgeted retries must deliver every solve exactly once:
  // fleet-wide executions equal responses, bytes match a clean solve.
  ServerOptions shard_options;
  shard_options.jobs = 2;
  shard_options.fault_spec = "17:0.5:close";
  RouterOptions options;
  options.retries = 12;
  options.retry_backoff = std::chrono::milliseconds(1);
  options.breaker_threshold = 100;  // breakers are test 3's subject
  options.health_interval = kProbesOff;
  TestFleet fleet(2, shard_options, std::move(options));

  // One fresh front connection per request: every relay starts from a new
  // router session, so every request draws the shards' accept streams
  // (a warm session's pooled relay connections would dodge the campaign).
  const std::vector<core::Problem> grid = table_grid(2);
  for (const core::Problem& problem : grid) {
    WireClient client(fleet.port());
    ASSERT_TRUE(client.connected());
    client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(comparable(*response),
              comparable(api::solve(problem, api::SolveRequest{})))
        << "response diverged under faults: " << *response;
  }

  // The campaign actually injected (the seed arms it), every retry is
  // accounted, and no request ran twice anywhere in the fleet.
  std::uint64_t injected = 0;
  std::uint64_t solves = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_NE(fleet.shard(i).server().fault_injector(), nullptr);
    injected += fleet.shard(i).server().fault_injector()->injected(
        net::FaultKind::Close);
    solves += fleet.shard(i).server().stats().solves();
  }
  EXPECT_GE(injected, 1u);
  EXPECT_GE(fleet.router().retries(), 1u);
  EXPECT_EQ(solves, grid.size());
  EXPECT_EQ(fleet.router().shard_lost_errors(), 0u);
}

TEST(Chaos, FixedSeedReplaysTheCampaignByteForByte) {
  // Two fleets with the same shard fault seed, plus one clean fleet. The
  // faulty runs must agree with each other AND with the fault-free run —
  // retried solves are indistinguishable from never-failed ones.
  const std::vector<core::Problem> grid = table_grid(2);
  const auto campaign = [&](const std::string& fault_spec) {
    ServerOptions shard_options;
    shard_options.jobs = 2;
    shard_options.fault_spec = fault_spec;
    RouterOptions options;
    options.retries = 12;
    options.retry_backoff = std::chrono::milliseconds(1);
    options.breaker_threshold = 100;
    options.health_interval = kProbesOff;
    TestFleet fleet(2, shard_options, std::move(options));
    std::vector<std::string> responses;
    for (const core::Problem& problem : grid) {
      WireClient client(fleet.port());  // fresh session: draw the accepts
      EXPECT_TRUE(client.connected());
      client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
      const auto response = client.recv_line();
      EXPECT_TRUE(response.has_value());
      if (response.has_value() && response->find("\"error\"") != std::string::npos) {
        ADD_FAILURE() << "error line: " << *response;
      }
      responses.push_back(comparable(response.value_or("")));
    }
    return responses;
  };

  // No `truncate` here: a torn shard response surfaces as a typed
  // shard-lost error by design (the router never re-executes work that
  // may have run) — healing that one takes the CLI client's retry
  // engine, which the ci.sh chaos stage exercises end to end.
  const std::vector<std::string> clean = campaign("");
  const std::vector<std::string> first =
      campaign("21:0.2:close,partial,delay");
  const std::vector<std::string> second =
      campaign("21:0.2:close,partial,delay");
  ASSERT_EQ(first.size(), grid.size());
  EXPECT_EQ(first, second) << "same seed, different campaign";
  EXPECT_EQ(first, clean) << "faulted responses diverged from clean run";
}

TEST(Chaos, ConsecutiveFailuresOpenTheBreakerOnceAndSurfaceIt) {
  RouterOptions options;
  options.health_interval = kProbesOff;  // breaker moves on relay evidence
  TestFleet fleet(2, ServerOptions{.jobs = 2}, std::move(options));
  WireClient client(fleet.port());
  ASSERT_TRUE(client.connected());

  fleet.kill_shard(0);

  // Every request still answers via failover; the strikes against the
  // dead shard open its breaker exactly once. Three passes guarantee the
  // dead shard's sticky keys strike it past the threshold (3) even if
  // only one grid key hashes there.
  for (int pass = 0; pass < 3; ++pass) {
    for (const core::Problem& problem : table_grid(2)) {
      client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      EXPECT_TRUE(io::parse_result_line(*response).result.solved())
          << *response;
    }
  }
  const std::vector<ShardInfo> infos = fleet.router().shard_infos();
  ASSERT_EQ(infos.size(), 2u);
  EXPECT_EQ(infos[0].breaker, BreakerState::Open);
  EXPECT_FALSE(infos[0].healthy);
  EXPECT_EQ(infos[0].down_transitions, 1u);
  EXPECT_EQ(infos[0].up_transitions, 0u);
  EXPECT_EQ(infos[1].breaker, BreakerState::Closed);
  EXPECT_TRUE(infos[1].healthy);

  // The state surfaces on the wire: per-shard breaker gauges in metrics
  // (Closed=0, HalfOpen=1, Open=2) with the per-code retry counters, and
  // the transition counters in stats.
  client.send_line(R"({"type":"metrics"})");
  const auto metrics_line = client.recv_line();
  ASSERT_TRUE(metrics_line.has_value());
  const io::JsonFields metrics = io::parse_flat_json(*metrics_line);
  EXPECT_EQ(value_of(metrics, "shard.0.breaker_state"), "2");
  EXPECT_EQ(value_of(metrics, "shard.1.breaker_state"), "0");
  EXPECT_GE(number_of(metrics, "retries_by_code.connect"), 1u);

  client.send_line(R"({"type":"stats"})");
  const auto stats_line = client.recv_line();
  ASSERT_TRUE(stats_line.has_value());
  const io::JsonFields stats = io::parse_flat_json(*stats_line);
  EXPECT_EQ(value_of(stats, "shards_up"), "1");
  EXPECT_EQ(value_of(stats, "shard_down_transitions"), "1");
  EXPECT_EQ(value_of(stats, "shard_up_transitions"), "0");
  EXPECT_GE(number_of(stats, "retries"), 1u);
}

/// A shard that alternates per connection: even connections answer the
/// health probe properly, odd connections are accepted then dropped — the
/// canonical flapping endpoint.
class FlakyShard {
 public:
  FlakyShard() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    socklen_t len = sizeof addr;
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(fd_, 16);
    thread_ = std::thread([this] { loop(); });
  }

  ~FlakyShard() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
    ::close(fd_);
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void loop() {
    std::uint64_t accepted = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
      pollfd waiter{fd_, POLLIN, 0};
      if (::poll(&waiter, 1, 20) <= 0) continue;
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client < 0) continue;
      if (accepted++ % 2 != 0) {
        ::close(client);  // flap: accepted, then dropped before a byte
        continue;
      }
      util::FdLineReader reader(client);
      std::string line;
      if (reader.next_line(line)) {
        util::write_line(client,
                         R"({"type":"health","pid":"0","uptime_s":"0.0",)"
                         R"("in_flight":"0"})");
      }
      ::close(client);
    }
  }

  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(Chaos, FlappingShardConvergesToOpenWithoutPumpingTransitions) {
  // Strict alternation never produces breaker_close_successes (2)
  // successes in a row, so strikes only accumulate: the breaker opens
  // exactly once (down == 1) and never closes again (up == 0), instead of
  // flapping the routing view on every probe.
  FlakyShard flaky;
  RouterOptions options;
  options.shards.push_back(ShardAddress{"127.0.0.1", flaky.port()});
  options.health_interval = std::chrono::milliseconds(20);
  testing_fleet::TestRouter router(std::move(options));

  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (router.router().down_transitions() < 1 &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(router.router().down_transitions(), 1u);
  // Let a dozen more probe rounds flap; the counters must not move.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::vector<ShardInfo> infos = router.router().shard_infos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].down_transitions, 1u);
  EXPECT_EQ(infos[0].up_transitions, 0u);
  EXPECT_NE(infos[0].breaker, BreakerState::Closed);
  EXPECT_FALSE(infos[0].healthy);
}

TEST(Chaos, ExpiredDeadlineShedsTypedBeforeBurningASlot) {
  // One shard, window 1, slot held by a deadline-bounded needle: a waiter
  // whose own relative deadline elapses while queued is shed with the
  // typed "expired" error near its deadline — not after the needle's.
  RouterOptions options;
  options.window = 1;
  options.health_interval = kProbesOff;
  TestFleet fleet(1, ServerOptions{.jobs = 2}, std::move(options));

  WireClient blocker(fleet.port());
  ASSERT_TRUE(blocker.connected());
  api::SolveRequest slow = needle_request();
  slow.deadline_ms = 3000;
  blocker.send_line(io::format_solve_request(needle_instance(), slow));
  const auto admit_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  bool admitted = false;
  while (!admitted && std::chrono::steady_clock::now() < admit_deadline) {
    for (const ShardInfo& info : fleet.router().shard_infos()) {
      admitted |= info.in_flight >= 1;
    }
    if (!admitted) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(admitted);

  WireClient waiter(fleet.port());
  ASSERT_TRUE(waiter.connected());
  api::SolveRequest doomed;
  doomed.deadline_ms = 150;
  const auto t0 = std::chrono::steady_clock::now();
  waiter.send_line(
      io::format_solve_request(gen::motivating_example(), doomed, "e1"));
  const auto response = waiter.recv_line();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(value_of(fields, "type"), "error");
  EXPECT_EQ(value_of(fields, "id"), "e1");
  EXPECT_EQ(value_of(fields, "code"), "expired");
  EXPECT_EQ(value_of(fields, "message"), "deadline expired before dispatch");
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_GE(fleet.router().shed_expired(), 1u);
  EXPECT_EQ(fleet.router().shed(), 0u);  // typed apart from overload sheds

  // The shed rides stats (its own field) and metrics (a counter), and the
  // waiter's connection survived to ask.
  ASSERT_TRUE(blocker.recv_line().has_value());
  waiter.send_line(R"({"type":"stats"})");
  const auto stats_line = waiter.recv_line();
  ASSERT_TRUE(stats_line.has_value());
  EXPECT_GE(number_of(io::parse_flat_json(*stats_line), "shed_expired"), 1u);
  waiter.send_line(R"({"type":"metrics"})");
  const auto metrics_line = waiter.recv_line();
  ASSERT_TRUE(metrics_line.has_value());
  EXPECT_GE(number_of(io::parse_flat_json(*metrics_line), "shed_expired"), 1u);
}

}  // namespace
}  // namespace pipeopt::router
