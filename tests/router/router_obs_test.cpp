// Observability through the router: {"type":"metrics"} fans out over the
// fleet and merges shard histograms bucket-wise (quantiles re-derived from
// the union distribution, not averaged), and one trace id stitches the
// router's span log to the serving shard's — whether the client supplied
// the id or the router generated it.

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gen/motivating_example.hpp"
#include "io/json.hpp"
#include "io/request_io.hpp"
#include "router/router.hpp"
#include "server/server.hpp"
#include "tests/router/fleet_harness.hpp"
#include "tests/server/wire_harness.hpp"

namespace pipeopt::router {
namespace {

using server::ServerOptions;
using testing_fleet::TestRouter;
using testing_fleet::has_key;
using testing_wire::TestServer;
using testing_wire::WireClient;
using testing_wire::table_grid;

class TempPath {
 public:
  TempPath() {
    char name[] = "/tmp/pipeopt_router_obs_XXXXXX";
    const int fd = ::mkstemp(name);
    if (fd >= 0) ::close(fd);
    path_ = name;
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// First value for `key`, "" when absent (these assertions never need to
/// tell the two apart).
std::string value_of(const io::JsonFields& fields, const std::string& key) {
  return testing_fleet::value_of(fields, key).value_or("");
}

std::string with_trace(std::string line, const std::string& trace_id) {
  line.insert(1, "\"trace\":\"" + trace_id + "\",");
  return line;
}

/// All span-log lines of `path`, parsed.
std::vector<io::JsonFields> read_span_log(const std::string& path) {
  std::vector<io::JsonFields> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(io::parse_flat_json(line));
  return lines;
}

bool log_has_trace(const std::vector<io::JsonFields>& lines,
                   const std::string& trace_id) {
  for (const io::JsonFields& fields : lines) {
    if (value_of(fields, "trace") == trace_id) return true;
  }
  return false;
}

TEST(Router, MetricsFanOutMergesShardHistogramsBucketWise) {
  std::vector<std::unique_ptr<TestServer>> shards;
  RouterOptions options;
  for (std::size_t i = 0; i < 2; ++i) {
    shards.push_back(
        std::make_unique<TestServer>(ServerOptions{.jobs = 2}));
    options.shards.push_back(ShardAddress{"127.0.0.1", shards[i]->port()});
  }
  TestRouter router(std::move(options));
  WireClient client(router.port());
  ASSERT_TRUE(client.connected());

  const std::vector<core::Problem> grid = table_grid(2);
  std::size_t solves = 0;
  for (const core::Problem& problem : grid) {
    client.send_line(io::format_solve_request(problem, api::SolveRequest{}));
    ASSERT_TRUE(client.recv_line().has_value());
    ++solves;
  }

  client.send_line(R"({"type":"metrics","id":"m"})");
  const std::optional<std::string> response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(value_of(fields, "type"), "metrics");
  EXPECT_EQ(value_of(fields, "id"), "m");
  EXPECT_EQ(value_of(fields, "shards"), "2");
  EXPECT_EQ(value_of(fields, "shards_up"), "2");
  EXPECT_EQ(value_of(fields, "shard.0.up"), "1");
  EXPECT_EQ(value_of(fields, "shard.1.up"), "1");
  // The merged request histogram sums the shards' bucket counts: every
  // routed solve landed on exactly one shard, so the fleet total is the
  // number of solves no matter how the key hash spread them.
  EXPECT_EQ(value_of(fields, "request.n"), std::to_string(solves));
  // Quantiles are re-derived from the merged buckets — exactly one set.
  std::size_t p50_fields = 0;
  for (const auto& [key, value] : fields) {
    if (key == "request.p50_us") ++p50_fields;
  }
  EXPECT_EQ(p50_fields, 1u);
  // The router's own relay histogram rides in the same merged block.
  EXPECT_EQ(value_of(fields, "phase.relay.n"), std::to_string(solves));
  // Shards run with the cache off: no shard ever recorded a cache_lookup
  // span, so the merged fleet view must not invent the field (the
  // absence-is-information rule survives the merge).
  EXPECT_FALSE(has_key(fields, "phase.cache_lookup.n"));
}

TEST(Router, MetricsMergeCarriesCacheLookupWhenShardsCacheOn) {
  std::vector<std::unique_ptr<TestServer>> shards;
  RouterOptions options;
  for (std::size_t i = 0; i < 2; ++i) {
    shards.push_back(std::make_unique<TestServer>(
        ServerOptions{.jobs = 2, .cache_entries = 64}));
    options.shards.push_back(ShardAddress{"127.0.0.1", shards[i]->port()});
  }
  TestRouter router(std::move(options));
  WireClient client(router.port());
  ASSERT_TRUE(client.connected());

  const std::string line =
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{});
  for (int i = 0; i < 2; ++i) {
    client.send_line(line);
    ASSERT_TRUE(client.recv_line().has_value());
  }
  client.send_line(R"({"type":"metrics"})");
  const std::optional<std::string> response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(value_of(fields, "phase.cache_lookup.n"), "2");
}

TEST(Router, ClientTraceIdReachesRouterAndShardSpanLogs) {
  const TempPath router_log;
  const TempPath shard_log_0;
  const TempPath shard_log_1;
  {
    std::vector<std::unique_ptr<TestServer>> shards;
    shards.push_back(std::make_unique<TestServer>(
        ServerOptions{.jobs = 2, .trace_log = shard_log_0.str()}));
    shards.push_back(std::make_unique<TestServer>(
        ServerOptions{.jobs = 2, .trace_log = shard_log_1.str()}));
    RouterOptions options;
    for (const auto& shard : shards) {
      options.shards.push_back(ShardAddress{"127.0.0.1", shard->port()});
    }
    options.trace_log = router_log.str();
    TestRouter router(std::move(options));
    WireClient client(router.port());
    ASSERT_TRUE(client.connected());
    client.send_line(with_trace(
        io::format_solve_request(gen::motivating_example(),
                                 api::SolveRequest{}, "t0"),
        "deadbeefdeadbeef"));
    ASSERT_TRUE(client.recv_line().has_value());
  }  // teardown joins router and shards; span lines are flushed

  const auto router_spans = read_span_log(router_log.str());
  ASSERT_EQ(router_spans.size(), 1u);
  EXPECT_EQ(value_of(router_spans[0], "trace"), "deadbeefdeadbeef");
  EXPECT_EQ(value_of(router_spans[0], "type"), "solve");
  EXPECT_TRUE(has_key(router_spans[0], "span.relay_us"));
  // The serving shard logged the same id — one trace stitches both tiers.
  const auto shard_spans_0 = read_span_log(shard_log_0.str());
  const auto shard_spans_1 = read_span_log(shard_log_1.str());
  EXPECT_EQ(shard_spans_0.size() + shard_spans_1.size(), 1u);
  EXPECT_TRUE(log_has_trace(shard_spans_0, "deadbeefdeadbeef") ||
              log_has_trace(shard_spans_1, "deadbeefdeadbeef"));
}

TEST(Router, UntracedRequestGetsRouterGeneratedIdInBothLogs) {
  const TempPath router_log;
  const TempPath shard_log;
  {
    std::vector<std::unique_ptr<TestServer>> shards;
    shards.push_back(std::make_unique<TestServer>(
        ServerOptions{.jobs = 2, .trace_log = shard_log.str()}));
    RouterOptions options;
    options.shards.push_back(ShardAddress{"127.0.0.1", shards[0]->port()});
    options.trace_log = router_log.str();
    TestRouter router(std::move(options));
    WireClient client(router.port());
    ASSERT_TRUE(client.connected());
    client.send_line(io::format_solve_request(gen::motivating_example(),
                                              api::SolveRequest{}, "u0"));
    ASSERT_TRUE(client.recv_line().has_value());
  }

  const auto router_spans = read_span_log(router_log.str());
  ASSERT_EQ(router_spans.size(), 1u);
  const std::string trace_id = value_of(router_spans[0], "trace");
  ASSERT_EQ(trace_id.size(), 16u);
  // The router spliced its generated id into the forwarded line, so the
  // shard's log joins on the same id.
  const auto shard_spans = read_span_log(shard_log.str());
  ASSERT_EQ(shard_spans.size(), 1u);
  EXPECT_EQ(value_of(shard_spans[0], "trace"), trace_id);
}

TEST(Router, TracedResponsesStayByteIdenticalToUntraced) {
  std::vector<std::unique_ptr<TestServer>> shards;
  shards.push_back(std::make_unique<TestServer>(ServerOptions{.jobs = 2}));
  RouterOptions options;
  options.shards.push_back(ShardAddress{"127.0.0.1", shards[0]->port()});
  const TempPath router_log;
  options.trace_log = router_log.str();
  TestRouter router(std::move(options));
  WireClient client(router.port());
  ASSERT_TRUE(client.connected());

  const std::string line = io::format_solve_request(gen::motivating_example(),
                                                    api::SolveRequest{}, "b");
  client.send_line(line);
  const std::optional<std::string> first = client.recv_line();
  ASSERT_TRUE(first.has_value());
  client.send_line(line);
  const std::optional<std::string> second = client.recv_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(testing_wire::comparable(*first),
            testing_wire::comparable(*second));
  EXPECT_EQ(first->find("trace"), std::string::npos);
}

}  // namespace
}  // namespace pipeopt::router
