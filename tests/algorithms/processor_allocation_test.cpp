#include "algorithms/processor_allocation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "util/numeric.hpp"
#include "util/random.hpp"

namespace pipeopt::algorithms {
namespace {

/// Brute-force oracle over all allocations (compositions of p into A
/// positive parts).
double brute_force_objective(std::size_t apps, std::size_t procs,
                             const AllocationValueFn& f) {
  double best = util::kInfinity;
  std::vector<std::size_t> count(apps, 1);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t a,
                                                          std::size_t left) {
    if (a + 1 == apps) {
      count[a] = left;
      double value = 0.0;
      for (std::size_t i = 0; i < apps; ++i) {
        value = std::max(value, f(i, count[i]));
      }
      best = std::min(best, value);
      return;
    }
    for (std::size_t k = 1; k + (apps - a - 1) <= left; ++k) {
      count[a] = k;
      rec(a + 1, left - k);
    }
  };
  if (procs >= apps) rec(0, procs);
  return best;
}

TEST(ProcessorAllocation, SimpleKnownCase) {
  // f(0,k) = 12/k, f(1,k) = 4/k; p = 4 -> counts (3,1) give max(4,4) = 4.
  const auto f = [](std::size_t a, std::size_t k) {
    const double work = a == 0 ? 12.0 : 4.0;
    return work / static_cast<double>(k);
  };
  const auto result = allocate_processors(2, 4, f);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->objective, 4.0);
  EXPECT_EQ(result->count, (std::vector<std::size_t>{3, 1}));
}

TEST(ProcessorAllocation, TooFewProcessors) {
  const auto f = [](std::size_t, std::size_t) { return 1.0; };
  EXPECT_FALSE(allocate_processors(3, 2, f).has_value());
}

TEST(ProcessorAllocation, InfeasiblePrefixBootstrapped) {
  // App 0 needs at least 3 processors (infinite below); app 1 needs 2.
  // p = 5 is exactly enough — a naive greedy that dumps processors into the
  // first infinite app would fail here.
  const auto f = [](std::size_t a, std::size_t k) {
    const std::size_t need = a == 0 ? 3 : 2;
    if (k < need) return util::kInfinity;
    return 10.0 / static_cast<double>(k);
  };
  const auto result = allocate_processors(2, 5, f);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, (std::vector<std::size_t>{3, 2}));
}

TEST(ProcessorAllocation, WhollyInfeasibleApp) {
  const auto f = [](std::size_t a, std::size_t) {
    return a == 0 ? util::kInfinity : 1.0;
  };
  EXPECT_FALSE(allocate_processors(2, 6, f).has_value());
}

TEST(ProcessorAllocation, UsesAllProcessors) {
  const auto f = [](std::size_t, std::size_t k) {
    return 100.0 / static_cast<double>(k);
  };
  const auto result = allocate_processors(3, 9, f);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count[0] + result->count[1] + result->count[2], 9u);
}

TEST(ProcessorAllocation, RejectsZeroApplications) {
  const auto f = [](std::size_t, std::size_t) { return 1.0; };
  EXPECT_THROW((void)allocate_processors(0, 3, f), std::invalid_argument);
}

class AllocationOracle : public ::testing::TestWithParam<int> {};

TEST_P(AllocationOracle, GreedyMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 3);
  const std::size_t apps = 1 + rng.index(4);
  const std::size_t procs = apps + rng.index(7);
  // Random non-increasing step functions with optional infeasible prefixes.
  std::vector<std::vector<double>> table(apps);
  for (auto& row : table) {
    const std::size_t kmin = 1 + rng.index(2);
    double value = rng.log_uniform(1.0, 100.0);
    for (std::size_t k = 1; k <= procs; ++k) {
      if (k < kmin) {
        row.push_back(util::kInfinity);
        continue;
      }
      row.push_back(value);
      value *= rng.uniform(0.4, 1.0);  // non-increasing
    }
  }
  const auto f = [&](std::size_t a, std::size_t k) { return table[a][k - 1]; };
  const auto greedy = allocate_processors(apps, procs, f);
  const double oracle = brute_force_objective(apps, procs, f);
  if (!std::isfinite(oracle)) {
    EXPECT_TRUE(!greedy.has_value() || !std::isfinite(greedy->objective));
  } else {
    ASSERT_TRUE(greedy.has_value());
    EXPECT_NEAR(greedy->objective, oracle, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllocationOracle, ::testing::Range(0, 80));

TEST(MinimalCounts, PicksFewestProcessors) {
  const auto f = [](std::size_t a, std::size_t k) {
    const double work = a == 0 ? 12.0 : 6.0;
    return work / static_cast<double>(k);
  };
  const auto result = minimal_counts_for_bounds(2, 8, f, {4.0, 6.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->count, (std::vector<std::size_t>{3, 1}));
}

TEST(MinimalCounts, InfeasibleBound) {
  const auto f = [](std::size_t, std::size_t k) {
    return 10.0 / static_cast<double>(k);
  };
  EXPECT_FALSE(minimal_counts_for_bounds(2, 3, f, {1.0, 1.0}).has_value());
}

TEST(MinimalCounts, ArityChecked) {
  const auto f = [](std::size_t, std::size_t) { return 1.0; };
  EXPECT_THROW((void)minimal_counts_for_bounds(2, 3, f, {1.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pipeopt::algorithms
