#include "algorithms/latency_algorithms.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::PlatformClass;

TEST(OneToOneLatencyFullyHom, MatchesExact) {
  util::Rng rng(21);
  for (int iter = 0; iter < 20; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.processors = 7;
    shape.app.min_stages = 1;
    shape.app.max_stages = 3;
    shape.platform_class = PlatformClass::FullyHomogeneous;
    shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
    const auto problem = gen::random_problem(rng, shape);
    const auto fast = one_to_one_min_latency_fully_hom(problem);
    const auto oracle =
        exact::exact_min_latency(problem, exact::MappingKind::OneToOne);
    ASSERT_EQ(fast.has_value(), oracle.has_value());
    if (fast) {
      EXPECT_NEAR(fast->value, oracle->value, 1e-9);
    }
  }
}

TEST(OneToOneLatencyFullyHom, RejectsHeterogeneousProcessors) {
  util::Rng rng(22);
  gen::ProblemShape shape;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)one_to_one_min_latency_fully_hom(problem),
               std::invalid_argument);
}

TEST(IntervalLatency, WholeAppOnFastestProcessor) {
  // Single app: Theorem 12 maps it entirely on the fastest processor.
  util::Rng rng(23);
  gen::ProblemShape shape;
  shape.applications = 1;
  shape.processors = 4;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  const auto solution = interval_min_latency(problem);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->mapping.interval_count(), 1u);
  EXPECT_NEAR(solution->value, solo_interval_latency(problem, 0), 1e-12);
}

TEST(IntervalLatency, MotivatingExampleGives275) {
  // §2: optimal latency 2.75 (App1 on a 6-speed processor, App2 on P2@8).
  const auto problem = gen::motivating_example();
  const auto solution = interval_min_latency(problem);
  ASSERT_TRUE(solution.has_value());
  EXPECT_DOUBLE_EQ(solution->value, 2.75);
}

TEST(IntervalLatency, FeasibilityThreshold) {
  const auto problem = gen::motivating_example();
  EXPECT_TRUE(interval_latency_feasible(problem, 2.75).has_value());
  EXPECT_TRUE(interval_latency_feasible(problem, 3.0).has_value());
  EXPECT_FALSE(interval_latency_feasible(problem, 2.5).has_value());
}

TEST(IntervalLatency, NeedsOneProcessorPerApplication) {
  util::Rng rng(24);
  gen::ProblemShape shape;
  shape.applications = 4;
  shape.processors = 3;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_FALSE(interval_min_latency(problem).has_value());
}

TEST(IntervalLatency, RejectsHeterogeneousLinks) {
  util::Rng rng(25);
  gen::ProblemShape shape;
  shape.platform_class = PlatformClass::FullyHeterogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)interval_min_latency(problem), std::invalid_argument);
}

class IntervalLatencyOracle : public ::testing::TestWithParam<int> {};

TEST_P(IntervalLatencyOracle, MatchesExactOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 17);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(3);
  shape.processors = shape.applications + rng.index(3);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.app.weighted = rng.chance(0.5);
  shape.platform_class = rng.chance(0.5) ? PlatformClass::FullyHomogeneous
                                         : PlatformClass::CommHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  const auto fast = interval_min_latency(problem);
  const auto oracle =
      exact::exact_min_latency(problem, exact::MappingKind::Interval);
  ASSERT_EQ(fast.has_value(), oracle.has_value());
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalLatencyOracle, ::testing::Range(0, 60));

}  // namespace
}  // namespace pipeopt::algorithms
