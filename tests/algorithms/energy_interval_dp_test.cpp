#include "algorithms/energy_interval_dp.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"
#include "util/numeric.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::PlatformClass;
using core::Thresholds;

core::Problem small_fully_hom(std::vector<core::Application> apps,
                              std::size_t p, std::vector<double> modes,
                              double static_energy = 0.0) {
  std::vector<core::Processor> procs;
  for (std::size_t u = 0; u < p; ++u) procs.emplace_back(modes, static_energy);
  return core::Problem(std::move(apps), core::Platform(std::move(procs), 1.0));
}

TEST(EnergyIntervalDp, SlowModePreferredWhenFeasible) {
  // 6 ops, modes {1,2,3}, bound 3 -> run at 2 (energy 4).
  std::vector<core::Application> apps;
  apps.push_back(core::Application(0.0, {core::StageSpec{6.0, 0.0}}));
  const auto problem = small_fully_hom(std::move(apps), 2, {1.0, 2.0, 3.0});
  const EnergyIntervalDp dp(problem, 0, 2, 3.0);
  EXPECT_DOUBLE_EQ(dp.min_energy_exact(1), 4.0);
  const auto plan = dp.optimal_plan(2);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->modes, (std::vector<std::size_t>{1}));
}

TEST(EnergyIntervalDp, SplittingCanSaveEnergy) {
  // Two 4-op stages (no comm), modes {1, 2}, static energy 0, bound 4:
  //  - one proc must run at 2: energy 4;
  //  - two procs run at 1 each: energy 2 -> splitting wins.
  std::vector<core::Application> apps;
  apps.push_back(core::Application(
      0.0, {core::StageSpec{4.0, 0.0}, core::StageSpec{4.0, 0.0}}));
  const auto problem = small_fully_hom(std::move(apps), 2, {1.0, 2.0});
  const EnergyIntervalDp dp(problem, 0, 2, 4.0);
  EXPECT_DOUBLE_EQ(dp.min_energy_exact(1), 4.0);
  EXPECT_DOUBLE_EQ(dp.min_energy_exact(2), 2.0);
  EXPECT_DOUBLE_EQ(dp.min_energy_at_most(2), 2.0);
}

TEST(EnergyIntervalDp, StaticEnergyPenalizesExtraProcessors) {
  // Same chain but static energy 5 per processor: splitting now costs
  // 2·(5+1) = 12 vs 5+4 = 9 -> stay on one processor.
  std::vector<core::Application> apps;
  apps.push_back(core::Application(
      0.0, {core::StageSpec{4.0, 0.0}, core::StageSpec{4.0, 0.0}}));
  const auto problem = small_fully_hom(std::move(apps), 2, {1.0, 2.0}, 5.0);
  const EnergyIntervalDp dp(problem, 0, 2, 4.0);
  EXPECT_DOUBLE_EQ(dp.min_energy_at_most(2), 9.0);
  const auto plan = dp.optimal_plan(2);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->ends.size(), 1u);
}

TEST(EnergyIntervalDp, InfeasibleBound) {
  std::vector<core::Application> apps;
  apps.push_back(core::Application(0.0, {core::StageSpec{8.0, 0.0}}));
  const auto problem = small_fully_hom(std::move(apps), 2, {1.0, 2.0});
  const EnergyIntervalDp dp(problem, 0, 2, 3.0);
  EXPECT_FALSE(std::isfinite(dp.min_energy_at_most(2)));
  EXPECT_FALSE(dp.optimal_plan(2).has_value());
}

TEST(EnergyIntervalDp, RejectsNonHomogeneousPlatform) {
  util::Rng rng(51);
  gen::ProblemShape shape;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)EnergyIntervalDp(problem, 0, 2, 1.0), std::invalid_argument);
  EXPECT_THROW((void)interval_min_energy_under_period(
                   problem,
                   Thresholds::unconstrained(problem.application_count())),
               std::invalid_argument);
}

TEST(IntervalMinEnergyMulti, SharesProcessorsAcrossApplications) {
  // Two identical 2-stage apps, 3 processors: one app may split, the other
  // must fit on one processor.
  std::vector<core::Application> apps;
  for (int a = 0; a < 2; ++a) {
    apps.push_back(core::Application(
        0.0, {core::StageSpec{4.0, 0.0}, core::StageSpec{4.0, 0.0}}));
  }
  const auto problem = small_fully_hom(std::move(apps), 3, {1.0, 2.0});
  const auto solution = interval_min_energy_under_period(
      problem, Thresholds::per_app({4.0, 4.0}));
  ASSERT_TRUE(solution.has_value());
  // Split one app (1+1) + run the other at speed 2 (4): total 6.
  EXPECT_DOUBLE_EQ(solution->value, 6.0);
  solution->mapping.validate_or_throw(problem);
  const auto metrics = core::evaluate(problem, solution->mapping);
  EXPECT_DOUBLE_EQ(metrics.energy, solution->value);
  EXPECT_TRUE(Thresholds::per_app({4.0, 4.0})
                  .satisfied_by(core::per_app_values(
                      metrics, core::Criterion::Period)));
}

/// Theorems 18/21 oracle check.
class EnergyIntervalOracle : public ::testing::TestWithParam<int> {};

TEST_P(EnergyIntervalOracle, MatchesExactOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 9);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = shape.applications + rng.index(3);
  shape.platform.modes = 2;
  shape.platform.static_energy = rng.chance(0.5) ? 0.5 : 0.0;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  const auto perf = exact::exact_min_period(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(perf.has_value());
  const Thresholds bounds = Thresholds::uniform(
      problem, perf->value * rng.uniform(1.0, 2.5), core::WeightPolicy::Priority);

  const auto fast = interval_min_energy_under_period(problem, bounds);
  const auto oracle = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::Interval, bounds);
  ASSERT_EQ(fast.has_value(), oracle.has_value());
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnergyIntervalOracle, ::testing::Range(0, 50));

}  // namespace
}  // namespace pipeopt::algorithms
