#include "algorithms/interval_period_multi.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::PlatformClass;

TEST(IntervalPeriodMulti, RejectsHeterogeneousPlatforms) {
  util::Rng rng(31);
  gen::ProblemShape shape;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)interval_min_period(problem), std::invalid_argument);
}

TEST(IntervalPeriodMulti, NeedsOneProcessorPerApplication) {
  util::Rng rng(32);
  gen::ProblemShape shape;
  shape.applications = 4;
  shape.processors = 3;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_FALSE(interval_min_period(problem).has_value());
}

TEST(IntervalPeriodMulti, MappingAchievesReportedValue) {
  util::Rng rng(33);
  gen::ProblemShape shape;
  shape.applications = 3;
  shape.processors = 8;
  shape.app.min_stages = 3;
  shape.app.max_stages = 6;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  const auto solution = interval_min_period(problem);
  ASSERT_TRUE(solution.has_value());
  solution->mapping.validate_or_throw(problem);
  const auto metrics = core::evaluate(problem, solution->mapping);
  EXPECT_NEAR(metrics.max_weighted_period, solution->value, 1e-9);
}

TEST(IntervalPeriodMulti, SoloPeriodLowerBoundsConcurrent) {
  util::Rng rng(34);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 6;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  const auto solution = interval_min_period(problem);
  ASSERT_TRUE(solution.has_value());
  for (std::size_t a = 0; a < 2; ++a) {
    EXPECT_LE(solo_interval_period(problem, a),
              solution->value / problem.application(a).weight() + 1e-9);
  }
}

class IntervalPeriodMultiOracle : public ::testing::TestWithParam<int> {};

TEST_P(IntervalPeriodMultiOracle, MatchesExactOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 5);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(3);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = shape.applications + rng.index(3);
  shape.app.weighted = rng.chance(0.5);
  shape.platform_class = PlatformClass::FullyHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  const auto fast = interval_min_period(problem);
  const auto oracle =
      exact::exact_min_period(problem, exact::MappingKind::Interval);
  ASSERT_EQ(fast.has_value(), oracle.has_value());
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalPeriodMultiOracle, ::testing::Range(0, 60));

}  // namespace
}  // namespace pipeopt::algorithms
