#include "algorithms/energy_matching.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::PlatformClass;
using core::Thresholds;

TEST(EnergyMatching, PicksSlowestSufficientModes) {
  // One stage of 6 ops, no comm; processor modes {1, 2, 3}; period bound 3
  // -> mode with speed 2 (energy 4 + static 0), not speed 3 (energy 9).
  std::vector<core::Application> apps;
  apps.push_back(core::Application(0.0, {core::StageSpec{6.0, 0.0}}));
  std::vector<core::Processor> procs;
  procs.emplace_back(std::vector<double>{1.0, 2.0, 3.0});
  core::Problem problem({apps}, core::Platform(std::move(procs), 1.0));
  const auto solution = one_to_one_min_energy_under_period(
      problem, Thresholds::per_app({3.0}));
  ASSERT_TRUE(solution.has_value());
  EXPECT_DOUBLE_EQ(solution->value, 4.0);
  EXPECT_EQ(solution->mapping.intervals()[0].mode, 1u);
}

TEST(EnergyMatching, InfeasibleBound) {
  std::vector<core::Application> apps;
  apps.push_back(core::Application(0.0, {core::StageSpec{6.0, 0.0}}));
  std::vector<core::Processor> procs;
  procs.emplace_back(std::vector<double>{1.0, 2.0});
  core::Problem problem({apps}, core::Platform(std::move(procs), 1.0));
  EXPECT_FALSE(one_to_one_min_energy_under_period(problem,
                                                  Thresholds::per_app({2.0}))
                   .has_value());
}

TEST(EnergyMatching, StaticEnergyCounted) {
  std::vector<core::Application> apps;
  apps.push_back(core::Application(0.0, {core::StageSpec{2.0, 0.0}}));
  std::vector<core::Processor> procs;
  procs.emplace_back(std::vector<double>{1.0}, 5.0);   // static 5
  procs.emplace_back(std::vector<double>{2.0}, 0.0);   // faster, no static
  core::Problem problem({apps}, core::Platform(std::move(procs), 1.0));
  const auto solution = one_to_one_min_energy_under_period(
      problem, Thresholds::per_app({2.0}));
  ASSERT_TRUE(solution.has_value());
  // P0: 5 + 1 = 6; P1: 0 + 4 = 4 -> picks P1 despite higher speed.
  EXPECT_DOUBLE_EQ(solution->value, 4.0);
  EXPECT_EQ(solution->mapping.intervals()[0].proc, 1u);
}

TEST(EnergyMatching, RejectsHeterogeneousLinks) {
  util::Rng rng(41);
  gen::ProblemShape shape;
  shape.platform_class = PlatformClass::FullyHeterogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)one_to_one_min_energy_under_period(
                   problem, Thresholds::unconstrained(
                                problem.application_count())),
               std::invalid_argument);
}

TEST(EnergyMatching, TooFewProcessors) {
  util::Rng rng(42);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 2;  // < total stages
  shape.app.min_stages = 2;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_FALSE(one_to_one_min_energy_under_period(
                   problem,
                   Thresholds::unconstrained(problem.application_count()))
                   .has_value());
}

/// Theorem 19 oracle check: Hungarian-based minimum energy equals the
/// exhaustive optimum over one-to-one mappings with mode enumeration.
class EnergyMatchingOracle : public ::testing::TestWithParam<int> {};

TEST_P(EnergyMatchingOracle, MatchesExactOptimum) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 997 + 71);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 2;
  shape.processors = 4 + rng.index(2);
  shape.platform.modes = 2;
  shape.platform.static_energy = rng.chance(0.5) ? 0.5 : 0.0;
  shape.platform_class = rng.chance(0.5) ? PlatformClass::FullyHomogeneous
                                         : PlatformClass::CommHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  // Bound: the fastest-mode one-to-one optimum scaled up a little, so the
  // instance is feasible but modes still matter.
  const auto perf = exact::exact_min_period(problem, exact::MappingKind::OneToOne);
  ASSERT_TRUE(perf.has_value());
  const Thresholds bounds = Thresholds::uniform(
      problem, perf->value * rng.uniform(1.0, 2.5), core::WeightPolicy::Priority);

  const auto fast = one_to_one_min_energy_under_period(problem, bounds);
  const auto oracle = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::OneToOne, bounds);
  ASSERT_EQ(fast.has_value(), oracle.has_value());
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnergyMatchingOracle, ::testing::Range(0, 50));

}  // namespace
}  // namespace pipeopt::algorithms
