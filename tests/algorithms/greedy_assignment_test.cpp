#include "algorithms/greedy_assignment.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/random_instances.hpp"

namespace pipeopt::algorithms {
namespace {

core::Platform two_speed_platform() {
  std::vector<core::Processor> procs;
  procs.emplace_back(std::vector<double>{1.0}, 0.0, "slow");
  procs.emplace_back(std::vector<double>{4.0}, 0.0, "fast");
  return core::Platform(std::move(procs), 1.0);
}

TEST(ItemCost, CombinesPerModel) {
  const GreedyItem item{1.0, 8.0, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(item_cost(item, 4.0, CostCombine::Max), 2.0);
  EXPECT_DOUBLE_EQ(item_cost(item, 4.0, CostCombine::Sum), 3.5);
}

TEST(ItemCost, WeightScales) {
  const GreedyItem item{0.0, 6.0, 0.0, 2.5};
  EXPECT_DOUBLE_EQ(item_cost(item, 3.0, CostCombine::Max), 5.0);
}

TEST(GreedyAssign, AssignsFeasibleItems) {
  const auto platform = two_speed_platform();
  // Item 0 needs the fast processor; item 1 fits anywhere.
  const std::vector<GreedyItem> items{{0.0, 8.0, 0.0, 1.0}, {0.0, 1.0, 0.0, 1.0}};
  const auto result = greedy_assign(platform, items, 2.0, CostCombine::Max);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->proc_of_item[0], 1u);  // fast
  EXPECT_EQ(result->proc_of_item[1], 0u);  // slow
}

TEST(GreedyAssign, FailsWhenInfeasible) {
  const auto platform = two_speed_platform();
  // Both items need the fast processor.
  const std::vector<GreedyItem> items{{0.0, 8.0, 0.0, 1.0}, {0.0, 6.0, 0.0, 1.0}};
  EXPECT_FALSE(greedy_assign(platform, items, 2.0, CostCombine::Max).has_value());
}

TEST(GreedyAssign, CommBoundItemInfeasibleAtAnySpeed) {
  const auto platform = two_speed_platform();
  const std::vector<GreedyItem> items{{5.0, 1.0, 0.0, 1.0}};
  EXPECT_FALSE(greedy_assign(platform, items, 2.0, CostCombine::Max).has_value());
  EXPECT_TRUE(greedy_assign(platform, items, 5.0, CostCombine::Max).has_value());
}

TEST(GreedyAssign, MoreItemsThanProcessorsFails) {
  const auto platform = two_speed_platform();
  const std::vector<GreedyItem> items(3, GreedyItem{0.0, 0.1, 0.0, 1.0});
  EXPECT_FALSE(greedy_assign(platform, items, 10.0, CostCombine::Max).has_value());
}

TEST(GreedyAssign, DistinctProcessors) {
  util::Rng rng(5);
  gen::PlatformParams params;
  const auto platform = gen::random_platform(
      rng, 6, 1, core::PlatformClass::CommHomogeneous, params);
  std::vector<GreedyItem> items;
  for (int i = 0; i < 5; ++i) {
    items.push_back({0.0, rng.uniform(0.5, 2.0), 0.0, 1.0});
  }
  const auto result = greedy_assign(platform, items, 100.0, CostCombine::Sum);
  ASSERT_TRUE(result.has_value());
  const std::set<std::size_t> procs(result->proc_of_item.begin(),
                                    result->proc_of_item.end());
  EXPECT_EQ(procs.size(), items.size());
}

// Theorem 1's exchange argument, verified empirically: the greedy succeeds
// exactly when a perfect matching exists.
class GreedyVsMatching : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsMatching, GreedySuccessIffMatchingExists) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  gen::PlatformParams params;
  params.modes = 2;
  const std::size_t p = 2 + rng.index(6);
  const auto platform = gen::random_platform(
      rng, p, 1, core::PlatformClass::CommHomogeneous, params);
  const std::size_t n = 1 + rng.index(p);
  std::vector<GreedyItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back({rng.uniform(0.0, 2.0), rng.log_uniform(0.5, 20.0),
                     rng.uniform(0.0, 2.0), rng.chance(0.5) ? 1.0 : 2.0});
  }
  const CostCombine combine = rng.chance(0.5) ? CostCombine::Max : CostCombine::Sum;
  for (double threshold : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    EXPECT_EQ(greedy_assign(platform, items, threshold, combine).has_value(),
              matching_feasible(platform, items, threshold, combine))
        << "threshold " << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyVsMatching, ::testing::Range(0, 40));

}  // namespace
}  // namespace pipeopt::algorithms
