#include "algorithms/interval_period_dp.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/random_instances.hpp"

namespace pipeopt::algorithms {
namespace {

using core::Application;
using core::CommModel;
using core::StageSpec;

/// Brute-force oracle: all 2^(n-1) compositions into at most q intervals.
double brute_force_period(const Application& app, double speed, double bw,
                          CommModel comm, std::size_t q) {
  const std::size_t n = app.stage_count();
  double best = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << (n - 1)); ++mask) {
    std::vector<std::size_t> ends;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (mask & (1u << i)) ends.push_back(i);
    }
    ends.push_back(n - 1);
    if (ends.size() > q) continue;
    double period = 0.0;
    std::size_t first = 0;
    for (std::size_t last : ends) {
      const double in = app.boundary_size(first) / bw;
      const double comp = app.total_compute(first, last) / speed;
      const double out = app.boundary_size(last + 1) / bw;
      const double cycle =
          comm == CommModel::Overlap ? std::max({in, comp, out}) : in + comp + out;
      period = std::max(period, cycle);
      first = last + 1;
    }
    best = std::min(best, period);
  }
  return best;
}

TEST(IntervalPeriodDp, SingleStage) {
  const Application app(1.0, {StageSpec{4.0, 2.0}});
  const IntervalPeriodDp dp(app, 2.0, 1.0, CommModel::Overlap, 3);
  EXPECT_DOUBLE_EQ(dp.min_period_by_count(1), 2.0);  // max(1, 2, 2)
  EXPECT_DOUBLE_EQ(dp.min_period_by_count(3), 2.0);  // clamped to 1 interval
}

TEST(IntervalPeriodDp, KnownSplit) {
  // Stages 4,4 with no comm on speed 1: one proc -> 8, two procs -> 4.
  const Application app(0.0, {StageSpec{4.0, 0.0}, StageSpec{4.0, 0.0}});
  const IntervalPeriodDp dp(app, 1.0, 1.0, CommModel::Overlap, 2);
  EXPECT_DOUBLE_EQ(dp.min_period_by_count(1), 8.0);
  EXPECT_DOUBLE_EQ(dp.min_period_by_count(2), 4.0);
  EXPECT_EQ(dp.optimal_splits(2), (std::vector<std::size_t>{0, 1}));
}

TEST(IntervalPeriodDp, CommunicationCanForbidSplit) {
  // Huge boundary between the stages: splitting creates a 10-unit transfer,
  // so one interval (period 8) beats two (period 10) in the overlap model.
  const Application app(0.0, {StageSpec{4.0, 10.0}, StageSpec{4.0, 0.0}});
  const IntervalPeriodDp dp(app, 1.0, 1.0, CommModel::Overlap, 2);
  EXPECT_DOUBLE_EQ(dp.min_period_by_count(2), 8.0);
  EXPECT_EQ(dp.optimal_splits(2), (std::vector<std::size_t>{1}));
}

TEST(IntervalPeriodDp, NonIncreasingInProcessorCount) {
  util::Rng rng(17);
  gen::AppParams params;
  params.min_stages = 6;
  params.max_stages = 6;
  const Application app = gen::random_application(rng, params);
  const IntervalPeriodDp dp(app, 2.0, 1.0, CommModel::NoOverlap, 6);
  for (std::size_t q = 2; q <= 6; ++q) {
    EXPECT_LE(dp.min_period_by_count(q), dp.min_period_by_count(q - 1));
  }
}

TEST(IntervalPeriodDp, SplitsTileTheChain) {
  util::Rng rng(19);
  gen::AppParams params;
  params.min_stages = 5;
  params.max_stages = 8;
  const Application app = gen::random_application(rng, params);
  const IntervalPeriodDp dp(app, 1.5, 2.0, CommModel::Overlap, 4);
  for (std::size_t q = 1; q <= 4; ++q) {
    const auto ends = dp.optimal_splits(q);
    ASSERT_LE(ends.size(), q);
    ASSERT_FALSE(ends.empty());
    EXPECT_EQ(ends.back(), app.stage_count() - 1);
    EXPECT_TRUE(std::is_sorted(ends.begin(), ends.end()));
  }
}

TEST(IntervalPeriodDp, WeightedValue) {
  const Application app(0.0, {StageSpec{4.0, 0.0}}, 2.5);
  const IntervalPeriodDp dp(app, 1.0, 1.0, CommModel::Overlap, 1);
  EXPECT_DOUBLE_EQ(dp.min_period_by_count(1), 4.0);
  EXPECT_DOUBLE_EQ(dp.weighted_min_period_by_count(1), 10.0);
}

TEST(IntervalPeriodDp, InputValidation) {
  const Application app(0.0, {StageSpec{1.0, 0.0}});
  EXPECT_THROW(IntervalPeriodDp(app, 0.0, 1.0, CommModel::Overlap, 1),
               std::invalid_argument);
  EXPECT_THROW(IntervalPeriodDp(app, 1.0, 0.0, CommModel::Overlap, 1),
               std::invalid_argument);
  EXPECT_THROW(IntervalPeriodDp(app, 1.0, 1.0, CommModel::Overlap, 0),
               std::invalid_argument);
}

class IntervalPeriodDpOracle : public ::testing::TestWithParam<int> {};

TEST_P(IntervalPeriodDpOracle, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 313 + 29);
  gen::AppParams params;
  params.min_stages = 1;
  params.max_stages = 8;
  const Application app = gen::random_application(rng, params);
  const double speed = rng.log_uniform(0.5, 8.0);
  const double bw = rng.log_uniform(0.5, 4.0);
  const CommModel comm =
      rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const IntervalPeriodDp dp(app, speed, bw, comm, app.stage_count());
  for (std::size_t q = 1; q <= app.stage_count(); ++q) {
    EXPECT_NEAR(dp.min_period_by_count(q),
                brute_force_period(app, speed, bw, comm, q), 1e-9)
        << "q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, IntervalPeriodDpOracle, ::testing::Range(0, 50));

}  // namespace
}  // namespace pipeopt::algorithms
