#include "algorithms/one_to_one_period.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::PlatformClass;

TEST(OneToOnePeriod, RequiresEnoughProcessors) {
  util::Rng rng(1);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 3;  // fewer than total stages (>= 4)
  shape.app.min_stages = 2;
  shape.app.max_stages = 3;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_FALSE(one_to_one_min_period(problem).has_value());
}

TEST(OneToOnePeriod, RejectsHeterogeneousLinks) {
  util::Rng rng(2);
  gen::ProblemShape shape;
  shape.applications = 1;
  shape.processors = 4;
  shape.app.max_stages = 3;
  shape.platform_class = PlatformClass::FullyHeterogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)one_to_one_min_period(problem), std::invalid_argument);
}

TEST(OneToOnePeriod, MappingAchievesReportedValue) {
  util::Rng rng(3);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 8;
  shape.app.min_stages = 2;
  shape.app.max_stages = 4;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  const auto solution = one_to_one_min_period(problem);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(solution->mapping.is_one_to_one());
  const auto metrics = core::evaluate(problem, solution->mapping);
  EXPECT_NEAR(metrics.max_weighted_period, solution->value, 1e-12);
}

TEST(OneToOnePeriod, FeasibilityThresholdMonotone) {
  util::Rng rng(4);
  gen::ProblemShape shape;
  shape.applications = 1;
  shape.processors = 5;
  shape.app.max_stages = 4;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  const auto solution = one_to_one_min_period(problem);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(
      one_to_one_period_feasible(problem, solution->value).has_value());
  EXPECT_TRUE(
      one_to_one_period_feasible(problem, solution->value * 2).has_value());
  EXPECT_FALSE(
      one_to_one_period_feasible(problem, solution->value * 0.9).has_value());
}

/// Theorem 1 correctness: matches exhaustive search across platform
/// classes (fully hom + comm hom), weights and both communication models.
class OneToOnePeriodOracle : public ::testing::TestWithParam<int> {};

TEST_P(OneToOnePeriodOracle, MatchesExactOptimum) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 101 + 11);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = 5 + rng.index(2);
  shape.platform_class = rng.chance(0.5) ? PlatformClass::FullyHomogeneous
                                         : PlatformClass::CommHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  shape.app.weighted = rng.chance(0.5);
  const auto problem = gen::random_problem(rng, shape);

  const auto fast = one_to_one_min_period(problem);
  const auto oracle =
      exact::exact_min_period(problem, exact::MappingKind::OneToOne);
  ASSERT_EQ(fast.has_value(), oracle.has_value());
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9)
        << "seed " << seed << " on " << to_string(problem.comm_model());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OneToOnePeriodOracle, ::testing::Range(0, 60));

}  // namespace
}  // namespace pipeopt::algorithms
