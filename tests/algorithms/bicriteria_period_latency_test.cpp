#include "algorithms/bicriteria_period_latency.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"
#include "util/numeric.hpp"

namespace pipeopt::algorithms {
namespace {

using core::Application;
using core::CommModel;
using core::PlatformClass;
using core::StageSpec;
using core::Thresholds;

TEST(LatencyUnderPeriodDp, UnconstrainedReducesToWholeChainOnOneProc) {
  const Application app(1.0, {StageSpec{2.0, 1.0}, StageSpec{4.0, 2.0}});
  const LatencyUnderPeriodDp dp(app, 2.0, 1.0, CommModel::Overlap, 2,
                                util::kInfinity);
  // One interval: 1/1 + 6/2 + 2/1 = 6 (no split beats it: splits add comm).
  EXPECT_DOUBLE_EQ(dp.min_latency_by_count(1), 6.0);
  EXPECT_LE(dp.min_latency_by_count(2), 6.0 + 1e-12);
}

TEST(LatencyUnderPeriodDp, TightPeriodForcesSplit) {
  // Two 4-op stages, speed 1, no comm: one interval has cycle 8; period
  // bound 4 forces the 2-interval split, latency stays 8.
  const Application app(0.0, {StageSpec{4.0, 0.0}, StageSpec{4.0, 0.0}});
  const LatencyUnderPeriodDp dp(app, 1.0, 1.0, CommModel::Overlap, 2, 4.0);
  EXPECT_FALSE(std::isfinite(dp.min_latency_by_count(1)));
  EXPECT_DOUBLE_EQ(dp.min_latency_by_count(2), 8.0);
  EXPECT_EQ(dp.optimal_splits(2), (std::vector<std::size_t>{0, 1}));
}

TEST(LatencyUnderPeriodDp, InfeasibleBound) {
  const Application app(0.0, {StageSpec{4.0, 0.0}});
  const LatencyUnderPeriodDp dp(app, 1.0, 1.0, CommModel::Overlap, 1, 3.0);
  EXPECT_FALSE(std::isfinite(dp.min_latency_by_count(1)));
  EXPECT_THROW((void)dp.optimal_splits(1), std::invalid_argument);
}

TEST(PeriodCandidates, ContainCycleValues) {
  const Application app(1.0, {StageSpec{2.0, 3.0}, StageSpec{4.0, 0.5}});
  const auto overlap =
      period_candidates(app, 2.0, 1.0, CommModel::Overlap);
  // Compute sums 2, 4, 6 over speed 2 -> 1, 2, 3; boundaries 1, 3, 0.5.
  for (double v : {0.5, 1.0, 2.0, 3.0}) {
    EXPECT_NE(std::find_if(overlap.begin(), overlap.end(),
                           [&](double c) { return util::approx_eq(c, v); }),
              overlap.end())
        << v;
  }
  const auto serial = period_candidates(app, 2.0, 1.0, CommModel::NoOverlap);
  // Whole chain: 1/1 + 6/2 + 0.5/1 = 4.5.
  EXPECT_NE(std::find_if(serial.begin(), serial.end(),
                         [&](double c) { return util::approx_eq(c, 4.5); }),
            serial.end());
}

TEST(MinPeriodUnderLatency, TradeoffCurve) {
  // 3 stages of 4 ops, boundary 1 between them, speed 1:
  //  - 1 proc:   period 12, latency 12 (+ in/out comm 0)
  //  - 3 procs:  period 4 per compute interval, latency 12 + 2 (boundaries)
  const Application app(0.0, {StageSpec{4.0, 1.0}, StageSpec{4.0, 1.0},
                              StageSpec{4.0, 0.0}});
  const double loose = min_period_under_latency(app, 1.0, 1.0,
                                                CommModel::Overlap, 3, 100.0);
  EXPECT_DOUBLE_EQ(loose, 4.0);
  const double tight = min_period_under_latency(app, 1.0, 1.0,
                                                CommModel::Overlap, 3, 12.0);
  EXPECT_DOUBLE_EQ(tight, 12.0);  // latency 12 only achievable unsplit
  const double impossible = min_period_under_latency(
      app, 1.0, 1.0, CommModel::Overlap, 3, 11.0);
  EXPECT_FALSE(std::isfinite(impossible));
}

/// Theorem 15/16 oracle check: latency minimization under period bounds
/// matches the exhaustive optimum (random small fully-hom instances).
class BicriteriaOracle : public ::testing::TestWithParam<int> {};

TEST_P(BicriteriaOracle, LatencyUnderPeriodMatchesExact) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 401 + 13);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = shape.applications + rng.index(3);
  shape.platform_class = PlatformClass::FullyHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  // Pick a period bound between the unconstrained optimum and 3x it, so the
  // constraint genuinely bites some of the time.
  const auto unconstrained = exact::exact_min_period(
      problem, exact::MappingKind::Interval);
  ASSERT_TRUE(unconstrained.has_value());
  const double bound = unconstrained->value * rng.uniform(1.0, 3.0);
  const Thresholds period_bounds =
      Thresholds::uniform(problem, bound, core::WeightPolicy::Priority);

  const auto fast = multi_min_latency_under_period(problem, period_bounds);

  core::ConstraintSet constraints;
  constraints.period = period_bounds;
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  const auto oracle = exact::exact_minimize(problem, options,
                                            exact::Objective::Latency,
                                            constraints);
  ASSERT_EQ(fast.has_value(), oracle.has_value());
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9);
  }
}

TEST_P(BicriteriaOracle, PeriodUnderLatencyMatchesExact) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 677 + 43);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = shape.applications + rng.index(3);
  shape.platform_class = PlatformClass::FullyHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  const auto best_latency = exact::exact_min_latency(
      problem, exact::MappingKind::Interval);
  ASSERT_TRUE(best_latency.has_value());
  const double bound = best_latency->value * rng.uniform(1.0, 2.0);
  const Thresholds latency_bounds =
      Thresholds::uniform(problem, bound, core::WeightPolicy::Priority);

  const auto fast = multi_min_period_under_latency(problem, latency_bounds);

  core::ConstraintSet constraints;
  constraints.latency = latency_bounds;
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  const auto oracle = exact::exact_minimize(problem, options,
                                            exact::Objective::Period,
                                            constraints);
  ASSERT_EQ(fast.has_value(), oracle.has_value());
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BicriteriaOracle, ::testing::Range(0, 40));

}  // namespace
}  // namespace pipeopt::algorithms
