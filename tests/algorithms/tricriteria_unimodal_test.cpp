#include "algorithms/tricriteria_unimodal.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"
#include "util/numeric.hpp"

namespace pipeopt::algorithms {
namespace {

using core::CommModel;
using core::ConstraintSet;
using core::PlatformClass;
using core::Thresholds;

core::Problem unimodal_problem(util::Rng& rng, std::size_t apps,
                               std::size_t procs, std::size_t max_stages = 3) {
  gen::ProblemShape shape;
  shape.applications = apps;
  shape.processors = procs;
  shape.app.min_stages = 1;
  shape.app.max_stages = max_stages;
  shape.platform.modes = 1;
  shape.platform.static_energy = 0.5;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  return gen::random_problem(rng, shape);
}

TEST(AffordableProcessors, BudgetToCount) {
  util::Rng rng(61);
  const auto problem = unimodal_problem(rng, 1, 4);
  const double unit = problem.platform().processor_energy(0, 0);
  EXPECT_EQ(affordable_processors(problem, unit * 3), 3u);
  EXPECT_EQ(affordable_processors(problem, unit * 3.7), 3u);
  EXPECT_EQ(affordable_processors(problem, unit * 0.5), 0u);
  EXPECT_EQ(affordable_processors(problem, unit * 100), 4u);  // clamp to p
}

TEST(AffordableProcessors, RejectsMultiModal) {
  util::Rng rng(62);
  gen::ProblemShape shape;
  shape.platform.modes = 2;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)affordable_processors(problem, 10.0), std::invalid_argument);
}

TEST(OneToOneTricriteria, FeasibilityIsSingleEvaluation) {
  util::Rng rng(63);
  const auto problem = unimodal_problem(rng, 1, 6, 3);
  ConstraintSet loose;
  const auto feasible = one_to_one_tricriteria_feasible(problem, loose);
  ASSERT_TRUE(feasible.has_value());
  EXPECT_TRUE(feasible->mapping.is_one_to_one());

  ConstraintSet impossible;
  impossible.energy_budget = 0.1;
  EXPECT_FALSE(one_to_one_tricriteria_feasible(problem, impossible).has_value());
}

TEST(TricriteriaFaces, MappingsRespectAllBounds) {
  util::Rng rng(64);
  for (int iter = 0; iter < 10; ++iter) {
    const auto problem = unimodal_problem(rng, 1 + rng.index(2), 5);
    const double unit = problem.platform().processor_energy(0, 0);
    const double budget = unit * static_cast<double>(2 + rng.index(3));

    const auto period_opt = exact::exact_min_period(
        problem, exact::MappingKind::Interval);
    ASSERT_TRUE(period_opt.has_value());
    const auto latency_opt = exact::exact_min_latency(
        problem, exact::MappingKind::Interval);
    ASSERT_TRUE(latency_opt.has_value());
    const Thresholds latency_bounds = Thresholds::uniform(
        problem, latency_opt->value * 1.5, core::WeightPolicy::Priority);
    const Thresholds period_bounds = Thresholds::uniform(
        problem, period_opt->value * 1.5, core::WeightPolicy::Priority);

    if (const auto r =
            interval_min_period_tricriteria(problem, latency_bounds, budget)) {
      const auto m = core::evaluate(problem, r->mapping);
      EXPECT_TRUE(latency_bounds.satisfied_by(
          core::per_app_values(m, core::Criterion::Latency)));
      EXPECT_TRUE(util::approx_le(m.energy, budget));
      EXPECT_NEAR(m.max_weighted_period, r->value, 1e-9);
    }
    if (const auto r =
            interval_min_latency_tricriteria(problem, period_bounds, budget)) {
      const auto m = core::evaluate(problem, r->mapping);
      EXPECT_TRUE(period_bounds.satisfied_by(
          core::per_app_values(m, core::Criterion::Period)));
      EXPECT_TRUE(util::approx_le(m.energy, budget));
      EXPECT_NEAR(m.max_weighted_latency, r->value, 1e-9);
    }
    if (const auto r = interval_min_energy_tricriteria(problem, period_bounds,
                                                       latency_bounds)) {
      const auto m = core::evaluate(problem, r->mapping);
      EXPECT_TRUE(period_bounds.satisfied_by(
          core::per_app_values(m, core::Criterion::Period)));
      EXPECT_TRUE(latency_bounds.satisfied_by(
          core::per_app_values(m, core::Criterion::Latency)));
      EXPECT_NEAR(m.energy, r->value, 1e-9);
    }
  }
}

/// Theorem 24 oracle checks for all three faces.
class TricriteriaOracle : public ::testing::TestWithParam<int> {};

TEST_P(TricriteriaOracle, EnergyFaceMatchesExact) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 73 + 19);
  const auto problem = unimodal_problem(rng, 1 + rng.index(2),
                                        1 + rng.index(2) + rng.index(4));
  const auto period_opt =
      exact::exact_min_period(problem, exact::MappingKind::Interval);
  const auto latency_opt =
      exact::exact_min_latency(problem, exact::MappingKind::Interval);
  if (!period_opt || !latency_opt) return;  // p < A: nothing to compare
  const Thresholds period_bounds = Thresholds::uniform(
      problem, period_opt->value * rng.uniform(1.0, 2.0),
      core::WeightPolicy::Priority);
  const Thresholds latency_bounds = Thresholds::uniform(
      problem, latency_opt->value * rng.uniform(1.0, 2.0),
      core::WeightPolicy::Priority);

  const auto fast =
      interval_min_energy_tricriteria(problem, period_bounds, latency_bounds);
  const auto oracle = exact::exact_min_energy_tricriteria(
      problem, exact::MappingKind::Interval, period_bounds, latency_bounds);
  ASSERT_EQ(fast.has_value(), oracle.has_value()) << GetParam();
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9) << GetParam();
  }
}

TEST_P(TricriteriaOracle, PeriodFaceMatchesExact) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 89 + 23);
  const auto problem = unimodal_problem(rng, 1 + rng.index(2), 4);
  const auto latency_opt =
      exact::exact_min_latency(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(latency_opt.has_value());
  const Thresholds latency_bounds = Thresholds::uniform(
      problem, latency_opt->value * rng.uniform(1.0, 2.0),
      core::WeightPolicy::Priority);
  const double unit = problem.platform().processor_energy(0, 0);
  const double budget = unit * static_cast<double>(2 + rng.index(3));

  const auto fast =
      interval_min_period_tricriteria(problem, latency_bounds, budget);

  core::ConstraintSet constraints;
  constraints.latency = latency_bounds;
  constraints.energy_budget = budget;
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  const auto oracle = exact::exact_minimize(problem, options,
                                            exact::Objective::Period,
                                            constraints);
  ASSERT_EQ(fast.has_value(), oracle.has_value()) << GetParam();
  if (fast) {
    EXPECT_NEAR(fast->value, oracle->value, 1e-9) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TricriteriaOracle, ::testing::Range(0, 40));

}  // namespace
}  // namespace pipeopt::algorithms
