#!/bin/sh
# CLI smoke test: exit-code contract of the pipeopt binary.
#   0 = solved, 1 = infeasible, 2 = usage / parse error, 3 = transport
#   failure (client cannot connect, or the connection is lost mid-request).
# Usage: cli_smoke_test.sh <path-to-pipeopt-binary>
set -u
BIN="$1"
TMPDIR="${TMPDIR:-/tmp}/pipeopt_cli_smoke.$$"
mkdir -p "$TMPDIR"
trap 'rm -rf "$TMPDIR"' EXIT
fail() { echo "FAIL: $1" >&2; exit 1; }

cat > "$TMPDIR/ok.txt" <<'PROB'
# paper §2 motivating example (comm-homogeneous, multi-modal)
comm overlap
alpha 2
bandwidth 1
processor P1 static=0 speeds=3,6
processor P2 static=0 speeds=6,8
processor P3 static=0 speeds=1,6
app App1 weight=1 input=1 stages=3:3,2:2,1:0
app App2 weight=1 input=0 stages=2:2,6:1,4:1,2:1
PROB

run() { "$BIN" "$@" >"$TMPDIR/out" 2>"$TMPDIR/err"; echo $?; }

# --- exit 0: solvable requests -------------------------------------------
[ "$(run "$TMPDIR/ok.txt" show)" = 0 ] || fail "show should exit 0"
[ "$(run "$TMPDIR/ok.txt" solve --objective period)" = 0 ] \
  || fail "solve --objective period should exit 0: $(cat "$TMPDIR/err")"
grep -q "solver:" "$TMPDIR/out" || fail "solve output should name the solver"
[ "$(run "$TMPDIR/ok.txt" solve --objective period --solver exact-enumeration)" = 0 ] \
  || fail "forced exact-enumeration should exit 0"
grep -q "exact-enumeration" "$TMPDIR/out" || fail "forced solver name should be reported"
[ "$(run "$TMPDIR/ok.txt" solve --objective latency)" = 0 ] \
  || fail "solve --objective latency should exit 0"
[ "$(run "$TMPDIR/ok.txt" solve --objective energy --period-bounds 10)" = 0 ] \
  || fail "solve --objective energy should exit 0"
[ "$(run "$TMPDIR/ok.txt" list-solvers)" = 0 ] || fail "list-solvers should exit 0"
grep -q "interval-period-dp" "$TMPDIR/out" || fail "list-solvers should list interval-period-dp"
# legacy commands still work
[ "$(run "$TMPDIR/ok.txt" min-period)" = 0 ] || fail "min-period should exit 0"

# --- solve-batch: one JSONL manifest, one request, aggregated exit code ---
cat > "$TMPDIR/batch.jsonl" <<PROB
{"path": "ok.txt"}
{"path": "$TMPDIR/ok.txt"}
{"problem": "comm overlap\nbandwidth 1\nprocessor P1 static=0 speeds=2\nprocessor P2 static=0 speeds=4\nprocessor P3 static=0 speeds=1\napp A weight=1 input=0 stages=2:1,3:0\napp B weight=2 input=1 stages=5:0\n"}
PROB
[ "$(run "$TMPDIR/batch.jsonl" solve-batch --objective period --jobs 2)" = 0 ] \
  || fail "solve-batch should exit 0 when every instance solves: $(cat "$TMPDIR/err")"
grep -q "dispatch plans=1" "$TMPDIR/out" \
  || fail "solve-batch should report the shared dispatch plan"
grep -q "3 instances" "$TMPDIR/out" || fail "solve-batch should solve all instances"
# any infeasible instance makes the batch exit 1
[ "$(run "$TMPDIR/batch.jsonl" solve-batch --objective energy --period-bounds 0.0001)" = 1 ] \
  || fail "solve-batch with an unmeetable bound should exit 1"
# usage/parse errors exit 2
[ "$(run "$TMPDIR/batch.jsonl" solve-batch)" = 2 ] \
  || fail "solve-batch without --objective should exit 2"
[ "$(run "$TMPDIR/batch.jsonl" solve-batch --objective period --jobs nonsense)" = 2 ] \
  || fail "solve-batch with a bad --jobs should exit 2"
[ "$(run "$TMPDIR/batch.jsonl" solve-batch --objective period --solver no-such-solver)" = 2 ] \
  || fail "solve-batch with an unknown solver should exit 2"
echo '{"path": }' > "$TMPDIR/bad.jsonl"
[ "$(run "$TMPDIR/bad.jsonl" solve-batch --objective period)" = 2 ] \
  || fail "malformed JSONL should exit 2"
: > "$TMPDIR/empty.jsonl"
[ "$(run "$TMPDIR/empty.jsonl" solve-batch --objective period)" = 2 ] \
  || fail "empty batch manifest should exit 2"

# --- solve-batch --out: the server wire format, one line per instance ----
[ "$(run "$TMPDIR/batch.jsonl" solve-batch --objective period --out "$TMPDIR/results.jsonl")" = 0 ] \
  || fail "solve-batch --out should exit 0"
[ "$(wc -l < "$TMPDIR/results.jsonl")" = 3 ] \
  || fail "--out should write one JSONL line per instance"
grep -q '"type":"result"' "$TMPDIR/results.jsonl" \
  || fail "--out lines should be result_io wire objects"
[ "$(run "$TMPDIR/batch.jsonl" solve-batch --objective period --out)" = 2 ] \
  || fail "--out without a path should exit 2"

# --- serve / client / --timeout-ms exit-code paths ------------------------
[ "$(run serve --help)" = 0 ] || fail "serve --help should exit 0"
grep -q "stdio" "$TMPDIR/out" || fail "serve --help should document --stdio"
grep -q "cache-entries" "$TMPDIR/out" \
  || fail "serve --help should document --cache-entries"
[ "$(run serve --port nonsense)" = 2 ] || fail "bad serve --port should exit 2"
[ "$(run serve --port 0 --nonsense)" = 2 ] || fail "unknown serve flag should exit 2"
[ "$(run serve --cache-entries nonsense)" = 2 ] \
  || fail "bad serve --cache-entries should exit 2"
[ "$(run serve --cache-entries)" = 2 ] \
  || fail "serve --cache-entries without a value should exit 2"
# client against a dead port is a transport failure: exit 3, with a hint
[ "$(run client --port 1 --manifest "$TMPDIR/batch.jsonl" --objective period)" = 3 ] \
  || fail "client against a dead port should exit 3"
grep -q "cannot connect" "$TMPDIR/err" \
  || fail "dead-port client should say it cannot connect"
grep -q "listening" "$TMPDIR/err" \
  || fail "dead-port client should hint at starting a server or router"
# ... but usage errors stay exit 2 even when the port is also dead
[ "$(run client --manifest "$TMPDIR/batch.jsonl" --objective period)" = 2 ] \
  || fail "client without --port should exit 2"
[ "$(run client --port 1)" = 2 ] || fail "client without input should exit 2"
# a deadline long enough to never fire leaves the solve untouched
[ "$(run "$TMPDIR/ok.txt" solve --objective period --timeout-ms 60000)" = 0 ] \
  || fail "solve --timeout-ms with a generous deadline should exit 0"
[ "$(run "$TMPDIR/ok.txt" solve --objective period --timeout-ms)" = 2 ] \
  || fail "--timeout-ms without a value should exit 2"
# one full request/response round trip through serve --stdio
printf '{"type":"ping","id":"smoke"}\n' | "$BIN" serve --stdio \
  > "$TMPDIR/stdio.out" 2>/dev/null \
  || fail "serve --stdio should exit 0 at EOF"
grep -q '"type":"pong"' "$TMPDIR/stdio.out" \
  || fail "serve --stdio should answer the ping"
# the solve cache answers a repeated request byte-identically (wall_s and
# all: hits return the stored result verbatim)
printf '{"objective":"period","path":"%s"}\n{"objective":"period","path":"%s"}\n' \
    "$TMPDIR/ok.txt" "$TMPDIR/ok.txt" \
  | "$BIN" serve --stdio --cache-entries 8 > "$TMPDIR/stdio_cache.out" 2>/dev/null \
  || fail "serve --stdio --cache-entries should exit 0 at EOF"
[ "$(wc -l < "$TMPDIR/stdio_cache.out")" = 2 ] \
  || fail "both cached-path requests should be answered"
[ "$(sort -u "$TMPDIR/stdio_cache.out" | wc -l)" = 1 ] \
  || fail "a repeated request should be answered byte-identically from the cache"

# --- pareto: Pareto-front sweeps through the facade -----------------------
[ "$(run "$TMPDIR/ok.txt" pareto --sweep-bounds 1,2,14)" = 0 ] \
  || fail "pareto with a solvable grid should exit 0: $(cat "$TMPDIR/err")"
grep -q "front: " "$TMPDIR/out" || fail "pareto should report the front size"
grep -q "monotone" "$TMPDIR/out" || fail "pareto should report monotonicity"
# the full option surface: explicit pair, refinement, jobs, fixed bounds
[ "$(run "$TMPDIR/ok.txt" pareto --objective energy --sweep period \
      --sweep-bounds 1,14 --refine 2 --jobs 2)" = 0 ] \
  || fail "pareto with explicit pair and refinement should exit 0"
# --out writes the wire lines the server streams: N front points + summary
[ "$(run "$TMPDIR/ok.txt" pareto --sweep-bounds 1,2,14 --out "$TMPDIR/front.jsonl")" = 0 ] \
  || fail "pareto --out should exit 0"
grep -q '"type":"result"' "$TMPDIR/front.jsonl" \
  || fail "pareto --out should write result_io front points"
grep -q '"bound":' "$TMPDIR/front.jsonl" \
  || fail "pareto --out front points should carry their bound"
[ "$(tail -n 1 "$TMPDIR/front.jsonl" | grep -c '"type":"pareto"')" = 1 ] \
  || fail "pareto --out should end with the summary line"
# an all-infeasible grid leaves an empty front: exit 1
[ "$(run "$TMPDIR/ok.txt" pareto --sweep-bounds 0.0001)" = 1 ] \
  || fail "pareto with an unmeetable grid should exit 1"
# usage errors exit 2
[ "$(run "$TMPDIR/ok.txt" pareto)" = 2 ] \
  || fail "pareto without --sweep-bounds should exit 2"
[ "$(run "$TMPDIR/ok.txt" pareto --sweep-bounds nonsense)" = 2 ] \
  || fail "pareto with a malformed grid should exit 2"
[ "$(run "$TMPDIR/ok.txt" pareto --sweep sideways --sweep-bounds 1)" = 2 ] \
  || fail "pareto with a bad --sweep should exit 2"
[ "$(run "$TMPDIR/ok.txt" pareto --sweep energy --sweep-bounds 1)" = 2 ] \
  || fail "pareto with objective == swept criterion should exit 2"
[ "$(run "$TMPDIR/ok.txt" pareto --sweep-bounds 1 --period-bounds 2)" = 2 ] \
  || fail "pareto with a pre-constrained swept axis should exit 2"
# client --pareto shares the sweep flags and the exit-code contract
[ "$(run client --port 1 --manifest "$TMPDIR/batch.jsonl" --pareto --sweep-bounds 1,2)" = 3 ] \
  || fail "client --pareto against a dead port should exit 3"
[ "$(run client --port 1 --pareto "$TMPDIR/batch.jsonl")" = 2 ] \
  || fail "client --pareto without --manifest should exit 2"

# --- route: the sharded front tier ----------------------------------------
[ "$(run route --help)" = 0 ] || fail "route --help should exit 0"
grep -q -- "--shards" "$TMPDIR/out" || fail "route --help should document --shards"
grep -q -- "--spawn" "$TMPDIR/out" || fail "route --help should document --spawn"
grep -q -- "--window" "$TMPDIR/out" || fail "route --help should document --window"
[ "$(run route)" = 2 ] || fail "route without --shards/--spawn should exit 2"
[ "$(run route --shards 127.0.0.1:1 --spawn 2)" = 2 ] \
  || fail "route with both --shards and --spawn should exit 2"
[ "$(run route --shards nonsense)" = 2 ] \
  || fail "route with a malformed shard list should exit 2"
[ "$(run route --spawn 2 --window 0)" = 2 ] \
  || fail "route with a zero window should exit 2"
[ "$(run route --spawn nonsense)" = 2 ] || fail "bad route --spawn should exit 2"

# --- exit 1: infeasible ---------------------------------------------------
[ "$(run "$TMPDIR/ok.txt" solve --objective energy --period-bounds 0.0001)" = 1 ] \
  || fail "unmeetable period bound should exit 1"
[ "$(run "$TMPDIR/ok.txt" solve --objective period --kind one-to-one)" = 1 ] \
  || fail "one-to-one with p < N should exit 1"

# --- exit 2: usage / parse errors ----------------------------------------
[ "$(run "$TMPDIR/ok.txt")" = 2 ] || fail "missing command should exit 2"
[ "$(run "$TMPDIR/ok.txt" solve)" = 2 ] || fail "solve without --objective should exit 2"
[ "$(run "$TMPDIR/ok.txt" solve --objective nonsense)" = 2 ] \
  || fail "bad objective should exit 2"
[ "$(run "$TMPDIR/ok.txt" solve --objective period --solver no-such-solver)" = 2 ] \
  || fail "unknown solver name should exit 2"
echo "bandwidth" > "$TMPDIR/bad.txt"
[ "$(run "$TMPDIR/bad.txt" show)" = 2 ] || fail "parse error should exit 2"
[ "$(run /nonexistent/file.txt show)" = 2 ] || fail "unreadable file should exit 2"

echo "cli smoke: all checks passed"
