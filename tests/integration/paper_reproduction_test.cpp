/// \file paper_reproduction_test.cpp
/// End-to-end integration: the §2 motivating example traversed with every
/// layer of the library — polynomial algorithms where the paper proves
/// polynomiality, exact search where it proves NP-hardness, heuristics on
/// top, and the simulator validating that the chosen mappings actually
/// deliver the claimed steady-state behaviour.

#include <gtest/gtest.h>

#include "algorithms/latency_algorithms.hpp"
#include "core/evaluation.hpp"
#include "core/pareto.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "heuristics/local_search.hpp"
#include "heuristics/speed_scaling.hpp"
#include "sim/simulator.hpp"

namespace pipeopt {
namespace {

using core::Thresholds;
using gen::MotivatingExampleFacts;

class PaperReproduction : public ::testing::Test {
 protected:
  core::Problem problem = gen::motivating_example();
};

TEST_F(PaperReproduction, LatencyViaPolynomialAlgorithm) {
  // Interval latency on comm-homogeneous platforms is polynomial (Thm 12).
  const auto solution = algorithms::interval_min_latency(problem);
  ASSERT_TRUE(solution.has_value());
  EXPECT_DOUBLE_EQ(solution->value, MotivatingExampleFacts::kOptimalLatency);
}

TEST_F(PaperReproduction, PeriodViaExactSearch) {
  // Interval period with heterogeneous processors is NP-hard (Thm 4);
  // the instance is tiny, so exhaustive search is the reference.
  const auto result =
      exact::exact_min_period(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, MotivatingExampleFacts::kOptimalPeriod);
}

TEST_F(PaperReproduction, EnergyParetoProgression) {
  // The 136 -> 46 -> 10 energy progression as the period threshold relaxes.
  std::vector<core::ParetoPoint> points;
  for (double bound : {1.0, 2.0, 14.0}) {
    const auto result = exact::exact_min_energy_under_period(
        problem, exact::MappingKind::Interval,
        Thresholds::per_app({bound, bound}));
    ASSERT_TRUE(result.has_value());
    core::ParetoPoint pt;
    pt.period = bound;
    pt.energy = result->value;
    points.push_back(pt);
  }
  EXPECT_DOUBLE_EQ(points[0].energy,
                   MotivatingExampleFacts::kEnergyAtOptimalPeriod);
  EXPECT_DOUBLE_EQ(points[1].energy,
                   MotivatingExampleFacts::kEnergyUnderPeriod2);
  EXPECT_DOUBLE_EQ(points[2].energy, MotivatingExampleFacts::kMinimalEnergy);
  const auto front = core::pareto_front(points, /*use_latency=*/false);
  EXPECT_EQ(front.size(), 3u);
  EXPECT_TRUE(core::energy_monotone_in_period(front));
}

TEST_F(PaperReproduction, SimulatorConfirmsOptimalMappings) {
  const auto period_opt =
      exact::exact_min_period(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(period_opt.has_value());
  sim::SimConfig config;
  config.datasets = 64;
  const auto sim_result = sim::simulate(problem, period_opt->mapping, config);
  for (const auto& app : sim_result.apps) {
    EXPECT_LE(app.steady_period,
              MotivatingExampleFacts::kOptimalPeriod + 1e-9);
  }
}

TEST_F(PaperReproduction, HeuristicsBracketsOptimalEnergy) {
  // Tri-criteria NP-hard regime: DVFS scaling alone lands above the exact
  // optimum, structural local search narrows the gap.
  const core::Mapping period_optimal(
      {{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  core::ConstraintSet constraints;
  constraints.period = Thresholds::per_app({2.0, 2.0});

  const auto scaled =
      heuristics::scale_down_speeds(problem, period_optimal, constraints);
  const auto searched = heuristics::local_search(
      problem, scaled.mapping, heuristics::Goal::Energy, constraints);

  EXPECT_GE(scaled.energy_after, MotivatingExampleFacts::kEnergyUnderPeriod2);
  EXPECT_LE(searched.value, scaled.energy_after);
  EXPECT_GE(searched.value, MotivatingExampleFacts::kEnergyUnderPeriod2 - 1e-9);
}

TEST_F(PaperReproduction, NoOverlapModelDegradesPeriodOnly) {
  // Switching to the no-overlap model can only worsen periods (sums vs
  // maxima) and leaves latencies unchanged (Eq. 5 is model-independent).
  const core::Mapping mapping(
      {{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  const auto overlap = core::evaluate(problem, mapping);
  const auto serial =
      core::evaluate(problem.with_comm_model(core::CommModel::NoOverlap),
                     mapping);
  EXPECT_GE(serial.max_weighted_period, overlap.max_weighted_period);
  EXPECT_DOUBLE_EQ(serial.max_weighted_latency, overlap.max_weighted_latency);
}

}  // namespace
}  // namespace pipeopt
