/// \file rational_crosscheck_test.cpp
/// Exact-arithmetic verification of the double-precision evaluation path:
/// on instances with small-integer data, period/latency/energy recomputed
/// with util::Rational must match core::evaluate bit-for-bit (all involved
/// doubles are exactly representable dyadic/small-denominator values only
/// when the rational denominator divides a power of two — so we compare
/// with to_double() equality on the rational result, which is the correctly
/// rounded value, against the double pipeline within 1 ulp-ish tolerance).

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/enumeration.hpp"
#include "gen/random_instances.hpp"
#include "util/rational.hpp"

namespace pipeopt {
namespace {

using util::Rational;

/// Integer-valued random problem (weights 1, integer w/δ/speeds/bandwidth).
core::Problem integer_problem(util::Rng& rng) {
  const std::size_t apps = 1 + rng.index(2);
  std::vector<core::Application> applications;
  for (std::size_t a = 0; a < apps; ++a) {
    const std::size_t n = 1 + rng.index(3);
    std::vector<core::StageSpec> stages(n);
    for (auto& s : stages) {
      s.compute = static_cast<double>(rng.uniform_int(1, 12));
      s.output_size = static_cast<double>(rng.uniform_int(0, 4));
    }
    applications.push_back(core::Application(
        static_cast<double>(rng.uniform_int(0, 3)), std::move(stages)));
  }
  std::vector<core::Processor> procs;
  const std::size_t p = 3 + rng.index(3);
  for (std::size_t u = 0; u < p; ++u) {
    std::vector<double> speeds;
    const std::size_t modes = 1 + rng.index(2);
    for (std::size_t m = 0; m < modes; ++m) {
      speeds.push_back(static_cast<double>(rng.uniform_int(1, 9)));
    }
    procs.emplace_back(std::move(speeds),
                       static_cast<double>(rng.uniform_int(0, 2)));
  }
  const auto bw = static_cast<double>(rng.uniform_int(1, 4));
  return core::Problem(std::move(applications),
                       core::Platform(std::move(procs), bw, 2.0),
                       rng.chance(0.5) ? core::CommModel::Overlap
                                       : core::CommModel::NoOverlap);
}

/// Exact recomputation of per-app period/latency and energy.
struct ExactMetrics {
  Rational period;
  Rational latency;
  Rational energy;
};

ExactMetrics exact_evaluate(const core::Problem& problem,
                            const core::Mapping& mapping) {
  ExactMetrics out;
  const auto& platform = problem.platform();
  const auto r_of = [](double x) {
    // All inputs are small integers, exactly representable.
    return Rational(static_cast<std::int64_t>(x));
  };
  const Rational bw = r_of(platform.uniform_bandwidth());

  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto ivs = mapping.intervals_of(a);
    const auto& app = problem.application(a);
    Rational period(0);
    Rational latency = r_of(app.boundary_size(0)) / bw;
    for (std::size_t j = 0; j < ivs.size(); ++j) {
      const Rational speed = r_of(platform.processor(ivs[j].proc).speed(ivs[j].mode));
      Rational work(0);
      for (std::size_t k = ivs[j].first; k <= ivs[j].last; ++k) {
        work += r_of(app.compute(k));
      }
      const Rational in = r_of(app.boundary_size(ivs[j].first)) / bw;
      const Rational comp = work / speed;
      const Rational outc = r_of(app.boundary_size(ivs[j].last + 1)) / bw;
      const Rational cycle =
          problem.comm_model() == core::CommModel::Overlap
              ? Rational::max(Rational::max(in, comp), outc)
              : in + comp + outc;
      period = Rational::max(period, cycle);
      latency += comp + outc;
    }
    out.period = Rational::max(out.period, period);
    out.latency = Rational::max(out.latency, latency);
  }
  for (const auto& iv : mapping.intervals()) {
    const Rational speed = r_of(platform.processor(iv.proc).speed(iv.mode));
    out.energy += r_of(platform.processor(iv.proc).static_energy()) +
                  speed * speed;  // α = 2
  }
  return out;
}

class RationalCrosscheck : public ::testing::TestWithParam<int> {};

TEST_P(RationalCrosscheck, DoubleEvaluationMatchesExactRationals) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1187 + 55);
  const auto problem = integer_problem(rng);

  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  options.enumerate_modes = true;
  options.node_limit = 500'000;
  std::size_t checked = 0;
  try {
    exact::enumerate_mappings(
        problem, options, [&](std::span<const core::IntervalAssignment> ivs) {
          if (checked >= 200) return;  // sample bound per instance
          ++checked;
          const core::Mapping mapping(
              std::vector<core::IntervalAssignment>(ivs.begin(), ivs.end()));
          const auto fast = core::evaluate(problem, mapping, false);
          const auto slow = exact_evaluate(problem, mapping);
          ASSERT_NEAR(fast.max_weighted_period, slow.period.to_double(), 1e-12);
          ASSERT_NEAR(fast.max_weighted_latency, slow.latency.to_double(),
                      1e-12);
          ASSERT_NEAR(fast.energy, slow.energy.to_double(), 1e-9);
        });
  } catch (const exact::SearchLimitExceeded&) {
  }
  EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RationalCrosscheck, ::testing::Range(0, 30));

}  // namespace
}  // namespace pipeopt
