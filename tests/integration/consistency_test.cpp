/// \file consistency_test.cpp
/// Cross-algorithm invariants: relationships that must hold between the
/// library's solvers regardless of instance, platform class or model.
/// These are the "free" theorems the implementation must respect.

#include <gtest/gtest.h>

#include "algorithms/bicriteria_period_latency.hpp"
#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/energy_matching.hpp"
#include "algorithms/interval_period_multi.hpp"
#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/speed_scaling.hpp"
#include "util/numeric.hpp"

namespace pipeopt {
namespace {

using core::CommModel;
using core::PlatformClass;
using core::Thresholds;

class Consistency : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{static_cast<std::uint64_t>(GetParam()) * 613 + 101};
};

TEST_P(Consistency, IntervalOptimumNeverWorseThanOneToOne) {
  // One-to-one mappings are interval mappings with singleton intervals, so
  // the interval optimum is at least as good for any objective.
  gen::ProblemShape shape;
  shape.applications = 1 + rng_.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = 6;
  shape.platform_class = rng_.chance(0.5) ? PlatformClass::FullyHomogeneous
                                          : PlatformClass::CommHomogeneous;
  shape.comm = rng_.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng_, shape);

  const auto one = exact::exact_min_period(problem, exact::MappingKind::OneToOne);
  const auto interval =
      exact::exact_min_period(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(interval.has_value());
  if (one) {
    EXPECT_LE(interval->value, one->value + 1e-12);
  }
  const auto one_l =
      exact::exact_min_latency(problem, exact::MappingKind::OneToOne);
  const auto interval_l =
      exact::exact_min_latency(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(interval_l.has_value());
  if (one_l) {
    EXPECT_LE(interval_l->value, one_l->value + 1e-12);
  }
}

TEST_P(Consistency, PeriodNeverExceedsLatency) {
  // Every cycle-time piece of every interval appears in the latency sum
  // (Eq. 3/4 vs Eq. 5), so T_a <= L_a for any mapping, both models.
  gen::ProblemShape shape;
  shape.applications = 1 + rng_.index(3);
  shape.processors = 3 + rng_.index(4);
  shape.platform.modes = 1 + rng_.index(2);
  const std::array<PlatformClass, 3> classes{PlatformClass::FullyHomogeneous,
                                             PlatformClass::CommHomogeneous,
                                             PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[rng_.index(3)];
  shape.comm = rng_.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng_, shape);

  // Random valid mapping via enumeration sampling: take every 7th mapping.
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  options.enumerate_modes = true;
  options.node_limit = 2'000'000;
  std::size_t counter = 0;
  try {
    exact::enumerate_mappings(
        problem, options, [&](std::span<const core::IntervalAssignment> ivs) {
          if (++counter % 7 != 0) return;
          const core::Mapping mapping(
              std::vector<core::IntervalAssignment>(ivs.begin(), ivs.end()));
          const auto metrics = core::evaluate(problem, mapping, false);
          for (const auto& app : metrics.per_app) {
            ASSERT_TRUE(util::approx_le(app.period, app.latency))
                << "period " << app.period << " > latency " << app.latency;
          }
        });
  } catch (const exact::SearchLimitExceeded&) {
    // Large space: the sampled prefix is plenty.
  }
  EXPECT_GT(counter, 0u);
}

TEST_P(Consistency, OverlapPeriodNeverExceedsNoOverlap) {
  // max(a, b, c) <= a + b + c: Eq. 3 <= Eq. 4 on the same mapping.
  gen::ProblemShape shape;
  shape.applications = 1 + rng_.index(2);
  shape.processors = 4;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng_, shape);
  const auto overlap = problem.with_comm_model(CommModel::Overlap);
  const auto serial = problem.with_comm_model(CommModel::NoOverlap);

  const auto o = exact::exact_min_period(overlap, exact::MappingKind::Interval);
  const auto s = exact::exact_min_period(serial, exact::MappingKind::Interval);
  ASSERT_TRUE(o.has_value());
  ASSERT_TRUE(s.has_value());
  EXPECT_LE(o->value, s->value + 1e-12);
}

TEST_P(Consistency, EnergyMonotoneInPeriodBound) {
  // Relaxing the period threshold can only reduce the optimal energy.
  gen::ProblemShape shape;
  shape.applications = 1 + rng_.index(2);
  shape.app.max_stages = 3;
  shape.processors = 4;
  shape.platform.modes = 2;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  const auto problem = gen::random_problem(rng_, shape);
  const auto perf = exact::exact_min_period(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(perf.has_value());

  double previous = util::kInfinity;
  for (double factor : {1.0, 1.3, 1.8, 2.5, 4.0}) {
    const auto result = algorithms::interval_min_energy_under_period(
        problem, Thresholds::uniform(problem, perf->value * factor));
    ASSERT_TRUE(result.has_value()) << factor;
    EXPECT_LE(result->value, previous + 1e-12) << factor;
    previous = result->value;
  }
}

TEST_P(Consistency, BicriteriaDualityRoundTrip) {
  // L*(T) = min latency under period bound T; T*(L) = min period under
  // latency bound L. Then T*(L*(T)) <= T must hold (the witness of L*(T)
  // certifies it), and L*(T*(L*(T))) == L*(T).
  gen::ProblemShape shape;
  shape.applications = 1;
  shape.app.min_stages = 2;
  shape.app.max_stages = 5;
  shape.processors = 4;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  const auto problem = gen::random_problem(rng_, shape);
  const auto& app = problem.application(0);
  const auto& platform = problem.platform();
  const double speed = platform.processor(0).max_speed();
  const double bw = platform.uniform_bandwidth();
  const std::size_t q = platform.processor_count();

  const auto unconstrained = exact::exact_min_period(
      problem, exact::MappingKind::Interval);
  ASSERT_TRUE(unconstrained.has_value());
  const double t_bound = unconstrained->value * rng_.uniform(1.0, 2.0);

  const algorithms::LatencyUnderPeriodDp dp(app, speed, bw,
                                            problem.comm_model(), q, t_bound);
  const double l_star = dp.min_latency_by_count(q);
  ASSERT_TRUE(std::isfinite(l_star));

  const double t_star = algorithms::min_period_under_latency(
      app, speed, bw, problem.comm_model(), q, l_star);
  EXPECT_TRUE(util::approx_le(t_star, t_bound));

  const algorithms::LatencyUnderPeriodDp dp2(app, speed, bw,
                                             problem.comm_model(), q, t_star);
  EXPECT_TRUE(util::approx_eq(dp2.min_latency_by_count(q), l_star));
}

TEST_P(Consistency, SpeedScalingIsIdempotent) {
  gen::ProblemShape shape;
  shape.applications = 1 + rng_.index(2);
  shape.processors = shape.applications + 2;
  shape.platform.modes = 3;
  shape.platform_class = PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng_, shape);
  const auto start = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(start.has_value());
  core::ConstraintSet constraints;
  constraints.period = Thresholds::uniform(
      problem,
      core::evaluate(problem, *start).max_weighted_period * rng_.uniform(1.0, 2.0));
  const auto once = heuristics::scale_down_speeds(problem, *start, constraints);
  const auto twice =
      heuristics::scale_down_speeds(problem, once.mapping, constraints);
  EXPECT_EQ(twice.steps, 0u);
  EXPECT_DOUBLE_EQ(twice.energy_after, once.energy_after);
}

TEST_P(Consistency, MatchingAndIntervalEnergyAgreeOnSingletonChains) {
  // When every application has exactly one stage, interval and one-to-one
  // mappings coincide, so Theorem 19's matching and Theorem 21's DP must
  // return the same optimal energy (fully homogeneous platforms).
  gen::ProblemShape shape;
  shape.applications = 1 + rng_.index(3);
  shape.app.min_stages = 1;
  shape.app.max_stages = 1;
  shape.processors = shape.applications + rng_.index(3);
  shape.platform.modes = 2;
  shape.platform_class = PlatformClass::FullyHomogeneous;
  const auto problem = gen::random_problem(rng_, shape);
  const auto perf = exact::exact_min_period(problem, exact::MappingKind::Interval);
  ASSERT_TRUE(perf.has_value());
  const Thresholds bounds =
      Thresholds::uniform(problem, perf->value * rng_.uniform(1.0, 2.0));

  const auto matching =
      algorithms::one_to_one_min_energy_under_period(problem, bounds);
  const auto dp = algorithms::interval_min_energy_under_period(problem, bounds);
  ASSERT_EQ(matching.has_value(), dp.has_value());
  if (matching) {
    EXPECT_NEAR(matching->value, dp->value, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Consistency, ::testing::Range(0, 25));

}  // namespace
}  // namespace pipeopt
