/// \file mapping_fuzz_test.cpp
/// Two seeded fuzz layers over random instances:
///  - MappingFuzz: failure injection — start from a valid mapping, apply a
///    random structural corruption, and require Mapping::validate to reject
///    it. Guards the invariant layer every solver relies on.
///  - PropertyFuzz: solver-level properties — every exact backend agrees on
///    the optimum, no heuristic ever reports below it, and every reported
///    (mapping, value) re-evaluates to itself through both the scalar and
///    the batch evaluator. Runs under the `fuzz` ctest label.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "api/exact_backend.hpp"
#include "api/registry.hpp"
#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "core/mapping.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"

namespace pipeopt {
namespace {

using core::IntervalAssignment;
using core::Mapping;

enum class Corruption {
  DuplicateProcessor,
  ShiftFirst,
  ShiftLast,
  DropInterval,
  BadApp,
  BadProc,
  BadMode,
  SwapIntervalOrder  // overlap two intervals of one application
};

/// Applies the corruption; returns nullopt when inapplicable to this mapping
/// (e.g. nothing to drop).
std::optional<Mapping> corrupt(const core::Problem& problem,
                               const Mapping& mapping, Corruption kind,
                               util::Rng& rng) {
  std::vector<IntervalAssignment> ivs(mapping.intervals().begin(),
                                      mapping.intervals().end());
  if (ivs.empty()) return std::nullopt;
  const std::size_t i = rng.index(ivs.size());
  switch (kind) {
    case Corruption::DuplicateProcessor: {
      if (ivs.size() < 2) return std::nullopt;
      const std::size_t j = (i + 1) % ivs.size();
      ivs[i].proc = ivs[j].proc;
      break;
    }
    case Corruption::ShiftFirst:
      if (ivs[i].first == ivs[i].last) return std::nullopt;
      ++ivs[i].first;  // leaves a gap before this interval
      break;
    case Corruption::ShiftLast:
      if (ivs[i].first == ivs[i].last) return std::nullopt;
      --ivs[i].last;  // leaves a gap after this interval
      break;
    case Corruption::DropInterval:
      ivs.erase(ivs.begin() + static_cast<std::ptrdiff_t>(i));
      if (ivs.empty()) return std::nullopt;
      break;
    case Corruption::BadApp:
      ivs[i].app = problem.application_count() + 3;
      break;
    case Corruption::BadProc:
      ivs[i].proc = problem.platform().processor_count() + 5;
      break;
    case Corruption::BadMode:
      ivs[i].mode = problem.platform().processor(ivs[i].proc).mode_count() + 2;
      break;
    case Corruption::SwapIntervalOrder: {
      // Make interval i overlap its successor within the same application.
      std::optional<std::size_t> next;
      for (std::size_t j = 0; j < ivs.size(); ++j) {
        if (j != i && ivs[j].app == ivs[i].app &&
            ivs[j].first == ivs[i].last + 1) {
          next = j;
          break;
        }
      }
      if (!next) return std::nullopt;
      ++ivs[i].last;  // now overlaps *next's first stage
      break;
    }
  }
  return Mapping(std::move(ivs));
}

class MappingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MappingFuzz, EveryCorruptionIsRejected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 13);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(3);
  shape.app.min_stages = 2;
  shape.app.max_stages = 5;
  shape.processors = shape.applications * 3;
  shape.platform.modes = 2;
  const std::array<core::PlatformClass, 3> classes{
      core::PlatformClass::FullyHomogeneous,
      core::PlatformClass::CommHomogeneous,
      core::PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[rng.index(3)];
  const auto problem = gen::random_problem(rng, shape);
  const auto mapping = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(mapping.has_value());
  ASSERT_FALSE(mapping->validate(problem).has_value());

  for (Corruption kind :
       {Corruption::DuplicateProcessor, Corruption::ShiftFirst,
        Corruption::ShiftLast, Corruption::DropInterval, Corruption::BadApp,
        Corruption::BadProc, Corruption::BadMode,
        Corruption::SwapIntervalOrder}) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto broken = corrupt(problem, *mapping, kind, rng);
      if (!broken) continue;
      EXPECT_TRUE(broken->validate(problem).has_value())
          << "corruption " << static_cast<int>(kind) << " went undetected";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MappingFuzz, ::testing::Range(0, 30));

/// Small random instance for solver-level properties: exhaustive backends
/// must stay cheap, so stages and processors are kept tight.
core::Problem property_instance(std::uint64_t seed) {
  util::Rng rng(seed * 6571 + 101);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.processors = 3 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.app.weighted = seed % 3 == 0;
  shape.platform.modes = 1 + rng.index(2);
  const std::array<core::PlatformClass, 3> classes{
      core::PlatformClass::FullyHomogeneous,
      core::PlatformClass::CommHomogeneous,
      core::PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[seed % 3];
  shape.comm = seed % 2 == 0 ? core::CommModel::Overlap
                             : core::CommModel::NoOverlap;
  return gen::random_problem(rng, shape);
}

/// The reported (mapping, value) pair must be self-consistent: the mapping
/// validates, and both evaluators reproduce the value bit-for-bit.
void expect_reevaluates(const core::Problem& problem,
                        const api::SolveRequest& request,
                        const api::SolveResult& result) {
  ASSERT_TRUE(result.mapping.has_value());
  EXPECT_EQ(result.mapping->validate(problem), std::nullopt);
  const core::Metrics scalar = core::evaluate(problem, *result.mapping);
  core::BatchEvaluator batch(problem);
  const core::Metrics& batched = batch.evaluate(*result.mapping);
  EXPECT_EQ(scalar.max_weighted_period, batched.max_weighted_period);
  EXPECT_EQ(scalar.max_weighted_latency, batched.max_weighted_latency);
  EXPECT_EQ(scalar.energy, batched.energy);
  double reported = 0.0;
  switch (request.objective) {
    case api::Objective::Period: reported = scalar.max_weighted_period; break;
    case api::Objective::Latency: reported = scalar.max_weighted_latency; break;
    case api::Objective::Energy: reported = scalar.energy; break;
  }
  EXPECT_EQ(result.value, reported);
}

class PropertyFuzz : public ::testing::TestWithParam<int> {};

/// Property 1: every exact backend that supports the request reports the
/// same feasibility verdict and, for bit-exact backends, the same optimum.
TEST_P(PropertyFuzz, ExactBackendsAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const core::Problem problem = property_instance(seed);
  api::SolveRequest request;
  request.objective =
      std::array{api::Objective::Period, api::Objective::Latency,
                 api::Objective::Energy}[seed % 3];

  std::optional<double> reference;
  for (const api::ExactBackend* backend : api::exact_backends()) {
    if (!backend->supports(problem, request)) continue;
    std::optional<exact::ExactResult> outcome;
    ASSERT_NO_THROW(outcome = backend->minimize(problem, request))
        << backend->info().name;
    if (!reference) {
      ASSERT_TRUE(outcome.has_value()) << backend->info().name;
      reference = outcome->value;
      continue;
    }
    ASSERT_TRUE(outcome.has_value()) << backend->info().name;
    if (backend->info().bit_exact) {
      EXPECT_EQ(outcome->value, *reference) << backend->info().name;
    } else {
      EXPECT_NEAR(outcome->value, *reference,
                  1e-5 * (1.0 + std::abs(*reference)))
          << backend->info().name;
    }
  }
  ASSERT_TRUE(reference.has_value());  // enumeration supports everything
}

/// Property 2: no heuristic reports a value below the exact optimum, and
/// Property 3: whatever it reports re-evaluates to itself.
TEST_P(PropertyFuzz, HeuristicsNeverBeatTheExactOptimum) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const core::Problem problem = property_instance(seed + 7000);
  api::SolveRequest request;
  request.objective = seed % 2 == 0 ? api::Objective::Period
                                    : api::Objective::Energy;

  const api::ExactBackend* oracle =
      api::find_exact_backend("exact-enumeration");
  ASSERT_NE(oracle, nullptr);
  const auto optimum = oracle->minimize(problem, request);
  ASSERT_TRUE(optimum.has_value());

  for (const api::Solver* solver : api::default_registry().solvers()) {
    if (solver->info().tier != api::CostTier::Heuristic) continue;
    api::SolveRequest forced = request;
    forced.solver = solver->info().name;
    const api::SolveResult result = api::solve(problem, forced);
    if (result.status == api::SolveStatus::NoSolver) continue;  // inapplicable
    ASSERT_TRUE(result.solved()) << solver->info().name;
    EXPECT_GE(result.value, optimum->value) << solver->info().name;
    expect_reevaluates(problem, forced, result);
  }
}

/// Property 3 for the auto-dispatch path across objectives and kinds: the
/// facade's reported value is always the value of its own mapping.
TEST_P(PropertyFuzz, ReportedValuesReevaluate) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const core::Problem problem = property_instance(seed + 14000);
  for (const api::Objective objective :
       {api::Objective::Period, api::Objective::Latency,
        api::Objective::Energy}) {
    api::SolveRequest request;
    request.objective = objective;
    if (seed % 4 == 0 && problem.one_to_one_applicable())
      request.kind = api::MappingKind::OneToOne;
    const api::SolveResult result = api::solve(problem, request);
    ASSERT_TRUE(result.solved()) << to_string(objective);
    expect_reevaluates(problem, request, result);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertyFuzz, ::testing::Range(0, 25));

}  // namespace
}  // namespace pipeopt
