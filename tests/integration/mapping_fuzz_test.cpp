/// \file mapping_fuzz_test.cpp
/// Failure injection: start from a valid mapping, apply a random structural
/// corruption, and require Mapping::validate to reject it with a reason.
/// Guards the invariant layer every solver relies on.

#include <gtest/gtest.h>

#include "core/mapping.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"

namespace pipeopt {
namespace {

using core::IntervalAssignment;
using core::Mapping;

enum class Corruption {
  DuplicateProcessor,
  ShiftFirst,
  ShiftLast,
  DropInterval,
  BadApp,
  BadProc,
  BadMode,
  SwapIntervalOrder  // overlap two intervals of one application
};

/// Applies the corruption; returns nullopt when inapplicable to this mapping
/// (e.g. nothing to drop).
std::optional<Mapping> corrupt(const core::Problem& problem,
                               const Mapping& mapping, Corruption kind,
                               util::Rng& rng) {
  std::vector<IntervalAssignment> ivs(mapping.intervals().begin(),
                                      mapping.intervals().end());
  if (ivs.empty()) return std::nullopt;
  const std::size_t i = rng.index(ivs.size());
  switch (kind) {
    case Corruption::DuplicateProcessor: {
      if (ivs.size() < 2) return std::nullopt;
      const std::size_t j = (i + 1) % ivs.size();
      ivs[i].proc = ivs[j].proc;
      break;
    }
    case Corruption::ShiftFirst:
      if (ivs[i].first == ivs[i].last) return std::nullopt;
      ++ivs[i].first;  // leaves a gap before this interval
      break;
    case Corruption::ShiftLast:
      if (ivs[i].first == ivs[i].last) return std::nullopt;
      --ivs[i].last;  // leaves a gap after this interval
      break;
    case Corruption::DropInterval:
      ivs.erase(ivs.begin() + static_cast<std::ptrdiff_t>(i));
      if (ivs.empty()) return std::nullopt;
      break;
    case Corruption::BadApp:
      ivs[i].app = problem.application_count() + 3;
      break;
    case Corruption::BadProc:
      ivs[i].proc = problem.platform().processor_count() + 5;
      break;
    case Corruption::BadMode:
      ivs[i].mode = problem.platform().processor(ivs[i].proc).mode_count() + 2;
      break;
    case Corruption::SwapIntervalOrder: {
      // Make interval i overlap its successor within the same application.
      std::optional<std::size_t> next;
      for (std::size_t j = 0; j < ivs.size(); ++j) {
        if (j != i && ivs[j].app == ivs[i].app &&
            ivs[j].first == ivs[i].last + 1) {
          next = j;
          break;
        }
      }
      if (!next) return std::nullopt;
      ++ivs[i].last;  // now overlaps *next's first stage
      break;
    }
  }
  return Mapping(std::move(ivs));
}

class MappingFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MappingFuzz, EveryCorruptionIsRejected) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 13);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(3);
  shape.app.min_stages = 2;
  shape.app.max_stages = 5;
  shape.processors = shape.applications * 3;
  shape.platform.modes = 2;
  const std::array<core::PlatformClass, 3> classes{
      core::PlatformClass::FullyHomogeneous,
      core::PlatformClass::CommHomogeneous,
      core::PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[rng.index(3)];
  const auto problem = gen::random_problem(rng, shape);
  const auto mapping = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(mapping.has_value());
  ASSERT_FALSE(mapping->validate(problem).has_value());

  for (Corruption kind :
       {Corruption::DuplicateProcessor, Corruption::ShiftFirst,
        Corruption::ShiftLast, Corruption::DropInterval, Corruption::BadApp,
        Corruption::BadProc, Corruption::BadMode,
        Corruption::SwapIntervalOrder}) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const auto broken = corrupt(problem, *mapping, kind, rng);
      if (!broken) continue;
      EXPECT_TRUE(broken->validate(problem).has_value())
          << "corruption " << static_cast<int>(kind) << " went undetected";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MappingFuzz, ::testing::Range(0, 30));

}  // namespace
}  // namespace pipeopt
