#include "replication/replicated_period.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "algorithms/interval_period_multi.hpp"
#include "gen/random_instances.hpp"
#include "gen/workloads.hpp"
#include "util/numeric.hpp"

namespace pipeopt::replication {
namespace {

using core::Application;
using core::CommModel;
using core::Problem;
using core::StageSpec;

/// Brute-force oracle: all compositions × replica allocations of q procs.
double brute_force(const Problem& problem, std::size_t q) {
  const auto& app = problem.application(0);
  const std::size_t n = app.stage_count();
  double best = util::kInfinity;
  // Enumerate compositions via split masks, then replica counts recursively.
  for (std::uint32_t mask = 0; mask < (1u << (n - 1)); ++mask) {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::size_t first = 0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (mask & (1u << i)) {
        ranges.emplace_back(first, i);
        first = i + 1;
      }
    }
    ranges.emplace_back(first, n - 1);
    if (ranges.size() > q) continue;

    std::vector<std::size_t> reps(ranges.size(), 1);
    std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t idx,
                                                            std::size_t left) {
      if (idx + 1 == ranges.size()) {
        reps[idx] = left;
        // Build the mapping and evaluate.
        std::vector<ReplicatedInterval> ivs;
        std::size_t proc = 0;
        for (std::size_t j = 0; j < ranges.size(); ++j) {
          ReplicatedInterval iv;
          iv.app = 0;
          iv.first = ranges[j].first;
          iv.last = ranges[j].second;
          iv.mode = problem.platform().processor(0).max_mode();
          for (std::size_t r = 0; r < reps[j]; ++r) iv.procs.push_back(proc++);
          ivs.push_back(std::move(iv));
        }
        const ReplicatedMapping mapping(std::move(ivs));
        best = std::min(best,
                        evaluate(problem, mapping).max_weighted_period);
        return;
      }
      for (std::size_t r = 1; r + (ranges.size() - idx - 1) <= left; ++r) {
        reps[idx] = r;
        rec(idx + 1, left - r);
      }
    };
    rec(0, q);
  }
  return best;
}

Problem single_app_problem(util::Rng& rng, std::size_t max_stages,
                           std::size_t procs, CommModel comm) {
  gen::ProblemShape shape;
  shape.applications = 1;
  shape.app.min_stages = 1;
  shape.app.max_stages = max_stages;
  shape.processors = procs;
  shape.platform_class = core::PlatformClass::FullyHomogeneous;
  shape.comm = comm;
  return gen::random_problem(rng, shape);
}

TEST(ReplicatedPeriodDp, DominantStageUsesReplicas) {
  std::vector<Application> apps;
  apps.push_back(Application(0.0, {StageSpec{12.0, 0.0}, StageSpec{1.0, 0.0}}));
  const Problem p(std::move(apps),
                  gen::homogeneous_cluster(4, 1, 2.0, 1.0, 1.0, 0.0));
  const auto solution = replicated_min_period(p);
  ASSERT_TRUE(solution.has_value());
  // Best plan replicates the whole chain on all 4 processors:
  // (12+1)/2/4 = 1.625 — far below the unreplicated floor of 6 (the
  // dominant stage's cycle-time).
  EXPECT_DOUBLE_EQ(solution->value, 1.625);
  const auto unreplicated = algorithms::interval_min_period(p);
  ASSERT_TRUE(unreplicated.has_value());
  EXPECT_DOUBLE_EQ(unreplicated->value, 6.0);
}

TEST(ReplicatedPeriodDp, NeverWorseThanUnreplicated) {
  util::Rng rng(303);
  for (int iter = 0; iter < 20; ++iter) {
    const auto problem = single_app_problem(
        rng, 4, 2 + rng.index(4),
        rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap);
    const auto with = replicated_min_period(problem);
    const auto without = algorithms::interval_min_period(problem);
    ASSERT_TRUE(with.has_value());
    ASSERT_TRUE(without.has_value());
    EXPECT_LE(with->value, without->value + 1e-12);
  }
}

TEST(ReplicatedPeriodDp, MappingAchievesValue) {
  util::Rng rng(304);
  for (int iter = 0; iter < 10; ++iter) {
    const auto problem = single_app_problem(rng, 5, 5, CommModel::Overlap);
    const auto solution = replicated_min_period(problem);
    ASSERT_TRUE(solution.has_value());
    solution->mapping.validate_or_throw(problem);
    EXPECT_NEAR(evaluate(problem, solution->mapping).max_weighted_period,
                solution->value, 1e-12);
  }
}

TEST(ReplicatedPeriodDp, RejectsHeterogeneousPlatform) {
  util::Rng rng(305);
  gen::ProblemShape shape;
  shape.platform_class = core::PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)replicated_min_period(problem), std::invalid_argument);
}

TEST(ReplicatedPeriodDp, MultiAppSharesProcessors) {
  std::vector<Application> apps;
  apps.push_back(Application(0.0, {StageSpec{8.0, 0.0}}));
  apps.push_back(Application(0.0, {StageSpec{2.0, 0.0}}));
  const Problem p(std::move(apps),
                  gen::homogeneous_cluster(5, 1, 2.0, 1.0, 1.0, 0.0));
  const auto solution = replicated_min_period(p);
  ASSERT_TRUE(solution.has_value());
  // App0 gets 4 replicas (8/2/4 = 1), app1 one proc (2/2 = 1): period 1.
  EXPECT_DOUBLE_EQ(solution->value, 1.0);
}

class ReplicatedOracle : public ::testing::TestWithParam<int> {};

TEST_P(ReplicatedOracle, SingleAppMatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 421 + 37);
  const auto problem = single_app_problem(
      rng, 4, 2 + rng.index(4),
      rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap);
  const auto solution = replicated_min_period(problem);
  ASSERT_TRUE(solution.has_value());
  const double oracle =
      brute_force(problem, problem.platform().processor_count());
  EXPECT_NEAR(solution->value, oracle, 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReplicatedOracle, ::testing::Range(0, 40));

}  // namespace
}  // namespace pipeopt::replication
