#include "replication/replicated_mapping.hpp"

#include <gtest/gtest.h>

#include "gen/workloads.hpp"

namespace pipeopt::replication {
namespace {

using core::Application;
using core::CommModel;
using core::Problem;
using core::StageSpec;

/// One 2-stage app on a 4-node homogeneous cluster (speed 2, bw 1).
Problem cluster_problem(CommModel comm = CommModel::Overlap) {
  std::vector<Application> apps;
  apps.push_back(Application(1.0, {StageSpec{8.0, 2.0}, StageSpec{4.0, 1.0}}));
  return Problem(std::move(apps),
                 gen::homogeneous_cluster(4, 1, 2.0, 1.0, 1.0, 0.5), comm);
}

TEST(ReplicatedMapping, ValidatesStructure) {
  const Problem p = cluster_problem();
  const ReplicatedMapping good({{0, 0, 0, {0, 1}, 0}, {0, 1, 1, {2}, 0}});
  EXPECT_FALSE(good.validate(p).has_value());
  EXPECT_EQ(good.processor_count(), 3u);
}

TEST(ReplicatedMapping, RejectsReusedProcessor) {
  const Problem p = cluster_problem();
  const ReplicatedMapping bad({{0, 0, 0, {0, 1}, 0}, {0, 1, 1, {1}, 0}});
  const auto reason = bad.validate(p);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("reused"), std::string::npos);
}

TEST(ReplicatedMapping, RejectsEmptyReplicaSet) {
  const Problem p = cluster_problem();
  const ReplicatedMapping bad({{0, 0, 1, {}, 0}});
  EXPECT_TRUE(bad.validate(p).has_value());
}

TEST(ReplicatedMapping, RejectsGaps) {
  const Problem p = cluster_problem();
  const ReplicatedMapping bad({{0, 1, 1, {0}, 0}});
  EXPECT_TRUE(bad.validate(p).has_value());
}

TEST(ReplicatedMapping, PeriodDividesByReplicaCount) {
  const Problem p = cluster_problem();
  // Whole app on one processor: cycle = max(1/1, 12/2, 1/1) = 6.
  const ReplicatedMapping single({{0, 0, 1, {0}, 0}});
  EXPECT_DOUBLE_EQ(evaluate(p, single).max_weighted_period, 6.0);
  // Replicated on 3: 6/3 = 2.
  const ReplicatedMapping triple({{0, 0, 1, {0, 1, 2}, 0}});
  EXPECT_DOUBLE_EQ(evaluate(p, triple).max_weighted_period, 2.0);
}

TEST(ReplicatedMapping, LatencyUnchangedByReplication) {
  const Problem p = cluster_problem();
  const ReplicatedMapping single({{0, 0, 1, {0}, 0}});
  const ReplicatedMapping triple({{0, 0, 1, {0, 1, 2}, 0}});
  EXPECT_DOUBLE_EQ(evaluate(p, single).max_weighted_latency,
                   evaluate(p, triple).max_weighted_latency);
  // Eq. 5: 1/1 + 12/2 + 1/1 = 8.
  EXPECT_DOUBLE_EQ(evaluate(p, single).max_weighted_latency, 8.0);
}

TEST(ReplicatedMapping, EnergyScalesWithReplicas) {
  const Problem p = cluster_problem();  // per-proc energy 0.5 + 4 = 4.5
  const ReplicatedMapping single({{0, 0, 1, {0}, 0}});
  const ReplicatedMapping triple({{0, 0, 1, {0, 1, 2}, 0}});
  EXPECT_DOUBLE_EQ(evaluate(p, single).energy, 4.5);
  EXPECT_DOUBLE_EQ(evaluate(p, triple).energy, 13.5);
}

TEST(ReplicatedMapping, NoOverlapModelSums) {
  const Problem p = cluster_problem(CommModel::NoOverlap);
  // cycle = (1 + 6 + 1) = 8; with 2 replicas -> 4.
  const ReplicatedMapping dual({{0, 0, 1, {0, 1}, 0}});
  EXPECT_DOUBLE_EQ(evaluate(p, dual).max_weighted_period, 4.0);
}

TEST(ReplicatedMapping, SplitPlusReplication) {
  const Problem p = cluster_problem();
  // Stage 0 (w=8) on 2 replicas: max(1, 4, 1)/... pieces: in 1/2, comp
  // (8/2)/2 = 2, out 2/2 = 1 -> cycle 2. Stage 1 (w=4) on 1 proc:
  // max(2/1, 2, 1) = 2. Period 2.
  const ReplicatedMapping m({{0, 0, 0, {0, 1}, 0}, {0, 1, 1, {2}, 0}});
  EXPECT_DOUBLE_EQ(evaluate(p, m).max_weighted_period, 2.0);
}

TEST(ReplicatedMapping, BeatsBestUnreplicatedPeriod) {
  // The §6 motivation: a dominant stage bounds every interval mapping at
  // its cycle-time; replication breaks through that floor.
  std::vector<Application> apps;
  apps.push_back(Application(0.0, {StageSpec{12.0, 0.0}, StageSpec{1.0, 0.0}}));
  const Problem p(std::move(apps),
                  gen::homogeneous_cluster(4, 1, 2.0, 1.0, 1.0, 0.0));
  // Unreplicated floor: dominant stage w=12 at speed 2 -> period >= 6.
  const ReplicatedMapping replicated({{0, 0, 0, {0, 1, 2}, 0}, {0, 1, 1, {3}, 0}});
  EXPECT_DOUBLE_EQ(evaluate(p, replicated).max_weighted_period, 2.0);
}

}  // namespace
}  // namespace pipeopt::replication
