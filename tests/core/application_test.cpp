#include "core/application.hpp"

#include <gtest/gtest.h>

namespace pipeopt::core {
namespace {

Application make_app() {
  return Application(1.0, {StageSpec{3.0, 3.0}, StageSpec{2.0, 2.0},
                           StageSpec{1.0, 0.0}});
}

TEST(Application, BasicAccessors) {
  const Application app = make_app();
  EXPECT_EQ(app.stage_count(), 3u);
  EXPECT_DOUBLE_EQ(app.compute(0), 3.0);
  EXPECT_DOUBLE_EQ(app.compute(2), 1.0);
  EXPECT_DOUBLE_EQ(app.weight(), 1.0);
}

TEST(Application, BoundarySizes) {
  const Application app = make_app();
  EXPECT_DOUBLE_EQ(app.boundary_size(0), 1.0);  // δ^0: external input
  EXPECT_DOUBLE_EQ(app.boundary_size(1), 3.0);  // after stage 1
  EXPECT_DOUBLE_EQ(app.boundary_size(2), 2.0);
  EXPECT_DOUBLE_EQ(app.boundary_size(3), 0.0);  // δ^n: output
  EXPECT_THROW((void)app.boundary_size(4), std::out_of_range);
}

TEST(Application, PrefixSums) {
  const Application app = make_app();
  EXPECT_DOUBLE_EQ(app.total_compute(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(app.total_compute(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(app.total_compute(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(app.total_compute(), 6.0);
  EXPECT_THROW((void)app.total_compute(2, 1), std::out_of_range);
  EXPECT_THROW((void)app.total_compute(0, 3), std::out_of_range);
}

TEST(Application, ValidationRejectsBadInput) {
  EXPECT_THROW(Application(1.0, {}), std::invalid_argument);
  EXPECT_THROW(Application(-1.0, {StageSpec{1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Application(0.0, {StageSpec{-1.0, 0.0}}), std::invalid_argument);
  EXPECT_THROW(Application(0.0, {StageSpec{1.0, -2.0}}), std::invalid_argument);
  EXPECT_THROW(Application(0.0, {StageSpec{1.0, 0.0}}, 0.0), std::invalid_argument);
  EXPECT_THROW(Application(0.0, {StageSpec{1.0, 0.0}}, -2.0), std::invalid_argument);
}

TEST(Application, UniformNoCommDetection) {
  const Application special(0.0, {StageSpec{1.0, 0.0}, StageSpec{1.0, 0.0}});
  EXPECT_TRUE(special.is_uniform_no_comm());
  EXPECT_FALSE(make_app().is_uniform_no_comm());
  const Application with_input(1.0, {StageSpec{1.0, 0.0}});
  EXPECT_FALSE(with_input.is_uniform_no_comm());
  const Application uneven(0.0, {StageSpec{1.0, 0.0}, StageSpec{2.0, 0.0}});
  EXPECT_FALSE(uneven.is_uniform_no_comm());
}

TEST(Application, ScaledCompute) {
  const Application app = make_app();
  const Application scaled = app.scaled_compute(2.0);
  EXPECT_DOUBLE_EQ(scaled.compute(0), 6.0);
  EXPECT_DOUBLE_EQ(scaled.compute(2), 2.0);
  // Data sizes and weight untouched.
  EXPECT_DOUBLE_EQ(scaled.boundary_size(1), 3.0);
  EXPECT_DOUBLE_EQ(scaled.weight(), 1.0);
  EXPECT_THROW((void)app.scaled_compute(0.0), std::invalid_argument);
}

TEST(Application, WeightStored) {
  const Application app(0.0, {StageSpec{1.0, 0.0}}, 2.5, "w");
  EXPECT_DOUBLE_EQ(app.weight(), 2.5);
  EXPECT_EQ(app.name(), "w");
}

}  // namespace
}  // namespace pipeopt::core
