/// \file eval_batch_test.cpp
/// Bit-exactness contract of core::BatchEvaluator: every number the SoA
/// batch/delta hot path produces must be *bitwise* identical to the scalar
/// `core::evaluate` object-graph walk — same doubles, not "close" doubles
/// (FP addition is non-associative; the operation order is the spec).
/// Randomized property tests sweep platform classes, both communication
/// models, and degenerate shapes; every neighborhood move kind exercises the
/// delta path against a full scalar re-evaluation.

#include <gtest/gtest.h>

#include <array>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "core/mapping.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/enumeration.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/neighborhood.hpp"
#include "util/random.hpp"

namespace pipeopt {
namespace {

using core::BatchEvaluator;
using core::CommModel;
using core::IntervalAssignment;
using core::Mapping;
using core::Metrics;
using core::PlatformClass;

/// Exact (==, not approximate) comparison of every field of two Metrics.
/// EXPECT_EQ on doubles compares values bitwise-equivalently for the
/// non-NaN numbers evaluation produces.
void expect_bit_identical(const Metrics& scalar, const Metrics& batch,
                          const char* context) {
  ASSERT_EQ(scalar.per_app.size(), batch.per_app.size()) << context;
  for (std::size_t a = 0; a < scalar.per_app.size(); ++a) {
    EXPECT_EQ(scalar.per_app[a].period, batch.per_app[a].period)
        << context << " app " << a;
    EXPECT_EQ(scalar.per_app[a].latency, batch.per_app[a].latency)
        << context << " app " << a;
  }
  EXPECT_EQ(scalar.max_weighted_period, batch.max_weighted_period) << context;
  EXPECT_EQ(scalar.max_weighted_latency, batch.max_weighted_latency) << context;
  EXPECT_EQ(scalar.energy, batch.energy) << context;
}

/// Random shape across all platform classes and both comm models; the seed
/// picks the cell so the parameterized sweep covers the full cross product.
gen::ProblemShape random_shape(util::Rng& rng) {
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(3);
  shape.processors = 3 + rng.index(4);
  shape.platform.modes = 1 + rng.index(3);
  const std::array<PlatformClass, 3> classes{PlatformClass::FullyHomogeneous,
                                             PlatformClass::CommHomogeneous,
                                             PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[rng.index(3)];
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  shape.app.min_stages = 1;
  shape.app.max_stages = 4;
  return shape;
}

class EvalBatch : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng_{static_cast<std::uint64_t>(GetParam()) * 977 + 41};
};

TEST_P(EvalBatch, FullEvaluationMatchesScalarOnSampledMappings) {
  const auto problem = gen::random_problem(rng_, random_shape(rng_));
  BatchEvaluator evaluator(problem);

  // Sample valid mappings (with mode variety) straight from the enumerator;
  // the emitted spans are exactly the (app, first)-sorted order the span
  // overload requires.
  exact::EnumerationOptions options;
  options.kind = exact::MappingKind::Interval;
  options.enumerate_modes = true;
  options.node_limit = 500'000;
  std::size_t checked = 0;
  try {
    exact::enumerate_mappings(
        problem, options, [&](std::span<const IntervalAssignment> ivs) {
          if (checked >= 200) return;
          ++checked;
          const Mapping mapping(
              std::vector<IntervalAssignment>(ivs.begin(), ivs.end()));
          const Metrics scalar = core::evaluate(problem, mapping, false);
          expect_bit_identical(scalar, evaluator.evaluate(mapping), "mapping");
          expect_bit_identical(scalar, evaluator.evaluate(ivs), "span");
        });
  } catch (const exact::SearchLimitExceeded&) {
    // Large space: the sampled prefix is plenty.
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(EvalBatch, DeltaMatchesFullOnEveryNeighbourMove) {
  const auto problem = gen::random_problem(rng_, random_shape(rng_));
  const auto start = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(start.has_value());

  BatchEvaluator evaluator(problem);
  evaluator.bind_base(*start);

  // Every move kind (split/merge/relocate/swap/mode) against its own
  // declared touched set: delta must equal a from-scratch scalar pass.
  const auto moves = heuristics::neighbour_moves(problem, *start);
  for (const auto& move : moves) {
    const Metrics scalar = core::evaluate(problem, move.mapping, false);
    expect_bit_identical(scalar,
                         evaluator.evaluate_delta(move.mapping, move.touched()),
                         "delta");
  }

  // Accept one candidate the way the searches do — adopt its (copied) delta
  // metrics without recomputing — and check deltas stay exact off the new
  // base, including second-generation moves whose touched apps differ.
  if (!moves.empty()) {
    const auto& accepted = moves[moves.size() / 2];
    const Metrics adopted =
        evaluator.evaluate_delta(accepted.mapping, accepted.touched());
    evaluator.adopt_base(adopted);
    const auto second = heuristics::neighbour_moves(problem, accepted.mapping);
    for (const auto& move : second) {
      const Metrics scalar = core::evaluate(problem, move.mapping, false);
      expect_bit_identical(
          scalar, evaluator.evaluate_delta(move.mapping, move.touched()),
          "delta-after-adopt");
    }
  }
}

TEST_P(EvalBatch, BatchMatchesSequentialEvaluation) {
  const auto problem = gen::random_problem(rng_, random_shape(rng_));
  const auto start = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(start.has_value());

  std::vector<Mapping> candidates;
  candidates.push_back(*start);
  for (auto& move : heuristics::neighbour_moves(problem, *start)) {
    candidates.push_back(std::move(move.mapping));
  }

  BatchEvaluator evaluator(problem);
  std::vector<Metrics> out;
  evaluator.evaluate_batch(candidates, out);
  ASSERT_EQ(out.size(), candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Metrics scalar = core::evaluate(problem, candidates[i], false);
    expect_bit_identical(scalar, out[i], "batch");
  }
}

TEST_P(EvalBatch, DegenerateShapesMatchScalar) {
  // Single-stage applications and a single-processor platform: the smallest
  // legal instances, where off-by-ones in prefix/boundary indexing surface.
  gen::ProblemShape shape;
  if (GetParam() % 2 == 0) {
    shape.applications = 1;
    shape.processors = 1;
    shape.app.min_stages = 1;
    shape.app.max_stages = 1;
  } else {
    shape.applications = 2;
    shape.processors = 4;
    shape.app.min_stages = 1;
    shape.app.max_stages = 1;
    shape.platform_class = PlatformClass::FullyHeterogeneous;
  }
  shape.platform.modes = 1 + rng_.index(2);
  shape.comm = rng_.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng_, shape);
  const auto start = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(start.has_value());

  BatchEvaluator evaluator(problem);
  const Metrics scalar = core::evaluate(problem, *start, false);
  expect_bit_identical(scalar, evaluator.evaluate(*start), "degenerate");

  evaluator.bind_base(*start);
  for (const auto& move : heuristics::neighbour_moves(problem, *start)) {
    const Metrics full = core::evaluate(problem, move.mapping, false);
    expect_bit_identical(full,
                         evaluator.evaluate_delta(move.mapping, move.touched()),
                         "degenerate-delta");
  }
}

TEST_P(EvalBatch, BranchBoundSoaTablesMatchScalarTables) {
  // The templated search with SoA lookups must reproduce the scalar-lookup
  // variant exactly: value, mapping, and node/complete counters.
  gen::ProblemShape shape = random_shape(rng_);
  shape.applications = 1 + rng_.index(2);
  shape.processors = 3 + rng_.index(2);
  const auto problem = gen::random_problem(rng_, shape);

  for (const auto kind :
       {exact::MappingKind::Interval, exact::MappingKind::OneToOne}) {
    const auto soa = exact::branch_bound_min_period(problem, kind);
    const auto scalar = exact::branch_bound_min_period_scalar(problem, kind);
    ASSERT_EQ(soa.has_value(), scalar.has_value());
    if (!soa) continue;
    EXPECT_EQ(soa->value, scalar->value);
    EXPECT_EQ(soa->stats.nodes, scalar->stats.nodes);
    EXPECT_EQ(soa->stats.complete, scalar->stats.complete);
    EXPECT_EQ(soa->mapping.intervals().size(),
              scalar->mapping.intervals().size());
    for (std::size_t i = 0; i < soa->mapping.intervals().size(); ++i) {
      const auto& a = soa->mapping.intervals()[i];
      const auto& b = scalar->mapping.intervals()[i];
      EXPECT_EQ(a.app, b.app);
      EXPECT_EQ(a.first, b.first);
      EXPECT_EQ(a.last, b.last);
      EXPECT_EQ(a.proc, b.proc);
      EXPECT_EQ(a.mode, b.mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EvalBatch, ::testing::Range(0, 20));

TEST(EvalBatch, EvalsCounterCountsFullBatchDeltaAndBinds) {
  util::Rng rng{7};
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 4;
  const auto problem = gen::random_problem(rng, shape);
  const auto start = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(start.has_value());

  BatchEvaluator evaluator(problem);
  EXPECT_EQ(evaluator.evals(), 0u);
  const Metrics first = evaluator.evaluate(*start);
  EXPECT_EQ(evaluator.evals(), 1u);
  evaluator.bind_base(*start);  // one full evaluation
  EXPECT_EQ(evaluator.evals(), 2u);
  evaluator.adopt_base(first);  // no recomputation, no eval counted
  EXPECT_EQ(evaluator.evals(), 2u);

  const auto moves = heuristics::neighbour_moves(problem, *start);
  ASSERT_FALSE(moves.empty());
  (void)evaluator.evaluate_delta(moves.front().mapping, moves.front().touched());
  EXPECT_EQ(evaluator.evals(), 3u);

  std::vector<Mapping> candidates{*start, moves.front().mapping};
  std::vector<Metrics> out;
  evaluator.evaluate_batch(candidates, out);
  EXPECT_EQ(evaluator.evals(), 5u);
}

TEST(EvalBatch, RejectsMalformedSpansAndMissingBase) {
  util::Rng rng{11};
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 4;
  shape.app.min_stages = 2;
  shape.app.max_stages = 2;
  const auto problem = gen::random_problem(rng, shape);
  const auto start = heuristics::greedy_interval_mapping(problem);
  ASSERT_TRUE(start.has_value());
  const auto& ivs = start->intervals();

  BatchEvaluator evaluator(problem);

  // Span covering only the first application: the second has no intervals.
  std::vector<IntervalAssignment> partial;
  for (const auto& iv : ivs) {
    if (iv.app == 0) partial.push_back(iv);
  }
  EXPECT_THROW(
      (void)evaluator.evaluate(std::span<const IntervalAssignment>(partial)),
      std::invalid_argument);

  // Applications out of order.
  std::vector<IntervalAssignment> reversed(ivs.rbegin(), ivs.rend());
  EXPECT_THROW(
      (void)evaluator.evaluate(std::span<const IntervalAssignment>(reversed)),
      std::invalid_argument);

  // Delta evaluation before any base is bound.
  const std::size_t touched = 0;
  EXPECT_THROW((void)evaluator.evaluate_delta(*start, {&touched, 1}),
               std::logic_error);

  // adopt_base with metrics of the wrong arity.
  Metrics wrong;
  wrong.per_app.resize(problem.application_count() + 1);
  EXPECT_THROW(evaluator.adopt_base(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace pipeopt
