#include "core/mapping.hpp"

#include <gtest/gtest.h>

#include "gen/motivating_example.hpp"

namespace pipeopt::core {
namespace {

Problem example() { return gen::motivating_example(); }

// The paper's period-optimal mapping: App1 -> P3 fast, App2 split after
// stage 2 onto P2/P1 (both fast).
Mapping period_optimal() {
  return Mapping({
      {0, 0, 2, 2, 1},  // App1 [0..2] on P3 (index 2) mode 1 (speed 6)
      {1, 0, 1, 1, 1},  // App2 [0..1] on P2 (index 1) mode 1 (speed 8)
      {1, 2, 3, 0, 1},  // App2 [2..3] on P1 (index 0) mode 1 (speed 6)
  });
}

TEST(Mapping, ValidMappingPasses) {
  const Problem p = example();
  EXPECT_FALSE(period_optimal().validate(p).has_value());
}

TEST(Mapping, IntervalsSortedByAppAndStage) {
  const Mapping m({{1, 2, 3, 0, 0}, {0, 0, 2, 2, 0}, {1, 0, 1, 1, 0}});
  const auto ivs = m.intervals();
  EXPECT_EQ(ivs[0].app, 0u);
  EXPECT_EQ(ivs[1].app, 1u);
  EXPECT_EQ(ivs[1].first, 0u);
  EXPECT_EQ(ivs[2].first, 2u);
}

TEST(Mapping, IntervalsOfFiltersByApp) {
  const Mapping m = period_optimal();
  EXPECT_EQ(m.intervals_of(0).size(), 1u);
  EXPECT_EQ(m.intervals_of(1).size(), 2u);
}

TEST(Mapping, EnrolledProcessors) {
  EXPECT_EQ(period_optimal().enrolled_processors(),
            (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Mapping, OneToOneDetection) {
  EXPECT_FALSE(period_optimal().is_one_to_one());
  const Mapping single({{0, 1, 1, 0, 0}});
  EXPECT_TRUE(single.is_one_to_one());
}

TEST(Mapping, RejectsProcessorSharing) {
  const Problem p = example();
  const Mapping m({
      {0, 0, 2, 0, 0},
      {1, 0, 3, 0, 0},  // same processor P1 reused
  });
  const auto reason = m.validate(p);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("sharing"), std::string::npos);
}

TEST(Mapping, RejectsGapsAndOverlaps) {
  const Problem p = example();
  // Gap: App1 stage coverage [0..0] then [2..2].
  const Mapping gap({{0, 0, 0, 0, 0}, {0, 2, 2, 1, 0}, {1, 0, 3, 2, 0}});
  EXPECT_TRUE(gap.validate(p).has_value());
  // Overlap: [0..1] then [1..2].
  const Mapping overlap({{0, 0, 1, 0, 0}, {0, 1, 2, 1, 0}, {1, 0, 3, 2, 0}});
  EXPECT_TRUE(overlap.validate(p).has_value());
}

TEST(Mapping, RejectsIncompleteCoverage) {
  const Problem p = example();
  const Mapping m({{0, 0, 2, 0, 0}});  // App2 unmapped
  const auto reason = m.validate(p);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("not fully covered"), std::string::npos);
}

TEST(Mapping, RejectsBadIndices) {
  const Problem p = example();
  EXPECT_TRUE(Mapping({{5, 0, 0, 0, 0}}).validate(p).has_value());   // bad app
  EXPECT_TRUE(Mapping({{0, 0, 9, 0, 0}}).validate(p).has_value());   // bad stage
  EXPECT_TRUE(
      Mapping({{0, 0, 2, 9, 0}, {1, 0, 3, 1, 0}}).validate(p).has_value());  // proc
  EXPECT_TRUE(
      Mapping({{0, 0, 2, 0, 7}, {1, 0, 3, 1, 0}}).validate(p).has_value());  // mode
}

TEST(Mapping, ValidateOrThrowThrows) {
  const Problem p = example();
  EXPECT_THROW(Mapping({{0, 0, 2, 0, 0}}).validate_or_throw(p),
               std::invalid_argument);
  EXPECT_NO_THROW(period_optimal().validate_or_throw(p));
}

TEST(Mapping, AtMaxSpeed) {
  const Problem p = example();
  const Mapping slow({
      {0, 0, 2, 0, 0},
      {1, 0, 3, 2, 0},
  });
  const Mapping fast = slow.at_max_speed(p);
  for (const auto& iv : fast.intervals()) {
    EXPECT_EQ(iv.mode, p.platform().processor(iv.proc).max_mode());
  }
}

TEST(Mapping, MakeOneToOne) {
  const Problem p = example();
  // 7 stages, but only 3 processors — build on a problem-by-problem basis:
  // use a single-app problem instead.
  const Problem small(std::vector<Application>{Application(
                          0.0, {StageSpec{1.0, 0.0}, StageSpec{2.0, 0.0}})},
                      p.platform(), CommModel::Overlap);
  const Mapping m = make_one_to_one(small, {{0, 2}});
  EXPECT_TRUE(m.is_one_to_one());
  EXPECT_FALSE(m.validate(small).has_value());
  EXPECT_EQ(m.intervals()[0].proc, 0u);
  EXPECT_EQ(m.intervals()[1].proc, 2u);
  // Defaults to max speed.
  EXPECT_EQ(m.intervals()[0].mode, 1u);
}

TEST(Mapping, MakeOneToOneValidation) {
  const Problem p = example();
  EXPECT_THROW((void)make_one_to_one(p, {{0}}), std::invalid_argument);
}

TEST(Mapping, ToStringMentionsProcessorsAndSpeeds) {
  const Problem p = example();
  const std::string s = period_optimal().to_string(p);
  EXPECT_NE(s.find("App1"), std::string::npos);
  EXPECT_NE(s.find("P2"), std::string::npos);
  EXPECT_NE(s.find("s=6"), std::string::npos);
}

}  // namespace
}  // namespace pipeopt::core
