#include "core/pareto.hpp"

#include <gtest/gtest.h>

namespace pipeopt::core {
namespace {

ParetoPoint pt(double period, double energy, double latency = 0.0) {
  ParetoPoint p;
  p.period = period;
  p.energy = energy;
  p.latency = latency;
  return p;
}

TEST(Pareto, Dominates2D) {
  EXPECT_TRUE(dominates(pt(1, 10), pt(2, 10), false));
  EXPECT_TRUE(dominates(pt(1, 9), pt(2, 10), false));
  EXPECT_FALSE(dominates(pt(1, 11), pt(2, 10), false));
  EXPECT_FALSE(dominates(pt(1, 10), pt(1, 10), false));  // equal: no strict part
}

TEST(Pareto, Dominates3D) {
  EXPECT_TRUE(dominates(pt(1, 10, 5), pt(1, 10, 6), true));
  EXPECT_FALSE(dominates(pt(1, 10, 6), pt(1, 10, 5), true));
  // Latency ignored in 2-D mode.
  EXPECT_FALSE(dominates(pt(1, 10, 6), pt(1, 10, 5), false));
}

TEST(Pareto, FrontFiltersDominated) {
  // The §2 shape: (period, energy) = (1,136), (2,46), (14,10) are all
  // non-dominated; (2,50) and (14,46) are dominated.
  auto front = pareto_front(
      {pt(1, 136), pt(2, 46), pt(14, 10), pt(2, 50), pt(14, 46)}, false);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].period, 1.0);
  EXPECT_DOUBLE_EQ(front[1].period, 2.0);
  EXPECT_DOUBLE_EQ(front[2].period, 14.0);
  EXPECT_TRUE(energy_monotone_in_period(front));
}

TEST(Pareto, FrontDeduplicatesTies) {
  auto front = pareto_front({pt(1, 10), pt(1, 10), pt(1, 10)}, false);
  EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, FrontSortedByPeriod) {
  auto front = pareto_front({pt(5, 1), pt(1, 5), pt(3, 3)}, false);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_LT(front[0].period, front[1].period);
  EXPECT_LT(front[1].period, front[2].period);
}

TEST(Pareto, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}, false).empty());
  EXPECT_EQ(pareto_front({pt(1, 1)}, false).size(), 1u);
  EXPECT_TRUE(energy_monotone_in_period({}));
  EXPECT_TRUE(energy_monotone_in_period({pt(1, 1)}));
}

TEST(Pareto, MonotoneViolationDetected) {
  EXPECT_FALSE(energy_monotone_in_period({pt(1, 10), pt(2, 20)}));
}

TEST(Pareto, ThreeDFrontKeepsLatencyTradeoffs) {
  // Same (period, energy) but different latencies: both survive in 3-D.
  auto front = pareto_front({pt(1, 10, 5), pt(2, 10, 3)}, true);
  EXPECT_EQ(front.size(), 2u);
  // In 2-D the slower-period point is dominated (energy ties broken by period).
  auto front2d = pareto_front({pt(1, 10, 5), pt(2, 10, 3)}, false);
  EXPECT_EQ(front2d.size(), 1u);
}

}  // namespace
}  // namespace pipeopt::core
