#include "core/pareto.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/mapping.hpp"

namespace pipeopt::core {
namespace {

ParetoPoint pt(double period, double energy, double latency = 0.0) {
  ParetoPoint p;
  p.period = period;
  p.energy = energy;
  p.latency = latency;
  return p;
}

TEST(Pareto, Dominates2D) {
  EXPECT_TRUE(dominates(pt(1, 10), pt(2, 10), false));
  EXPECT_TRUE(dominates(pt(1, 9), pt(2, 10), false));
  EXPECT_FALSE(dominates(pt(1, 11), pt(2, 10), false));
  EXPECT_FALSE(dominates(pt(1, 10), pt(1, 10), false));  // equal: no strict part
}

TEST(Pareto, Dominates3D) {
  EXPECT_TRUE(dominates(pt(1, 10, 5), pt(1, 10, 6), true));
  EXPECT_FALSE(dominates(pt(1, 10, 6), pt(1, 10, 5), true));
  // Latency ignored in 2-D mode.
  EXPECT_FALSE(dominates(pt(1, 10, 6), pt(1, 10, 5), false));
}

TEST(Pareto, FrontFiltersDominated) {
  // The §2 shape: (period, energy) = (1,136), (2,46), (14,10) are all
  // non-dominated; (2,50) and (14,46) are dominated.
  auto front = pareto_front(
      {pt(1, 136), pt(2, 46), pt(14, 10), pt(2, 50), pt(14, 46)}, false);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_DOUBLE_EQ(front[0].period, 1.0);
  EXPECT_DOUBLE_EQ(front[1].period, 2.0);
  EXPECT_DOUBLE_EQ(front[2].period, 14.0);
  EXPECT_TRUE(energy_monotone_in_period(front));
}

TEST(Pareto, FrontDeduplicatesTies) {
  auto front = pareto_front({pt(1, 10), pt(1, 10), pt(1, 10)}, false);
  EXPECT_EQ(front.size(), 1u);
}

TEST(Pareto, FrontSortedByPeriod) {
  auto front = pareto_front({pt(5, 1), pt(1, 5), pt(3, 3)}, false);
  ASSERT_EQ(front.size(), 3u);
  EXPECT_LT(front[0].period, front[1].period);
  EXPECT_LT(front[1].period, front[2].period);
}

TEST(Pareto, EmptyAndSingleton) {
  EXPECT_TRUE(pareto_front({}, false).empty());
  EXPECT_EQ(pareto_front({pt(1, 1)}, false).size(), 1u);
  EXPECT_TRUE(energy_monotone_in_period({}));
  EXPECT_TRUE(energy_monotone_in_period({pt(1, 1)}));
}

TEST(Pareto, MonotoneViolationDetected) {
  EXPECT_FALSE(energy_monotone_in_period({pt(1, 10), pt(2, 20)}));
}

TEST(Pareto, DuplicateTiesKeepTheFirstWitnessMapping) {
  // Two identical points whose witnesses differ: dedup must keep the
  // earlier one, mapping included (the sweep relies on "earliest bound
  // owns the point").
  ParetoPoint first = pt(2, 10);
  first.mapping = Mapping({{0, 0, 0, 0, 0}});
  ParetoPoint second = pt(2, 10);
  second.mapping = Mapping({{0, 0, 0, 1, 0}});
  auto front = pareto_front({first, second}, false);
  ASSERT_EQ(front.size(), 1u);
  ASSERT_TRUE(front[0].mapping.has_value());
  EXPECT_EQ(front[0].mapping->intervals()[0].proc, 0u);
}

TEST(Pareto, DuplicateTiesWithoutMappingsStillDeduplicate) {
  // Witness-less producers (benches that only track values) get the same
  // dedup semantics; the surviving point simply has no mapping.
  auto front = pareto_front({pt(2, 10), pt(2, 10)}, false);
  ASSERT_EQ(front.size(), 1u);
  EXPECT_FALSE(front[0].mapping.has_value());
}

TEST(Pareto, ThreeDDominanceNeedsAllThreeCriteria) {
  // Better on two criteria, worse on latency: no dominance in 3-D.
  EXPECT_FALSE(dominates(pt(1, 9, 8), pt(2, 10, 5), true));
  // Equal latency, better elsewhere: dominates.
  EXPECT_TRUE(dominates(pt(1, 9, 5), pt(2, 10, 5), true));
  // Latency alone provides the strict part when the rest ties.
  EXPECT_TRUE(dominates(pt(2, 10, 4), pt(2, 10, 5), true));
  EXPECT_FALSE(dominates(pt(2, 10, 5), pt(2, 10, 5), true));
  // A 3-D front can keep a point the 2-D filter would drop.
  auto front3d =
      pareto_front({pt(1, 10, 2), pt(2, 8, 9), pt(3, 9, 1)}, true);
  EXPECT_EQ(front3d.size(), 3u);
  auto front2d =
      pareto_front({pt(1, 10, 2), pt(2, 8, 9), pt(3, 9, 1)}, false);
  EXPECT_EQ(front2d.size(), 2u);  // (3,9) dominated by (2,8) in 2-D
}

TEST(Pareto, NonMonotoneFrontIsDetected) {
  // A deliberately non-monotone "front": valid 3-D output (latency buys
  // back the energy increase) whose 2-D projection violates the §2
  // monotone trade-off — exactly what energy_monotone_in_period flags.
  const std::vector<ParetoPoint> points = {pt(1, 10, 9), pt(2, 12, 3),
                                           pt(3, 15, 1)};
  const auto front = pareto_front(points, true);
  ASSERT_EQ(front.size(), 3u);  // all survive 3-D dominance
  EXPECT_FALSE(energy_monotone_in_period(front));
  // Monotone prefixes do not mask a later violation.
  EXPECT_FALSE(energy_monotone_in_period(
      {pt(1, 10), pt(2, 5), pt(3, 7), pt(4, 1)}));
}

TEST(Pareto, ThreeDFrontKeepsLatencyTradeoffs) {
  // Same (period, energy) but different latencies: both survive in 3-D.
  auto front = pareto_front({pt(1, 10, 5), pt(2, 10, 3)}, true);
  EXPECT_EQ(front.size(), 2u);
  // In 2-D the slower-period point is dominated (energy ties broken by period).
  auto front2d = pareto_front({pt(1, 10, 5), pt(2, 10, 3)}, false);
  EXPECT_EQ(front2d.size(), 1u);
}

}  // namespace
}  // namespace pipeopt::core
