#include "core/objectives.hpp"

#include <gtest/gtest.h>

#include "gen/motivating_example.hpp"

namespace pipeopt::core {
namespace {

Problem example() { return gen::motivating_example(); }

TEST(Weights, Unit) {
  const Weights w = Weights::unit(3);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w.weighted_max({2.0, 5.0, 3.0}), 5.0);
}

TEST(Weights, Priority) {
  std::vector<Application> apps;
  apps.push_back(Application(0.0, {StageSpec{1.0, 0.0}}, 2.0));
  apps.push_back(Application(0.0, {StageSpec{1.0, 0.0}}, 0.5));
  const Problem p(std::move(apps), example().platform());
  const Weights w = Weights::priority(p);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w.weighted_max({1.0, 10.0}), 5.0);
}

TEST(Weights, Stretch) {
  const Weights w = Weights::stretch({2.0, 4.0});
  EXPECT_DOUBLE_EQ(w[0], 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.25);
  EXPECT_THROW((void)Weights::stretch({0.0}), std::invalid_argument);
}

TEST(Weights, WeightedMaxArityChecked) {
  const Weights w = Weights::unit(2);
  EXPECT_THROW((void)w.weighted_max({1.0}), std::invalid_argument);
}

TEST(Thresholds, UniformDividesByWeight) {
  std::vector<Application> apps;
  apps.push_back(Application(0.0, {StageSpec{1.0, 0.0}}, 2.0));
  apps.push_back(Application(0.0, {StageSpec{1.0, 0.0}}, 1.0));
  const Problem p(std::move(apps), example().platform());
  const Thresholds t = Thresholds::uniform(p, 10.0);
  EXPECT_DOUBLE_EQ(t.bound(0), 5.0);
  EXPECT_DOUBLE_EQ(t.bound(1), 10.0);
  const Thresholds unit = Thresholds::uniform(p, 10.0, WeightPolicy::Unit);
  EXPECT_DOUBLE_EQ(unit.bound(0), 10.0);
}

TEST(Thresholds, SatisfiedBy) {
  const Thresholds t = Thresholds::per_app({2.0, 3.0});
  EXPECT_TRUE(t.satisfied_by({2.0, 3.0}));
  EXPECT_TRUE(t.satisfied_by({1.9, 2.0}));
  EXPECT_FALSE(t.satisfied_by({2.1, 2.0}));
  EXPECT_THROW((void)t.satisfied_by({1.0}), std::invalid_argument);
}

TEST(Thresholds, Unconstrained) {
  const Thresholds t = Thresholds::unconstrained(2);
  EXPECT_TRUE(t.is_unconstrained(0));
  EXPECT_TRUE(t.satisfied_by({1e300, 1e300}));
}

TEST(Thresholds, RejectsNonPositiveBounds) {
  EXPECT_THROW((void)Thresholds::per_app({1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)Thresholds::uniform(example(), -1.0), std::invalid_argument);
}

TEST(PerAppValues, ExtractsCriterion) {
  Metrics m;
  m.per_app = {{1.0, 10.0}, {2.0, 20.0}};
  EXPECT_EQ(per_app_values(m, Criterion::Period), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(per_app_values(m, Criterion::Latency),
            (std::vector<double>{10.0, 20.0}));
}

TEST(ConstraintSet, ChecksAllParts) {
  Metrics m;
  m.per_app = {{2.0, 5.0}};
  m.energy = 40.0;

  ConstraintSet cs;
  EXPECT_TRUE(cs.satisfied_by(m));  // empty constraint set

  cs.period = Thresholds::per_app({2.0});
  cs.latency = Thresholds::per_app({5.0});
  cs.energy_budget = 40.0;
  EXPECT_TRUE(cs.satisfied_by(m));

  cs.energy_budget = 39.0;
  EXPECT_FALSE(cs.satisfied_by(m));

  cs.energy_budget = 40.0;
  cs.period = Thresholds::per_app({1.9});
  EXPECT_FALSE(cs.satisfied_by(m));

  cs.period = Thresholds::per_app({2.0});
  cs.latency = Thresholds::per_app({4.9});
  EXPECT_FALSE(cs.satisfied_by(m));
}

}  // namespace
}  // namespace pipeopt::core
