#include "core/evaluation.hpp"

#include <gtest/gtest.h>

#include "gen/motivating_example.hpp"
#include "util/rational.hpp"

namespace pipeopt::core {
namespace {

Problem example() { return gen::motivating_example(); }

// §2 mappings (processor indices: P1=0, P2=1, P3=2; mode 0 slow, 1 fast).
Mapping period_optimal() {
  return Mapping({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
}
Mapping latency_optimal() {
  return Mapping({{0, 0, 2, 0, 1}, {1, 0, 3, 1, 1}});
}
Mapping energy_minimal() {
  return Mapping({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
}
Mapping energy_under_period2() {
  return Mapping({{0, 0, 2, 0, 0}, {1, 0, 2, 1, 0}, {1, 3, 3, 2, 0}});
}

TEST(Evaluation, Section2PeriodOptimalMapping) {
  const Problem p = example();
  const Metrics m = evaluate(p, period_optimal());
  // Eq. (1): global period 1, every cycle-time exactly 1.
  EXPECT_DOUBLE_EQ(m.max_weighted_period, 1.0);
  EXPECT_DOUBLE_EQ(m.per_app[0].period, 1.0);
  EXPECT_DOUBLE_EQ(m.per_app[1].period, 1.0);
  // Energy at full speed: 6² + 8² + 6² = 136.
  EXPECT_DOUBLE_EQ(m.energy, 136.0);
}

TEST(Evaluation, Section2LatencyOptimalMapping) {
  const Problem p = example();
  const Metrics m = evaluate(p, latency_optimal());
  // Eq. (2): max(1/1 + 6/6 + 0/1, 0/1 + 14/8 + 1/1) = max(2, 2.75).
  EXPECT_DOUBLE_EQ(m.per_app[0].latency, 2.0);
  EXPECT_DOUBLE_EQ(m.per_app[1].latency, 2.75);
  EXPECT_DOUBLE_EQ(m.max_weighted_latency, 2.75);
}

TEST(Evaluation, Section2EnergyMinimalMapping) {
  const Problem p = example();
  const Metrics m = evaluate(p, energy_minimal());
  // Energy 3² + 1² = 10; period max(2, 14) = 14.
  EXPECT_DOUBLE_EQ(m.energy, 10.0);
  EXPECT_DOUBLE_EQ(m.max_weighted_period, 14.0);
}

TEST(Evaluation, Section2TradeoffMapping) {
  const Problem p = example();
  const Metrics m = evaluate(p, energy_under_period2());
  // Period 2 at energy 3² + 6² + 1² = 46.
  EXPECT_DOUBLE_EQ(m.max_weighted_period, 2.0);
  EXPECT_DOUBLE_EQ(m.energy, 46.0);
}

TEST(Evaluation, IntervalCostPieces) {
  const Problem p = example();
  const auto ivs = period_optimal().intervals_of(1);
  ASSERT_EQ(ivs.size(), 2u);
  const IntervalCost first = interval_cost(p, ivs, 0);
  EXPECT_DOUBLE_EQ(first.in_comm, 0.0);       // δ⁰ = 0
  EXPECT_DOUBLE_EQ(first.compute, 1.0);       // (2+6)/8
  EXPECT_DOUBLE_EQ(first.out_comm, 1.0);      // δ² = 1 over b = 1
  const IntervalCost second = interval_cost(p, ivs, 1);
  EXPECT_DOUBLE_EQ(second.in_comm, 1.0);
  EXPECT_DOUBLE_EQ(second.compute, 1.0);      // (4+2)/6
  EXPECT_DOUBLE_EQ(second.out_comm, 1.0);     // δ⁴ = 1
}

TEST(Evaluation, NoOverlapPeriodIsSumOfPieces) {
  const Problem p = example().with_comm_model(CommModel::NoOverlap);
  const auto ivs = period_optimal().intervals_of(1);
  // First interval of App2 on P2: 0 + 1 + 1 = 2.
  EXPECT_DOUBLE_EQ(interval_cost(p, ivs, 0).cycle_time(CommModel::NoOverlap), 2.0);
  const Metrics m = evaluate(p, period_optimal());
  EXPECT_DOUBLE_EQ(m.per_app[1].period, 3.0);  // second interval: 1+1+1
}

TEST(Evaluation, LatencyIdenticalInBothModels) {
  const Problem overlap = example();
  const Problem serial = example().with_comm_model(CommModel::NoOverlap);
  for (const Mapping& m : {period_optimal(), latency_optimal(), energy_minimal()}) {
    const Metrics mo = evaluate(overlap, m);
    const Metrics ms = evaluate(serial, m);
    for (std::size_t a = 0; a < mo.per_app.size(); ++a) {
      EXPECT_DOUBLE_EQ(mo.per_app[a].latency, ms.per_app[a].latency);
    }
  }
}

TEST(Evaluation, WeightsScaleGlobalObjectives) {
  Problem p = example();
  std::vector<Application> apps;
  apps.push_back(Application(1.0,
                             {StageSpec{3.0, 3.0}, StageSpec{2.0, 2.0},
                              StageSpec{1.0, 0.0}},
                             /*weight=*/3.0, "App1"));
  apps.push_back(p.application(1));
  const Problem weighted(std::move(apps), p.platform(), p.comm_model());
  const Metrics m = evaluate(weighted, energy_minimal());
  // App1 period 2 × weight 3 = 6; App2 period 14 × weight 1 dominates.
  EXPECT_DOUBLE_EQ(m.max_weighted_period, 14.0);
  // Latency: App1 latency (1 + 2 + 0) = 3 at slow speed... weight 3 => 9 + check
  EXPECT_DOUBLE_EQ(m.per_app[0].latency, 1.0 + 6.0 / 3.0 + 0.0);
  EXPECT_DOUBLE_EQ(m.max_weighted_latency,
                   std::max(3.0 * m.per_app[0].latency, m.per_app[1].latency));
}

TEST(Evaluation, OneToOneCycleTime) {
  const Problem p = example();
  // Stage 2 of App2 (w=4, δ_in=1, δ_out=1) on P1 at speed 6.
  EXPECT_DOUBLE_EQ(one_to_one_cycle_time(p, 1, 2, 0, 6.0),
                   std::max({1.0 / 1.0, 4.0 / 6.0, 1.0 / 1.0}));
  // No-overlap: sum.
  const Problem serial = example().with_comm_model(CommModel::NoOverlap);
  EXPECT_DOUBLE_EQ(one_to_one_cycle_time(serial, 1, 2, 0, 6.0),
                   1.0 + 4.0 / 6.0 + 1.0);
}

TEST(Evaluation, EnergySumsOnlyEnrolledProcessors) {
  const Problem p = example();
  EXPECT_DOUBLE_EQ(mapping_energy(p, energy_minimal()), 10.0);
  EXPECT_DOUBLE_EQ(mapping_energy(p, period_optimal()), 136.0);
}

TEST(Evaluation, InvalidMappingRejectedByDefault) {
  const Problem p = example();
  const Mapping bad({{0, 0, 2, 0, 0}});
  EXPECT_THROW((void)evaluate(p, bad), std::invalid_argument);
}

TEST(Evaluation, MatchesExactRationalRecomputation) {
  // Re-derive the period of the period-optimal mapping with exact rationals.
  using util::Rational;
  const Rational app1 = Rational::max(
      Rational::max(Rational(1, 1), Rational(3 + 2 + 1, 6)), Rational(0, 1));
  const Rational app2a = Rational::max(
      Rational::max(Rational(0, 1), Rational(2 + 6, 8)), Rational(1, 1));
  const Rational app2b = Rational::max(
      Rational::max(Rational(1, 1), Rational(4 + 2, 6)), Rational(1, 1));
  const Rational period =
      Rational::max(app1, Rational::max(app2a, app2b));
  const Problem p = example();
  const Metrics m = evaluate(p, period_optimal());
  EXPECT_DOUBLE_EQ(m.max_weighted_period, period.to_double());
}

}  // namespace
}  // namespace pipeopt::core
