#include "core/platform.hpp"

#include <gtest/gtest.h>

namespace pipeopt::core {
namespace {

TEST(Processor, SortsAndDedupsSpeeds) {
  const Processor p({6.0, 3.0, 6.0}, 0.5, "P");
  EXPECT_EQ(p.mode_count(), 2u);
  EXPECT_DOUBLE_EQ(p.speed(0), 3.0);
  EXPECT_DOUBLE_EQ(p.speed(1), 6.0);
  EXPECT_DOUBLE_EQ(p.min_speed(), 3.0);
  EXPECT_DOUBLE_EQ(p.max_speed(), 6.0);
  EXPECT_EQ(p.max_mode(), 1u);
}

TEST(Processor, Validation) {
  EXPECT_THROW(Processor({}), std::invalid_argument);
  EXPECT_THROW(Processor({0.0}), std::invalid_argument);
  EXPECT_THROW(Processor({-1.0}), std::invalid_argument);
  EXPECT_THROW(Processor({1.0}, -0.1), std::invalid_argument);
}

TEST(Processor, SlowestModeAtLeast) {
  const Processor p({1.0, 3.0, 6.0});
  EXPECT_EQ(p.slowest_mode_at_least(0.5), 0u);
  EXPECT_EQ(p.slowest_mode_at_least(1.0), 0u);
  EXPECT_EQ(p.slowest_mode_at_least(2.0), 1u);
  EXPECT_EQ(p.slowest_mode_at_least(6.0), 2u);
  EXPECT_FALSE(p.slowest_mode_at_least(6.1).has_value());
}

TEST(Processor, UniModal) {
  EXPECT_TRUE(Processor({2.0}).is_uni_modal());
  EXPECT_FALSE(Processor({2.0, 4.0}).is_uni_modal());
}

Platform uniform_platform() {
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{3.0, 6.0}, 0.0, "P1");
  procs.emplace_back(std::vector<double>{6.0, 8.0}, 0.0, "P2");
  return Platform(std::move(procs), 1.0, 2.0);
}

TEST(Platform, UniformBandwidthEverywhere) {
  const Platform p = uniform_platform();
  EXPECT_TRUE(p.has_uniform_bandwidth());
  EXPECT_DOUBLE_EQ(p.bandwidth(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.in_bandwidth(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(p.out_bandwidth(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(p.uniform_bandwidth(), 1.0);
}

TEST(Platform, EnergyModel) {
  const Platform p = uniform_platform();
  EXPECT_DOUBLE_EQ(p.dynamic_energy(3.0), 9.0);
  EXPECT_DOUBLE_EQ(p.processor_energy(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(p.processor_energy(0, 1), 36.0);
  EXPECT_DOUBLE_EQ(p.min_processor_energy(1), 36.0);
}

TEST(Platform, EnergyModelWithStaticAndAlpha3) {
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{2.0}, 5.0);
  Platform p(std::move(procs), 1.0, 3.0);
  EXPECT_DOUBLE_EQ(p.processor_energy(0, 0), 5.0 + 8.0);
}

TEST(Platform, Classification) {
  EXPECT_EQ(uniform_platform().classify(), PlatformClass::CommHomogeneous);

  std::vector<Processor> same;
  same.emplace_back(std::vector<double>{2.0, 4.0}, 1.0);
  same.emplace_back(std::vector<double>{2.0, 4.0}, 1.0);
  EXPECT_EQ(Platform(std::move(same), 1.0).classify(),
            PlatformClass::FullyHomogeneous);

  std::vector<Processor> hetero;
  hetero.emplace_back(std::vector<double>{2.0});
  hetero.emplace_back(std::vector<double>{2.0});
  std::vector<std::vector<double>> links{{1.0, 2.0}, {2.0, 1.0}};
  std::vector<std::vector<double>> io{{1.0, 1.0}};
  EXPECT_EQ(Platform(std::move(hetero), links, io, io).classify(),
            PlatformClass::FullyHeterogeneous);
}

TEST(Platform, StaticEnergyDifferenceBreaksHomogeneity) {
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{2.0}, 0.0);
  procs.emplace_back(std::vector<double>{2.0}, 1.0);
  EXPECT_EQ(Platform(std::move(procs), 1.0).classify(),
            PlatformClass::CommHomogeneous);
}

TEST(Platform, HeterogeneousBandwidths) {
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{2.0});
  procs.emplace_back(std::vector<double>{4.0});
  std::vector<std::vector<double>> links{{1.0, 0.5}, {0.5, 1.0}};
  std::vector<std::vector<double>> in{{2.0, 3.0}};
  std::vector<std::vector<double>> out{{4.0, 5.0}};
  const Platform p(std::move(procs), links, in, out);
  EXPECT_FALSE(p.has_uniform_bandwidth());
  EXPECT_DOUBLE_EQ(p.bandwidth(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(p.in_bandwidth(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(p.out_bandwidth(0, 0), 4.0);
  EXPECT_THROW((void)p.uniform_bandwidth(), std::logic_error);
}

TEST(Platform, HeterogeneousValidation) {
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{2.0});
  procs.emplace_back(std::vector<double>{4.0});
  std::vector<std::vector<double>> asym{{1.0, 0.5}, {0.7, 1.0}};
  std::vector<std::vector<double>> io{{1.0, 1.0}};
  EXPECT_THROW(Platform(std::vector<Processor>(procs), asym, io, io),
               std::invalid_argument);
  std::vector<std::vector<double>> ragged{{1.0}, {1.0, 1.0}};
  EXPECT_THROW(Platform(std::vector<Processor>(procs), ragged, io, io),
               std::invalid_argument);
}

TEST(Platform, GeneralValidation) {
  EXPECT_THROW(Platform({}, 1.0), std::invalid_argument);
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{2.0});
  EXPECT_THROW(Platform(std::vector<Processor>(procs), 0.0), std::invalid_argument);
  EXPECT_THROW(Platform(std::vector<Processor>(procs), 1.0, 1.0),
               std::invalid_argument);  // alpha must be > 1
}

TEST(Platform, UniModalDetection) {
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{2.0});
  procs.emplace_back(std::vector<double>{3.0});
  EXPECT_TRUE(Platform(std::move(procs), 1.0).is_uni_modal());
  EXPECT_FALSE(uniform_platform().is_uni_modal());
}

TEST(Platform, ProcessorsByMaxSpeedDesc) {
  std::vector<Processor> procs;
  procs.emplace_back(std::vector<double>{2.0});
  procs.emplace_back(std::vector<double>{8.0});
  procs.emplace_back(std::vector<double>{4.0});
  const Platform p(std::move(procs), 1.0);
  const auto order = p.processors_by_max_speed_desc();
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

}  // namespace
}  // namespace pipeopt::core
