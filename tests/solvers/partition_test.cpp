#include "solvers/partition.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "util/random.hpp"

namespace pipeopt::solvers {
namespace {

TEST(TwoPartition, FindsKnownPartition) {
  const std::vector<std::int64_t> values{3, 1, 1, 2, 2, 1};
  const auto subset = two_partition(values);
  ASSERT_TRUE(subset.has_value());
  std::int64_t sum = 0;
  for (std::size_t i : *subset) sum += values[i];
  EXPECT_EQ(sum, 5);
}

TEST(TwoPartition, OddTotalImpossible) {
  EXPECT_FALSE(two_partition({1, 2, 4}).has_value());
}

TEST(TwoPartition, EvenTotalButImpossible) {
  EXPECT_FALSE(two_partition({1, 1, 4}).has_value());
  EXPECT_FALSE(two_partition({2, 6}).has_value());
}

TEST(TwoPartition, SingleElement) {
  EXPECT_FALSE(two_partition({2}).has_value());
}

TEST(TwoPartition, PairSplits) {
  const auto subset = two_partition({7, 7});
  ASSERT_TRUE(subset.has_value());
  EXPECT_EQ(subset->size(), 1u);
}

TEST(TwoPartition, RejectsNonPositive) {
  EXPECT_THROW((void)two_partition({1, 0}), std::invalid_argument);
  EXPECT_THROW((void)two_partition({-1, 1}), std::invalid_argument);
}

TEST(TwoPartition, SubsetIndicesAreDistinctAndValid) {
  util::Rng rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<std::int64_t> values;
    const std::size_t n = 2 + rng.index(8);
    for (std::size_t i = 0; i < n; ++i) values.push_back(rng.uniform_int(1, 30));
    const auto subset = two_partition(values);
    if (!subset) continue;
    std::int64_t sum = 0;
    std::set<std::size_t> seen;
    for (std::size_t i : *subset) {
      ASSERT_LT(i, values.size());
      EXPECT_TRUE(seen.insert(i).second);
      sum += values[i];
    }
    const std::int64_t total =
        std::accumulate(values.begin(), values.end(), std::int64_t{0});
    EXPECT_EQ(2 * sum, total);
  }
}

TEST(TwoPartition, AgreesWithExhaustiveOracle) {
  util::Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<std::int64_t> values;
    const std::size_t n = 1 + rng.index(10);
    for (std::size_t i = 0; i < n; ++i) values.push_back(rng.uniform_int(1, 12));
    // Oracle: subset-sum over all bitmasks.
    const std::int64_t total =
        std::accumulate(values.begin(), values.end(), std::int64_t{0});
    bool possible = false;
    if (total % 2 == 0) {
      for (std::uint32_t mask = 0; mask < (1u << n) && !possible; ++mask) {
        std::int64_t sum = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (mask & (1u << i)) sum += values[i];
        }
        possible = (2 * sum == total);
      }
    }
    EXPECT_EQ(two_partition(values).has_value(), possible)
        << "iteration " << iter;
  }
}

TEST(ThreePartitionInstance, CanonicalCheck) {
  // B = 10; values strictly in (2.5, 5).
  ThreePartitionInstance good{{3, 3, 4, 3, 3, 4}, 10};
  EXPECT_TRUE(good.is_canonical());
  EXPECT_EQ(good.group_count(), 2u);

  ThreePartitionInstance bad_sum{{3, 3, 4, 3, 3, 3}, 10};
  EXPECT_FALSE(bad_sum.is_canonical());

  ThreePartitionInstance out_of_range{{1, 4, 5, 3, 3, 4}, 10};
  EXPECT_FALSE(out_of_range.is_canonical());
}

TEST(ThreePartition, SolvesYesInstance) {
  // Two triples of sum 12: {4,4,4} and {5,4,3}... must keep B/4 < a < B/2,
  // i.e. 3 < a < 6: use {4,4,4} and {5,4,3}->3 not allowed; choose
  // {4,4,4},{5,4,3} invalid; instead {4,4,4} and {4,4,4}.
  ThreePartitionInstance instance{{4, 4, 4, 4, 4, 4}, 12};
  const auto triples = three_partition(instance);
  ASSERT_TRUE(triples.has_value());
  EXPECT_EQ(triples->size(), 2u);
  for (const auto& t : *triples) {
    EXPECT_EQ(instance.values[t[0]] + instance.values[t[1]] + instance.values[t[2]],
              12);
  }
}

TEST(ThreePartition, MixedValuesYesInstance) {
  // B = 15, triples {4,5,6} twice. Range (3.75, 7.5) holds.
  ThreePartitionInstance instance{{4, 5, 6, 6, 5, 4}, 15};
  ASSERT_TRUE(instance.is_canonical());
  EXPECT_TRUE(three_partition(instance).has_value());
}

TEST(ThreePartition, NoInstance) {
  // Sum is 2*B but no triple arrangement works: {4,4,7,5,5,5}, B=15:
  // triples must sum 15: {4,4,7} = 15 works and {5,5,5} = 15 works — that IS
  // a yes. Use {4,4,4,6,6,6}, B=15: candidate triples {4,4,6}=14, {4,6,6}=16,
  // {4,4,4}=12, {6,6,6}=18 -> no.
  ThreePartitionInstance instance{{4, 4, 4, 6, 6, 6}, 15};
  EXPECT_FALSE(three_partition(instance).has_value());
}

TEST(ThreePartition, WrongSizeRejected) {
  ThreePartitionInstance instance{{4, 4}, 8};
  EXPECT_FALSE(three_partition(instance).has_value());
}

TEST(ThreePartition, TriplesDisjointAndComplete) {
  ThreePartitionInstance instance{{5, 5, 5, 4, 5, 6, 4, 6, 5}, 15};
  const auto triples = three_partition(instance);
  ASSERT_TRUE(triples.has_value());
  std::set<std::size_t> seen;
  for (const auto& t : *triples) {
    for (std::size_t i : t) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 9u);
}

}  // namespace
}  // namespace pipeopt::solvers
