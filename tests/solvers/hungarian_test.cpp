#include "solvers/hungarian.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/random.hpp"

namespace pipeopt::solvers {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Brute-force oracle: min cost over all injections rows -> cols.
double brute_force(const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();
  const std::size_t m = cost.front().size();
  std::vector<std::size_t> cols(m);
  std::iota(cols.begin(), cols.end(), std::size_t{0});
  double best = kInf;
  // Permute columns; use the first n as the assignment.
  std::sort(cols.begin(), cols.end());
  do {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) total += cost[r][cols[r]];
    best = std::min(best, total);
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

TEST(Hungarian, SquareKnownCase) {
  const std::vector<std::vector<double>> cost{
      {4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto result = solve_assignment(cost);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->total_cost, 5.0);  // 1 + 2 + 2
}

TEST(Hungarian, RectangularUsesBestColumns) {
  const std::vector<std::vector<double>> cost{{10, 1, 10, 10}, {10, 10, 2, 10}};
  const auto result = solve_assignment(cost);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->total_cost, 3.0);
  EXPECT_EQ(result->column_of[0], 1u);
  EXPECT_EQ(result->column_of[1], 2u);
}

TEST(Hungarian, InfeasibleWhenRowHasOnlyInfiniteEdges) {
  const std::vector<std::vector<double>> cost{{kInf, kInf}, {1, 2}};
  EXPECT_FALSE(solve_assignment(cost).has_value());
}

TEST(Hungarian, InfeasibleWhenForcedOntoInfiniteEdge) {
  // Both rows can only use column 0 finitely -> no finite assignment.
  const std::vector<std::vector<double>> cost{{1, kInf}, {1, kInf}};
  EXPECT_FALSE(solve_assignment(cost).has_value());
}

TEST(Hungarian, EmptyProblem) {
  const auto result = solve_assignment({});
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->total_cost, 0.0);
}

TEST(Hungarian, RejectsBadShape) {
  EXPECT_THROW((void)solve_assignment({{1.0, 2.0}, {1.0}}), std::invalid_argument);
  EXPECT_THROW((void)solve_assignment({{1.0}, {1.0}}), std::invalid_argument);
}

TEST(Hungarian, AssignmentIsInjective) {
  util::Rng rng(123);
  std::vector<std::vector<double>> cost(5, std::vector<double>(7));
  for (auto& row : cost) {
    for (double& c : row) c = rng.uniform(0.0, 10.0);
  }
  const auto result = solve_assignment(cost);
  ASSERT_TRUE(result.has_value());
  std::vector<std::size_t> cols = result->column_of;
  std::sort(cols.begin(), cols.end());
  EXPECT_EQ(std::adjacent_find(cols.begin(), cols.end()), cols.end());
}

class HungarianRandomized : public ::testing::TestWithParam<int> {};

TEST_P(HungarianRandomized, MatchesBruteForce) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t n = 1 + rng.index(4);       // rows 1..4
  const std::size_t m = n + rng.index(3);       // cols n..n+2
  std::vector<std::vector<double>> cost(n, std::vector<double>(m));
  for (auto& row : cost) {
    for (double& c : row) {
      c = rng.chance(0.15) ? kInf : std::floor(rng.uniform(0.0, 20.0));
    }
  }
  const auto result = solve_assignment(cost);
  const double oracle = brute_force(cost);
  if (!std::isfinite(oracle)) {
    EXPECT_FALSE(result.has_value());
  } else {
    ASSERT_TRUE(result.has_value());
    EXPECT_DOUBLE_EQ(result->total_cost, oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HungarianRandomized, ::testing::Range(0, 50));

}  // namespace
}  // namespace pipeopt::solvers
