#include "solvers/hopcroft_karp.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "util/random.hpp"

namespace pipeopt::solvers {
namespace {

/// Brute-force maximum matching size via augmenting-path DFS on every subset
/// order (simple Kuhn's algorithm — an independent implementation).
std::size_t kuhn_matching(const BipartiteGraph& g) {
  std::vector<std::size_t> match_r(g.right_count(), MatchingResult::npos);
  std::function<bool(std::size_t, std::vector<char>&)> try_kuhn =
      [&](std::size_t l, std::vector<char>& visited) -> bool {
    for (std::size_t r : g.neighbours(l)) {
      if (visited[r]) continue;
      visited[r] = 1;
      if (match_r[r] == MatchingResult::npos ||
          try_kuhn(match_r[r], visited)) {
        match_r[r] = l;
        return true;
      }
    }
    return false;
  };
  std::size_t size = 0;
  for (std::size_t l = 0; l < g.left_count(); ++l) {
    std::vector<char> visited(g.right_count(), 0);
    if (try_kuhn(l, visited)) ++size;
  }
  return size;
}

TEST(HopcroftKarp, SimplePerfectMatching) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(2, 2);
  const MatchingResult r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 3u);
  EXPECT_TRUE(has_left_perfect_matching(g));
}

TEST(HopcroftKarp, BlockedMatching) {
  // Two left vertices compete for one right vertex.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 0);
  const MatchingResult r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 1u);
  EXPECT_FALSE(has_left_perfect_matching(g));
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(0, 5);
  EXPECT_EQ(hopcroft_karp(g).size, 0u);
  EXPECT_TRUE(has_left_perfect_matching(g));
}

TEST(HopcroftKarp, NoEdges) {
  BipartiteGraph g(3, 3);
  EXPECT_EQ(hopcroft_karp(g).size, 0u);
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // Greedy left-to-right would match 0-0 and block 1; HK must augment.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(hopcroft_karp(g).size, 2u);
}

TEST(HopcroftKarp, MatchLeftConsistent) {
  BipartiteGraph g(3, 4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const MatchingResult r = hopcroft_karp(g);
  EXPECT_EQ(r.size, 3u);
  EXPECT_EQ(r.match_left[0], 1u);
  EXPECT_EQ(r.match_left[1], 2u);
  EXPECT_EQ(r.match_left[2], 3u);
}

TEST(HopcroftKarp, EdgeBoundsChecked) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
}

class HopcroftKarpRandomized : public ::testing::TestWithParam<int> {};

TEST_P(HopcroftKarpRandomized, MatchesKuhnOracle) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  const std::size_t nl = 1 + rng.index(8);
  const std::size_t nr = 1 + rng.index(8);
  BipartiteGraph g(nl, nr);
  for (std::size_t l = 0; l < nl; ++l) {
    for (std::size_t r = 0; r < nr; ++r) {
      if (rng.chance(0.3)) g.add_edge(l, r);
    }
  }
  EXPECT_EQ(hopcroft_karp(g).size, kuhn_matching(g));
}

INSTANTIATE_TEST_SUITE_P(Sweep, HopcroftKarpRandomized, ::testing::Range(0, 60));

}  // namespace
}  // namespace pipeopt::solvers
