#include "solvers/search.hpp"

#include <gtest/gtest.h>

namespace pipeopt::solvers {
namespace {

TEST(Search, NormalizeSortsAndDedups) {
  const auto out = normalize_candidates({3.0, 1.0, 2.0, 1.0, 3.0});
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Search, FindsSmallestFeasible) {
  const std::vector<double> candidates{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto result =
      min_feasible_candidate(candidates, [](double t) { return t >= 3.0; });
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(*result, 3.0);
}

TEST(Search, AllFeasible) {
  const std::vector<double> candidates{1.0, 2.0};
  const auto result = min_feasible_candidate(candidates, [](double) { return true; });
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(*result, 1.0);
}

TEST(Search, NoneFeasible) {
  const std::vector<double> candidates{1.0, 2.0};
  EXPECT_FALSE(
      min_feasible_candidate(candidates, [](double) { return false; }).has_value());
}

TEST(Search, EmptyCandidates) {
  EXPECT_FALSE(min_feasible_candidate({}, [](double) { return true; }).has_value());
}

TEST(Search, OracleCallCountIsLogarithmic) {
  std::vector<double> candidates;
  for (int i = 0; i < 1024; ++i) candidates.push_back(static_cast<double>(i));
  int calls = 0;
  const auto result = min_feasible_candidate(candidates, [&](double t) {
    ++calls;
    return t >= 700.0;
  });
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(*result, 700.0);
  EXPECT_LE(calls, 11);  // ceil(log2(1024)) + 1
}

TEST(Search, SingleCandidate) {
  const auto yes = min_feasible_candidate({7.0}, [](double) { return true; });
  ASSERT_TRUE(yes.has_value());
  EXPECT_DOUBLE_EQ(*yes, 7.0);
}

}  // namespace
}  // namespace pipeopt::solvers
