#include "util/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace pipeopt::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LE(x, 5.0);
  }
}

TEST(Rng, LogUniformInRangeAndSpansScales) {
  Rng rng(7);
  int low_decade = 0, high_decade = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.log_uniform(0.01, 100.0);
    ASSERT_GE(x, 0.01);
    ASSERT_LE(x, 100.0);
    if (x < 0.1) ++low_decade;
    if (x > 10.0) ++high_decade;
  }
  // Log-uniform puts ~25% of the mass in each of the four decades.
  EXPECT_GT(low_decade, 200);
  EXPECT_GT(high_decade, 200);
}

TEST(Rng, LogUniformRejectsNonPositive) {
  Rng rng(7);
  EXPECT_THROW((void)rng.log_uniform(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.log_uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.uniform_int(1, 4));
  EXPECT_EQ(seen, (std::set<std::int64_t>{1, 2, 3, 4}));
}

TEST(Rng, IndexBounds) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) EXPECT_LT(rng.index(7), 7u);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(11);
  const auto perm = rng.permutation(20);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 19u);
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  EXPECT_NE(parent.seed(), child.seed());
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace pipeopt::util
