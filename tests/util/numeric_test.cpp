#include "util/numeric.hpp"

#include <gtest/gtest.h>

namespace pipeopt::util {
namespace {

TEST(Numeric, ApproxLeBasic) {
  EXPECT_TRUE(approx_le(1.0, 2.0));
  EXPECT_TRUE(approx_le(2.0, 2.0));
  EXPECT_FALSE(approx_le(2.1, 2.0));
}

TEST(Numeric, ApproxLeToleratesUlps) {
  const double t = 0.1 + 0.2;  // 0.30000000000000004
  EXPECT_TRUE(approx_le(t, 0.3));
  EXPECT_TRUE(approx_le(0.3, t));
}

TEST(Numeric, ApproxEqScalesWithMagnitude) {
  EXPECT_TRUE(approx_eq(1e12, 1e12 * (1 + 1e-12)));
  EXPECT_FALSE(approx_eq(1e12, 1e12 * (1 + 1e-6)));
}

TEST(Numeric, ApproxEqNearZeroUsesAbsoluteFloor) {
  EXPECT_TRUE(approx_eq(0.0, 1e-13));
  EXPECT_FALSE(approx_eq(0.0, 1e-6));
}

TEST(Numeric, ApproxLtExcludesTies) {
  EXPECT_TRUE(approx_lt(1.0, 2.0));
  EXPECT_FALSE(approx_lt(2.0, 2.0));
  EXPECT_FALSE(approx_lt(2.0, 2.0 + 1e-15));
}

TEST(Numeric, FeasibleValue) {
  EXPECT_TRUE(is_feasible_value(3.0));
  EXPECT_FALSE(is_feasible_value(kInfinity));
  EXPECT_FALSE(is_feasible_value(std::numeric_limits<double>::quiet_NaN()));
}

TEST(Numeric, InfinityComparisons) {
  EXPECT_TRUE(approx_le(1e300, kInfinity));
  EXPECT_FALSE(approx_le(kInfinity, 1e300));
}

}  // namespace
}  // namespace pipeopt::util
