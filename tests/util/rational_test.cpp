#include "util/rational.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

namespace pipeopt::util {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
  EXPECT_TRUE(r.is_zero());
}

TEST(Rational, NormalizesSignAndGcd) {
  Rational r(6, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 2);
  EXPECT_TRUE(r.is_negative());
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 3);
  const Rational b(1, 6);
  EXPECT_EQ(a + b, Rational(1, 2));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 18));
  EXPECT_EQ(a / b, Rational(2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1, 2) / Rational(0), std::domain_error);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(5, 10), Rational(1, 2));
}

TEST(Rational, MaxMinHelpers) {
  EXPECT_EQ(Rational::max(Rational(1, 3), Rational(1, 2)), Rational(1, 2));
  EXPECT_EQ(Rational::min(Rational(1, 3), Rational(1, 2)), Rational(1, 3));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(3, 4).to_double(), 0.75);
  EXPECT_DOUBLE_EQ(Rational(-7, 2).to_double(), -3.5);
}

TEST(Rational, Pow) {
  EXPECT_EQ(Rational(2, 3).pow(0), Rational(1));
  EXPECT_EQ(Rational(2, 3).pow(1), Rational(2, 3));
  EXPECT_EQ(Rational(2, 3).pow(3), Rational(8, 27));
  EXPECT_EQ(Rational(-2).pow(2), Rational(4));
}

TEST(Rational, OverflowDetected) {
  const Rational big(INT64_MAX, 1);
  EXPECT_THROW(big * big, RationalOverflow);
  EXPECT_THROW(big + big, RationalOverflow);
}

TEST(Rational, CrossProductComparisonSurvivesLargeValues) {
  // Cross products of these overflow int64; the exact 128-bit comparison
  // must still distinguish values that differ by ~1 part in 2^126.
  const Rational a(INT64_MAX, INT64_MAX - 1);      // 1 + 1/(M-1)
  const Rational b(INT64_MAX - 1, INT64_MAX - 2);  // 1 + 1/(M-2) > a
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, a);
}

TEST(Rational, StreamOutput) {
  std::ostringstream os;
  os << Rational(3, 7) << " " << Rational(5);
  EXPECT_EQ(os.str(), "3/7 5");
}

TEST(Rational, MirrorsPeriodExpressionExactly) {
  // max(δ_in/b, Σw/s, δ_out/b) for the §2 example's P2 interval:
  // max(0/1, (2+6)/8, 1/1) = 1.
  const Rational in(0, 1);
  const Rational comp = Rational(2 + 6) / Rational(8);
  const Rational out(1, 1);
  EXPECT_EQ(Rational::max(Rational::max(in, comp), out), Rational(1));
}

}  // namespace
}  // namespace pipeopt::util
