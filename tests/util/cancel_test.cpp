/// CancelSource/CancelToken semantics, including the deadline-carrying
/// tokens behind `SolveRequest::deadline_ms`: a token cancels when its
/// source fires OR its wall-clock deadline passes, whichever comes first.

#include "util/cancel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace pipeopt::util {
namespace {

using std::chrono::hours;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

TEST(Cancel, DefaultTokenNeverCancels) {
  const CancelToken token;
  EXPECT_FALSE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancel, SourceFiresItsTokens) {
  CancelSource source;
  const CancelToken token = source.token();
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
  source.request_cancel();
  EXPECT_TRUE(source.cancel_requested());
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancel, TokenOutlivesItsSource) {
  CancelToken token;
  {
    CancelSource source;
    token = source.token();
    source.request_cancel();
  }  // the source dies; the flag is shared, so the token stays cancelled
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancel, PastDeadlineCancelsWithoutASource) {
  const CancelToken token =
      CancelToken{}.with_deadline(steady_clock::now() - milliseconds(1));
  EXPECT_TRUE(token.cancellable());
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancel, FutureDeadlineDoesNotCancelYet) {
  const CancelToken token = CancelToken{}.with_timeout(hours(1));
  EXPECT_TRUE(token.cancellable());
  EXPECT_FALSE(token.cancelled());
}

TEST(Cancel, DeadlineExpiryIsObservedByPolling) {
  const CancelToken token = CancelToken{}.with_timeout(milliseconds(10));
  // Poll like a solver would; the token flips within the timeout plus one
  // sleep quantum. Generous bound keeps this robust on a loaded machine.
  const auto give_up = steady_clock::now() + std::chrono::seconds(10);
  while (!token.cancelled() && steady_clock::now() < give_up) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_TRUE(token.cancelled());
}

TEST(Cancel, SourceStillWinsOnADeadlineToken) {
  CancelSource source;
  const CancelToken token = source.token().with_timeout(hours(1));
  EXPECT_FALSE(token.cancelled());
  source.request_cancel();
  EXPECT_TRUE(token.cancelled());  // far before the deadline
}

TEST(Cancel, WithDeadlineReplacesNotStacks) {
  // A second with_deadline overrides the first — the plan re-arms a fresh
  // window per execution, so an earlier (already expired) deadline must not
  // linger on the copied token.
  const CancelToken expired =
      CancelToken{}.with_deadline(steady_clock::now() - milliseconds(1));
  const CancelToken rearmed = expired.with_timeout(hours(1));
  EXPECT_TRUE(expired.cancelled());
  EXPECT_FALSE(rearmed.cancelled());
}

TEST(Cancel, WithDeadlineLeavesTheOriginalAlone) {
  const CancelToken plain;
  const CancelToken timed = plain.with_timeout(milliseconds(0));
  EXPECT_FALSE(plain.cancellable());
  EXPECT_TRUE(timed.cancellable());
}

}  // namespace
}  // namespace pipeopt::util
