#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace pipeopt::util {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_NEAR(s.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summary, Quantiles) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(Summary, Geomean) {
  Summary s;
  for (double x : {1.0, 10.0, 100.0}) s.add(x);
  EXPECT_NEAR(s.geomean(), 10.0, 1e-12);
}

TEST(Summary, GeomeanRejectsNonPositive) {
  Summary s;
  s.add(-1.0);
  EXPECT_THROW((void)s.geomean(), std::domain_error);
}

TEST(Summary, EmptyThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), std::logic_error);
  EXPECT_THROW((void)s.median(), std::logic_error);
}

TEST(Summary, QuantileRangeChecked) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)s.quantile(1.1), std::invalid_argument);
}

TEST(Summary, StreamingWindowKeepsMostRecentSamples) {
  Summary s(3);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  // The ring holds only {3, 4, 5}; the lifetime count keeps growing.
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.total_added(), 5u);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
}

TEST(Summary, StreamingWindowZeroIsUnbounded) {
  Summary s(0);
  for (int i = 0; i < 10; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 10u);
  EXPECT_EQ(s.total_added(), 10u);
}

TEST(Summary, TotalAddedMatchesCountInUnboundedMode) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_EQ(s.total_added(), s.count());
}

TEST(Summary, SortedCacheInvalidatesOnAdd) {
  // The lazy sorted cache must refresh after interleaved add/query — a
  // polling loop queries several quantiles per tick, then records more.
  Summary s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.median(), 6.0);
  s.add(4.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
}

TEST(Summary, SortedQuantileInterpolatesOrderStatistics) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Summary::sorted_quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Summary::sorted_quantile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Summary::sorted_quantile(sorted, 0.5), 2.5);
  EXPECT_THROW((void)Summary::sorted_quantile({}, 0.5), std::logic_error);
  EXPECT_THROW((void)Summary::sorted_quantile(sorted, 1.5),
               std::invalid_argument);
}

TEST(WeightedQuantile, EmptyCountsReturnLowerBound) {
  const std::vector<std::uint64_t> counts{0, 0, 0};
  const std::vector<double> uppers{1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(weighted_quantile(counts, uppers, 0.0, 0.5), 0.0);
}

TEST(WeightedQuantile, ValidatesInput) {
  const std::vector<std::uint64_t> counts{1, 1};
  const std::vector<double> uppers{1.0};
  EXPECT_THROW((void)weighted_quantile(counts, uppers, 0.0, 0.5),
               std::invalid_argument);
  const std::vector<double> ok{1.0, 2.0};
  EXPECT_THROW((void)weighted_quantile(counts, ok, 0.0, -0.5),
               std::invalid_argument);
}

TEST(WeightedQuantile, InterpolatesInsideSelectedBucket) {
  // All mass in bucket (2, 4]: every quantile lands inside that bucket and
  // grows with q (mid-rank interpolation across the bucket's sample run).
  const std::vector<std::uint64_t> counts{0, 0, 10};
  const std::vector<double> uppers{1.0, 2.0, 4.0};
  const double p10 = weighted_quantile(counts, uppers, 0.0, 0.1);
  const double p90 = weighted_quantile(counts, uppers, 0.0, 0.9);
  EXPECT_GE(p10, 2.0);
  EXPECT_LE(p90, 4.0);
  EXPECT_LT(p10, p90);
}

TEST(WeightedQuantile, SplitsMassAcrossBuckets) {
  // Half the mass in (0, 1], half in (2, 4]: the median sits at one
  // bucket's edge region, the extreme quantiles in their own buckets.
  const std::vector<std::uint64_t> counts{5, 0, 5};
  const std::vector<double> uppers{1.0, 2.0, 4.0};
  EXPECT_LE(weighted_quantile(counts, uppers, 0.0, 0.0), 1.0);
  EXPECT_GE(weighted_quantile(counts, uppers, 0.0, 1.0), 2.0);
}

TEST(PowerFit, RecoversExactLaw) {
  // y = 3 * x^2.
  std::vector<double> x{1, 2, 4, 8, 16}, y;
  for (double v : x) y.push_back(3.0 * v * v);
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PowerFit, DistinguishesCubicFromQuadratic) {
  std::vector<double> x{2, 4, 8, 16, 32, 64}, y;
  for (double v : x) y.push_back(0.5 * v * v * v);
  const PowerFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 3.0, 1e-9);
}

TEST(PowerFit, RejectsBadInput) {
  EXPECT_THROW((void)fit_power_law({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_power_law({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW((void)fit_power_law({1.0, -2.0}, {1.0, 2.0}), std::domain_error);
  EXPECT_THROW((void)fit_power_law({1.0, 1.0}, {1.0, 2.0}), std::domain_error);
}

TEST(PowerFit, ExponentialGrowthYieldsSuperpolynomialExponentOverRange) {
  // 2^x sampled on doubling x: the fitted power-law exponent keeps growing
  // with the range, which is how the exact-solver bench flags exponential
  // scaling.
  std::vector<double> x1{2, 4, 8}, x2{2, 4, 8, 16, 32};
  auto make_y = [](const std::vector<double>& xs) {
    std::vector<double> ys;
    for (double v : xs) ys.push_back(std::pow(2.0, v));
    return ys;
  };
  const double e1 = fit_power_law(x1, make_y(x1)).exponent;
  const double e2 = fit_power_law(x2, make_y(x2)).exponent;
  EXPECT_GT(e2, e1);
  EXPECT_GT(e2, 5.0);
}

}  // namespace
}  // namespace pipeopt::util
