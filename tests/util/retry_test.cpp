/// util/retry.hpp: the retryability classification both wire clients
/// follow, and the capped deterministic backoff schedule.

#include "util/retry.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace pipeopt::util {
namespace {

TEST(Retry, ClassificationFollowsTheProtocolTable) {
  // Never-started sheds re-send freely.
  EXPECT_EQ(classify_error_code("overloaded"), Retryability::Always);
  EXPECT_EQ(classify_error_code("unavailable"), Retryability::Always);
  // The shard may have executed the request before dying.
  EXPECT_EQ(classify_error_code("shard-lost"), Retryability::IfIdempotent);
  // Permanent: parse/validation errors carry no code, an expired deadline
  // only gets more expired, and unknown codes default to the safe side.
  EXPECT_EQ(classify_error_code(""), Retryability::No);
  EXPECT_EQ(classify_error_code("expired"), Retryability::No);
  EXPECT_EQ(classify_error_code("not-a-real-code"), Retryability::No);
}

TEST(Retry, BackoffDoublesWithinJitterBandUntilTheCap) {
  RetryPolicy policy;
  policy.backoff_ms = 50;
  policy.max_backoff_ms = 2000;
  policy.seed = 7;
  std::uint64_t base = 50;
  for (std::size_t attempt = 0; attempt < 12; ++attempt) {
    const std::uint64_t delay = policy.delay_ms(attempt);
    EXPECT_GE(delay, base / 2) << "attempt " << attempt;
    EXPECT_LE(delay, base) << "attempt " << attempt;
    base = std::min<std::uint64_t>(base * 2, policy.max_backoff_ms);
  }
  // Deep attempts saturate at the cap's band, they never overflow past it.
  EXPECT_LE(policy.delay_ms(60), policy.max_backoff_ms);
  EXPECT_GE(policy.delay_ms(60), policy.max_backoff_ms / 2);
}

TEST(Retry, ScheduleIsAPureFunctionOfSeedAndAttempt) {
  RetryPolicy a;
  a.seed = 42;
  RetryPolicy b;
  b.seed = 42;
  RetryPolicy c;
  c.seed = 43;
  bool diverged = false;
  for (std::size_t attempt = 0; attempt < 16; ++attempt) {
    EXPECT_EQ(a.delay_ms(attempt), b.delay_ms(attempt)) << attempt;
    diverged |= a.delay_ms(attempt) != c.delay_ms(attempt);
  }
  EXPECT_TRUE(diverged) << "different seeds never jittered differently";
}

TEST(Retry, ZeroBackoffMeansNoSleepAtAll) {
  RetryPolicy policy;
  policy.backoff_ms = 0;
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(policy.delay_ms(attempt), 0u);
  }
}

}  // namespace
}  // namespace pipeopt::util
