#include "util/table.hpp"

#include <gtest/gtest.h>

namespace pipeopt::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"period", "1"});
  t.add_row({"latency", "2.75"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name    | value |"), std::string::npos);
  EXPECT_NE(out.find("| period  | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| latency | 2.75  |"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, IndentAppliedToEveryLine) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string out = t.render("  ");
  std::size_t lines = 0;
  for (std::size_t pos = 0; (pos = out.find('\n', pos)) != std::string::npos; ++pos) {
    ++lines;
  }
  EXPECT_EQ(lines, 3u);  // header + rule + row
  EXPECT_EQ(out.rfind("  |", 0), 0u);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(2.75), "2.75");
  EXPECT_EQ(format_double(14.0), "14");
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.0 / 3.0, 4), "0.3333");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN()), "nan");
}

}  // namespace
}  // namespace pipeopt::util
