#include "heuristics/list_heuristics.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::heuristics {
namespace {

using core::Application;
using core::Problem;
using core::StageSpec;

TEST(RankMatching, HeaviestStageGetsFastestProcessor) {
  std::vector<Application> apps;
  apps.push_back(Application(0.0, {StageSpec{1.0, 0.0}, StageSpec{9.0, 0.0},
                                   StageSpec{4.0, 0.0}}));
  std::vector<core::Processor> procs;
  procs.emplace_back(std::vector<double>{2.0});
  procs.emplace_back(std::vector<double>{8.0});
  procs.emplace_back(std::vector<double>{4.0});
  const Problem p(std::move(apps), core::Platform(std::move(procs), 1.0));
  const auto mapping = one_to_one_rank_matching(p);
  ASSERT_TRUE(mapping.has_value());
  mapping->validate_or_throw(p);
  // Stage 1 (w=9) -> P1 (speed 8); stage 2 (w=4) -> P2 (speed 4);
  // stage 0 (w=1) -> P0 (speed 2).
  for (const auto& iv : mapping->intervals()) {
    if (iv.first == 1) {
      EXPECT_EQ(iv.proc, 1u);
    } else if (iv.first == 2) {
      EXPECT_EQ(iv.proc, 2u);
    } else {
      EXPECT_EQ(iv.proc, 0u);
    }
  }
}

TEST(RankMatching, WeightsReorderStages) {
  // A light stage of a heavily-weighted application outranks a heavy stage
  // of a unit-weight one.
  std::vector<Application> apps;
  apps.push_back(Application(0.0, {StageSpec{2.0, 0.0}}, 10.0));
  apps.push_back(Application(0.0, {StageSpec{5.0, 0.0}}, 1.0));
  std::vector<core::Processor> procs;
  procs.emplace_back(std::vector<double>{1.0});
  procs.emplace_back(std::vector<double>{6.0});
  const Problem p(std::move(apps), core::Platform(std::move(procs), 1.0));
  const auto mapping = one_to_one_rank_matching(p);
  ASSERT_TRUE(mapping.has_value());
  for (const auto& iv : mapping->intervals()) {
    if (iv.app == 0) {
      EXPECT_EQ(iv.proc, 1u);  // weighted 20 > 5
    }
  }
}

TEST(RankMatching, TooFewProcessors) {
  util::Rng rng(3);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.processors = 2;
  shape.app.min_stages = 2;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_FALSE(one_to_one_rank_matching(problem).has_value());
}

TEST(RankMatching, ValidOnAllPlatformClasses) {
  util::Rng rng(4);
  for (int iter = 0; iter < 20; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.app.min_stages = 1;
    shape.app.max_stages = 3;
    shape.processors = 8;
    shape.platform.modes = 1 + rng.index(3);
    const std::array<core::PlatformClass, 3> classes{
        core::PlatformClass::FullyHomogeneous,
        core::PlatformClass::CommHomogeneous,
        core::PlatformClass::FullyHeterogeneous};
    shape.platform_class = classes[rng.index(3)];
    const auto problem = gen::random_problem(rng, shape);
    const auto mapping = one_to_one_rank_matching(problem);
    ASSERT_TRUE(mapping.has_value());
    EXPECT_FALSE(mapping->validate(problem).has_value());
    EXPECT_TRUE(mapping->is_one_to_one());
  }
}

TEST(RankMatching, OptimalOnUniformStagesCommHom) {
  // With identical stages and no communication the rank matching is
  // optimal for the period (any bijection is, by the exchange argument).
  util::Rng rng(5);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.special_app = true;
  shape.app.min_stages = 2;
  shape.app.max_stages = 2;
  shape.processors = 5;
  shape.platform_class = core::PlatformClass::CommHomogeneous;
  const auto problem = gen::random_problem(rng, shape);
  const auto mapping = one_to_one_rank_matching(problem);
  ASSERT_TRUE(mapping.has_value());
  const auto oracle =
      exact::exact_min_period(problem, exact::MappingKind::OneToOne);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_NEAR(core::evaluate(problem, *mapping).max_weighted_period,
              oracle->value, 1e-9);
}

}  // namespace
}  // namespace pipeopt::heuristics
