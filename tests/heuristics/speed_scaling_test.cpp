#include "heuristics/speed_scaling.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"

namespace pipeopt::heuristics {
namespace {

using core::ConstraintSet;
using core::Mapping;
using core::Thresholds;

TEST(SpeedScaling, ReducesEnergyUnderPeriodConstraint) {
  // §2 period-optimal mapping (energy 136); allowing period 2 lets the
  // scaler drop modes: P2 -> 6 and P1 -> 3 stay within the bound, P3 cannot
  // slow down (App1 would hit period 6). Result: 36 + 36 + 9 = 81 — feasible
  // but above the optimal restructured mapping's 46, which demonstrates why
  // DVFS-only scaling is a heuristic.
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({2.0, 2.0});
  const auto result = scale_down_speeds(problem, start, constraints);
  EXPECT_DOUBLE_EQ(result.energy_before, 136.0);
  EXPECT_DOUBLE_EQ(result.energy_after, 81.0);
  EXPECT_EQ(result.steps, 2u);
  const auto metrics = core::evaluate(problem, result.mapping);
  EXPECT_TRUE(constraints.satisfied_by(metrics));
}

TEST(SpeedScaling, NoSlackNoChange) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({1.0, 1.0});
  const auto result = scale_down_speeds(problem, start, constraints);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_DOUBLE_EQ(result.energy_after, result.energy_before);
}

TEST(SpeedScaling, RejectsInfeasibleStart) {
  const auto problem = gen::motivating_example();
  const Mapping slow({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});  // period 14
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({1.0, 1.0});
  EXPECT_THROW((void)scale_down_speeds(problem, slow, constraints),
               std::invalid_argument);
}

TEST(SpeedScaling, LatencyConstraintsRespected) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 1}, {1, 0, 3, 1, 1}});  // latency-optimal
  ConstraintSet constraints;
  constraints.latency = Thresholds::per_app({3.0, 3.0});
  const auto result = scale_down_speeds(problem, start, constraints);
  const auto metrics = core::evaluate(problem, result.mapping);
  EXPECT_TRUE(constraints.satisfied_by(metrics));
  EXPECT_LE(result.energy_after, result.energy_before);
}

TEST(SpeedScaling, PropertySweepEnergyMonotone) {
  util::Rng rng(81);
  for (int iter = 0; iter < 25; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.processors = shape.applications + 1 + rng.index(3);
    shape.platform.modes = 3;
    shape.platform_class = core::PlatformClass::CommHomogeneous;
    const auto problem = gen::random_problem(rng, shape);
    const auto start = greedy_interval_mapping(problem);
    ASSERT_TRUE(start.has_value());
    const auto base = core::evaluate(problem, *start);

    ConstraintSet constraints;
    constraints.period = Thresholds::uniform(
        problem, base.max_weighted_period * rng.uniform(1.0, 2.0));
    const auto result = scale_down_speeds(problem, *start, constraints);
    EXPECT_LE(result.energy_after, result.energy_before + 1e-12);
    const auto metrics = core::evaluate(problem, result.mapping);
    EXPECT_TRUE(constraints.satisfied_by(metrics));
  }
}

}  // namespace
}  // namespace pipeopt::heuristics
