#include "heuristics/neighborhood.hpp"

#include <gtest/gtest.h>

#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"

namespace pipeopt::heuristics {
namespace {

using core::Mapping;
using core::PlatformClass;

TEST(Neighborhood, AllNeighboursValid) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
  const auto all = neighbours(problem, start);
  ASSERT_FALSE(all.empty());
  for (const Mapping& m : all) {
    EXPECT_FALSE(m.validate(problem).has_value())
        << m.validate(problem).value_or("");
  }
}

TEST(Neighborhood, ContainsExpectedMoveKinds) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
  bool saw_split = false, saw_mode = false, saw_relocate = false, saw_swap = false;
  for (const Mapping& m : neighbours(problem, start)) {
    if (m.interval_count() == 3) saw_split = true;
    if (m.interval_count() == 2) {
      const auto ivs = m.intervals();
      if (ivs[0].proc == 0 && ivs[1].proc == 2 &&
          (ivs[0].mode != 0 || ivs[1].mode != 0)) {
        saw_mode = true;
      }
      if (ivs[0].proc == 2 && ivs[1].proc == 0) saw_swap = true;
      if (ivs[0].proc == 1 || ivs[1].proc == 1) saw_relocate = true;
    }
  }
  EXPECT_TRUE(saw_split);
  EXPECT_TRUE(saw_mode);
  EXPECT_TRUE(saw_relocate);
  EXPECT_TRUE(saw_swap);
}

TEST(Neighborhood, MergeShrinksIntervalCount) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  bool saw_merge = false;
  for (const Mapping& m : neighbours(problem, start)) {
    if (m.interval_count() == 2) saw_merge = true;
  }
  EXPECT_TRUE(saw_merge);
}

TEST(Neighborhood, RandomNeighbourIsValid) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const auto m = random_neighbour(problem, start, rng);
    ASSERT_TRUE(m.has_value());
    EXPECT_FALSE(m->validate(problem).has_value());
  }
}

TEST(Neighborhood, SweepAcrossPlatformClasses) {
  util::Rng rng(11);
  for (int iter = 0; iter < 20; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.processors = shape.applications + 1 + rng.index(3);
    shape.platform.modes = 1 + rng.index(3);
    const std::array<PlatformClass, 3> classes{
        PlatformClass::FullyHomogeneous, PlatformClass::CommHomogeneous,
        PlatformClass::FullyHeterogeneous};
    shape.platform_class = classes[rng.index(3)];
    const auto problem = gen::random_problem(rng, shape);
    const auto start = greedy_interval_mapping(problem);
    ASSERT_TRUE(start.has_value());
    for (const Mapping& m : neighbours(problem, *start)) {
      ASSERT_FALSE(m.validate(problem).has_value())
          << m.validate(problem).value_or("");
    }
  }
}

}  // namespace
}  // namespace pipeopt::heuristics
