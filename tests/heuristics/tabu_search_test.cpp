#include "heuristics/tabu_search.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/local_search.hpp"

namespace pipeopt::heuristics {
namespace {

using core::ConstraintSet;
using core::Mapping;
using core::Thresholds;

TEST(TabuSearch, EscapesTheHillClimbingLocalMinimum) {
  // §2, energy under period <= 2: hill climbing stalls at 73 (see
  // local_search_test); tabu's climbing moves must do at least as well and
  // reach the restructured optimum 46 on this small instance.
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({2.0, 2.0});

  const auto hill = local_search(problem, start, Goal::Energy, constraints);
  TabuOptions options;
  options.iterations = 400;
  const auto tabu = tabu_search(problem, start, Goal::Energy, constraints,
                                options);
  EXPECT_LE(tabu.value, hill.value + 1e-12);
  EXPECT_DOUBLE_EQ(tabu.value, 46.0);
  const auto metrics = core::evaluate(problem, tabu.mapping);
  EXPECT_TRUE(constraints.satisfied_by(metrics));
  EXPECT_DOUBLE_EQ(metrics.energy, 46.0);
}

TEST(TabuSearch, DeterministicGivenOptions) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 1}, {1, 0, 3, 2, 1}});
  const auto a = tabu_search(problem, start, Goal::Period);
  const auto b = tabu_search(problem, start, Goal::Period);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.moves, b.moves);
}

TEST(TabuSearch, InfeasibleStartCanRecover) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});  // period 14
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({2.0, 2.0});
  TabuOptions options;
  options.iterations = 400;
  const auto result =
      tabu_search(problem, start, Goal::Energy, constraints, options);
  ASSERT_TRUE(std::isfinite(result.value));
  EXPECT_TRUE(constraints.satisfied_by(core::evaluate(problem, result.mapping)));
}

TEST(TabuSearch, ImpossibleConstraintsGiveInfiniteValue) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({0.1, 0.1});
  TabuOptions options;
  options.iterations = 50;
  const auto result =
      tabu_search(problem, start, Goal::Energy, constraints, options);
  EXPECT_FALSE(std::isfinite(result.value));
}

TEST(TabuSearch, NeverWorseThanStartOnFeasibleInstances) {
  util::Rng rng(117);
  for (int iter = 0; iter < 12; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.processors = shape.applications + 1 + rng.index(3);
    shape.platform.modes = 2;
    const std::array<core::PlatformClass, 3> classes{
        core::PlatformClass::FullyHomogeneous,
        core::PlatformClass::CommHomogeneous,
        core::PlatformClass::FullyHeterogeneous};
    shape.platform_class = classes[rng.index(3)];
    const auto problem = gen::random_problem(rng, shape);
    const auto start = greedy_interval_mapping(problem);
    ASSERT_TRUE(start.has_value());
    const double before = core::evaluate(problem, *start).max_weighted_period;
    TabuOptions options;
    options.iterations = 120;
    const auto result = tabu_search(problem, *start, Goal::Period, {}, options);
    EXPECT_LE(result.value, before + 1e-12);
    EXPECT_FALSE(result.mapping.validate(problem).has_value());
  }
}

TEST(TabuSearch, MatchesExactOnTinyInstances) {
  util::Rng rng(118);
  int hits = 0;
  const int iters = 10;
  for (int iter = 0; iter < iters; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1;
    shape.app.min_stages = 2;
    shape.app.max_stages = 4;
    shape.processors = 3;
    shape.platform.modes = 2;
    shape.platform_class = core::PlatformClass::CommHomogeneous;
    const auto problem = gen::random_problem(rng, shape);
    const auto start = greedy_interval_mapping(problem);
    ASSERT_TRUE(start.has_value());
    TabuOptions options;
    options.iterations = 200;
    const auto result = tabu_search(problem, *start, Goal::Period, {}, options);
    const auto oracle =
        exact::exact_min_period(problem, exact::MappingKind::Interval);
    ASSERT_TRUE(oracle.has_value());
    EXPECT_GE(result.value, oracle->value - 1e-9);
    if (result.value <= oracle->value * 1.02) ++hits;
  }
  EXPECT_GE(hits, iters * 7 / 10);
}

}  // namespace
}  // namespace pipeopt::heuristics
