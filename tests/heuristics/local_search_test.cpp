#include "heuristics/local_search.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"

namespace pipeopt::heuristics {
namespace {

using core::ConstraintSet;
using core::Mapping;
using core::Thresholds;

TEST(GoalValue, MapsCriteria) {
  core::Metrics m;
  m.per_app = {{2.0, 5.0}};
  m.max_weighted_period = 2.0;
  m.max_weighted_latency = 5.0;
  m.energy = 7.0;
  EXPECT_DOUBLE_EQ(goal_value(Goal::Period, m), 2.0);
  EXPECT_DOUBLE_EQ(goal_value(Goal::Latency, m), 5.0);
  EXPECT_DOUBLE_EQ(goal_value(Goal::Energy, m), 7.0);
}

TEST(LocalSearch, FindsOptimalPeriodOnExample) {
  // From the min-energy mapping (period 14), hill-climbing on period should
  // reach the global optimum 1 on this small instance.
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 1}, {1, 0, 3, 2, 1}});
  const auto result = local_search(problem, start, Goal::Period);
  EXPECT_LE(result.value, 2.0);  // at minimum a big improvement over 14
  EXPECT_GT(result.steps, 0u);
  const auto metrics = core::evaluate(problem, result.mapping);
  EXPECT_NEAR(metrics.max_weighted_period, result.value, 1e-12);
}

TEST(LocalSearch, EnergyGoalUnderPeriodConstraint) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({2.0, 2.0});
  const auto result =
      local_search(problem, start, Goal::Energy, constraints);
  // Pure DVFS scaling reaches 81; structural moves (merge + relocate-with-
  // mode) reach 73 here; the restructured global optimum 46 needs
  // simultaneous moves hill climbing cannot take.
  EXPECT_LE(result.value, 81.0);
  EXPECT_GE(result.value, 46.0 - 1e-9);
  const auto metrics = core::evaluate(problem, result.mapping);
  EXPECT_TRUE(constraints.satisfied_by(metrics));
}

TEST(LocalSearch, InfeasibleStartThrows) {
  const auto problem = gen::motivating_example();
  const Mapping slow({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({1.0, 1.0});
  EXPECT_THROW((void)local_search(problem, slow, Goal::Energy, constraints),
               std::invalid_argument);
}

TEST(LocalSearch, StepLimitHonored) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 1}, {1, 0, 3, 2, 1}});
  LocalSearchOptions options;
  options.max_steps = 1;
  const auto result = local_search(problem, start, Goal::Period, {}, options);
  EXPECT_LE(result.steps, 1u);
}

TEST(LocalSearch, NeverWorseThanStart) {
  util::Rng rng(91);
  for (int iter = 0; iter < 15; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.processors = shape.applications + 1 + rng.index(3);
    shape.platform.modes = 2;
    const std::array<core::PlatformClass, 3> classes{
        core::PlatformClass::FullyHomogeneous,
        core::PlatformClass::CommHomogeneous,
        core::PlatformClass::FullyHeterogeneous};
    shape.platform_class = classes[rng.index(3)];
    const auto problem = gen::random_problem(rng, shape);
    const auto start = greedy_interval_mapping(problem);
    ASSERT_TRUE(start.has_value());
    const double before =
        core::evaluate(problem, *start).max_weighted_period;
    const auto result = local_search(problem, *start, Goal::Period);
    EXPECT_LE(result.value, before + 1e-12);
    EXPECT_FALSE(result.mapping.validate(problem).has_value());
  }
}

TEST(LocalSearch, NearOptimalOnSmallHeterogeneousInstances) {
  // On NP-hard cells the hill climber should land close to the exact
  // optimum for tiny instances (it may stall in local minima occasionally).
  util::Rng rng(92);
  int optimal_hits = 0;
  const int iters = 15;
  for (int iter = 0; iter < iters; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1;
    shape.app.min_stages = 2;
    shape.app.max_stages = 4;
    shape.processors = 3;
    shape.platform.modes = 2;
    shape.platform_class = core::PlatformClass::CommHomogeneous;
    const auto problem = gen::random_problem(rng, shape);
    const auto start = greedy_interval_mapping(problem);
    ASSERT_TRUE(start.has_value());
    const auto result = local_search(problem, *start, Goal::Period);
    const auto oracle =
        exact::exact_min_period(problem, exact::MappingKind::Interval);
    ASSERT_TRUE(oracle.has_value());
    EXPECT_GE(result.value, oracle->value - 1e-9);
    if (result.value <= oracle->value * 1.05) ++optimal_hits;
  }
  EXPECT_GE(optimal_hits, iters / 2);
}

}  // namespace
}  // namespace pipeopt::heuristics
