#include "heuristics/annealing.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "heuristics/interval_greedy.hpp"

namespace pipeopt::heuristics {
namespace {

using core::ConstraintSet;
using core::Mapping;
using core::Thresholds;

TEST(Annealing, ImprovesEnergyOnExample) {
  // Tri-criteria heuristic on the §2 instance: start at the period-optimal
  // mapping (energy 136), require period <= 2, minimize energy. The optimum
  // is 46; annealing must at least beat pure DVFS scaling's 81.
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({2.0, 2.0});
  util::Rng rng(7);
  AnnealingOptions options;
  options.iterations = 4000;
  const auto result =
      simulated_annealing(problem, start, Goal::Energy, constraints, rng, options);
  ASSERT_TRUE(std::isfinite(result.value));
  EXPECT_LE(result.value, 81.0);
  const auto metrics = core::evaluate(problem, result.mapping);
  EXPECT_TRUE(constraints.satisfied_by(metrics));
  EXPECT_NEAR(metrics.energy, result.value, 1e-12);
}

TEST(Annealing, InfeasibleStartCanRecover) {
  // Start from the min-energy mapping (period 14) with a period bound of 2:
  // infeasible start, but the walk can cross into feasibility.
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({2.0, 2.0});
  util::Rng rng(13);
  AnnealingOptions options;
  options.iterations = 4000;
  const auto result =
      simulated_annealing(problem, start, Goal::Energy, constraints, rng, options);
  ASSERT_TRUE(std::isfinite(result.value));
  const auto metrics = core::evaluate(problem, result.mapping);
  EXPECT_TRUE(constraints.satisfied_by(metrics));
}

TEST(Annealing, InfeasibleValueWhenNothingFeasibleSeen) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
  ConstraintSet constraints;
  constraints.period = Thresholds::per_app({0.1, 0.1});  // impossible
  util::Rng rng(17);
  AnnealingOptions options;
  options.iterations = 200;
  const auto result =
      simulated_annealing(problem, start, Goal::Energy, constraints, rng, options);
  EXPECT_FALSE(std::isfinite(result.value));
}

TEST(Annealing, DeterministicGivenSeed) {
  const auto problem = gen::motivating_example();
  const Mapping start({{0, 0, 2, 0, 1}, {1, 0, 3, 2, 1}});
  util::Rng rng1(23), rng2(23);
  AnnealingOptions options;
  options.iterations = 500;
  const auto r1 =
      simulated_annealing(problem, start, Goal::Period, {}, rng1, options);
  const auto r2 =
      simulated_annealing(problem, start, Goal::Period, {}, rng2, options);
  EXPECT_DOUBLE_EQ(r1.value, r2.value);
  EXPECT_EQ(r1.accepted, r2.accepted);
}

TEST(Annealing, ApproachesExactOnTinyInstances) {
  util::Rng rng(29);
  int close = 0;
  const int iters = 10;
  for (int iter = 0; iter < iters; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1;
    shape.app.min_stages = 2;
    shape.app.max_stages = 3;
    shape.processors = 3;
    shape.platform.modes = 2;
    shape.platform_class = core::PlatformClass::CommHomogeneous;
    const auto problem = gen::random_problem(rng, shape);
    const auto start = greedy_interval_mapping(problem);
    ASSERT_TRUE(start.has_value());
    util::Rng walk = rng.fork();
    AnnealingOptions options;
    options.iterations = 1500;
    const auto result =
        simulated_annealing(problem, *start, Goal::Period, {}, walk, options);
    const auto oracle =
        exact::exact_min_period(problem, exact::MappingKind::Interval);
    ASSERT_TRUE(oracle.has_value());
    EXPECT_GE(result.value, oracle->value - 1e-9);
    if (result.value <= oracle->value * 1.1) ++close;
  }
  EXPECT_GE(close, iters * 6 / 10);
}

}  // namespace
}  // namespace pipeopt::heuristics
