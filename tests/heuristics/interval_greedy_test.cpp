#include "heuristics/interval_greedy.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::heuristics {
namespace {

using core::CommModel;
using core::PlatformClass;

class GreedyAllPlatforms : public ::testing::TestWithParam<int> {};

TEST_P(GreedyAllPlatforms, ProducesValidMappings) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 3);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(3);
  shape.processors = shape.applications + rng.index(6);
  shape.app.min_stages = 1;
  shape.app.max_stages = 8;
  shape.platform.modes = 1 + rng.index(3);
  const std::array<PlatformClass, 3> classes{PlatformClass::FullyHomogeneous,
                                             PlatformClass::CommHomogeneous,
                                             PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[rng.index(3)];
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  const auto mapping = greedy_interval_mapping(problem);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_FALSE(mapping->validate(problem).has_value())
      << mapping->validate(problem).value_or("");
  // Runs at max speed everywhere.
  for (const auto& iv : mapping->intervals()) {
    EXPECT_EQ(iv.mode, problem.platform().processor(iv.proc).max_mode());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyAllPlatforms, ::testing::Range(0, 60));

TEST(GreedyInterval, TooFewProcessors) {
  util::Rng rng(71);
  gen::ProblemShape shape;
  shape.applications = 3;
  shape.processors = 2;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_FALSE(greedy_interval_mapping(problem).has_value());
}

TEST(GreedyInterval, ReasonableGapOnHomogeneousInstances) {
  // On fully homogeneous platforms the optimum is known (Theorem 3): the
  // constructive greedy should stay within a small constant factor.
  util::Rng rng(72);
  double worst_ratio = 1.0;
  for (int iter = 0; iter < 20; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.app.min_stages = 2;
    shape.app.max_stages = 4;
    shape.processors = shape.applications + 1 + rng.index(2);
    shape.platform_class = PlatformClass::FullyHomogeneous;
    const auto problem = gen::random_problem(rng, shape);
    const auto mapping = greedy_interval_mapping(problem);
    ASSERT_TRUE(mapping.has_value());
    const auto oracle =
        exact::exact_min_period(problem, exact::MappingKind::Interval);
    ASSERT_TRUE(oracle.has_value());
    const double heuristic_period =
        core::evaluate(problem, *mapping).max_weighted_period;
    worst_ratio = std::max(worst_ratio, heuristic_period / oracle->value);
  }
  EXPECT_LT(worst_ratio, 4.0);
}

}  // namespace
}  // namespace pipeopt::heuristics
