/// Shared Table 1/2 instance fixtures. The "grid" — every platform-class
/// column, alternating communication models, deterministic seeds — used to
/// be rebuilt locally by the executor, sweep, server and router suites;
/// every differential test (backend cross-check, byte-identity through the
/// wire tiers) now draws the identical instances from here, so "the grid"
/// means one thing across the whole test tree.

#pragma once

#include <cstddef>
#include <vector>

#include "gen/random_instances.hpp"
#include "util/random.hpp"

namespace pipeopt::testing_support {

/// The Table 1 grid shape: every platform column, alternating communication
/// models, deterministic seeds. `per_class` instances per platform class.
inline std::vector<core::Problem> table_grid(std::size_t per_class) {
  std::vector<core::Problem> problems;
  util::Rng rng(424242);
  for (const core::PlatformClass cls :
       {core::PlatformClass::FullyHomogeneous,
        core::PlatformClass::CommHomogeneous,
        core::PlatformClass::FullyHeterogeneous}) {
    for (std::size_t i = 0; i < per_class; ++i) {
      gen::ProblemShape shape;
      shape.platform_class = cls;
      shape.applications = 2;
      shape.processors = 5;
      shape.app.min_stages = 1;
      shape.app.max_stages = 3;
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      problems.push_back(gen::random_problem(rng, shape));
    }
  }
  return problems;
}

}  // namespace pipeopt::testing_support
