/// End-to-end tests of pipeopt-server over real sockets: responses over
/// the Table 1/2 grid are bit-identical to per-call `api::solve`, malformed
/// lines get structured errors instead of killing the process, deadlines
/// expire into typed cancelled results, a client that disconnects
/// mid-solve cancels its in-flight search (the PR 2 needle instance)
/// without affecting other connections, and shutdown drains gracefully.

#include "server/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "core/pareto.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "tests/server/wire_harness.hpp"

namespace pipeopt::server {
namespace {

// The wire-level harness (in-process server, JSONL client, problem grids)
// lives in wire_harness.hpp, shared with the router suite.
using testing_wire::TestServer;
using testing_wire::WireClient;
using testing_wire::comparable;
using testing_wire::needle_instance;
using testing_wire::needle_request;
using testing_wire::table_grid;

TEST(Server, ResponsesBitIdenticalToPerCallSolveOverTheGrid) {
  TestServer harness(/*jobs=*/2);
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  const std::vector<core::Problem> grid = table_grid(3);
  std::vector<api::SolveRequest> requests;
  {
    api::SolveRequest period;  // defaults: weighted period over intervals
    requests.push_back(period);
    api::SolveRequest latency;
    latency.objective = api::Objective::Latency;
    requests.push_back(latency);
    api::SolveRequest energy;
    energy.objective = api::Objective::Energy;
    energy.constraints.period = core::Thresholds::per_app({100.0, 100.0});
    requests.push_back(energy);
  }

  for (const core::Problem& problem : grid) {
    for (const api::SolveRequest& request : requests) {
      client.send_line(io::format_solve_request(problem, request));
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(comparable(*response), comparable(api::solve(problem, request)))
          << "wire solve diverged from api::solve on: " << *response;
    }
  }
}

TEST(Server, EchoesTheRequestId) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.send_line(io::format_solve_request(gen::motivating_example(),
                                            api::SolveRequest{}, "req-17"));
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::WireResult wire = io::parse_result_line(*response);
  EXPECT_EQ(wire.id, "req-17");
  EXPECT_TRUE(wire.result.solved());
}

TEST(Server, MalformedLineGetsStructuredErrorAndConnectionSurvives) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  // Three ways to be wrong: not JSON, bad request field, unknown type.
  for (const std::string& bad :
       {std::string("this is not json"),
        std::string(R"({"type":"solve","objective":"sideways","problem":"x"})"),
        std::string(R"({"type":"dance","id":"d1"})")}) {
    client.send_line(bad);
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    const io::JsonFields fields = io::parse_flat_json(*response);
    ASSERT_FALSE(fields.empty());
    EXPECT_EQ(fields.front().first, "type");
    EXPECT_EQ(fields.front().second, "error");
  }

  // The connection (and the server) is still fine afterwards.
  client.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(io::parse_result_line(*response).result.solved());
  EXPECT_EQ(harness.server().stats().errors(), 3u);
}

TEST(Server, PingAndStatsAnswerInline) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  client.send_line(R"({"type":"ping","id":"p1"})");
  auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, R"({"type":"pong","id":"p1"})");

  client.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  ASSERT_TRUE(client.recv_line().has_value());

  client.send_line(R"({"type":"stats"})");
  response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  auto value_of = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };
  EXPECT_EQ(value_of("type"), "stats");
  EXPECT_EQ(value_of("solves"), "1");
  EXPECT_EQ(value_of("cancelled"), "0");
  EXPECT_EQ(value_of("requests"), "3");  // ping + solve + this stats line
  EXPECT_TRUE(value_of("jobs").has_value());
  EXPECT_TRUE(value_of("pending").has_value());
  // The dispatched solver shows up as a per-solver count.
  const api::SolveResult local =
      api::solve(gen::motivating_example(), api::SolveRequest{});
  EXPECT_EQ(value_of("solver." + local.solver), "1");
}

TEST(Server, HealthAnswersPidUptimeAndInFlightInline) {
  // The router's probe: `{"type":"health"}` must answer instantly (no pool
  // round trip) with the process identity and load of this very server.
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  client.send_line(R"({"type":"health","id":"h1"})");
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  auto value_of = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };
  ASSERT_FALSE(fields.empty());
  EXPECT_EQ(fields.front().first, "type");
  EXPECT_EQ(fields.front().second, "health");
  EXPECT_EQ(value_of("id"), "h1");
  // In-process server: the reported pid is ours.
  EXPECT_EQ(value_of("pid"), std::to_string(::getpid()));
  EXPECT_EQ(value_of("in_flight"), "0");
  ASSERT_TRUE(value_of("uptime_s").has_value());
  EXPECT_GE(std::stod(*value_of("uptime_s")), 0.0);

  // Without an id the field is omitted, like every other response type.
  client.send_line(R"({"type":"health"})");
  const auto anonymous = client.recv_line();
  ASSERT_TRUE(anonymous.has_value());
  EXPECT_EQ(anonymous->find("\"id\""), std::string::npos);

  // While a solve is in flight, in_flight reports it — this is the signal
  // a router's probe reads under load.
  api::SolveRequest slow = needle_request();
  slow.deadline_ms = 2000;
  client.send_line(io::format_solve_request(needle_instance(), slow, "n"));
  // The solve needs a moment to be read off the socket and dispatched
  // (and under a loaded test host, more than one): poll until the probe
  // sees it, bounded by the needle's own deadline.
  WireClient prober(harness.port());
  ASSERT_TRUE(prober.connected());
  bool saw_in_flight = false;
  const auto probe_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(1500);
  while (!saw_in_flight && std::chrono::steady_clock::now() < probe_deadline) {
    prober.send_line(R"({"type":"health"})");
    const auto busy = prober.recv_line();
    ASSERT_TRUE(busy.has_value());
    saw_in_flight = busy->find("\"in_flight\":\"1\"") != std::string::npos;
    if (!saw_in_flight) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(saw_in_flight);
  ASSERT_TRUE(client.recv_line().has_value());  // drain the needle result
}

TEST(Server, BacklogOptionIsHonoredAndServesNormally) {
  // ServerOptions::backlog feeds listen(2); a minimal queue must still
  // accept and serve sequential connections (semantics, not saturation —
  // the kernel rounds the value, so only behavior is assertable).
  TestServer harness(ServerOptions{.jobs = 1, .backlog = 1});
  for (int i = 0; i < 3; ++i) {
    WireClient client(harness.port());
    ASSERT_TRUE(client.connected());
    client.send_line(R"({"type":"ping"})");
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(*response, R"({"type":"pong"})");
  }
}

TEST(Server, CacheEnabledServerRepliesByteIdenticallyOnReplay) {
  // serve --cache-entries: the same request stream replayed against a
  // cache-enabled server must produce the byte-identical response stream —
  // wall_s included, because hits return the stored result verbatim — and
  // the stats line must surface the cache counters.
  TestServer harness(ServerOptions{.jobs = 2, .cache_entries = 64});
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  std::vector<std::string> lines;
  for (const core::Problem& problem : table_grid(2)) {
    api::SolveRequest energy;
    energy.objective = api::Objective::Energy;
    energy.constraints.period = core::Thresholds::per_app({100.0, 100.0});
    lines.push_back(io::format_solve_request(problem, api::SolveRequest{}));
    lines.push_back(io::format_solve_request(problem, energy));
  }

  const auto replay = [&]() {
    std::vector<std::string> responses;
    for (const std::string& line : lines) {
      client.send_line(line);
      const auto response = client.recv_line();
      EXPECT_TRUE(response.has_value());
      responses.push_back(response.value_or(""));
    }
    return responses;
  };
  const std::vector<std::string> first = replay();
  const std::vector<std::string> second = replay();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i], first[i])
        << "cache replay diverged on request " << lines[i];
  }
  // And the first pass itself is bit-identical (wall-lessly) to per-call
  // api::solve — the cache never changes what a cold server would say.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const io::WireSolveRequest wire = io::parse_solve_request_line(lines[i]);
    EXPECT_EQ(comparable(first[i]),
              comparable(api::solve(wire.problem, wire.request)));
  }

  client.send_line(R"({"type":"stats"})");
  const auto stats_line = client.recv_line();
  ASSERT_TRUE(stats_line.has_value());
  const io::JsonFields fields = io::parse_flat_json(*stats_line);
  auto value_of = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };
  EXPECT_EQ(value_of("cache_hits"), std::to_string(lines.size()));
  EXPECT_EQ(value_of("cache_misses"), std::to_string(lines.size()));
  EXPECT_EQ(value_of("cache_evictions"), "0");
  const api::SolveCache* cache = harness.server().executor().cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->hits(), lines.size());
}

TEST(Server, CacheDisabledServerKeepsTheHistoricalStatsFields) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.send_line(R"({"type":"stats"})");
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->find("cache_"), std::string::npos);
  EXPECT_EQ(harness.server().executor().cache(), nullptr);
}

TEST(Server, DeadlineExpiresIntoTypedCancelledResultOverTheWire) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  api::SolveRequest request = needle_request();
  request.deadline_ms = 50;
  client.send_line(io::format_solve_request(needle_instance(), request));
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::WireResult wire = io::parse_result_line(*response);
  EXPECT_EQ(wire.result.status, api::SolveStatus::LimitExceeded);
  bool cancelled = false;
  for (const auto& [key, value] : wire.result.diagnostics) {
    cancelled |= key == "cancelled";
  }
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(harness.server().stats().cancelled(), 1u);
}

TEST(Server, DisconnectCancelsInFlightSolveWithoutAffectingOthers) {
  TestServer harness(/*jobs=*/2);

  // Connection A starts the needle search (provably > 10^7 nodes) ...
  auto victim = std::make_unique<WireClient>(harness.port());
  ASSERT_TRUE(victim->connected());
  victim->send_line(
      io::format_solve_request(needle_instance(), needle_request()));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // ... and vanishes mid-solve. The session's watch fires its
  // CancelSource; the worker comes back within one check stride.
  victim->close();
  victim.reset();

  // Connection B is untouched: it solves while A's cancellation lands.
  WireClient other(harness.port());
  ASSERT_TRUE(other.connected());
  other.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto response = other.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(io::parse_result_line(*response).result.solved());

  // The cancellation is observable in the stats (bounded wait: the watch
  // interval plus one cancel-check stride, with a generous margin).
  const auto& stats = harness.server().stats();
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((stats.disconnect_cancels() < 1 || stats.cancelled() < 1) &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stats.disconnect_cancels(), 1u);
  EXPECT_EQ(stats.cancelled(), 1u);

  // And the pool survives: B can still solve.
  other.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto again = other.recv_line();
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(io::parse_result_line(*again).result.solved());
}

TEST(Server, StreamedParetoFrontBitIdenticalToInProcessSweepOverTheGrid) {
  TestServer harness(/*jobs=*/2);
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  api::SweepRequest request;  // defaults: minimize energy, sweep period
  request.bounds = {1.0, 2.0, 4.0, 100.0};
  request.refine = 1;

  for (const core::Problem& problem : table_grid(2)) {
    client.send_line(io::format_pareto_request(problem, request, "g"));
    // Drain the streamed exchange: front-point result lines, then the
    // terminal summary.
    std::vector<io::WireResult> streamed;
    std::optional<io::WireParetoSummary> summary;
    for (;;) {
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      const io::JsonFields fields = io::parse_flat_json(*response);
      std::string type;
      for (const auto& [key, value] : fields) {
        if (key == "type") type = value;
      }
      ASSERT_NE(type, "error") << *response;
      if (type == "pareto") {
        summary = io::parse_pareto_summary(fields);
        break;
      }
      streamed.push_back(io::parse_result(fields));
    }

    const api::ParetoFront local = api::sweep(problem, request);
    ASSERT_TRUE(summary.has_value());
    EXPECT_TRUE(summary->complete);
    EXPECT_EQ(summary->id, "g");
    EXPECT_EQ(summary->points, local.front.size());
    EXPECT_EQ(summary->evaluated, local.evaluations.size());
    EXPECT_EQ(summary->infeasible, local.infeasible_points);

    ASSERT_EQ(streamed.size(), local.front.size());
    std::vector<core::ParetoPoint> wire_points;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      const api::SweepEvaluation& evaluation =
          local.evaluations[local.front[i]];
      EXPECT_EQ(streamed[i].id, "g");
      ASSERT_TRUE(streamed[i].bound.has_value());
      // Bit-identity, point by point: the wall-less canonical line of the
      // wire result equals the in-process sweep's.
      EXPECT_EQ(io::format_front_point(streamed[i].result, *streamed[i].bound,
                                       "", /*include_wall=*/false),
                io::format_front_point(evaluation.result, evaluation.bound,
                                       "", /*include_wall=*/false))
          << "wire front diverged from api::sweep";
      core::ParetoPoint point;
      point.period = streamed[i].result.metrics.max_weighted_period;
      point.energy = streamed[i].result.metrics.energy;
      wire_points.push_back(point);
    }
    // Every returned 2-D front satisfies the §2 monotone trade-off, on
    // both sides of the wire.
    EXPECT_TRUE(local.monotone());
    EXPECT_TRUE(core::energy_monotone_in_period(wire_points));
  }
  EXPECT_EQ(harness.server().stats().errors(), 0u);
}

TEST(Server, DisconnectCancelsRemainingSweepGridPoints) {
  TestServer harness(/*jobs=*/2);

  // A sweep of three needle searches (each deterministically enormous;
  // exact-enumeration takes the bound constraints branch-and-bound
  // refuses). The client vanishes mid-front ...
  auto victim = std::make_unique<WireClient>(harness.port());
  ASSERT_TRUE(victim->connected());
  api::SweepRequest request;
  request.base.objective = api::Objective::Period;
  request.base.kind = api::MappingKind::OneToOne;
  request.base.solver = "exact-enumeration";
  request.base.node_budget = 1'000'000'000;
  request.swept = api::Objective::Energy;
  request.bounds = {1e6, 1e7, 1e8};
  victim->send_line(io::format_pareto_request(needle_instance(), request));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  victim->close();
  victim.reset();

  // ... so the session watch fires the sweep's CancelSource: the running
  // grid points unwind within one check stride and the queued one never
  // really starts. All of it is observable in the stats.
  const auto& stats = harness.server().stats();
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((stats.disconnect_cancels() < 1 || stats.cancelled() < 3) &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stats.disconnect_cancels(), 1u);
  EXPECT_EQ(stats.cancelled(), 3u);  // every remaining grid point died
  EXPECT_EQ(stats.sweeps(), 1u);
  EXPECT_EQ(stats.solves(), 3u);  // one dispatch per grid point

  // The cancellation is visible over the wire too, and the pool survives.
  WireClient other(harness.port());
  ASSERT_TRUE(other.connected());
  other.send_line(R"({"type":"stats"})");
  const auto response = other.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  auto value_of = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };
  EXPECT_EQ(value_of("sweeps"), "1");
  EXPECT_EQ(value_of("cancelled"), "3");
  EXPECT_EQ(value_of("disconnect_cancels"), "1");
  other.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto solved = other.recv_line();
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(io::parse_result_line(*solved).result.solved());
}

TEST(Server, UnusableSweepAnswersWithAStructuredError) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  // Well-formed JSON, parseable sweep, semantically unusable: the swept
  // criterion equals the objective.
  client.send_line(
      R"({"type":"pareto","id":"bad","sweep":"energy","sweep_bounds":"1,2",)"
      R"("problem":"comm overlap\nbandwidth 1\nprocessor P static=0 )"
      R"(speeds=1\napp A weight=1 input=0 stages=1:0\n"})");
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(fields.front().first, "type");
  EXPECT_EQ(fields.front().second, "error");
  EXPECT_EQ(harness.server().stats().errors(), 1u);
  EXPECT_EQ(harness.server().stats().sweeps(), 0u);
}

TEST(Server, PipelinedRequestsAreAllAnsweredInOrder) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  const core::Problem problem = gen::motivating_example();
  std::string burst;
  for (int i = 0; i < 3; ++i) {
    burst += io::format_solve_request(problem, api::SolveRequest{},
                                      "burst-" + std::to_string(i)) +
             "\n";
  }
  // One write, three requests: exercises the buffered-input path where the
  // disconnect watch must stand down.
  client.send_line(burst.substr(0, burst.size() - 1));
  for (int i = 0; i < 3; ++i) {
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    const io::WireResult wire = io::parse_result_line(*response);
    EXPECT_EQ(wire.id, "burst-" + std::to_string(i));
    EXPECT_TRUE(wire.result.solved());
  }
}

TEST(Server, GracefulShutdownDrainsAndStopsAccepting) {
  TestServer harness;
  const std::uint16_t port = harness.port();
  {
    WireClient client(port);
    ASSERT_TRUE(client.connected());
    client.send_line(
        io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
    ASSERT_TRUE(client.recv_line().has_value());

    harness.server().shutdown();
    harness.join();  // serve() returned: sessions joined, drain complete
  }
  WireClient late(port);
  // Either the connect fails outright or the half-open socket yields EOF.
  if (late.connected()) {
    late.send_line(R"({"type":"ping"})");
    EXPECT_FALSE(late.recv_line().has_value());
  }
}

TEST(Server, StdioEofDoesNotCancelTheInFlightSolve) {
  // The one-shot pipe idiom: `printf <request> | pipeopt serve --stdio`.
  // The writer closes stdin immediately, but the stdout reader is still
  // there — EOF on the request stream must end the session AFTER the
  // in-flight solve completes, never cancel it. The needle under a node
  // budget takes well over one watch interval, so a disconnect-cancel bug
  // would return "cancelled" here instead of the budget result.
  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  Server server(ServerOptions{.jobs = 1});
  api::SolveRequest request = needle_request();
  request.node_budget = 2'000'000;  // >> one 10ms watch tick, << test budget
  const std::string input =
      io::format_solve_request(needle_instance(), request) + "\n";
  ASSERT_EQ(::write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::close(in_pipe[1]);  // writer gone before the solve even starts

  server.serve_stream(in_pipe[0], out_pipe[1]);
  ::close(out_pipe[1]);
  ::close(in_pipe[0]);

  std::string output;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(out_pipe[0], chunk, sizeof chunk)) > 0) {
    output.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(out_pipe[0]);

  ASSERT_FALSE(output.empty());
  const io::WireResult wire =
      io::parse_result_line(output.substr(0, output.find('\n')));
  EXPECT_EQ(wire.result.status, api::SolveStatus::LimitExceeded);
  bool budget = false, cancelled = false;
  for (const auto& [key, value] : wire.result.diagnostics) {
    budget |= key == "node-budget";
    cancelled |= key == "cancelled";
  }
  EXPECT_TRUE(budget);      // the honest end of the bounded search ...
  EXPECT_FALSE(cancelled);  // ... not a misread "client disconnected"
  EXPECT_EQ(server.stats().disconnect_cancels(), 0u);
}

TEST(Server, StdioStreamServesBufferedRequestsToEof) {
  // The --stdio mode: requests piped in, write end closed immediately —
  // buffered requests must all be answered, not mistaken for a disconnect.
  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  Server server(ServerOptions{.jobs = 1});
  const core::Problem problem = gen::motivating_example();
  std::string input;
  input += io::format_solve_request(problem, api::SolveRequest{}, "s0") + "\n";
  input += R"({"type":"stats","id":"s1"})" "\n";
  ASSERT_EQ(::write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::close(in_pipe[1]);

  server.serve_stream(in_pipe[0], out_pipe[1]);
  ::close(out_pipe[1]);
  ::close(in_pipe[0]);

  std::string output;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(out_pipe[0], chunk, sizeof chunk)) > 0) {
    output.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(out_pipe[0]);

  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] == '\n') {
      lines.push_back(output.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_EQ(lines.size(), 2u);
  const io::WireResult solve = io::parse_result_line(lines[0]);
  EXPECT_EQ(solve.id, "s0");
  EXPECT_TRUE(solve.result.solved());
  EXPECT_NE(lines[1].find("\"type\":\"stats\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"s1\""), std::string::npos);
}

}  // namespace
}  // namespace pipeopt::server
