/// End-to-end tests of pipeopt-server over real sockets: responses over
/// the Table 1/2 grid are bit-identical to per-call `api::solve`, malformed
/// lines get structured errors instead of killing the process, deadlines
/// expire into typed cancelled results, a client that disconnects
/// mid-solve cancels its in-flight search (the PR 2 needle instance)
/// without affecting other connections, and shutdown drains gracefully.

#include "server/server.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "core/pareto.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "util/fdio.hpp"

namespace pipeopt::server {
namespace {

/// A listening server with its accept loop on a background thread.
class TestServer {
 public:
  explicit TestServer(std::size_t jobs = 2)
      : TestServer(ServerOptions{.jobs = jobs}) {}

  explicit TestServer(ServerOptions options) : server_(std::move(options)) {
    ::signal(SIGPIPE, SIG_IGN);  // a test client may vanish mid-response
    port_ = server_.listen();
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() {
    server_.shutdown();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] Server& server() noexcept { return server_; }

  /// Joins the accept loop (after shutdown()): proves serve() returned.
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  Server server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// Minimal blocking JSONL client.
class WireClient {
 public:
  explicit WireClient(std::uint16_t port) : fd_(connect_fd(port)), reader_(fd_) {
    connected_ = fd_ >= 0;
    timeval timeout{30, 0};  // a hung server fails the test, not the suite
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  }

  ~WireClient() { close(); }

  [[nodiscard]] bool connected() const noexcept { return connected_; }

  void send_line(const std::string& line) {
    ASSERT_TRUE(util::write_line(fd_, line));
  }

  /// Next response line; nullopt on EOF/timeout.
  std::optional<std::string> recv_line() {
    std::string line;
    if (!reader_.next_line(line)) return std::nullopt;
    return line;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  static int connect_fd(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  int fd_ = -1;
  bool connected_ = false;
  util::FdLineReader reader_;
};

/// The Table 1 grid shape: every platform column, alternating communication
/// models, deterministic seeds (mirrors the executor tests).
std::vector<core::Problem> table_grid(std::size_t per_class) {
  std::vector<core::Problem> problems;
  util::Rng rng(424242);
  for (const core::PlatformClass cls :
       {core::PlatformClass::FullyHomogeneous,
        core::PlatformClass::CommHomogeneous,
        core::PlatformClass::FullyHeterogeneous}) {
    for (std::size_t i = 0; i < per_class; ++i) {
      gen::ProblemShape shape;
      shape.platform_class = cls;
      shape.applications = 2;
      shape.processors = 5;
      shape.app.min_stages = 1;
      shape.app.max_stages = 3;
      shape.comm = (i % 2 == 0) ? core::CommModel::Overlap
                                : core::CommModel::NoOverlap;
      problems.push_back(gen::random_problem(rng, shape));
    }
  }
  return problems;
}

/// The PR 2 needle: a deterministically long branch-and-bound search (see
/// executor_test.cpp for the calibration guard proving > 10^7 nodes).
core::Problem needle_instance() {
  std::vector<core::StageSpec> cheap(5, {0.01, 0.0});
  std::vector<core::StageSpec> tail = cheap;
  tail.back().output_size = 100.0;
  std::vector<core::Application> apps;
  apps.emplace_back(0.0, cheap, 1.0, "A");
  apps.emplace_back(0.0, tail, 1.0, "B");
  const std::size_t p = 12;
  std::vector<core::Processor> procs(p, core::Processor({1.0}));
  std::vector<std::vector<double>> link(p, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> in(2, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> out(2, std::vector<double>(p, 1.0));
  for (std::size_t u = 0; u < p; ++u) out[1][u] = 0.5 + 0.09 * u;
  return core::Problem(std::move(apps),
                       core::Platform(std::move(procs), std::move(link),
                                      std::move(in), std::move(out)),
                       core::CommModel::Overlap);
}

api::SolveRequest needle_request() {
  api::SolveRequest request;
  request.solver = "branch-and-bound";
  request.kind = api::MappingKind::OneToOne;
  // Large enough that only cancellation ends the search in test time, small
  // enough that a cancellation bug stalls minutes, not forever.
  request.node_budget = 1'000'000'000;
  return request;
}

/// Canonical wall-less wire line for comparing results across processes.
std::string comparable(const api::SolveResult& result) {
  return io::format_result(result, "", /*include_wall=*/false);
}

std::string comparable(const std::string& wire_line) {
  return comparable(io::parse_result_line(wire_line).result);
}

TEST(Server, ResponsesBitIdenticalToPerCallSolveOverTheGrid) {
  TestServer harness(/*jobs=*/2);
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  const std::vector<core::Problem> grid = table_grid(3);
  std::vector<api::SolveRequest> requests;
  {
    api::SolveRequest period;  // defaults: weighted period over intervals
    requests.push_back(period);
    api::SolveRequest latency;
    latency.objective = api::Objective::Latency;
    requests.push_back(latency);
    api::SolveRequest energy;
    energy.objective = api::Objective::Energy;
    energy.constraints.period = core::Thresholds::per_app({100.0, 100.0});
    requests.push_back(energy);
  }

  for (const core::Problem& problem : grid) {
    for (const api::SolveRequest& request : requests) {
      client.send_line(io::format_solve_request(problem, request));
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(comparable(*response), comparable(api::solve(problem, request)))
          << "wire solve diverged from api::solve on: " << *response;
    }
  }
}

TEST(Server, EchoesTheRequestId) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.send_line(io::format_solve_request(gen::motivating_example(),
                                            api::SolveRequest{}, "req-17"));
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::WireResult wire = io::parse_result_line(*response);
  EXPECT_EQ(wire.id, "req-17");
  EXPECT_TRUE(wire.result.solved());
}

TEST(Server, MalformedLineGetsStructuredErrorAndConnectionSurvives) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  // Three ways to be wrong: not JSON, bad request field, unknown type.
  for (const std::string& bad :
       {std::string("this is not json"),
        std::string(R"({"type":"solve","objective":"sideways","problem":"x"})"),
        std::string(R"({"type":"dance","id":"d1"})")}) {
    client.send_line(bad);
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    const io::JsonFields fields = io::parse_flat_json(*response);
    ASSERT_FALSE(fields.empty());
    EXPECT_EQ(fields.front().first, "type");
    EXPECT_EQ(fields.front().second, "error");
  }

  // The connection (and the server) is still fine afterwards.
  client.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(io::parse_result_line(*response).result.solved());
  EXPECT_EQ(harness.server().stats().errors(), 3u);
}

TEST(Server, PingAndStatsAnswerInline) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  client.send_line(R"({"type":"ping","id":"p1"})");
  auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(*response, R"({"type":"pong","id":"p1"})");

  client.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  ASSERT_TRUE(client.recv_line().has_value());

  client.send_line(R"({"type":"stats"})");
  response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  auto value_of = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };
  EXPECT_EQ(value_of("type"), "stats");
  EXPECT_EQ(value_of("solves"), "1");
  EXPECT_EQ(value_of("cancelled"), "0");
  EXPECT_EQ(value_of("requests"), "3");  // ping + solve + this stats line
  EXPECT_TRUE(value_of("jobs").has_value());
  EXPECT_TRUE(value_of("pending").has_value());
  // The dispatched solver shows up as a per-solver count.
  const api::SolveResult local =
      api::solve(gen::motivating_example(), api::SolveRequest{});
  EXPECT_EQ(value_of("solver." + local.solver), "1");
}

TEST(Server, CacheEnabledServerRepliesByteIdenticallyOnReplay) {
  // serve --cache-entries: the same request stream replayed against a
  // cache-enabled server must produce the byte-identical response stream —
  // wall_s included, because hits return the stored result verbatim — and
  // the stats line must surface the cache counters.
  TestServer harness(ServerOptions{.jobs = 2, .cache_entries = 64});
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  std::vector<std::string> lines;
  for (const core::Problem& problem : table_grid(2)) {
    api::SolveRequest energy;
    energy.objective = api::Objective::Energy;
    energy.constraints.period = core::Thresholds::per_app({100.0, 100.0});
    lines.push_back(io::format_solve_request(problem, api::SolveRequest{}));
    lines.push_back(io::format_solve_request(problem, energy));
  }

  const auto replay = [&]() {
    std::vector<std::string> responses;
    for (const std::string& line : lines) {
      client.send_line(line);
      const auto response = client.recv_line();
      EXPECT_TRUE(response.has_value());
      responses.push_back(response.value_or(""));
    }
    return responses;
  };
  const std::vector<std::string> first = replay();
  const std::vector<std::string> second = replay();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i], first[i])
        << "cache replay diverged on request " << lines[i];
  }
  // And the first pass itself is bit-identical (wall-lessly) to per-call
  // api::solve — the cache never changes what a cold server would say.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const io::WireSolveRequest wire = io::parse_solve_request_line(lines[i]);
    EXPECT_EQ(comparable(first[i]),
              comparable(api::solve(wire.problem, wire.request)));
  }

  client.send_line(R"({"type":"stats"})");
  const auto stats_line = client.recv_line();
  ASSERT_TRUE(stats_line.has_value());
  const io::JsonFields fields = io::parse_flat_json(*stats_line);
  auto value_of = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };
  EXPECT_EQ(value_of("cache_hits"), std::to_string(lines.size()));
  EXPECT_EQ(value_of("cache_misses"), std::to_string(lines.size()));
  EXPECT_EQ(value_of("cache_evictions"), "0");
  const api::SolveCache* cache = harness.server().executor().cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->hits(), lines.size());
}

TEST(Server, CacheDisabledServerKeepsTheHistoricalStatsFields) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.send_line(R"({"type":"stats"})");
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->find("cache_"), std::string::npos);
  EXPECT_EQ(harness.server().executor().cache(), nullptr);
}

TEST(Server, DeadlineExpiresIntoTypedCancelledResultOverTheWire) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  api::SolveRequest request = needle_request();
  request.deadline_ms = 50;
  client.send_line(io::format_solve_request(needle_instance(), request));
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::WireResult wire = io::parse_result_line(*response);
  EXPECT_EQ(wire.result.status, api::SolveStatus::LimitExceeded);
  bool cancelled = false;
  for (const auto& [key, value] : wire.result.diagnostics) {
    cancelled |= key == "cancelled";
  }
  EXPECT_TRUE(cancelled);
  EXPECT_EQ(harness.server().stats().cancelled(), 1u);
}

TEST(Server, DisconnectCancelsInFlightSolveWithoutAffectingOthers) {
  TestServer harness(/*jobs=*/2);

  // Connection A starts the needle search (provably > 10^7 nodes) ...
  auto victim = std::make_unique<WireClient>(harness.port());
  ASSERT_TRUE(victim->connected());
  victim->send_line(
      io::format_solve_request(needle_instance(), needle_request()));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // ... and vanishes mid-solve. The session's watch fires its
  // CancelSource; the worker comes back within one check stride.
  victim->close();
  victim.reset();

  // Connection B is untouched: it solves while A's cancellation lands.
  WireClient other(harness.port());
  ASSERT_TRUE(other.connected());
  other.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto response = other.recv_line();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(io::parse_result_line(*response).result.solved());

  // The cancellation is observable in the stats (bounded wait: the watch
  // interval plus one cancel-check stride, with a generous margin).
  const auto& stats = harness.server().stats();
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((stats.disconnect_cancels() < 1 || stats.cancelled() < 1) &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stats.disconnect_cancels(), 1u);
  EXPECT_EQ(stats.cancelled(), 1u);

  // And the pool survives: B can still solve.
  other.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto again = other.recv_line();
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(io::parse_result_line(*again).result.solved());
}

TEST(Server, StreamedParetoFrontBitIdenticalToInProcessSweepOverTheGrid) {
  TestServer harness(/*jobs=*/2);
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  api::SweepRequest request;  // defaults: minimize energy, sweep period
  request.bounds = {1.0, 2.0, 4.0, 100.0};
  request.refine = 1;

  for (const core::Problem& problem : table_grid(2)) {
    client.send_line(io::format_pareto_request(problem, request, "g"));
    // Drain the streamed exchange: front-point result lines, then the
    // terminal summary.
    std::vector<io::WireResult> streamed;
    std::optional<io::WireParetoSummary> summary;
    for (;;) {
      const auto response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      const io::JsonFields fields = io::parse_flat_json(*response);
      std::string type;
      for (const auto& [key, value] : fields) {
        if (key == "type") type = value;
      }
      ASSERT_NE(type, "error") << *response;
      if (type == "pareto") {
        summary = io::parse_pareto_summary(fields);
        break;
      }
      streamed.push_back(io::parse_result(fields));
    }

    const api::ParetoFront local = api::sweep(problem, request);
    ASSERT_TRUE(summary.has_value());
    EXPECT_TRUE(summary->complete);
    EXPECT_EQ(summary->id, "g");
    EXPECT_EQ(summary->points, local.front.size());
    EXPECT_EQ(summary->evaluated, local.evaluations.size());
    EXPECT_EQ(summary->infeasible, local.infeasible_points);

    ASSERT_EQ(streamed.size(), local.front.size());
    std::vector<core::ParetoPoint> wire_points;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
      const api::SweepEvaluation& evaluation =
          local.evaluations[local.front[i]];
      EXPECT_EQ(streamed[i].id, "g");
      ASSERT_TRUE(streamed[i].bound.has_value());
      // Bit-identity, point by point: the wall-less canonical line of the
      // wire result equals the in-process sweep's.
      EXPECT_EQ(io::format_front_point(streamed[i].result, *streamed[i].bound,
                                       "", /*include_wall=*/false),
                io::format_front_point(evaluation.result, evaluation.bound,
                                       "", /*include_wall=*/false))
          << "wire front diverged from api::sweep";
      core::ParetoPoint point;
      point.period = streamed[i].result.metrics.max_weighted_period;
      point.energy = streamed[i].result.metrics.energy;
      wire_points.push_back(point);
    }
    // Every returned 2-D front satisfies the §2 monotone trade-off, on
    // both sides of the wire.
    EXPECT_TRUE(local.monotone());
    EXPECT_TRUE(core::energy_monotone_in_period(wire_points));
  }
  EXPECT_EQ(harness.server().stats().errors(), 0u);
}

TEST(Server, DisconnectCancelsRemainingSweepGridPoints) {
  TestServer harness(/*jobs=*/2);

  // A sweep of three needle searches (each deterministically enormous;
  // exact-enumeration takes the bound constraints branch-and-bound
  // refuses). The client vanishes mid-front ...
  auto victim = std::make_unique<WireClient>(harness.port());
  ASSERT_TRUE(victim->connected());
  api::SweepRequest request;
  request.base.objective = api::Objective::Period;
  request.base.kind = api::MappingKind::OneToOne;
  request.base.solver = "exact-enumeration";
  request.base.node_budget = 1'000'000'000;
  request.swept = api::Objective::Energy;
  request.bounds = {1e6, 1e7, 1e8};
  victim->send_line(io::format_pareto_request(needle_instance(), request));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  victim->close();
  victim.reset();

  // ... so the session watch fires the sweep's CancelSource: the running
  // grid points unwind within one check stride and the queued one never
  // really starts. All of it is observable in the stats.
  const auto& stats = harness.server().stats();
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while ((stats.disconnect_cancels() < 1 || stats.cancelled() < 3) &&
         std::chrono::steady_clock::now() < give_up) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(stats.disconnect_cancels(), 1u);
  EXPECT_EQ(stats.cancelled(), 3u);  // every remaining grid point died
  EXPECT_EQ(stats.sweeps(), 1u);
  EXPECT_EQ(stats.solves(), 3u);  // one dispatch per grid point

  // The cancellation is visible over the wire too, and the pool survives.
  WireClient other(harness.port());
  ASSERT_TRUE(other.connected());
  other.send_line(R"({"type":"stats"})");
  const auto response = other.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  auto value_of = [&](const std::string& key) -> std::optional<std::string> {
    for (const auto& [k, v] : fields) {
      if (k == key) return v;
    }
    return std::nullopt;
  };
  EXPECT_EQ(value_of("sweeps"), "1");
  EXPECT_EQ(value_of("cancelled"), "3");
  EXPECT_EQ(value_of("disconnect_cancels"), "1");
  other.send_line(
      io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
  const auto solved = other.recv_line();
  ASSERT_TRUE(solved.has_value());
  EXPECT_TRUE(io::parse_result_line(*solved).result.solved());
}

TEST(Server, UnusableSweepAnswersWithAStructuredError) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  // Well-formed JSON, parseable sweep, semantically unusable: the swept
  // criterion equals the objective.
  client.send_line(
      R"({"type":"pareto","id":"bad","sweep":"energy","sweep_bounds":"1,2",)"
      R"("problem":"comm overlap\nbandwidth 1\nprocessor P static=0 )"
      R"(speeds=1\napp A weight=1 input=0 stages=1:0\n"})");
  const auto response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(fields.front().first, "type");
  EXPECT_EQ(fields.front().second, "error");
  EXPECT_EQ(harness.server().stats().errors(), 1u);
  EXPECT_EQ(harness.server().stats().sweeps(), 0u);
}

TEST(Server, PipelinedRequestsAreAllAnsweredInOrder) {
  TestServer harness;
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  const core::Problem problem = gen::motivating_example();
  std::string burst;
  for (int i = 0; i < 3; ++i) {
    burst += io::format_solve_request(problem, api::SolveRequest{},
                                      "burst-" + std::to_string(i)) +
             "\n";
  }
  // One write, three requests: exercises the buffered-input path where the
  // disconnect watch must stand down.
  client.send_line(burst.substr(0, burst.size() - 1));
  for (int i = 0; i < 3; ++i) {
    const auto response = client.recv_line();
    ASSERT_TRUE(response.has_value());
    const io::WireResult wire = io::parse_result_line(*response);
    EXPECT_EQ(wire.id, "burst-" + std::to_string(i));
    EXPECT_TRUE(wire.result.solved());
  }
}

TEST(Server, GracefulShutdownDrainsAndStopsAccepting) {
  TestServer harness;
  const std::uint16_t port = harness.port();
  {
    WireClient client(port);
    ASSERT_TRUE(client.connected());
    client.send_line(
        io::format_solve_request(gen::motivating_example(), api::SolveRequest{}));
    ASSERT_TRUE(client.recv_line().has_value());

    harness.server().shutdown();
    harness.join();  // serve() returned: sessions joined, drain complete
  }
  WireClient late(port);
  // Either the connect fails outright or the half-open socket yields EOF.
  if (late.connected()) {
    late.send_line(R"({"type":"ping"})");
    EXPECT_FALSE(late.recv_line().has_value());
  }
}

TEST(Server, StdioEofDoesNotCancelTheInFlightSolve) {
  // The one-shot pipe idiom: `printf <request> | pipeopt serve --stdio`.
  // The writer closes stdin immediately, but the stdout reader is still
  // there — EOF on the request stream must end the session AFTER the
  // in-flight solve completes, never cancel it. The needle under a node
  // budget takes well over one watch interval, so a disconnect-cancel bug
  // would return "cancelled" here instead of the budget result.
  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  Server server(ServerOptions{.jobs = 1});
  api::SolveRequest request = needle_request();
  request.node_budget = 2'000'000;  // >> one 10ms watch tick, << test budget
  const std::string input =
      io::format_solve_request(needle_instance(), request) + "\n";
  ASSERT_EQ(::write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::close(in_pipe[1]);  // writer gone before the solve even starts

  server.serve_stream(in_pipe[0], out_pipe[1]);
  ::close(out_pipe[1]);
  ::close(in_pipe[0]);

  std::string output;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(out_pipe[0], chunk, sizeof chunk)) > 0) {
    output.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(out_pipe[0]);

  ASSERT_FALSE(output.empty());
  const io::WireResult wire =
      io::parse_result_line(output.substr(0, output.find('\n')));
  EXPECT_EQ(wire.result.status, api::SolveStatus::LimitExceeded);
  bool budget = false, cancelled = false;
  for (const auto& [key, value] : wire.result.diagnostics) {
    budget |= key == "node-budget";
    cancelled |= key == "cancelled";
  }
  EXPECT_TRUE(budget);      // the honest end of the bounded search ...
  EXPECT_FALSE(cancelled);  // ... not a misread "client disconnected"
  EXPECT_EQ(server.stats().disconnect_cancels(), 0u);
}

TEST(Server, StdioStreamServesBufferedRequestsToEof) {
  // The --stdio mode: requests piped in, write end closed immediately —
  // buffered requests must all be answered, not mistaken for a disconnect.
  int in_pipe[2], out_pipe[2];
  ASSERT_EQ(::pipe(in_pipe), 0);
  ASSERT_EQ(::pipe(out_pipe), 0);

  Server server(ServerOptions{.jobs = 1});
  const core::Problem problem = gen::motivating_example();
  std::string input;
  input += io::format_solve_request(problem, api::SolveRequest{}, "s0") + "\n";
  input += R"({"type":"stats","id":"s1"})" "\n";
  ASSERT_EQ(::write(in_pipe[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  ::close(in_pipe[1]);

  server.serve_stream(in_pipe[0], out_pipe[1]);
  ::close(out_pipe[1]);
  ::close(in_pipe[0]);

  std::string output;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(out_pipe[0], chunk, sizeof chunk)) > 0) {
    output.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(out_pipe[0]);

  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (output[i] == '\n') {
      lines.push_back(output.substr(start, i - start));
      start = i + 1;
    }
  }
  ASSERT_EQ(lines.size(), 2u);
  const io::WireResult solve = io::parse_result_line(lines[0]);
  EXPECT_EQ(solve.id, "s0");
  EXPECT_TRUE(solve.result.solved());
  EXPECT_NE(lines[1].find("\"type\":\"stats\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"s1\""), std::string::npos);
}

}  // namespace
}  // namespace pipeopt::server
