/// Shared wire-level test harness: an in-process listening server on a
/// background thread, a minimal blocking JSONL client, the Table 1/2
/// problem grid, and the PR 2 "needle" instance (a deterministically long
/// branch-and-bound search for cancellation/saturation tests). Used by the
/// server suite and the router suite — both speak the same protocol, so
/// they share one harness.

#pragma once

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/registry.hpp"
#include "gen/random_instances.hpp"
#include "io/result_io.hpp"
#include "server/server.hpp"
#include "tests/support/grid_fixtures.hpp"
#include "util/fdio.hpp"

namespace pipeopt::testing_wire {

/// The Table 1/2 grid, shared with every other differential suite.
using testing_support::table_grid;

/// A listening server with its accept loop on a background thread.
class TestServer {
 public:
  explicit TestServer(std::size_t jobs = 2)
      : TestServer(server::ServerOptions{.jobs = jobs}) {}

  explicit TestServer(server::ServerOptions options)
      : server_(std::move(options)) {
    ::signal(SIGPIPE, SIG_IGN);  // a test client may vanish mid-response
    port_ = server_.listen();
    thread_ = std::thread([this] { server_.serve(); });
  }

  ~TestServer() {
    server_.shutdown();
    if (thread_.joinable()) thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] server::Server& server() noexcept { return server_; }

  /// Joins the accept loop (after shutdown()): proves serve() returned.
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  server::Server server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

/// Minimal blocking JSONL client.
class WireClient {
 public:
  explicit WireClient(std::uint16_t port) : fd_(connect_fd(port)), reader_(fd_) {
    connected_ = fd_ >= 0;
    timeval timeout{30, 0};  // a hung server fails the test, not the suite
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  }

  ~WireClient() { close(); }

  [[nodiscard]] bool connected() const noexcept { return connected_; }

  void send_line(const std::string& line) {
    ASSERT_TRUE(util::write_line(fd_, line));
  }

  /// Next response line; nullopt on EOF/timeout.
  std::optional<std::string> recv_line() {
    std::string line;
    if (!reader_.next_line(line)) return std::nullopt;
    return line;
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  static int connect_fd(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  int fd_ = -1;
  bool connected_ = false;
  util::FdLineReader reader_;
};

/// The PR 2 needle: a deterministically long branch-and-bound search (see
/// executor_test.cpp for the calibration guard proving > 10^7 nodes).
inline core::Problem needle_instance() {
  std::vector<core::StageSpec> cheap(5, {0.01, 0.0});
  std::vector<core::StageSpec> tail = cheap;
  tail.back().output_size = 100.0;
  std::vector<core::Application> apps;
  apps.emplace_back(0.0, cheap, 1.0, "A");
  apps.emplace_back(0.0, tail, 1.0, "B");
  const std::size_t p = 12;
  std::vector<core::Processor> procs(p, core::Processor({1.0}));
  std::vector<std::vector<double>> link(p, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> in(2, std::vector<double>(p, 1.0));
  std::vector<std::vector<double>> out(2, std::vector<double>(p, 1.0));
  for (std::size_t u = 0; u < p; ++u) out[1][u] = 0.5 + 0.09 * u;
  return core::Problem(std::move(apps),
                       core::Platform(std::move(procs), std::move(link),
                                      std::move(in), std::move(out)),
                       core::CommModel::Overlap);
}

inline api::SolveRequest needle_request() {
  api::SolveRequest request;
  request.solver = "branch-and-bound";
  request.kind = api::MappingKind::OneToOne;
  // Large enough that only cancellation ends the search in test time, small
  // enough that a cancellation bug stalls minutes, not forever.
  request.node_budget = 1'000'000'000;
  return request;
}

/// Canonical wall-less wire line for comparing results across processes.
inline std::string comparable(const api::SolveResult& result) {
  return io::format_result(result, "", /*include_wall=*/false);
}

inline std::string comparable(const std::string& wire_line) {
  return comparable(io::parse_result_line(wire_line).result);
}

}  // namespace pipeopt::testing_wire
