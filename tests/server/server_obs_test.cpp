// Observability through the server's wire surface: the {"type":"metrics"}
// response, the invariance of solve bytes under the optional "trace"
// request field, and the --trace-log span log (one JSONL line per
// completed request, phases covered).

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "api/sweep.hpp"
#include "gen/motivating_example.hpp"
#include "io/json.hpp"
#include "io/request_io.hpp"
#include "tests/server/wire_harness.hpp"

namespace pipeopt {
namespace {

using testing_wire::TestServer;
using testing_wire::WireClient;
using testing_wire::comparable;

std::string value_of(const io::JsonFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

bool has_key(const io::JsonFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

class TempPath {
 public:
  TempPath() {
    char name[] = "/tmp/pipeopt_server_obs_XXXXXX";
    const int fd = ::mkstemp(name);
    if (fd >= 0) ::close(fd);
    path_ = name;
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

/// Splices the optional transport-level trace field into a request line,
/// the way the router does for forwarded lines.
std::string with_trace(std::string line, const std::string& trace_id) {
  line.insert(1, "\"trace\":\"" + trace_id + "\",");
  return line;
}

TEST(Server, MetricsResponseCarriesRequestPhaseAndSolverHistograms) {
  TestServer harness(2);
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  client.send_line(io::format_solve_request(gen::motivating_example(),
                                            api::SolveRequest{}, "m0"));
  ASSERT_TRUE(client.recv_line().has_value());

  client.send_line(R"({"type":"metrics","id":"q"})");
  const std::optional<std::string> response = client.recv_line();
  ASSERT_TRUE(response.has_value());
  const io::JsonFields fields = io::parse_flat_json(*response);
  EXPECT_EQ(value_of(fields, "type"), "metrics");
  EXPECT_EQ(value_of(fields, "id"), "q");
  EXPECT_EQ(value_of(fields, "request.n"), "1");
  // Derived quantiles ride along with the summable bucket fields.
  EXPECT_TRUE(has_key(fields, "request.p50_us"));
  EXPECT_TRUE(has_key(fields, "request.p99_us"));
  // The session recorded its phases into the shared registry.
  EXPECT_EQ(value_of(fields, "phase.parse.n"), "1");
  EXPECT_EQ(value_of(fields, "phase.format.n"), "1");
  EXPECT_TRUE(has_key(fields, "phase.solve.n"));
  // Exactly one solver ran, so exactly one per-solver latency group exists.
  std::size_t solver_groups = 0;
  for (const auto& [key, value] : fields) {
    if (key.rfind("solver.", 0) == 0 &&
        key.size() > 10 && key.substr(key.size() - 10) == ".latency.n") {
      ++solver_groups;
      EXPECT_EQ(value, "1");
    }
  }
  EXPECT_EQ(solver_groups, 1u);
  // The cache is off by default: no cache_lookup phase was ever recorded
  // (the absence-is-information rule, mirroring the stats cache fields).
  EXPECT_FALSE(has_key(fields, "phase.cache_lookup.n"));
}

TEST(Server, TraceFieldLeavesSolveResponseBytesUnchanged) {
  TestServer harness(2);
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());

  const std::string line = io::format_solve_request(gen::motivating_example(),
                                                    api::SolveRequest{}, "t");
  client.send_line(line);
  const std::optional<std::string> plain = client.recv_line();
  ASSERT_TRUE(plain.has_value());

  client.send_line(with_trace(line, "00ff00ff00ff00ff"));
  const std::optional<std::string> traced = client.recv_line();
  ASSERT_TRUE(traced.has_value());

  EXPECT_EQ(comparable(*plain), comparable(*traced));
  // Responses never echo the trace id — that is how byte-identity holds.
  EXPECT_EQ(traced->find("trace"), std::string::npos);
}

TEST(Server, TraceLogRecordsOneSpanLinePerRequestWithGivenId) {
  const TempPath path;
  {
    TestServer harness(server::ServerOptions{.jobs = 2,
                                             .trace_log = path.str()});
    WireClient client(harness.port());
    ASSERT_TRUE(client.connected());
    client.send_line(with_trace(
        io::format_solve_request(gen::motivating_example(),
                                 api::SolveRequest{}, "t0"),
        "00112233aabbccdd"));
    ASSERT_TRUE(client.recv_line().has_value());
  }  // server shutdown joins the session; the span line is flushed

  std::ifstream in(path.str());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const io::JsonFields span = io::parse_flat_json(line);
  EXPECT_EQ(value_of(span, "trace"), "00112233aabbccdd");
  EXPECT_EQ(value_of(span, "type"), "solve");
  EXPECT_EQ(value_of(span, "id"), "t0");
  EXPECT_TRUE(has_key(span, "total_us"));
  EXPECT_TRUE(has_key(span, "span.parse_us"));
  EXPECT_TRUE(has_key(span, "span.queue_wait_us"));
  EXPECT_TRUE(has_key(span, "span.bind_us"));
  EXPECT_TRUE(has_key(span, "span.solve_us"));
  EXPECT_TRUE(has_key(span, "span.format_us"));
  EXPECT_FALSE(std::getline(in, line));  // exactly one request, one line
}

TEST(Server, TraceLogGeneratesAnIdForUntracedRequests) {
  const TempPath path;
  {
    TestServer harness(server::ServerOptions{.jobs = 2,
                                             .trace_log = path.str()});
    WireClient client(harness.port());
    ASSERT_TRUE(client.connected());
    client.send_line(io::format_solve_request(gen::motivating_example(),
                                              api::SolveRequest{}, "u0"));
    ASSERT_TRUE(client.recv_line().has_value());
  }

  std::ifstream in(path.str());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const io::JsonFields span = io::parse_flat_json(line);
  EXPECT_EQ(value_of(span, "trace").size(), 16u);
}

TEST(Server, ParetoSweepTraceLineAggregatesPointSpans) {
  const TempPath path;
  {
    TestServer harness(server::ServerOptions{.jobs = 2,
                                             .trace_log = path.str()});
    WireClient client(harness.port());
    ASSERT_TRUE(client.connected());
    api::SweepRequest request;  // defaults: minimize energy, sweep period
    request.bounds = {1.0, 2.0, 4.0, 100.0};
    client.send_line(io::format_pareto_request(gen::motivating_example(),
                                               request, "p0"));
    // Drain the streamed front points and the terminal summary.
    while (true) {
      const std::optional<std::string> response = client.recv_line();
      ASSERT_TRUE(response.has_value());
      if (response->rfind(R"({"type":"pareto")", 0) == 0) break;
    }
  }

  std::ifstream in(path.str());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const io::JsonFields span = io::parse_flat_json(line);
  EXPECT_EQ(value_of(span, "type"), "pareto");
  EXPECT_EQ(value_of(span, "id"), "p0");
  // One line for the whole sweep: the grid points' solve/queue_wait spans
  // are summed into the request's totals, not logged per point.
  EXPECT_TRUE(has_key(span, "span.solve_us"));
  EXPECT_TRUE(has_key(span, "span.format_us"));
  EXPECT_FALSE(std::getline(in, line));
}

TEST(Server, StatsLineHasNoTraceOrMetricFields) {
  const TempPath path;
  TestServer harness(server::ServerOptions{.jobs = 2,
                                           .trace_log = path.str()});
  WireClient client(harness.port());
  ASSERT_TRUE(client.connected());
  client.send_line(with_trace(
      io::format_solve_request(gen::motivating_example(),
                               api::SolveRequest{}, "s"),
      "ffeeddccbbaa9988"));
  ASSERT_TRUE(client.recv_line().has_value());
  client.send_line(R"({"type":"stats"})");
  const std::optional<std::string> stats = client.recv_line();
  ASSERT_TRUE(stats.has_value());
  // The stats surface is untouched by observability: no trace ids, no
  // histogram buckets, no derived quantiles leak into it.
  EXPECT_EQ(stats->find("trace"), std::string::npos);
  EXPECT_EQ(stats->find("span."), std::string::npos);
  EXPECT_EQ(stats->find("p50_us"), std::string::npos);
}

}  // namespace
}  // namespace pipeopt
