#include "exact/enumeration.hpp"

#include <gtest/gtest.h>

#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::exact {
namespace {

using core::CommModel;
using core::PlatformClass;

core::Problem tiny_problem(std::size_t stages, std::size_t procs,
                           std::size_t modes = 1) {
  std::vector<core::StageSpec> specs(stages, core::StageSpec{1.0, 1.0});
  std::vector<core::Application> apps;
  apps.push_back(core::Application(1.0, std::move(specs)));
  std::vector<core::Processor> processors;
  std::vector<double> speeds;
  for (std::size_t m = 1; m <= modes; ++m) {
    speeds.push_back(static_cast<double>(m));
  }
  for (std::size_t u = 0; u < procs; ++u) processors.emplace_back(speeds);
  return core::Problem(std::move(apps),
                       core::Platform(std::move(processors), 1.0));
}

TEST(Enumeration, CountsMatchClosedForm) {
  for (std::size_t n : {1u, 2u, 3u, 4u}) {
    for (std::size_t p : {1u, 2u, 3u, 4u}) {
      for (std::size_t modes : {1u, 2u}) {
        const auto problem = tiny_problem(n, p, modes);
        for (MappingKind kind : {MappingKind::OneToOne, MappingKind::Interval}) {
          EnumerationOptions options;
          options.kind = kind;
          options.enumerate_modes = modes > 1;
          const auto expected = mapping_space_size(problem, options);
          std::uint64_t seen = 0;
          const auto stats = enumerate_mappings(
              problem, options,
              [&](std::span<const core::IntervalAssignment>) { ++seen; });
          EXPECT_EQ(seen, expected)
              << "n=" << n << " p=" << p << " modes=" << modes
              << " kind=" << static_cast<int>(kind);
          EXPECT_EQ(stats.complete, expected);
        }
      }
    }
  }
}

TEST(Enumeration, KnownCounts) {
  // 2 stages on 3 procs: one-to-one = 3·2 = 6; interval adds the unsplit
  // chain on any of 3 procs: 6 + 3 = 9.
  const auto problem = tiny_problem(2, 3);
  EnumerationOptions one;
  one.kind = MappingKind::OneToOne;
  EXPECT_EQ(mapping_space_size(problem, one), 6u);
  EnumerationOptions interval;
  interval.kind = MappingKind::Interval;
  EXPECT_EQ(mapping_space_size(problem, interval), 9u);
}

TEST(Enumeration, ModesMultiply) {
  const auto problem = tiny_problem(1, 2, 3);
  EnumerationOptions options;
  options.kind = MappingKind::Interval;
  options.enumerate_modes = true;
  EXPECT_EQ(mapping_space_size(problem, options), 6u);  // 2 procs × 3 modes
  options.enumerate_modes = false;
  EXPECT_EQ(mapping_space_size(problem, options), 2u);
}

TEST(Enumeration, EveryEmittedMappingIsValid) {
  const auto problem = gen::motivating_example();
  EnumerationOptions options;
  options.kind = MappingKind::Interval;
  options.enumerate_modes = true;
  std::uint64_t count = 0;
  enumerate_mappings(problem, options,
                     [&](std::span<const core::IntervalAssignment> ivs) {
                       core::Mapping m(std::vector<core::IntervalAssignment>(
                           ivs.begin(), ivs.end()));
                       ASSERT_FALSE(m.validate(problem).has_value());
                       ++count;
                     });
  EXPECT_GT(count, 0u);
  EnumerationOptions no_modes = options;
  no_modes.enumerate_modes = false;
  std::uint64_t count_no_modes = 0;
  enumerate_mappings(problem, no_modes,
                     [&](std::span<const core::IntervalAssignment>) {
                       ++count_no_modes;
                     });
  EXPECT_GT(count, count_no_modes);  // modes expand the space
}

TEST(Enumeration, OneToOneImpossibleWhenTooFewProcessors) {
  const auto problem = tiny_problem(4, 2);
  EnumerationOptions options;
  options.kind = MappingKind::OneToOne;
  std::uint64_t seen = 0;
  enumerate_mappings(problem, options,
                     [&](std::span<const core::IntervalAssignment>) { ++seen; });
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(mapping_space_size(problem, options), 0u);
}

TEST(Enumeration, NodeLimitEnforced) {
  const auto problem = tiny_problem(6, 8);
  EnumerationOptions options;
  options.kind = MappingKind::Interval;
  options.node_limit = 100;
  EXPECT_THROW(enumerate_mappings(
                   problem, options,
                   [](std::span<const core::IntervalAssignment>) {}),
               SearchLimitExceeded);
}

TEST(Enumeration, SpaceGrowsExponentially) {
  EnumerationOptions options;
  options.kind = MappingKind::Interval;
  std::uint64_t previous = 0;
  for (std::size_t n = 2; n <= 8; ++n) {
    const auto problem = tiny_problem(n, n);
    const auto size = mapping_space_size(problem, options);
    EXPECT_GT(size, previous * 2) << n;  // super-exponential growth
    previous = size;
  }
}

}  // namespace
}  // namespace pipeopt::exact
