#include "exact/exact_solvers.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"

namespace pipeopt::exact {
namespace {

using core::Thresholds;
using gen::MotivatingExampleFacts;

/// The §2 numbers, reproduced by exhaustive search — this instance sits in
/// NP-hard cells (heterogeneous multi-modal processors), so exact search is
/// the reference solver here.
TEST(ExactSolvers, MotivatingExampleOptimalPeriod) {
  const auto problem = gen::motivating_example();
  const auto result = exact_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, MotivatingExampleFacts::kOptimalPeriod);
}

TEST(ExactSolvers, MotivatingExampleOptimalLatency) {
  const auto problem = gen::motivating_example();
  const auto result = exact_min_latency(problem, MappingKind::Interval);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, MotivatingExampleFacts::kOptimalLatency);
}

TEST(ExactSolvers, MotivatingExampleMinimalEnergy) {
  const auto problem = gen::motivating_example();
  // Unconstrained period: the minimum energy is 10 (two slowest processors).
  const auto result = exact_min_energy_under_period(
      problem, MappingKind::Interval, Thresholds::unconstrained(2));
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, MotivatingExampleFacts::kMinimalEnergy);
  // And that mapping indeed runs at period 14.
  const auto metrics = core::evaluate(problem, result->mapping);
  EXPECT_DOUBLE_EQ(metrics.max_weighted_period,
                   MotivatingExampleFacts::kPeriodAtMinimalEnergy);
}

TEST(ExactSolvers, MotivatingExampleEnergyUnderPeriod2) {
  const auto problem = gen::motivating_example();
  const auto result = exact_min_energy_under_period(
      problem, MappingKind::Interval, Thresholds::per_app({2.0, 2.0}));
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, MotivatingExampleFacts::kEnergyUnderPeriod2);
}

TEST(ExactSolvers, MotivatingExampleEnergyAtPeriod1) {
  const auto problem = gen::motivating_example();
  const auto result = exact_min_energy_under_period(
      problem, MappingKind::Interval, Thresholds::per_app({1.0, 1.0}));
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, MotivatingExampleFacts::kEnergyAtOptimalPeriod);
}

TEST(ExactSolvers, WitnessMappingsAchieveValues) {
  const auto problem = gen::motivating_example();
  const auto period = exact_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(period.has_value());
  period->mapping.validate_or_throw(problem);
  EXPECT_DOUBLE_EQ(core::evaluate(problem, period->mapping).max_weighted_period,
                   period->value);

  const auto latency = exact_min_latency(problem, MappingKind::Interval);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(
      core::evaluate(problem, latency->mapping).max_weighted_latency,
      latency->value);
}

TEST(ExactSolvers, OneToOneInfeasibleOnExample) {
  // 7 stages, 3 processors: no one-to-one mapping exists.
  const auto problem = gen::motivating_example();
  EXPECT_FALSE(exact_min_period(problem, MappingKind::OneToOne).has_value());
}

TEST(ExactSolvers, InfeasibleThresholdGivesNullopt) {
  const auto problem = gen::motivating_example();
  const auto result = exact_min_energy_under_period(
      problem, MappingKind::Interval, Thresholds::per_app({0.5, 0.5}));
  EXPECT_FALSE(result.has_value());
}

TEST(ExactSolvers, TricriteriaTightensEnergy) {
  const auto problem = gen::motivating_example();
  // Adding a latency bound can only increase the optimal energy.
  const auto loose = exact_min_energy_under_period(
      problem, MappingKind::Interval, Thresholds::per_app({2.0, 2.0}));
  const auto tight = exact_min_energy_tricriteria(
      problem, MappingKind::Interval, Thresholds::per_app({2.0, 2.0}),
      Thresholds::per_app({4.0, 4.0}));
  ASSERT_TRUE(loose.has_value());
  ASSERT_TRUE(tight.has_value());
  EXPECT_GE(tight->value, loose->value);
}

TEST(ExactSolvers, StatsPopulated) {
  const auto problem = gen::motivating_example();
  const auto result = exact_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->stats.complete, 0u);
  EXPECT_GT(result->stats.nodes, result->stats.complete);
}

}  // namespace
}  // namespace pipeopt::exact
