/// Unit tests of the dense two-phase simplex (exact/mip/lp.hpp): known
/// optima, infeasibility and unboundedness detection, equality/>= handling,
/// negative right-hand sides, and degenerate programs that exercise the
/// anti-cycling path.

#include "exact/mip/lp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pipeopt::exact::mip {
namespace {

TEST(MipLp, SolvesTextbookMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 — the classic
  // Hillier/Lieberman example, optimum (2, 6) value 36 (minimize -obj).
  LinearProgram lp;
  lp.columns = 2;
  lp.objective = {-3.0, -5.0};
  lp.rows.push_back({{{0, 1.0}}, RowSense::Le, 4.0});
  lp.rows.push_back({{{1, 2.0}}, RowSense::Le, 12.0});
  lp.rows.push_back({{{0, 3.0}, {1, 2.0}}, RowSense::Le, 18.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 6.0, 1e-9);
}

TEST(MipLp, HandlesEqualityAndGeRows) {
  // min x + 2y s.t. x + y = 10, x >= 3, y >= 2 -> (8, 2), value 12.
  LinearProgram lp;
  lp.columns = 2;
  lp.objective = {1.0, 2.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, RowSense::Eq, 10.0});
  lp.rows.push_back({{{0, 1.0}}, RowSense::Ge, 3.0});
  lp.rows.push_back({{{1, 1.0}}, RowSense::Ge, 2.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-9);
  EXPECT_NEAR(sol.values[0], 8.0, 1e-9);
  EXPECT_NEAR(sol.values[1], 2.0, 1e-9);
}

TEST(MipLp, NormalizesNegativeRhs) {
  // -x <= -5 is x >= 5; min x -> 5.
  LinearProgram lp;
  lp.columns = 1;
  lp.objective = {1.0};
  lp.rows.push_back({{{0, -1.0}}, RowSense::Le, -5.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.values[0], 5.0, 1e-9);
}

TEST(MipLp, DetectsInfeasibility) {
  // x <= 1 and x >= 2 cannot both hold.
  LinearProgram lp;
  lp.columns = 1;
  lp.objective = {1.0};
  lp.rows.push_back({{{0, 1.0}}, RowSense::Le, 1.0});
  lp.rows.push_back({{{0, 1.0}}, RowSense::Ge, 2.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Infeasible);
}

TEST(MipLp, DetectsUnboundedness) {
  // min -x with only x >= 0: arbitrarily negative.
  LinearProgram lp;
  lp.columns = 1;
  lp.objective = {-1.0};
  lp.rows.push_back({{{0, 1.0}}, RowSense::Ge, 0.0});
  EXPECT_EQ(solve_lp(lp).status, LpStatus::Unbounded);
}

TEST(MipLp, SurvivesDegeneratePivoting) {
  // Beale's classic cycling example (Dantzig pricing cycles without an
  // anti-cycling rule). Optimum value -0.05.
  LinearProgram lp;
  lp.columns = 4;
  lp.objective = {-0.75, 150.0, -0.02, 6.0};
  lp.rows.push_back(
      {{{0, 0.25}, {1, -60.0}, {2, -0.04}, {3, 9.0}}, RowSense::Le, 0.0});
  lp.rows.push_back(
      {{{0, 0.5}, {1, -90.0}, {2, -0.02}, {3, 3.0}}, RowSense::Le, 0.0});
  lp.rows.push_back({{{2, 1.0}}, RowSense::Le, 1.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);
}

TEST(MipLp, BindingConstraintsHoldAtOptimum) {
  // Transportation-like program: the solution must satisfy every row.
  LinearProgram lp;
  lp.columns = 4;  // x00 x01 x10 x11
  lp.objective = {4.0, 6.0, 5.0, 3.0};
  lp.rows.push_back({{{0, 1.0}, {1, 1.0}}, RowSense::Eq, 1.0});
  lp.rows.push_back({{{2, 1.0}, {3, 1.0}}, RowSense::Eq, 1.0});
  lp.rows.push_back({{{0, 1.0}, {2, 1.0}}, RowSense::Le, 1.0});
  lp.rows.push_back({{{1, 1.0}, {3, 1.0}}, RowSense::Le, 1.0});
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 7.0, 1e-9);  // x00 = 1, x11 = 1
  for (const Row& row : lp.rows) {
    double lhs = 0.0;
    for (const auto& [col, coeff] : row.coeffs) lhs += coeff * sol.values[col];
    if (row.sense == RowSense::Le) {
      EXPECT_LE(lhs, row.rhs + 1e-7);
    } else if (row.sense == RowSense::Ge) {
      EXPECT_GE(lhs, row.rhs - 1e-7);
    } else {
      EXPECT_NEAR(lhs, row.rhs, 1e-7);
    }
  }
}

TEST(MipLp, ReportsIterationLimit) {
  LinearProgram lp;
  lp.columns = 3;
  lp.objective = {-1.0, -1.0, -1.0};
  lp.rows.push_back({{{0, 1.0}, {1, 2.0}, {2, 1.0}}, RowSense::Le, 10.0});
  lp.rows.push_back({{{0, 2.0}, {1, 1.0}, {2, 3.0}}, RowSense::Le, 15.0});
  EXPECT_EQ(solve_lp(lp, 1).status, LpStatus::IterationLimit);
}

}  // namespace
}  // namespace pipeopt::exact::mip
