/// The differential cross-check harness — the headline consumer of the
/// exact-backend seam (api/exact_backend.hpp).
///
/// Every registered exact backend is driven over the full Table 1/2 grid
/// (tests/support/grid_fixtures.hpp) and over >= 200 seeded random
/// instances, and every backend pair must agree: identical feasibility
/// verdicts, bit-identical optimal objective values (for bit-exact
/// backends; tolerance otherwise), and mappings that re-evaluate — through
/// scalar `core::evaluate` AND `core::BatchEvaluator` — to exactly the
/// reported value while satisfying the request's constraints under the
/// exact predicate. Because branch-and-bound/enumeration (recursive
/// search) and mip-branch-cut (LP branch-and-cut) share no search code,
/// agreement here is evidence about the *model*, not about one
/// implementation agreeing with itself.
///
/// Suite naming is load-bearing: `BackendCrosscheck*` tests carry the
/// ctest label `crosscheck`, and the `BackendCrosscheckRandom` sweeps
/// additionally carry `slow` (see CMakeLists.txt), keeping them out of the
/// tier-1 verify line. Any divergence reproduces from the CLI in one line:
///   pipeopt solve --problem <file> --solver <backend> [--objective ...]

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "api/exact_backend.hpp"
#include "api/registry.hpp"
#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "core/objectives.hpp"
#include "exact/enumeration.hpp"
#include "gen/random_instances.hpp"
#include "tests/support/grid_fixtures.hpp"
#include "util/random.hpp"

namespace pipeopt {
namespace {

using testing_support::table_grid;

double objective_value(api::Objective objective, const core::Metrics& m) {
  switch (objective) {
    case api::Objective::Period: return m.max_weighted_period;
    case api::Objective::Latency: return m.max_weighted_latency;
    case api::Objective::Energy: return m.energy;
  }
  return 0.0;
}

struct Outcome {
  const api::ExactBackend* backend = nullptr;
  std::optional<exact::ExactResult> result;
};

/// Runs every supporting backend on one (problem, request) cell and checks
/// all pairwise agreement + re-evaluation invariants.
void crosscheck_cell(const core::Problem& problem,
                     const api::SolveRequest& request,
                     const std::string& cell) {
  std::vector<Outcome> outcomes;
  for (const api::ExactBackend* backend : api::exact_backends()) {
    if (!backend->supports(problem, request)) continue;
    SCOPED_TRACE(cell + " backend=" + backend->info().name);
    std::optional<exact::ExactResult> result;
    ASSERT_NO_THROW(result = backend->minimize(problem, request));
    outcomes.push_back({backend, std::move(result)});
  }
  // exact-enumeration and mip-branch-cut support everything, so every cell
  // cross-checks at least one structurally independent pair.
  ASSERT_GE(outcomes.size(), 2u) << cell;

  core::BatchEvaluator evaluator(problem);
  for (const Outcome& o : outcomes) {
    SCOPED_TRACE(cell + " backend=" + o.backend->info().name);
    if (!o.result) continue;
    const exact::ExactResult& r = *o.result;
    // The mapping must be valid and re-evaluate to the reported value
    // through both evaluation paths.
    ASSERT_EQ(r.mapping.validate(problem), std::nullopt);
    const core::Metrics scalar = core::evaluate(problem, r.mapping);
    const core::Metrics& batch = evaluator.evaluate(r.mapping);
    EXPECT_EQ(objective_value(request.objective, scalar),
              objective_value(request.objective, batch));
    if (o.backend->info().bit_exact) {
      EXPECT_EQ(r.value, objective_value(request.objective, scalar));
    }
    EXPECT_TRUE(request.constraints.satisfied_by(scalar));
  }

  // Every backend pair agrees on feasibility and on the optimal value.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    for (std::size_t j = i + 1; j < outcomes.size(); ++j) {
      const Outcome& a = outcomes[i];
      const Outcome& b = outcomes[j];
      SCOPED_TRACE(cell + " pair=" + a.backend->info().name + " vs " +
                   b.backend->info().name);
      ASSERT_EQ(a.result.has_value(), b.result.has_value());
      if (!a.result) continue;
      if (a.backend->info().bit_exact && b.backend->info().bit_exact) {
        EXPECT_EQ(a.result->value, b.result->value);  // bit-identical
      } else {
        EXPECT_NEAR(a.result->value, b.result->value,
                    1e-6 * (1.0 + a.result->value));
      }
    }
  }
}

api::SolveRequest cell_request(api::Objective objective, api::MappingKind kind,
                               core::ConstraintSet constraints = {}) {
  api::SolveRequest request;
  request.objective = objective;
  request.kind = kind;
  request.constraints = std::move(constraints);
  return request;
}

std::string cell_name(const core::Problem& problem, std::size_t index,
                      const api::SolveRequest& request) {
  return "grid[" + std::to_string(index) + "] " +
         std::string(to_string(problem.platform().classify())) + "/" +
         to_string(problem.comm_model()) + " " +
         to_string(request.objective) + "/" + to_string(request.kind);
}

// ---------------------------------------------------------------- grid --

class BackendCrosscheckGrid
    : public ::testing::TestWithParam<api::Objective> {};

TEST_P(BackendCrosscheckGrid, IntervalUnconstrained) {
  const std::vector<core::Problem> grid = table_grid(3);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const api::SolveRequest request =
        cell_request(GetParam(), api::MappingKind::Interval);
    crosscheck_cell(grid[i], request, cell_name(grid[i], i, request));
  }
}

TEST_P(BackendCrosscheckGrid, OneToOneUnconstrained) {
  // Grid instances have up to 6 stages on 5 processors; infeasible cells
  // must produce *agreeing* nullopts, which is part of the contract.
  const std::vector<core::Problem> grid = table_grid(3);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const api::SolveRequest request =
        cell_request(GetParam(), api::MappingKind::OneToOne);
    crosscheck_cell(grid[i], request, cell_name(grid[i], i, request));
  }
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, BackendCrosscheckGrid,
                         ::testing::Values(api::Objective::Period,
                                           api::Objective::Latency,
                                           api::Objective::Energy),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST(BackendCrosscheck, GridConstrainedCells) {
  // Multi-criteria cells over the grid: energy under a period threshold
  // (loose and tight), period under a latency threshold, and a
  // tri-criteria energy cell — the §5 shapes.
  const std::vector<core::Problem> grid = table_grid(2);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const core::Problem& problem = grid[i];
    const api::ExactBackend* reference =
        api::find_exact_backend("exact-enumeration");
    ASSERT_NE(reference, nullptr);
    const auto period_opt = reference->minimize(
        problem, cell_request(api::Objective::Period, api::MappingKind::Interval));
    ASSERT_TRUE(period_opt.has_value());
    const auto latency_opt = reference->minimize(
        problem, cell_request(api::Objective::Latency, api::MappingKind::Interval));
    ASSERT_TRUE(latency_opt.has_value());

    for (const double slack : {1.6, 1.0}) {
      core::ConstraintSet cs;
      cs.period = core::Thresholds::uniform(problem, period_opt->value * slack);
      const api::SolveRequest request = cell_request(
          api::Objective::Energy, api::MappingKind::Interval, cs);
      crosscheck_cell(problem, request,
                      cell_name(problem, i, request) + " period-bound");
    }
    {
      core::ConstraintSet cs;
      cs.latency =
          core::Thresholds::uniform(problem, latency_opt->value * 1.4);
      const api::SolveRequest request = cell_request(
          api::Objective::Period, api::MappingKind::Interval, cs);
      crosscheck_cell(problem, request,
                      cell_name(problem, i, request) + " latency-bound");
    }
    {
      core::ConstraintSet cs;
      cs.period = core::Thresholds::uniform(problem, period_opt->value * 1.5);
      cs.latency =
          core::Thresholds::uniform(problem, latency_opt->value * 1.5);
      const api::SolveRequest request = cell_request(
          api::Objective::Energy, api::MappingKind::Interval, cs);
      crosscheck_cell(problem, request,
                      cell_name(problem, i, request) + " tri-criteria");
    }
  }
}

TEST(BackendCrosscheck, RegistryForcesEveryBackendByName) {
  // The CLI reproduction path: `solve --solver <backend>` must reach each
  // backend through the registry and return its (identical) optimum.
  const core::Problem problem = table_grid(1).front();
  std::optional<double> reference;
  for (const api::ExactBackend* backend : api::exact_backends()) {
    api::SolveRequest request;
    request.objective = api::Objective::Period;
    request.solver = backend->info().name;
    if (!backend->supports(problem, request)) continue;
    const api::SolveResult result = api::solve(problem, request);
    ASSERT_EQ(result.status, api::SolveStatus::Optimal)
        << backend->info().name;
    EXPECT_EQ(result.solver, backend->info().name);
    if (backend->info().bit_exact) {
      if (reference) {
        EXPECT_EQ(result.value, *reference) << backend->info().name;
      } else {
        reference = result.value;
      }
    }
  }
  ASSERT_TRUE(reference.has_value());
}

// -------------------------------------------------------------- random --

/// >= 200 seeded random instances: 50 seeds per family x 4 families, each
/// family drawing from a disjoint seed range. Platform class, communication
/// model, application/processor counts, objective, kind and constraint
/// shape all rotate deterministically by seed.
class BackendCrosscheckRandom : public ::testing::TestWithParam<int> {};

core::Problem random_instance(int seed) {
  util::Rng rng(90001u + static_cast<unsigned>(seed) * 7919u);
  const core::PlatformClass classes[] = {
      core::PlatformClass::FullyHomogeneous,
      core::PlatformClass::CommHomogeneous,
      core::PlatformClass::FullyHeterogeneous};
  gen::ProblemShape shape;
  shape.applications = 1 + seed % 2;
  shape.processors = 3 + seed % 3;
  shape.platform_class = classes[seed % 3];
  shape.comm = (seed / 3) % 2 ? core::CommModel::NoOverlap
                              : core::CommModel::Overlap;
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.app.weighted = seed % 5 == 0;
  shape.platform.modes = 1 + seed % 2;
  return gen::random_problem(rng, shape);
}

TEST_P(BackendCrosscheckRandom, PeriodAndLatency) {
  const int seed = GetParam();
  const core::Problem problem = random_instance(seed);
  const api::MappingKind kind =
      seed % 4 == 0 ? api::MappingKind::OneToOne : api::MappingKind::Interval;
  for (const api::Objective objective :
       {api::Objective::Period, api::Objective::Latency}) {
    const api::SolveRequest request = cell_request(objective, kind);
    crosscheck_cell(problem, request,
                    "seed=" + std::to_string(seed) + " " +
                        to_string(objective) + "/" + to_string(kind));
  }
}

TEST_P(BackendCrosscheckRandom, Energy) {
  const int seed = GetParam();
  const core::Problem problem = random_instance(seed + 500);
  const api::SolveRequest request =
      cell_request(api::Objective::Energy, api::MappingKind::Interval);
  crosscheck_cell(problem, request, "seed=" + std::to_string(seed) + " energy");
}

TEST_P(BackendCrosscheckRandom, EnergyUnderPeriodBound) {
  const int seed = GetParam();
  const core::Problem problem = random_instance(seed + 250);
  const api::ExactBackend* reference =
      api::find_exact_backend("exact-enumeration");
  ASSERT_NE(reference, nullptr);
  const auto period_opt = reference->minimize(
      problem, cell_request(api::Objective::Period, api::MappingKind::Interval));
  ASSERT_TRUE(period_opt.has_value());
  // Tight bounds (slack < 1 may be infeasible) exercise the loosened
  // threshold rows and the exact acceptance band hardest.
  const double slack = 0.8 + 0.2 * (seed % 4);
  core::ConstraintSet cs;
  cs.period = core::Thresholds::uniform(problem, period_opt->value * slack);
  const api::SolveRequest request =
      cell_request(api::Objective::Energy, api::MappingKind::Interval, cs);
  crosscheck_cell(problem, request,
                  "seed=" + std::to_string(seed) +
                      " energy-under-period slack=" + std::to_string(slack));
}

TEST_P(BackendCrosscheckRandom, MixedConstraints) {
  const int seed = GetParam();
  const core::Problem problem = random_instance(seed + 1000);
  const api::ExactBackend* reference =
      api::find_exact_backend("exact-enumeration");
  ASSERT_NE(reference, nullptr);
  const auto latency_opt = reference->minimize(
      problem, cell_request(api::Objective::Latency, api::MappingKind::Interval));
  ASSERT_TRUE(latency_opt.has_value());
  core::ConstraintSet cs;
  cs.latency =
      core::Thresholds::uniform(problem, latency_opt->value * (1.0 + 0.3 * (seed % 3)));
  const api::SolveRequest request =
      cell_request(api::Objective::Period, api::MappingKind::Interval, cs);
  crosscheck_cell(problem, request,
                  "seed=" + std::to_string(seed) + " period-under-latency");
}

INSTANTIATE_TEST_SUITE_P(Sweep, BackendCrosscheckRandom,
                         ::testing::Range(0, 50));

}  // namespace
}  // namespace pipeopt
