/// Direct unit tests of the MIP engine (exact/mip/branch_and_cut.hpp):
/// known optima on handcrafted instances, infeasibility verdicts, budget
/// and cancellation behavior, stats plausibility — the engine-level
/// contract the backend seam relies on. Cross-backend agreement lives in
/// backend_crosscheck_test.cpp.

#include "exact/mip/branch_and_cut.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/evaluation.hpp"
#include "core/mapping.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"

namespace pipeopt::exact {
namespace {

/// Two identical one-stage apps on two identical processors: the optimum
/// is forced (one app per processor at full speed), so every number is
/// checkable by hand.
core::Problem two_apps_two_procs() {
  std::vector<core::Application> apps;
  apps.emplace_back(0.0, std::vector<core::StageSpec>{{4.0, 0.0}}, 1.0, "A");
  apps.emplace_back(0.0, std::vector<core::StageSpec>{{4.0, 0.0}}, 1.0, "B");
  std::vector<core::Processor> procs(2, core::Processor({1.0, 2.0}, 0.5));
  return core::Problem(std::move(apps),
                       core::Platform(std::move(procs), 1.0));
}

TEST(MipBackend, SolvesHandcraftedPeriodInstance) {
  const core::Problem problem = two_apps_two_procs();
  const auto result =
      mip::mip_minimize(problem, {}, Objective::Period);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, 2.0);  // 4 compute units at speed 2
  EXPECT_EQ(result->mapping.validate(problem), std::nullopt);
  EXPECT_EQ(result->mapping.interval_count(), 2u);
  EXPECT_GE(result->stats.nodes, 1u);
  EXPECT_GE(result->stats.complete, 1u);
}

TEST(MipBackend, EnumeratesModesForEnergy) {
  // Energy minimum runs both processors at their slow mode: 2 x (0.5 + 1^2).
  const core::Problem problem = two_apps_two_procs();
  mip::MipOptions options;
  options.enumerate_modes = true;
  const auto result = mip::mip_minimize(problem, options, Objective::Energy);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, 3.0);
  for (const core::IntervalAssignment& interval :
       result->mapping.intervals())
    EXPECT_EQ(interval.mode, 0u);
}

TEST(MipBackend, EnergyUnderTightPeriodBoundForcesFastMode) {
  // Period <= 2 requires speed 2 on both processors: 2 x (0.5 + 2^2) = 9.
  const core::Problem problem = two_apps_two_procs();
  mip::MipOptions options;
  options.enumerate_modes = true;
  core::ConstraintSet cs;
  cs.period = core::Thresholds::per_app({2.0, 2.0});
  const auto result =
      mip::mip_minimize(problem, options, Objective::Energy, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->value, 9.0);
  const core::Metrics metrics = core::evaluate(problem, result->mapping);
  EXPECT_TRUE(cs.satisfied_by(metrics));
}

TEST(MipBackend, ReportsInfeasibilityWhenProcessorsRunOut) {
  // Three applications cannot share two processors (exclusivity, §3.3).
  std::vector<core::Application> apps(
      3, core::Application(0.0, {{1.0, 0.0}}, 1.0));
  std::vector<core::Processor> procs(2, core::Processor({1.0}));
  const core::Problem problem(std::move(apps),
                              core::Platform(std::move(procs), 1.0));
  EXPECT_EQ(mip::mip_minimize(problem, {}, Objective::Period), std::nullopt);
}

TEST(MipBackend, ReportsInfeasibilityUnderImpossibleThreshold) {
  const core::Problem problem = two_apps_two_procs();
  core::ConstraintSet cs;
  cs.period = core::Thresholds::per_app({0.5, 0.5});  // best possible is 2
  EXPECT_EQ(mip::mip_minimize(problem, {}, Objective::Energy, cs),
            std::nullopt);
}

TEST(MipBackend, OneToOneRequiresEnoughProcessors) {
  // The motivating example has more total stages than processors, so the
  // one-to-one family is empty — engine must agree with enumeration's
  // nullopt, not crash.
  const core::Problem problem = gen::motivating_example();
  if (problem.one_to_one_applicable()) GTEST_SKIP();
  mip::MipOptions options;
  options.kind = MappingKind::OneToOne;
  EXPECT_EQ(mip::mip_minimize(problem, options, Objective::Period),
            std::nullopt);
}

TEST(MipBackend, ThrowsOnExhaustedNodeBudget) {
  const core::Problem problem = gen::motivating_example();
  mip::MipOptions options;
  options.node_limit = 1;
  EXPECT_THROW((void)mip::mip_minimize(problem, options, Objective::Period),
               SearchLimitExceeded);
}

TEST(MipBackend, ThrowsOnFiredCancelToken) {
  const core::Problem problem = gen::motivating_example();
  util::CancelSource source;
  source.request_cancel();
  mip::MipOptions options;
  options.cancel = source.token();
  EXPECT_THROW((void)mip::mip_minimize(problem, options, Objective::Period),
               SearchCancelled);
}

TEST(MipBackend, MatchesEnumerationOnTheMotivatingExample) {
  const core::Problem problem = gen::motivating_example();
  for (const Objective objective :
       {Objective::Period, Objective::Latency, Objective::Energy}) {
    EnumerationOptions eopts;
    eopts.enumerate_modes = objective == Objective::Energy;
    mip::MipOptions mopts;
    mopts.enumerate_modes = eopts.enumerate_modes;
    const auto reference = exact_minimize(problem, eopts, objective);
    const auto mip_result = mip::mip_minimize(problem, mopts, objective);
    ASSERT_EQ(reference.has_value(), mip_result.has_value());
    if (reference) {
      EXPECT_EQ(reference->value, mip_result->value);  // bit-identical
    }
  }
}

}  // namespace
}  // namespace pipeopt::exact
