#include "exact/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::exact {
namespace {

using core::CommModel;
using core::PlatformClass;

TEST(BranchBound, MotivatingExampleOptimum) {
  const auto problem = gen::motivating_example();
  const auto result = branch_bound_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, 1.0);
  result->mapping.validate_or_throw(problem);
  EXPECT_DOUBLE_EQ(core::evaluate(problem, result->mapping).max_weighted_period,
                   1.0);
}

TEST(BranchBound, PrunesHardAgainstPlainEnumeration) {
  const auto problem = gen::motivating_example();
  const auto plain = exact_min_period(problem, MappingKind::Interval);
  const auto pruned = branch_bound_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(pruned.has_value());
  EXPECT_LT(pruned->stats.nodes, plain->stats.nodes / 2)
      << "bounds should cut at least half the tree on this instance";
}

TEST(BranchBound, OneToOneInfeasibleWhenTooFewProcessors) {
  const auto problem = gen::motivating_example();  // 7 stages, 3 processors
  EXPECT_FALSE(branch_bound_min_period(problem, MappingKind::OneToOne)
                   .has_value());
}

TEST(BranchBound, NodeLimitHonored) {
  util::Rng rng(9);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.app.min_stages = 4;
  shape.app.max_stages = 6;
  shape.processors = 10;
  shape.platform_class = PlatformClass::FullyHeterogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)branch_bound_min_period(problem, MappingKind::Interval, 50),
               SearchLimitExceeded);
}

class BranchBoundOracle : public ::testing::TestWithParam<int> {};

TEST_P(BranchBoundOracle, MatchesPlainEnumerationEverywhere) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 839 + 7);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = 4 + rng.index(3);
  shape.app.weighted = rng.chance(0.5);
  const std::array<PlatformClass, 3> classes{PlatformClass::FullyHomogeneous,
                                             PlatformClass::CommHomogeneous,
                                             PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[rng.index(3)];
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  for (MappingKind kind : {MappingKind::Interval, MappingKind::OneToOne}) {
    const auto plain = exact_min_period(problem, kind);
    const auto pruned = branch_bound_min_period(problem, kind);
    ASSERT_EQ(plain.has_value(), pruned.has_value());
    if (plain) {
      EXPECT_NEAR(plain->value, pruned->value, 1e-9)
          << GetParam() << " kind " << static_cast<int>(kind);
      EXPECT_LE(pruned->stats.nodes, plain->stats.nodes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BranchBoundOracle, ::testing::Range(0, 60));

}  // namespace
}  // namespace pipeopt::exact
