#include "exact/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::exact {
namespace {

using core::CommModel;
using core::PlatformClass;

TEST(BranchBound, MotivatingExampleOptimum) {
  const auto problem = gen::motivating_example();
  const auto result = branch_bound_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->value, 1.0);
  result->mapping.validate_or_throw(problem);
  EXPECT_DOUBLE_EQ(core::evaluate(problem, result->mapping).max_weighted_period,
                   1.0);
}

TEST(BranchBound, PrunesHardAgainstPlainEnumeration) {
  const auto problem = gen::motivating_example();
  const auto plain = exact_min_period(problem, MappingKind::Interval);
  const auto pruned = branch_bound_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(plain.has_value());
  ASSERT_TRUE(pruned.has_value());
  EXPECT_LT(pruned->stats.nodes, plain->stats.nodes / 2)
      << "bounds should cut at least half the tree on this instance";
}

TEST(BranchBound, OneToOneInfeasibleWhenTooFewProcessors) {
  const auto problem = gen::motivating_example();  // 7 stages, 3 processors
  EXPECT_FALSE(branch_bound_min_period(problem, MappingKind::OneToOne)
                   .has_value());
}

TEST(BranchBound, NodeLimitHonored) {
  util::Rng rng(9);
  gen::ProblemShape shape;
  shape.applications = 2;
  shape.app.min_stages = 4;
  shape.app.max_stages = 6;
  shape.processors = 10;
  shape.platform_class = PlatformClass::FullyHeterogeneous;
  const auto problem = gen::random_problem(rng, shape);
  EXPECT_THROW((void)branch_bound_min_period(problem, MappingKind::Interval, 50),
               SearchLimitExceeded);
}

TEST(BranchBound, WarmStartHintPreservesTheResultWithFewerNodes) {
  // Seeding with the known optimum (the sweep idiom: the adjacent tighter
  // grid point's value) may only remove strictly-worse subtrees, so value
  // and mapping are bit-identical while the node count shrinks.
  const auto problem = gen::motivating_example();
  const auto cold = branch_bound_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(cold.has_value());
  const auto warm =
      branch_bound_min_period(problem, MappingKind::Interval,
                              2'000'000'000, {}, cold->value);
  ASSERT_TRUE(warm.has_value());
  EXPECT_EQ(warm->value, cold->value);  // bit-identical, no tolerance
  ASSERT_EQ(warm->mapping.interval_count(), cold->mapping.interval_count());
  for (std::size_t i = 0; i < warm->mapping.interval_count(); ++i) {
    EXPECT_EQ(warm->mapping.intervals()[i], cold->mapping.intervals()[i]);
  }
  EXPECT_LT(warm->stats.nodes, cold->stats.nodes);

  // A loose (but achievable) hint helps less yet still never changes the
  // answer; an unhinted call is the hint-at-infinity degenerate case.
  const auto loose =
      branch_bound_min_period(problem, MappingKind::Interval,
                              2'000'000'000, {}, cold->value * 4.0);
  ASSERT_TRUE(loose.has_value());
  EXPECT_EQ(loose->value, cold->value);
  EXPECT_LE(loose->stats.nodes, cold->stats.nodes);
  EXPECT_GE(loose->stats.nodes, warm->stats.nodes);
}

TEST(BranchBound, WarmStartHintBelowTheOptimumPrunesEverything) {
  // The documented contract violation: a hint below the true optimum kills
  // every complete mapping, so the search honestly reports "nothing under
  // the cap" — which is why hints must be achievable values (the sweep
  // driver only seeds with values witnessed by an actual mapping).
  const auto problem = gen::motivating_example();
  const auto cold = branch_bound_min_period(problem, MappingKind::Interval);
  ASSERT_TRUE(cold.has_value());
  EXPECT_FALSE(branch_bound_min_period(problem, MappingKind::Interval,
                                       2'000'000'000, {}, cold->value * 0.5)
                   .has_value());
}

class BranchBoundOracle : public ::testing::TestWithParam<int> {};

TEST_P(BranchBoundOracle, MatchesPlainEnumerationEverywhere) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 839 + 7);
  gen::ProblemShape shape;
  shape.applications = 1 + rng.index(2);
  shape.app.min_stages = 1;
  shape.app.max_stages = 3;
  shape.processors = 4 + rng.index(3);
  shape.app.weighted = rng.chance(0.5);
  const std::array<PlatformClass, 3> classes{PlatformClass::FullyHomogeneous,
                                             PlatformClass::CommHomogeneous,
                                             PlatformClass::FullyHeterogeneous};
  shape.platform_class = classes[rng.index(3)];
  shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
  const auto problem = gen::random_problem(rng, shape);

  for (MappingKind kind : {MappingKind::Interval, MappingKind::OneToOne}) {
    const auto plain = exact_min_period(problem, kind);
    const auto pruned = branch_bound_min_period(problem, kind);
    ASSERT_EQ(plain.has_value(), pruned.has_value());
    if (plain) {
      EXPECT_NEAR(plain->value, pruned->value, 1e-9)
          << GetParam() << " kind " << static_cast<int>(kind);
      EXPECT_LE(pruned->stats.nodes, plain->stats.nodes);

      // Warm-starting with the optimum is mapping-preserving everywhere,
      // not just on hand-picked instances.
      const auto hinted = branch_bound_min_period(problem, kind,
                                                  2'000'000'000, {},
                                                  pruned->value);
      ASSERT_TRUE(hinted.has_value());
      EXPECT_EQ(hinted->value, pruned->value);
      ASSERT_EQ(hinted->mapping.interval_count(),
                pruned->mapping.interval_count());
      for (std::size_t i = 0; i < hinted->mapping.interval_count(); ++i) {
        EXPECT_EQ(hinted->mapping.intervals()[i],
                  pruned->mapping.intervals()[i]);
      }
      EXPECT_LE(hinted->stats.nodes, pruned->stats.nodes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BranchBoundOracle, ::testing::Range(0, 60));

}  // namespace
}  // namespace pipeopt::exact
