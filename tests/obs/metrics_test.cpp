// The metrics half of src/obs: bucket math, concurrent striped recording,
// snapshot field emission, quantile derivation, and the fleet merge that
// sums histogram buckets through io::merge_stats_fields and re-derives
// quantiles from the merged distribution.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"

namespace pipeopt::obs {
namespace {

std::string value_of(const MetricFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

bool has_key(const MetricFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return true;
  }
  return false;
}

TEST(Metrics, BucketIndexIsLog2Microseconds) {
  // Bucket 0 holds exactly 0 µs; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(LatencyHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_index(4), 3u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1023), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_index(1024), 11u);
  // The last bucket absorbs everything above its lower bound.
  EXPECT_EQ(LatencyHistogram::bucket_index(~0ull),
            LatencyHistogram::kBuckets - 1);
}

TEST(Metrics, BucketUppersArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper_us(0), 1.0);
  EXPECT_DOUBLE_EQ(LatencyHistogram::bucket_upper_us(10), 1024.0);
}

TEST(Metrics, HistogramSnapshotSumsStripes) {
  LatencyHistogram histogram;
  // Concurrent recorders land on different stripes; the snapshot must sum
  // them all regardless of which stripe each thread hashed to.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (std::size_t i = 0; i < kPerThread; ++i) histogram.record_us(100);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const LatencyHistogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.sum_us, kThreads * kPerThread * 100u);
  EXPECT_EQ(snap.buckets[LatencyHistogram::bucket_index(100)],
            kThreads * kPerThread);
}

TEST(Metrics, SnapshotQuantileInterpolates) {
  LatencyHistogram histogram;
  for (int i = 0; i < 100; ++i) histogram.record_us(10);  // bucket [8,16)
  const auto snap = histogram.snapshot();
  // Every quantile of a one-bucket distribution interpolates inside that
  // bucket's range, [8,16) for 10 µs samples.
  for (const double q : {0.0, 0.5, 0.9, 1.0}) {
    EXPECT_GE(snap.quantile_us(q), 8.0);
    EXPECT_LE(snap.quantile_us(q), 16.0);
  }
  EXPECT_LT(snap.quantile_us(0.1), snap.quantile_us(0.9));
}

TEST(Metrics, RegistrySnapshotEmitsOnlyTouchedMetrics) {
  MetricsRegistry registry;
  registry.counter("solves").add(3);
  (void)registry.counter("never_incremented");
  registry.gauge("in_flight").set(2);
  (void)registry.histogram("untouched");
  registry.histogram("latency").record_us(5);

  const MetricFields fields = registry.snapshot();
  EXPECT_EQ(value_of(fields, "solves"), "3");
  EXPECT_EQ(value_of(fields, "in_flight"), "2");
  EXPECT_EQ(value_of(fields, "latency.n"), "1");
  EXPECT_EQ(value_of(fields, "latency.sum_us"), "5");
  EXPECT_EQ(value_of(fields, "latency.b3"), "1");  // 5 µs -> [4,8)
  // Absence is information: a zero counter and an empty histogram emit
  // nothing (the stats line's cache-off rule).
  EXPECT_FALSE(has_key(fields, "never_incremented"));
  EXPECT_FALSE(has_key(fields, "untouched.n"));
}

TEST(Metrics, SnapshotOrderIsCreationOrder) {
  MetricsRegistry registry;
  registry.counter("b").add(1);
  registry.counter("a").add(1);
  const MetricFields fields = registry.snapshot();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].first, "b");
  EXPECT_EQ(fields[1].first, "a");
}

TEST(Metrics, WithQuantilesAppendsDerivedFieldsPerGroup) {
  MetricsRegistry registry;
  registry.histogram("x").record_us(10);
  registry.counter("after").add(7);
  const MetricFields derived = with_quantiles(registry.snapshot());
  EXPECT_TRUE(has_key(derived, "x.p50_us"));
  EXPECT_TRUE(has_key(derived, "x.p90_us"));
  EXPECT_TRUE(has_key(derived, "x.p99_us"));
  // The derived fields sit right after their group, before later metrics.
  std::size_t p99 = 0, after = 0;
  for (std::size_t i = 0; i < derived.size(); ++i) {
    if (derived[i].first == "x.p99_us") p99 = i;
    if (derived[i].first == "after") after = i;
  }
  EXPECT_LT(p99, after);
  EXPECT_TRUE(is_derived_metric_field("x.p50_us"));
  EXPECT_FALSE(is_derived_metric_field("x.sum_us"));
  EXPECT_FALSE(is_derived_metric_field("x.b3"));
}

TEST(Metrics, MergeSumsBucketsAndRederivesQuantiles) {
  // Two "shards" record into the same logical histogram; the fleet merge
  // must see the union distribution, not an average of medians.
  MetricsRegistry a, b;
  for (int i = 0; i < 100; ++i) a.histogram("lat").record_us(10);
  for (int i = 0; i < 100; ++i) b.histogram("lat").record_us(1000);
  const MetricFields merged =
      merge_metrics_fields({with_quantiles(a.snapshot()),
                            with_quantiles(b.snapshot())});
  EXPECT_EQ(value_of(merged, "lat.n"), "200");
  EXPECT_EQ(value_of(merged, "lat.sum_us"), "101000");
  // p90 of the union lands in the slow shard's bucket [512,1024).
  const double p90 = std::stod(value_of(merged, "lat.p90_us"));
  EXPECT_GE(p90, 512.0);
  EXPECT_LE(p90, 1024.0);
  // Exactly one derived set survives the merge (stripped, then re-added).
  std::size_t p50_fields = 0;
  for (const auto& [key, value] : merged) {
    if (key == "lat.p50_us") ++p50_fields;
  }
  EXPECT_EQ(p50_fields, 1u);
}

TEST(Metrics, MergeHandlesNonContiguousBucketFields) {
  // merge_stats_fields appends first-seen fields at the END of the merged
  // list, so a bucket only the second shard populated lands after other
  // groups' fields. The quantile derivation must still gather the whole
  // group — this is the shape a real fleet merge produces.
  MetricFields one = {{"lat.n", "4"}, {"lat.sum_us", "40"}, {"lat.b4", "4"},
                      {"other.n", "1"}, {"other.sum_us", "1"},
                      {"other.b1", "1"}};
  MetricFields two = {{"lat.n", "4"}, {"lat.sum_us", "4000"},
                      {"lat.b10", "4"}};
  const MetricFields merged = merge_metrics_fields({one, two});
  EXPECT_EQ(value_of(merged, "lat.n"), "8");
  EXPECT_EQ(value_of(merged, "lat.b4"), "4");
  EXPECT_EQ(value_of(merged, "lat.b10"), "4");
  // The union has half its mass in [8,16) and half in [512,1024): the
  // median must interpolate across the gap, the p99 land in the top group.
  const double p99 = std::stod(value_of(merged, "lat.p99_us"));
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
  EXPECT_TRUE(has_key(merged, "other.p50_us"));
}

TEST(Metrics, MergeSkipsTypeAndId) {
  const MetricFields line = {{"type", "metrics"}, {"id", "x"}, {"n", "2"}};
  const MetricFields merged = merge_metrics_fields({line, line});
  EXPECT_FALSE(has_key(merged, "type"));
  EXPECT_FALSE(has_key(merged, "id"));
  EXPECT_EQ(value_of(merged, "n"), "4");
}

TEST(Metrics, MergeThrowsOnNonNumericSummable) {
  const MetricFields bad = {{"n", "not-a-number"}};
  EXPECT_THROW((void)merge_metrics_fields({bad}), io::ParseError);
}

}  // namespace
}  // namespace pipeopt::obs
