// The tracing half of src/obs: trace-id generation, per-request span
// aggregation in TraceContext, RAII SpanTimer recording, the registry
// feed that turns spans into phase.* histograms, and the JSONL span log.

#include "obs/trace.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "obs/metrics.hpp"

namespace pipeopt::obs {
namespace {

std::string value_of(const io::JsonFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

/// A self-deleting temp path for span-log round trips.
class TempPath {
 public:
  TempPath() {
    char name[] = "/tmp/pipeopt_trace_XXXXXX";
    const int fd = ::mkstemp(name);
    if (fd >= 0) ::close(fd);
    path_ = name;
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

TEST(Obs, TraceIdIsSixteenLowercaseHexChars) {
  const std::string id = generate_trace_id();
  ASSERT_EQ(id.size(), 16u);
  for (const char c : id) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << id;
  }
}

TEST(Obs, TraceIdsAreDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(generate_trace_id());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Obs, TraceContextKeepsGivenIdAndGeneratesWhenEmpty) {
  const TraceContext given("deadbeefcafef00d", nullptr);
  EXPECT_EQ(given.id(), "deadbeefcafef00d");
  const TraceContext fresh("", nullptr);
  EXPECT_EQ(fresh.id().size(), 16u);
}

TEST(Obs, RecordSumsRepeatedPhasesInFirstRecordedOrder) {
  TraceContext trace("", nullptr);
  trace.record("solve", 10);
  trace.record("format", 3);
  trace.record("solve", 5);  // a sweep solves many points; spans accumulate
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].first, "solve");
  EXPECT_EQ(spans[0].second, 15u);
  EXPECT_EQ(spans[1].first, "format");
  EXPECT_EQ(spans[1].second, 3u);
}

TEST(Obs, RecordFeedsPhaseHistogramInRegistry) {
  MetricsRegistry registry;
  TraceContext trace("", &registry);
  trace.record("solve", 100);
  trace.record("solve", 100);
  const MetricFields fields = registry.snapshot();
  EXPECT_EQ(value_of(fields, "phase.solve.n"), "2");
  EXPECT_EQ(value_of(fields, "phase.solve.sum_us"), "200");
}

TEST(Obs, SpanTimerRecordsOnDestruction) {
  TraceContext trace("", nullptr);
  {
    const SpanTimer span(&trace, "bind");
  }
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].first, "bind");
}

TEST(Obs, SpanTimerWithNullContextIsNoOp) {
  // Untraced paths pass a null context; the timer must cost nothing and
  // record nowhere.
  const SpanTimer span(nullptr, "solve");
}

TEST(Obs, ConcurrentRecordsOnOneContextAreSummed) {
  // Sweep workers record queue_wait/solve spans from the pool threads while
  // the request thread owns the context.
  TraceContext trace("", nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&trace] {
      for (int i = 0; i < 100; ++i) trace.record("solve", 1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].second, 800u);
}

TEST(Obs, TraceLogWritesParseableSpanLine) {
  const TempPath path;
  {
    TraceLog log(path.str());
    TraceContext trace("0123456789abcdef", nullptr);
    trace.record("parse", 2);
    trace.record("solve", 40);
    log.write(trace, "solve", "req-1", 50, {{"solver", "greedy"}});
  }
  std::ifstream in(path.str());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const io::JsonFields fields = io::parse_flat_json(line);
  EXPECT_EQ(value_of(fields, "trace"), "0123456789abcdef");
  EXPECT_EQ(value_of(fields, "type"), "solve");
  EXPECT_EQ(value_of(fields, "id"), "req-1");
  EXPECT_EQ(value_of(fields, "total_us"), "50");
  EXPECT_EQ(value_of(fields, "span.parse_us"), "2");
  EXPECT_EQ(value_of(fields, "span.solve_us"), "40");
  EXPECT_EQ(value_of(fields, "solver"), "greedy");
}

TEST(Obs, TraceLogOmitsEmptyRequestId) {
  const TempPath path;
  {
    TraceLog log(path.str());
    const TraceContext trace("", nullptr);
    log.write(trace, "pareto", "", 7);
  }
  std::ifstream in(path.str());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  const io::JsonFields fields = io::parse_flat_json(line);
  EXPECT_EQ(value_of(fields, "id"), "");
  EXPECT_EQ(value_of(fields, "total_us"), "7");
}

TEST(Obs, TraceLogAppendsOneLinePerWrite) {
  const TempPath path;
  {
    TraceLog log(path.str());
    const TraceContext trace("", nullptr);
    log.write(trace, "solve", "a", 1);
    log.write(trace, "solve", "b", 2);
  }
  std::ifstream in(path.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 2u);
}

TEST(Obs, TraceLogThrowsWhenUnopenable) {
  EXPECT_THROW(TraceLog("/nonexistent-dir/trace.jsonl"), std::runtime_error);
}

}  // namespace
}  // namespace pipeopt::obs
