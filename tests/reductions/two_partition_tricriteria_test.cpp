#include "reductions/two_partition_tricriteria.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "solvers/partition.hpp"

namespace pipeopt::reductions {
namespace {

TEST(TwoPartitionTricriteria, EncodeShape) {
  const auto gadget = encode_two_partition_tricriteria({1, 2, 3});
  EXPECT_EQ(gadget.problem.application_count(), 1u);
  EXPECT_EQ(gadget.problem.application(0).stage_count(), 3u);
  EXPECT_EQ(gadget.problem.platform().processor_count(), 3u);
  EXPECT_EQ(gadget.problem.platform().processor(0).mode_count(), 6u);
  EXPECT_EQ(gadget.problem.platform().classify(),
            core::PlatformClass::FullyHomogeneous);
  EXPECT_GT(gadget.k, 1.0);
  EXPECT_GT(gadget.x, 0.0);
}

TEST(TwoPartitionTricriteria, EncodeRejectsBadInput) {
  EXPECT_THROW((void)encode_two_partition_tricriteria({1}),
               std::invalid_argument);
  EXPECT_THROW((void)encode_two_partition_tricriteria({1, -2}),
               std::invalid_argument);
}

TEST(TwoPartitionTricriteria, CertificateFromExactHalfSatisfiesBounds) {
  // {1,2,3}: subset {3} (or {1,2}) hits S/2 = 3.
  const std::vector<std::int64_t> values{1, 2, 3};
  const auto gadget = encode_two_partition_tricriteria(values);
  const auto subset = solvers::two_partition(values);
  ASSERT_TRUE(subset.has_value());
  const auto mapping = certificate_mapping_tricriteria(gadget, *subset);
  mapping.validate_or_throw(gadget.problem);
  const auto metrics = core::evaluate(gadget.problem, mapping);
  EXPECT_TRUE(gadget.constraints.satisfied_by(metrics));
}

TEST(TwoPartitionTricriteria, AllSlowViolatesLatency) {
  const auto gadget = encode_two_partition_tricriteria({1, 2, 3});
  const auto mapping = certificate_mapping_tricriteria(gadget, {});
  const auto metrics = core::evaluate(gadget.problem, mapping);
  EXPECT_FALSE(gadget.constraints.satisfied_by(metrics));
}

TEST(TwoPartitionTricriteria, AllFastViolatesEnergy) {
  const auto gadget = encode_two_partition_tricriteria({1, 2, 3});
  const auto mapping = certificate_mapping_tricriteria(gadget, {0, 1, 2});
  const auto metrics = core::evaluate(gadget.problem, mapping);
  EXPECT_FALSE(gadget.constraints.satisfied_by(metrics));
}

TEST(TwoPartitionTricriteria, DecodeRoundTrip) {
  const std::vector<std::int64_t> values{1, 2, 3};
  const auto gadget = encode_two_partition_tricriteria(values);
  const auto subset = solvers::two_partition(values);
  ASSERT_TRUE(subset.has_value());
  const auto mapping = certificate_mapping_tricriteria(gadget, *subset);
  const auto decoded = decode_two_partition_tricriteria(gadget, mapping);
  ASSERT_TRUE(decoded.has_value());
  std::int64_t sum = 0;
  for (std::size_t i : *decoded) sum += values[i];
  EXPECT_EQ(sum, 3);
}

TEST(TwoPartitionTricriteria, ExactSolverSeparatesYesFromNo) {
  // YES: {1,2,3} (subset sum 3). NO: {1,1,4} (total 6, no subset sums 3).
  {
    const auto gadget = encode_two_partition_tricriteria({1, 2, 3});
    ASSERT_TRUE(gadget.constraints.period.has_value());
    const auto result = exact::exact_min_energy_tricriteria(
        gadget.problem, exact::MappingKind::OneToOne,
        *gadget.constraints.period, *gadget.constraints.latency);
    ASSERT_TRUE(result.has_value());
    EXPECT_LE(result->value, *gadget.constraints.energy_budget);
    const auto decoded =
        decode_two_partition_tricriteria(gadget, result->mapping);
    ASSERT_TRUE(decoded.has_value());
    std::int64_t sum = 0;
    for (std::size_t i : *decoded) sum += std::vector<std::int64_t>{1, 2, 3}[i];
    EXPECT_EQ(sum, 3);
  }
  {
    const auto gadget = encode_two_partition_tricriteria({1, 1, 4});
    const auto result = exact::exact_min_energy_tricriteria(
        gadget.problem, exact::MappingKind::OneToOne,
        *gadget.constraints.period, *gadget.constraints.latency);
    // Either wholly infeasible or above the energy budget.
    if (result.has_value()) {
      EXPECT_GT(result->value, *gadget.constraints.energy_budget);
    }
  }
}

TEST(TwoPartitionTricriteria, EvenTotalRequired) {
  // Odd-sum instances are trivially NO; the gadget still builds and the
  // exact solver confirms infeasibility within bounds.
  const auto gadget = encode_two_partition_tricriteria({1, 2});  // S = 3
  const auto result = exact::exact_min_energy_tricriteria(
      gadget.problem, exact::MappingKind::OneToOne, *gadget.constraints.period,
      *gadget.constraints.latency);
  if (result.has_value()) {
    EXPECT_GT(result->value, *gadget.constraints.energy_budget);
  }
}

}  // namespace
}  // namespace pipeopt::reductions
