#include "reductions/general_mapping_hardness.hpp"

#include <gtest/gtest.h>

#include "solvers/partition.hpp"
#include "util/random.hpp"

namespace pipeopt::reductions {
namespace {

TEST(GeneralMapping, TwoProcessorKnownCases) {
  EXPECT_DOUBLE_EQ(general_mapping_min_period({3, 1, 2}, 2), 3.0);
  EXPECT_DOUBLE_EQ(general_mapping_min_period({5, 1, 1}, 2), 5.0);
  EXPECT_DOUBLE_EQ(general_mapping_min_period({2, 2, 2, 2}, 2), 4.0);
}

TEST(GeneralMapping, MoreProcessorsHelp) {
  EXPECT_DOUBLE_EQ(general_mapping_min_period({2, 2, 2, 2}, 4), 2.0);
  EXPECT_DOUBLE_EQ(general_mapping_min_period({2, 2, 2, 2}, 8), 2.0);
}

TEST(GeneralMapping, SingleProcessor) {
  EXPECT_DOUBLE_EQ(general_mapping_min_period({1, 2, 3}, 1), 6.0);
}

TEST(GeneralMapping, InputValidation) {
  EXPECT_THROW((void)general_mapping_min_period({}, 2), std::invalid_argument);
  EXPECT_THROW((void)general_mapping_min_period({1.0}, 0), std::invalid_argument);
  EXPECT_THROW((void)general_mapping_min_period(std::vector<double>(25, 1.0), 2),
               std::invalid_argument);
}

TEST(GeneralMapping, GadgetMatchesTwoPartition) {
  // The §3.3 claim: general-mapping period minimization answers 2-PARTITION.
  util::Rng rng(101);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<std::int64_t> values;
    const std::size_t n = 2 + rng.index(8);
    for (std::size_t i = 0; i < n; ++i) values.push_back(rng.uniform_int(1, 12));
    const auto gadget = encode_two_partition_general(values);
    EXPECT_EQ(general_gadget_is_yes(gadget),
              solvers::two_partition(values).has_value())
        << "iteration " << iter;
  }
}

TEST(GeneralMapping, EncodeRejectsNonPositive) {
  EXPECT_THROW((void)encode_two_partition_general({1, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace pipeopt::reductions
