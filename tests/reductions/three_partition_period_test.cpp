#include "reductions/three_partition_period.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "util/numeric.hpp"

namespace pipeopt::reductions {
namespace {

using solvers::ThreePartitionInstance;

const ThreePartitionInstance kYes{{4, 5, 6, 6, 5, 4}, 15};       // two triples
const ThreePartitionInstance kNo{{4, 4, 4, 6, 6, 6}, 15};        // impossible
const ThreePartitionInstance kYesBigger{{5, 5, 5, 4, 5, 6, 4, 6, 5}, 15};

TEST(ThreePartitionPeriod, EncodeShape) {
  const auto gadget = encode_three_partition_period(kYes);
  EXPECT_EQ(gadget.problem.application_count(), 2u);
  EXPECT_EQ(gadget.problem.application(0).stage_count(), 15u);
  EXPECT_EQ(gadget.problem.platform().processor_count(), 6u);
  EXPECT_TRUE(gadget.problem.is_special_app_family());
  EXPECT_TRUE(gadget.problem.platform().is_uni_modal());
  EXPECT_DOUBLE_EQ(gadget.target_period, 1.0);
}

TEST(ThreePartitionPeriod, EncodeRejectsNonCanonical) {
  EXPECT_THROW(
      (void)encode_three_partition_period(ThreePartitionInstance{{1, 2, 3}, 6}),
      std::invalid_argument);
}

TEST(ThreePartitionPeriod, CertificateAchievesPeriodOne) {
  const auto gadget = encode_three_partition_period(kYes);
  const auto triples = solvers::three_partition(kYes);
  ASSERT_TRUE(triples.has_value());
  const auto mapping = certificate_mapping(kYes, *triples);
  mapping.validate_or_throw(gadget.problem);
  const auto metrics = core::evaluate(gadget.problem, mapping);
  EXPECT_DOUBLE_EQ(metrics.max_weighted_period, 1.0);
}

TEST(ThreePartitionPeriod, DecodeRoundTrip) {
  const auto gadget = encode_three_partition_period(kYes);
  const auto triples = solvers::three_partition(kYes);
  ASSERT_TRUE(triples.has_value());
  const auto mapping = certificate_mapping(kYes, *triples);
  const auto decoded = decode_three_partition_period(kYes, gadget, mapping);
  ASSERT_TRUE(decoded.has_value());
  for (const auto& t : *decoded) {
    EXPECT_EQ(kYes.values[t[0]] + kYes.values[t[1]] + kYes.values[t[2]], 15);
  }
}

TEST(ThreePartitionPeriod, ExactSolverSeparatesYesFromNo) {
  // The gadget chains have B stages each, far beyond full mapping
  // enumeration; the specialized special-app solver decides them exactly.
  {
    const auto gadget = encode_three_partition_period(kYes);
    EXPECT_NEAR(special_app_exact_period(gadget.problem), 1.0, 1e-9);
  }
  {
    const auto gadget = encode_three_partition_period(kNo);
    EXPECT_GT(special_app_exact_period(gadget.problem), 1.0 + 1e-9);
  }
}

TEST(ThreePartitionPeriod, SpecialSolverAgreesWithFullEnumeration) {
  // Tiny m = 1 instance where the generic exhaustive solver is tractable:
  // both exact methods must agree.
  const ThreePartitionInstance tiny{{3, 3, 3}, 9};
  ASSERT_TRUE(tiny.is_canonical());
  const auto gadget = encode_three_partition_period(tiny);
  const auto full =
      exact::exact_min_period(gadget.problem, exact::MappingKind::Interval);
  ASSERT_TRUE(full.has_value());
  EXPECT_NEAR(full->value, special_app_exact_period(gadget.problem), 1e-9);
  EXPECT_NEAR(full->value, 1.0, 1e-9);
}

TEST(ThreePartitionPeriod, SpecialSolverRejectsWrongFamily) {
  const auto problem = gen::motivating_example();
  EXPECT_THROW((void)special_app_exact_period(problem), std::invalid_argument);
}

TEST(ThreePartitionPeriod, LargerYesInstance) {
  const auto gadget = encode_three_partition_period(kYesBigger);
  const auto triples = solvers::three_partition(kYesBigger);
  ASSERT_TRUE(triples.has_value());
  const auto mapping = certificate_mapping(kYesBigger, *triples);
  const auto metrics = core::evaluate(gadget.problem, mapping);
  EXPECT_DOUBLE_EQ(metrics.max_weighted_period, 1.0);
  EXPECT_TRUE(decode_three_partition_period(kYesBigger, gadget, mapping)
                  .has_value());
}

TEST(ThreePartitionPeriod, DecodeRejectsSlowMapping) {
  const auto gadget = encode_three_partition_period(kYes);
  // Whole app 0 on the speed-4 processor, app 1 on the speed-5 one: period
  // 15/4 > 1.
  const core::Mapping slow({{0, 0, 14, 0, 0}, {1, 0, 14, 1, 0}});
  EXPECT_FALSE(decode_three_partition_period(kYes, gadget, slow).has_value());
}

}  // namespace
}  // namespace pipeopt::reductions
