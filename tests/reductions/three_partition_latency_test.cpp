#include "reductions/three_partition_latency.hpp"

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"

namespace pipeopt::reductions {
namespace {

using solvers::ThreePartitionInstance;

const ThreePartitionInstance kYes{{4, 5, 6, 6, 5, 4}, 15};
const ThreePartitionInstance kNo{{4, 4, 4, 6, 6, 6}, 15};

TEST(ThreePartitionLatency, EncodeShape) {
  const auto gadget = encode_three_partition_latency(kYes);
  EXPECT_EQ(gadget.problem.application_count(), 2u);
  EXPECT_EQ(gadget.problem.application(0).stage_count(), 3u);
  EXPECT_EQ(gadget.problem.platform().processor_count(), 6u);
  EXPECT_DOUBLE_EQ(gadget.target_latency, 15.0);
  // Processor j runs at 1/a_j.
  EXPECT_DOUBLE_EQ(gadget.problem.platform().processor(0).max_speed(), 0.25);
}

TEST(ThreePartitionLatency, CertificateAchievesLatencyB) {
  const auto gadget = encode_three_partition_latency(kYes);
  const auto triples = solvers::three_partition(kYes);
  ASSERT_TRUE(triples.has_value());
  const auto mapping = certificate_mapping_latency(kYes, *triples);
  mapping.validate_or_throw(gadget.problem);
  const auto metrics = core::evaluate(gadget.problem, mapping);
  EXPECT_NEAR(metrics.max_weighted_latency, 15.0, 1e-9);
}

TEST(ThreePartitionLatency, DecodeRoundTrip) {
  const auto gadget = encode_three_partition_latency(kYes);
  const auto triples = solvers::three_partition(kYes);
  ASSERT_TRUE(triples.has_value());
  const auto mapping = certificate_mapping_latency(kYes, *triples);
  const auto decoded = decode_three_partition_latency(kYes, gadget, mapping);
  ASSERT_TRUE(decoded.has_value());
  for (const auto& t : *decoded) {
    EXPECT_EQ(kYes.values[t[0]] + kYes.values[t[1]] + kYes.values[t[2]], 15);
  }
}

TEST(ThreePartitionLatency, ExactSolverSeparatesYesFromNo) {
  // 6 stages on 6 processors: one-to-one enumeration is tractable here.
  {
    const auto gadget = encode_three_partition_latency(kYes);
    const auto result = exact::exact_min_latency(gadget.problem,
                                                 exact::MappingKind::OneToOne);
    ASSERT_TRUE(result.has_value());
    EXPECT_NEAR(result->value, 15.0, 1e-9);
    EXPECT_TRUE(decode_three_partition_latency(kYes, gadget, result->mapping)
                    .has_value());
  }
  {
    const auto gadget = encode_three_partition_latency(kNo);
    const auto result = exact::exact_min_latency(gadget.problem,
                                                 exact::MappingKind::OneToOne);
    ASSERT_TRUE(result.has_value());
    EXPECT_GT(result->value, 15.0 + 1e-9);
  }
}

TEST(ThreePartitionLatency, DecodeRejectsTooSlowMapping) {
  const auto gadget = encode_three_partition_latency(kYes);
  // All three stages of app 0 on the three slowest processors by value 6,6,5
  // -> latency 17 > 15.
  const core::Mapping bad({{0, 0, 0, 2, 0},
                           {0, 1, 1, 3, 0},
                           {0, 2, 2, 1, 0},
                           {1, 0, 0, 0, 0},
                           {1, 1, 1, 4, 0},
                           {1, 2, 2, 5, 0}});
  EXPECT_FALSE(decode_three_partition_latency(kYes, gadget, bad).has_value());
}

TEST(ThreePartitionLatency, EncodeRejectsNonCanonical) {
  EXPECT_THROW((void)encode_three_partition_latency(
                   ThreePartitionInstance{{1, 2, 3}, 6}),
               std::invalid_argument);
}

}  // namespace
}  // namespace pipeopt::reductions
