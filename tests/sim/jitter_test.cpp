/// \file jitter_test.cpp
/// Failure injection in the simulator: multiplicative duration jitter
/// models transient slowdowns; the measured steady-state period must
/// degrade gracefully (bounded by the jitter magnitude) and the
/// deterministic regime must be bit-identical to jitter = 0.

#include <gtest/gtest.h>

#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"
#include "sim/simulator.hpp"

namespace pipeopt::sim {
namespace {

using core::CommModel;
using core::Mapping;
using core::Problem;

Problem example() { return gen::motivating_example(); }

Mapping period_optimal() {
  return Mapping({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
}

SimConfig cfg(std::size_t datasets, double jitter, std::uint64_t seed = 1) {
  SimConfig c;
  c.datasets = datasets;
  c.jitter = jitter;
  c.jitter_seed = seed;
  return c;
}

TEST(Jitter, ZeroJitterIsDeterministicBaseline) {
  const Problem p = example();
  const auto a = simulate(p, period_optimal(), cfg(64, 0.0, 1));
  const auto b = simulate(p, period_optimal(), cfg(64, 0.0, 999));
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.apps[i].steady_period, b.apps[i].steady_period);
    EXPECT_DOUBLE_EQ(a.apps[i].first_latency, b.apps[i].first_latency);
  }
}

TEST(Jitter, SameSeedReproduces) {
  const Problem p = example();
  const auto a = simulate(p, period_optimal(), cfg(64, 0.2, 7));
  const auto b = simulate(p, period_optimal(), cfg(64, 0.2, 7));
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.apps[i].steady_period, b.apps[i].steady_period);
  }
}

TEST(Jitter, DifferentSeedsDiffer) {
  const Problem p = example();
  const auto a = simulate(p, period_optimal(), cfg(64, 0.2, 7));
  const auto b = simulate(p, period_optimal(), cfg(64, 0.2, 8));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    if (a.apps[i].steady_period != b.apps[i].steady_period) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

class JitterDegradation
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(JitterDegradation, PeriodDegradesWithinBounds) {
  const auto [jitter, model] = GetParam();
  const Problem p = model == 0 ? example()
                               : example().with_comm_model(CommModel::NoOverlap);
  const Mapping m = period_optimal();
  const auto analytic = core::evaluate(p, m);
  const auto result = simulate(p, m, cfg(512, jitter, 42));
  for (std::size_t a = 0; a < result.apps.size(); ++a) {
    const double nominal = analytic.per_app[a].period;
    const double measured = result.apps[a].steady_period;
    // Durations only grow, so the period cannot beat nominal; with bounded
    // per-op inflation it cannot exceed nominal·(1 + 2·jitter) on average.
    EXPECT_GE(measured, nominal * (1.0 - 1e-9)) << "jitter " << jitter;
    EXPECT_LE(measured, nominal * (1.0 + 2.0 * jitter) + 1e-9)
        << "jitter " << jitter;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JitterDegradation,
    ::testing::Combine(::testing::Values(0.05, 0.1, 0.25, 0.5),
                       ::testing::Values(0, 1)));

TEST(Jitter, LatencyInflatesMonotonically) {
  // More jitter -> (weakly) larger worst-case latency on a fixed seed.
  const Problem p = example();
  const Mapping m = period_optimal();
  double previous = 0.0;
  for (double jitter : {0.0, 0.1, 0.3}) {
    const auto result = simulate(p, m, cfg(256, jitter, 5));
    double worst = 0.0;
    for (const auto& app : result.apps) {
      worst = std::max(worst, app.max_latency);
    }
    EXPECT_GE(worst, previous - 1e-12);
    previous = worst;
  }
}

TEST(Jitter, TraceStillConsistentUnderJitter) {
  const Problem p = example();
  SimConfig c = cfg(32, 0.3, 11);
  c.record_trace = true;
  const auto result = simulate(p, period_optimal(), c);
  for (const auto& r : result.trace.records()) {
    EXPECT_LE(r.start, r.end);
  }
}

}  // namespace
}  // namespace pipeopt::sim
