#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/evaluation.hpp"
#include "gen/motivating_example.hpp"
#include "gen/random_instances.hpp"

namespace pipeopt::sim {
namespace {

using core::CommModel;
using core::Mapping;
using core::Metrics;
using core::Problem;

Problem example() { return gen::motivating_example(); }

Mapping period_optimal() {
  return Mapping({{0, 0, 2, 2, 1}, {1, 0, 1, 1, 1}, {1, 2, 3, 0, 1}});
}
Mapping energy_minimal() {
  return Mapping({{0, 0, 2, 0, 0}, {1, 0, 3, 2, 0}});
}

SimConfig cfg(std::size_t datasets,
              std::optional<double> injection_period = std::nullopt,
              bool record_trace = false) {
  SimConfig c;
  c.datasets = datasets;
  c.injection_period = injection_period;
  c.record_trace = record_trace;
  return c;
}

TEST(Simulator, FirstDatasetLatencyMatchesEq5Overlap) {
  const Problem p = example();
  for (const Mapping& m : {period_optimal(), energy_minimal()}) {
    const Metrics metrics = core::evaluate(p, m);
    const SimResult sim = simulate(p, m, cfg(4));
    for (std::size_t a = 0; a < sim.apps.size(); ++a) {
      EXPECT_NEAR(sim.apps[a].first_latency, metrics.per_app[a].latency, 1e-12);
    }
  }
}

TEST(Simulator, FirstDatasetLatencyMatchesEq5NoOverlap) {
  const Problem p = example().with_comm_model(CommModel::NoOverlap);
  for (const Mapping& m : {period_optimal(), energy_minimal()}) {
    const Metrics metrics = core::evaluate(p, m);
    const SimResult sim = simulate(p, m, cfg(4));
    for (std::size_t a = 0; a < sim.apps.size(); ++a) {
      EXPECT_NEAR(sim.apps[a].first_latency, metrics.per_app[a].latency, 1e-12);
    }
  }
}

TEST(Simulator, SteadyPeriodMatchesEq3) {
  const Problem p = example();
  const Mapping m = period_optimal();
  const Metrics metrics = core::evaluate(p, m);
  const SimResult sim = simulate(p, m, cfg(64));
  for (std::size_t a = 0; a < sim.apps.size(); ++a) {
    EXPECT_NEAR(sim.apps[a].steady_period, metrics.per_app[a].period, 1e-9);
  }
}

TEST(Simulator, SteadyPeriodMatchesEq4NoOverlap) {
  const Problem p = example().with_comm_model(CommModel::NoOverlap);
  const Mapping m = period_optimal();
  const Metrics metrics = core::evaluate(p, m);
  const SimResult sim = simulate(p, m, cfg(64));
  for (std::size_t a = 0; a < sim.apps.size(); ++a) {
    EXPECT_NEAR(sim.apps[a].steady_period, metrics.per_app[a].period, 1e-9);
  }
}

TEST(Simulator, SaturationThroughputStillBottleneckBound) {
  // Injecting everything at t=0 must not beat the analytic period:
  // completions still spaced by the bottleneck cycle-time in steady state.
  const Problem p = example();
  const Mapping m = period_optimal();
  const Metrics metrics = core::evaluate(p, m);
  const SimResult sim = simulate(p, m, cfg(64, 0.0));
  for (std::size_t a = 0; a < sim.apps.size(); ++a) {
    EXPECT_NEAR(sim.apps[a].steady_period, metrics.per_app[a].period, 1e-9);
  }
}

TEST(Simulator, LatencyStaysBoundedAtAnalyticInjectionRate) {
  // At injection period == analytic period, queues do not build up: the
  // per-data-set latency stays equal to the first latency (deterministic
  // service, utilization <= 1 on every resource).
  const Problem p = example();
  const Mapping m = period_optimal();
  const SimResult sim = simulate(p, m, cfg(128));
  for (const AppSimResult& app : sim.apps) {
    EXPECT_NEAR(app.max_latency, app.first_latency, 1e-9);
  }
}

TEST(Simulator, CompletionsMonotone) {
  const Problem p = example();
  const SimResult sim =
      simulate(p, energy_minimal(), cfg(32, 0.0));
  for (const AppSimResult& app : sim.apps) {
    for (std::size_t d = 1; d < app.completions.size(); ++d) {
      EXPECT_GE(app.completions[d], app.completions[d - 1]);
    }
  }
}

TEST(Simulator, TraceRecordsConsistent) {
  const Problem p = example();
  const SimResult sim =
      simulate(p, period_optimal(), cfg(8, std::nullopt, true));
  ASSERT_GT(sim.trace.size(), 0u);
  for (const OpRecord& r : sim.trace.records()) {
    EXPECT_LE(r.start, r.end);
    EXPECT_GE(r.start, 0.0);
  }
  // Compute ops per dataset per interval: 3 intervals * 8 datasets.
  std::size_t computes = 0;
  for (const OpRecord& r : sim.trace.records()) {
    if (r.kind == OpKind::Compute) ++computes;
  }
  EXPECT_EQ(computes, 3u * 8u);
}

TEST(Simulator, TraceComputeResourceNeverOverlapsItself) {
  // One processor's compute ops must be serialized.
  const Problem p = example().with_comm_model(CommModel::NoOverlap);
  const SimResult sim =
      simulate(p, period_optimal(), cfg(16, std::nullopt, true));
  for (std::size_t proc = 0; proc < 3; ++proc) {
    std::vector<OpRecord> ops;
    for (const OpRecord& r : sim.trace.records()) {
      if (r.kind == OpKind::Compute && r.proc == proc) ops.push_back(r);
    }
    std::sort(ops.begin(), ops.end(),
              [](const OpRecord& a, const OpRecord& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < ops.size(); ++i) {
      EXPECT_GE(ops[i].start, ops[i - 1].end - 1e-12);
    }
  }
}

TEST(Simulator, RejectsBadInput) {
  const Problem p = example();
  EXPECT_THROW((void)simulate(p, period_optimal(), cfg(0)),
               std::invalid_argument);
  const Mapping invalid({{0, 0, 2, 0, 0}});
  EXPECT_THROW((void)simulate(p, invalid, {}), std::invalid_argument);
}

TEST(Simulator, RandomMappingsMatchClosedFormsBothModels) {
  // Property sweep: random fully-hom instances, whole-app-per-processor
  // mappings; simulator must agree with Eq. 3/4/5.
  util::Rng rng(2024);
  for (int iter = 0; iter < 20; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1 + rng.index(2);
    shape.processors = 4;
    shape.platform_class = core::PlatformClass::CommHomogeneous;
    shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
    const Problem p = gen::random_problem(rng, shape);

    // Map each application onto its own processor (fastest mode).
    std::vector<core::IntervalAssignment> ivs;
    for (std::size_t a = 0; a < p.application_count(); ++a) {
      ivs.push_back({a, 0, p.application(a).stage_count() - 1, a,
                     p.platform().processor(a).max_mode()});
    }
    const Mapping m{std::move(ivs)};
    const Metrics metrics = core::evaluate(p, m);
    const SimResult sim = simulate(p, m, cfg(48));
    for (std::size_t a = 0; a < sim.apps.size(); ++a) {
      EXPECT_NEAR(sim.apps[a].first_latency, metrics.per_app[a].latency, 1e-9);
      EXPECT_NEAR(sim.apps[a].steady_period, metrics.per_app[a].period, 1e-9);
    }
  }
}

TEST(Simulator, SplitMappingsMatchClosedFormsBothModels) {
  // Random 2-interval splits of a single application across processors.
  util::Rng rng(4096);
  for (int iter = 0; iter < 20; ++iter) {
    gen::ProblemShape shape;
    shape.applications = 1;
    shape.processors = 2;
    shape.app.min_stages = 2;
    shape.app.max_stages = 6;
    shape.platform_class = core::PlatformClass::CommHomogeneous;
    shape.comm = rng.chance(0.5) ? CommModel::Overlap : CommModel::NoOverlap;
    const Problem p = gen::random_problem(rng, shape);
    const std::size_t n = p.application(0).stage_count();
    const std::size_t split = rng.index(n - 1);  // last stage of interval 0

    const Mapping m({{0, 0, split, 0, p.platform().processor(0).max_mode()},
                     {0, split + 1, n - 1, 1, p.platform().processor(1).max_mode()}});
    const Metrics metrics = core::evaluate(p, m);
    const SimResult sim = simulate(p, m, cfg(48));
    EXPECT_NEAR(sim.apps[0].first_latency, metrics.per_app[0].latency, 1e-9);
    EXPECT_NEAR(sim.apps[0].steady_period, metrics.per_app[0].period, 1e-9);
  }
}

}  // namespace
}  // namespace pipeopt::sim
