#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace pipeopt::sim {
namespace {

TEST(Trace, EmptyTrace) {
  Trace t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_DOUBLE_EQ(t.makespan(), 0.0);
  EXPECT_DOUBLE_EQ(t.compute_busy_time(0), 0.0);
}

TEST(Trace, MakespanIsMaxEnd) {
  Trace t;
  t.add({OpKind::Compute, 0, 0, 0, 1, 2, 0.0, 3.0});
  t.add({OpKind::Transfer, 0, 0, 2, 2, 1, 3.0, 4.5});
  EXPECT_DOUBLE_EQ(t.makespan(), 4.5);
}

TEST(Trace, ComputeBusyTimePerProcessor) {
  Trace t;
  t.add({OpKind::Compute, 0, 0, 0, 0, 1, 0.0, 2.0});
  t.add({OpKind::Compute, 0, 1, 0, 0, 1, 2.0, 4.0});
  t.add({OpKind::Compute, 0, 0, 1, 1, 2, 0.0, 1.0});
  t.add({OpKind::Transfer, 0, 0, 1, 1, 1, 4.0, 9.0});  // transfers ignored
  EXPECT_DOUBLE_EQ(t.compute_busy_time(1), 4.0);
  EXPECT_DOUBLE_EQ(t.compute_busy_time(2), 1.0);
}

TEST(Trace, OpRecordDuration) {
  const OpRecord r{OpKind::Compute, 0, 0, 0, 0, 0, 1.5, 4.0};
  EXPECT_DOUBLE_EQ(r.duration(), 2.5);
}

TEST(Trace, CsvFormat) {
  Trace t;
  t.add({OpKind::Compute, 1, 2, 3, 4, 5, 0.5, 1.5});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("kind,app,dataset,first,last,proc,start,end"),
            std::string::npos);
  EXPECT_NE(csv.find("compute,1,2,3,4,5,0.5,1.5"), std::string::npos);
}

TEST(Trace, OpKindNames) {
  EXPECT_STREQ(to_string(OpKind::Compute), "compute");
  EXPECT_STREQ(to_string(OpKind::Transfer), "transfer");
}

}  // namespace
}  // namespace pipeopt::sim
