/// net/fault.hpp: the fault-spec grammar, the determinism contract (the
/// n-th decision at a site is a pure function of seed/site/kind/n), and
/// each wire-visible fault shape over a real socketpair through the
/// util/fdio.hpp framing layer — exactly how production traffic runs it.

#include "net/fault.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "util/fdio.hpp"

namespace pipeopt::net {
namespace {

FaultSpec spec_of(std::uint64_t seed, double probability,
                  std::initializer_list<FaultKind> kinds) {
  FaultSpec spec;
  spec.seed = seed;
  spec.probability = probability;
  for (const FaultKind kind : kinds) {
    spec.kinds[static_cast<std::size_t>(kind)] = true;
  }
  return spec;
}

/// A connected AF_UNIX stream pair; [0] writes, [1] reads in these tests.
struct SocketPair {
  int fds[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
  ~SocketPair() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(Fault, ParsesTheSpecGrammar) {
  const auto spec = parse_fault_spec("7:0.25:close,truncate");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->probability, 0.25);
  EXPECT_TRUE(spec->enabled(FaultKind::Close));
  EXPECT_TRUE(spec->enabled(FaultKind::Truncate));
  EXPECT_FALSE(spec->enabled(FaultKind::Refuse));
  EXPECT_FALSE(spec->enabled(FaultKind::Partial));
  EXPECT_FALSE(spec->enabled(FaultKind::Delay));

  const auto all = parse_fault_spec("11:1:all");
  ASSERT_TRUE(all.has_value());
  for (std::size_t k = 0; k < kFaultKindCount; ++k) {
    EXPECT_TRUE(all->kinds[k]) << fault_kind_name(static_cast<FaultKind>(k));
  }
}

TEST(Fault, RejectsMalformedSpecsLoudly) {
  for (const char* bad :
       {"", "7", "7:0.5", "x:0.5:close", "7:nope:close", "7:1.5:close",
        "7:-0.1:close", "7:0.5:bogus", "7:0.5:", "7:0.5:close,,delay",
        "7:0.5:close,bogus", ":0.5:close", "7::close"}) {
    EXPECT_FALSE(parse_fault_spec(bad).has_value()) << "accepted: " << bad;
  }
}

TEST(Fault, DecisionStreamsReplayExactlyForAFixedSeed) {
  FaultInjector a(spec_of(99, 0.5, {FaultKind::Close, FaultKind::Refuse}));
  FaultInjector b(spec_of(99, 0.5, {FaultKind::Close, FaultKind::Refuse}));
  FaultInjector other(spec_of(100, 0.5, {FaultKind::Close, FaultKind::Refuse}));
  bool seed_matters = false;
  bool site_matters = false;
  for (int i = 0; i < 200; ++i) {
    const bool close = a.accept_should_close();
    const bool refuse = a.connect_should_refuse();
    EXPECT_EQ(close, b.accept_should_close()) << "draw " << i;
    EXPECT_EQ(refuse, b.connect_should_refuse()) << "draw " << i;
    seed_matters |= close != other.accept_should_close();
    site_matters |= close != refuse;
    (void)other.connect_should_refuse();  // keep other's streams in lockstep
  }
  EXPECT_TRUE(seed_matters) << "seed never changed a decision";
  EXPECT_TRUE(site_matters) << "sites share one stream";
}

TEST(Fault, ProbabilityEndpointsAreNeverAndAlways) {
  FaultInjector never(spec_of(5, 0.0, {FaultKind::Close}));
  FaultInjector always(spec_of(5, 1.0, {FaultKind::Close}));
  FaultInjector off(spec_of(5, 1.0, {FaultKind::Refuse}));  // kind not armed
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(never.accept_should_close());
    EXPECT_TRUE(always.accept_should_close());
    EXPECT_FALSE(off.accept_should_close());
  }
  EXPECT_EQ(never.injected_total(), 0u);
  EXPECT_EQ(always.injected(FaultKind::Close), 100u);
}

TEST(Fault, TruncateDeliversATornPrefixThatCannotParse) {
  SocketPair pair;
  FaultInjector injector(spec_of(3, 1.0, {FaultKind::Truncate}));
  const std::string line = R"({"type":"solve","id":"t1","problem":"x"})";
  // The write fails loudly on the sender...
  EXPECT_FALSE(util::write_line(pair.fds[0], line, &injector.front_io()));
  EXPECT_GE(injector.injected(FaultKind::Truncate), 1u);
  // ... and the peer sees at most a strict prefix of the payload (never a
  // full frame something could execute), then EOF.
  util::FdLineReader reader(pair.fds[1]);
  std::string got;
  if (reader.next_line(got)) {
    EXPECT_FALSE(reader.last_terminated());
    EXPECT_LT(got.size(), line.size());
    EXPECT_EQ(line.compare(0, got.size(), got), 0) << got;
    EXPECT_FALSE(reader.next_line(got));
  }
}

TEST(Fault, PartialWritesAreHealedByTheFramingRetryLoop) {
  SocketPair pair;
  FaultInjector injector(spec_of(4, 1.0, {FaultKind::Partial}));
  const std::string line = R"({"type":"ping","id":"p-partial"})";
  EXPECT_TRUE(util::write_line(pair.fds[0], line, &injector.front_io()));
  EXPECT_GE(injector.injected(FaultKind::Partial), 1u);
  util::FdLineReader reader(pair.fds[1]);
  std::string got;
  ASSERT_TRUE(reader.next_line(got));
  EXPECT_TRUE(reader.last_terminated());
  EXPECT_EQ(got, line);
}

TEST(Fault, DelayOnlySlowsDeliveryWithoutCorruptingIt) {
  SocketPair pair;
  FaultInjector injector(spec_of(6, 1.0, {FaultKind::Delay}));
  const std::string line = R"({"type":"ping","id":"p-delay"})";
  EXPECT_TRUE(util::write_line(pair.fds[0], line, &injector.front_io()));
  util::FdLineReader reader(pair.fds[1], &injector.front_io());
  std::string got;
  ASSERT_TRUE(reader.next_line(got));
  EXPECT_TRUE(reader.last_terminated());
  EXPECT_EQ(got, line);
  EXPECT_GE(injector.injected(FaultKind::Delay), 2u);  // write + read side
}

}  // namespace
}  // namespace pipeopt::net
