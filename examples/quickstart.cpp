/// \file quickstart.cpp
/// Five-minute tour of the library on the paper's §2 motivating example:
/// two pipelined applications, three bi-modal processors, and the full
/// period / latency / energy trade-off.
///
///   $ ./quickstart

#include <cstdio>
#include <iostream>

#include "algorithms/latency_algorithms.hpp"
#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "gen/motivating_example.hpp"
#include "heuristics/speed_scaling.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace pipeopt;

  // 1. Build the instance (App1: 3 stages, App2: 4 stages; P1 ∈ {3,6},
  //    P2 ∈ {6,8}, P3 ∈ {1,6}; unit links; E = s² per enrolled processor).
  const core::Problem problem = gen::motivating_example();
  std::cout << "Instance: " << problem.application_count()
            << " concurrent applications, "
            << problem.platform().processor_count() << " processors ("
            << to_string(problem.platform().classify()) << ", "
            << to_string(problem.comm_model()) << " model)\n\n";

  util::Table table({"objective", "value", "paper §2", "mapping"});

  // 2. Minimum period. Heterogeneous multi-modal processors put this in an
  //    NP-hard cell (Theorem 4), so use the exact solver (tiny instance).
  const auto period = exact::exact_min_period(problem, exact::MappingKind::Interval);
  table.add_row({"min period", util::format_double(period->value), "1",
                 period->mapping.to_string(problem)});

  // 3. Minimum latency. Polynomial on comm-homogeneous platforms (Thm 12).
  const auto latency = algorithms::interval_min_latency(problem);
  table.add_row({"min latency", util::format_double(latency->value), "2.75",
                 latency->mapping.to_string(problem)});

  // 4. Minimum energy, unconstrained period.
  const auto energy = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::Interval, core::Thresholds::unconstrained(2));
  table.add_row({"min energy", util::format_double(energy->value), "10",
                 energy->mapping.to_string(problem)});

  // 5. The trade-off: minimum energy subject to period <= 2.
  const auto tradeoff = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::Interval, core::Thresholds::per_app({2.0, 2.0}));
  table.add_row({"min energy | T<=2", util::format_double(tradeoff->value), "46",
                 tradeoff->mapping.to_string(problem)});

  std::cout << table.render() << '\n';

  // 6. Execute the period-optimal mapping in the pipeline simulator and
  //    check the steady state delivers the analytic period.
  sim::SimConfig config;
  config.datasets = 32;
  const auto sim_result = sim::simulate(problem, period->mapping, config);
  std::cout << "Simulated steady-state periods (32 data sets):\n";
  for (std::size_t a = 0; a < sim_result.apps.size(); ++a) {
    std::printf("  %s: period %.6f, first-data-set latency %.6f\n",
                problem.application(a).name().c_str(),
                sim_result.apps[a].steady_period,
                sim_result.apps[a].first_latency);
  }

  // 7. A heuristic in one line: DVFS-downscale the period-optimal mapping
  //    under a period-2 budget.
  core::ConstraintSet constraints;
  constraints.period = core::Thresholds::per_app({2.0, 2.0});
  const auto scaled =
      heuristics::scale_down_speeds(problem, period->mapping, constraints);
  std::printf(
      "\nDVFS scaling heuristic under T<=2: energy %g -> %g "
      "(exact optimum restructures to %g)\n",
      scaled.energy_before, scaled.energy_after, tradeoff->value);
  return 0;
}
