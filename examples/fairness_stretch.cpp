/// \file fairness_stretch.cpp
/// Fairness between concurrent applications via Eq. 6's weighting policies
/// (§3.4): plain maximum, paid priorities, and max-stretch (W_a = 1/X*_a,
/// after Bender et al. [2]), on an image-processing ingest service.
///
/// With unit weights, a tiny application sharing the platform with a huge
/// one is starved relative to what it could do alone; max-stretch weights
/// equalize the slowdown factors.
///
///   $ ./fairness_stretch

#include <cstdio>
#include <iostream>

#include "algorithms/interval_period_multi.hpp"
#include "core/evaluation.hpp"
#include "gen/workloads.hpp"
#include "util/table.hpp"

namespace {

/// Rebuilds the problem with the given per-application weights.
pipeopt::core::Problem reweight(const pipeopt::core::Problem& problem,
                                const std::vector<double>& weights) {
  std::vector<pipeopt::core::Application> apps;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const auto& old = problem.application(a);
    std::vector<pipeopt::core::StageSpec> stages(old.stages().begin(),
                                                 old.stages().end());
    apps.push_back(pipeopt::core::Application(old.boundary_size(0),
                                              std::move(stages), weights[a],
                                              old.name()));
  }
  return pipeopt::core::Problem(std::move(apps), problem.platform(),
                                problem.comm_model());
}

}  // namespace

int main() {
  using namespace pipeopt;

  // A big 4K ingest pipeline competing with a small thumbnail pipeline.
  std::vector<core::Application> apps;
  apps.push_back(gen::image_pipeline_app(/*image_size=*/32.0));  // heavy
  apps.push_back(gen::image_pipeline_app(1.0));                  // light
  const core::Platform cluster = gen::homogeneous_cluster(
      /*p=*/6, /*modes=*/1, /*base_speed=*/4.0, /*turbo_factor=*/1.0,
      /*bandwidth=*/16.0, /*static_energy=*/0.0);
  const core::Problem base(apps, cluster, core::CommModel::Overlap);

  // Solo optima: what each application achieves with the platform alone.
  std::vector<double> solo(base.application_count());
  for (std::size_t a = 0; a < solo.size(); ++a) {
    solo[a] = algorithms::solo_interval_period(base, a);
    std::printf("solo optimal period of app %zu: %.4f\n", a, solo[a]);
  }
  std::cout << '\n';

  util::Table table({"policy", "T app0", "T app1", "stretch app0",
                     "stretch app1", "max stretch"});
  const auto report = [&](const char* name, const core::Problem& problem) {
    const auto solution = algorithms::interval_min_period(problem);
    if (!solution) return;
    const auto metrics = core::evaluate(problem, solution->mapping);
    const double s0 = metrics.per_app[0].period / solo[0];
    const double s1 = metrics.per_app[1].period / solo[1];
    table.add_row({name, util::format_double(metrics.per_app[0].period, 4),
                   util::format_double(metrics.per_app[1].period, 4),
                   util::format_double(s0, 3), util::format_double(s1, 3),
                   util::format_double(std::max(s0, s1), 3)});
  };

  // Unit weights: minimize the plain maximum period.
  report("unit weights", reweight(base, {1.0, 1.0}));
  // Priority: the heavy stream paid for 3x priority.
  report("priority 3:1", reweight(base, {3.0, 1.0}));
  // Max-stretch: W_a = 1 / T*_a equalizes slowdowns (Eq. 6 with [2]).
  report("max-stretch", reweight(base, {1.0 / solo[0], 1.0 / solo[1]}));

  std::cout << table.render() << '\n';
  std::cout << "Unit weights let the heavy app dominate; max-stretch weights\n"
               "balance each application's slowdown against its solo optimum.\n";
  return 0;
}
