/// \file laptop_server.cpp
/// The paper's two framing questions (§1), answered with the library:
///
///  * laptop problem — "what is the best schedule achievable using a
///    particular energy budget?"  (minimize period subject to E <= budget)
///  * server problem — "what is the least energy required to achieve a
///    desired level of performance?"  (minimize E subject to T <= target)
///
/// Plus the full period-energy Pareto front of a DSP filter bank on a
/// uni-modal cluster (Theorem 24 machinery) and a multi-modal comparison.
///
///   $ ./laptop_server

#include <cstdio>
#include <iostream>

#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/interval_period_multi.hpp"
#include "algorithms/tricriteria_unimodal.hpp"
#include "core/pareto.hpp"
#include "gen/workloads.hpp"
#include "util/table.hpp"

int main() {
  using namespace pipeopt;

  // Two DSP filter banks (8 and 12 taps) on a 8-node uni-modal cluster.
  std::vector<core::Application> apps;
  apps.push_back(gen::dsp_filter_app(8, 0.25));
  apps.push_back(gen::dsp_filter_app(12, 0.25));
  const core::Platform cluster = gen::homogeneous_cluster(
      /*p=*/8, /*modes=*/1, /*base_speed=*/2.0, /*turbo_factor=*/1.0,
      /*bandwidth=*/8.0, /*static_energy=*/0.5);
  const core::Problem problem(apps, cluster, core::CommModel::Overlap);
  const double unit = cluster.processor_energy(0, 0);
  std::printf("Uni-modal cluster: 8 nodes @ speed 2, %.2f energy each\n\n", unit);

  // --- Laptop problem: sweep energy budgets. -----------------------------
  const auto latency_free = core::Thresholds::unconstrained(2);
  util::Table laptop({"energy budget", "processors", "best weighted period"});
  std::vector<core::ParetoPoint> front_points;
  for (std::size_t k = 2; k <= 8; ++k) {
    const double budget = unit * static_cast<double>(k);
    const auto best = algorithms::interval_min_period_tricriteria(
        problem, latency_free, budget);
    if (!best) continue;
    laptop.add_row({util::format_double(budget, 2), std::to_string(k),
                    util::format_double(best->value, 4)});
    core::ParetoPoint pt;
    pt.period = best->value;
    pt.energy = core::mapping_energy(problem, best->mapping);
    front_points.push_back(pt);
  }
  std::cout << "Laptop problem (fix E, minimize T):\n"
            << laptop.render() << '\n';

  // --- Server problem: sweep period targets. -----------------------------
  const auto solo = algorithms::interval_min_period(problem);
  util::Table server({"period target", "least energy", "processors"});
  for (double factor : {1.0, 1.25, 1.5, 2.0, 3.0, 6.0}) {
    const double target = solo->value * factor;
    const auto best = algorithms::interval_min_energy_tricriteria(
        problem, core::Thresholds::uniform(problem, target),
        core::Thresholds::unconstrained(2));
    if (!best) continue;
    server.add_row({util::format_double(target, 4),
                    util::format_double(best->value, 2),
                    std::to_string(best->mapping.interval_count())});
    core::ParetoPoint pt;
    pt.period = target;
    pt.energy = best->value;
    front_points.push_back(pt);
  }
  std::cout << "Server problem (fix T, minimize E):\n"
            << server.render() << '\n';

  // --- Pareto front of both sweeps combined. ------------------------------
  const auto front = core::pareto_front(std::move(front_points), false);
  util::Table pareto({"period", "energy"});
  for (const auto& pt : front) {
    pareto.add_row({util::format_double(pt.period, 4),
                    util::format_double(pt.energy, 2)});
  }
  std::cout << "Pareto-optimal (T, E) points (energy monotone: "
            << (core::energy_monotone_in_period(front) ? "yes" : "NO")
            << "):\n"
            << pareto.render();
  return 0;
}
