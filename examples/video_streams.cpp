/// \file video_streams.cpp
/// Concurrent video-transcoding service on a homogeneous DVFS cluster —
/// the streaming scenario the paper's introduction motivates.
///
/// Three transcode pipelines (1080p, 720p, 480p renditions) share a
/// 12-node cluster. We:
///   1. minimize the global weighted period (Theorem 3's DP + Algorithm 2),
///   2. bound each stream's period at its frame-rate target and minimize
///      energy (Theorem 21's DP composition),
///   3. validate the chosen mapping in the pipeline simulator.
///
///   $ ./video_streams

#include <cstdio>
#include <iostream>

#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/interval_period_multi.hpp"
#include "core/evaluation.hpp"
#include "gen/workloads.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace pipeopt;

  // Three renditions; weights encode frame-rate goals (higher weight =
  // stricter goal, Eq. 6).
  std::vector<core::Application> streams;
  streams.push_back(gen::video_transcode_app(/*frame_size=*/8.0, /*weight=*/2.0));
  streams.push_back(gen::video_transcode_app(4.0, 1.5));
  streams.push_back(gen::video_transcode_app(2.0, 1.0));

  // 12 identical nodes, 4 DVFS points between 2.0 and 8.0, static draw 1.0.
  const core::Platform cluster = gen::homogeneous_cluster(
      /*p=*/12, /*modes=*/4, /*base_speed=*/2.0, /*turbo_factor=*/4.0,
      /*bandwidth=*/16.0, /*static_energy=*/1.0);
  const core::Problem problem(streams, cluster, core::CommModel::Overlap);

  std::cout << "Cluster: 12 nodes x modes {2, 3.17, 5.04, 8}, bw 16\n"
            << "Streams: 6-stage transcode chains, frame sizes 8/4/2\n\n";

  // --- 1. Fastest service: minimize max_a W_a * T_a. --------------------
  const auto fastest = algorithms::interval_min_period(problem);
  if (!fastest) {
    std::cerr << "no feasible mapping\n";
    return 1;
  }
  const auto fast_metrics = core::evaluate(problem, fastest->mapping);
  std::printf("Period-optimal mapping: weighted period %.4f, energy %.1f\n",
              fastest->value, fast_metrics.energy);
  std::cout << "  " << fastest->mapping.to_string(problem) << "\n\n";

  // --- 2. Energy-aware service: per-stream frame-period targets. --------
  // Relax each stream to 1.6x its solo optimum and minimize energy.
  std::vector<double> targets;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    targets.push_back(algorithms::solo_interval_period(problem, a) * 1.6);
  }
  const auto green = algorithms::interval_min_energy_under_period(
      problem, core::Thresholds::per_app(targets));
  if (!green) {
    std::cerr << "period targets infeasible\n";
    return 1;
  }
  const auto green_metrics = core::evaluate(problem, green->mapping);

  util::Table table({"stream", "target T", "achieved T", "fast-mapping T"});
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    table.add_row({problem.application(a).name() + std::to_string(a),
                   util::format_double(targets[a], 4),
                   util::format_double(green_metrics.per_app[a].period, 4),
                   util::format_double(fast_metrics.per_app[a].period, 4)});
  }
  std::cout << table.render() << '\n';
  std::printf("Energy: %.1f (period-optimal) -> %.1f (period-bounded)  [%.1f%% saved]\n\n",
              fast_metrics.energy, green_metrics.energy,
              100.0 * (1.0 - green_metrics.energy / fast_metrics.energy));

  // --- 3. Validate in the simulator. -------------------------------------
  sim::SimConfig config;
  config.datasets = 128;
  const auto sim_result = sim::simulate(problem, green->mapping, config);
  std::cout << "Simulator check (128 frames per stream):\n";
  for (std::size_t a = 0; a < sim_result.apps.size(); ++a) {
    std::printf("  stream %zu: steady period %.4f (analytic %.4f), "
                "frame latency %.4f\n",
                a, sim_result.apps[a].steady_period,
                green_metrics.per_app[a].period,
                sim_result.apps[a].first_latency);
  }
  return 0;
}
