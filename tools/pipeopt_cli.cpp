/// \file pipeopt_cli.cpp
/// Command-line front end over the `pipeopt::api` facade.
///
///   pipeopt <problem-file> <command> [args]
///
/// commands:
///   show                         parse + echo the instance
///   solve --objective period|latency|energy [options]
///                                one call for every optimizer: capability
///                                dispatch picks the cheapest applicable
///                                solver unless --solver forces one
///     --solver auto|<name>       force a registered solver (default auto)
///     --kind interval|one-to-one mapping family (default interval)
///     --period-bounds T[,T...]   per-app period thresholds
///     --latency-bounds L[,L...]  per-app latency thresholds
///     --energy-budget E          global energy budget
///     --weights unit|priority|stretch   Eq. 6 weight policy
///     --node-budget N            exact-search node budget
///     --time-budget S            heuristic wall-clock budget (seconds)
///     --seed N                   seed for stochastic solvers
///   solve-batch --objective ... [--jobs N] [--out results.jsonl]
///                                [solve options]
///                                <problem-file> is a JSONL manifest (one
///                                {"path": ...} or {"problem": ...} object
///                                per line); all instances are solved under
///                                one request, sharing one dispatch plan
///                                across a worker pool of N threads; --out
///                                writes one result_io JSONL line per
///                                instance (the server wire format)
///   pareto --sweep-bounds B,...  Pareto-front sweep (api/sweep.hpp):
///         [--sweep period|latency|energy] [--refine N] [--jobs N]
///         [--out front.jsonl] [solve options]
///                                minimize --objective (default energy) at
///                                each bound of the swept criterion
///                                (default period), filter to the Pareto
///                                front, print it with witness solver
///                                names; --out writes one result_io wire
///                                line per front point plus the terminal
///                                pareto summary line (exactly what the
///                                server streams for {"type":"pareto"})
///   list-solvers                 registered solvers, dispatch order,
///                                applicability for this instance
///   min-period [--exact]         legacy alias of solve --objective period
///   min-latency                  legacy alias of solve --objective latency
///   min-energy T1,T2,...         legacy alias of solve --objective energy
///   simulate D                   run the period-optimal mapping for D data
///                                sets and report measured period/latency
///
/// Two commands take no problem file (they come first on the command line):
///
///   pipeopt serve [--host H] [--port N] [--jobs N] [--cache-entries N]
///                 [--backlog N] [--stdio]
///                                long-lived JSONL solve service over TCP
///                                (src/server/); --port 0 picks an
///                                ephemeral port, announced on stdout;
///                                --cache-entries N switches the solve
///                                cache on (repeat requests answer
///                                byte-identically from it); --backlog N
///                                sizes the listen(2) queue (raise it
///                                behind a router); --stdio serves
///                                stdin/stdout instead
///   pipeopt route (--shards H:P,H:P,... | --spawn N) [--host H] [--port N]
///                 [--jobs N] [--cache-entries N] [--window N]
///                 [--health-interval-ms MS] [--backlog N]
///                                sharded front tier (src/router/): speaks
///                                the server protocol, routes each request
///                                to a shard by its canonical solve key
///                                (byte-identical responses, shard-coherent
///                                caches), health-checks the shards, and in
///                                --spawn mode forks N local servers and
///                                restarts them when they die; answers
///                                ping/health itself and merges stats
///                                across the fleet; when every shard is at
///                                its --window in-flight cap, requests shed
///                                with {"type":"error","code":"overloaded"}
///   pipeopt client [--host H] --port N
///                  (--manifest M [--pareto] [solve/sweep options] | F)
///                                scripted load generator: with --manifest,
///                                one solve request per manifest instance
///                                under shared solve flags (--pareto sends
///                                pareto sweep requests instead, with the
///                                sweep flags above); otherwise raw JSONL
///                                request lines from file F ("-" = stdin).
///                                Lock-step send/receive; responses echo to
///                                stdout, and a pareto request drains its
///                                streamed front through the terminal
///                                summary line. --retries N grants N extra
///                                attempts per failure point (code-aware:
///                                see docs/PROTOCOL.md's retryability
///                                table) with --backoff-ms capped backoff;
///                                retry counts per code print to stderr on
///                                exit, and exit 3 means the budget is gone
///
/// Exit codes: 0 solved, 1 infeasible (or search budget exhausted),
/// 2 usage/parse errors (including unknown or inapplicable solver names),
/// 3 transport failures (the client cannot connect, or the connection is
/// lost before a response arrives — scripts distinguish "the server said
/// no" from "there was no server to ask"). solve-batch aggregates
/// per-instance codes: the worst one wins (2 > 1 > 0), so a batch exits 0
/// only when every instance solved; the client aggregates its responses
/// the same way (a server-side error line counts as 2).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/adapters.hpp"
#include "api/executor.hpp"
#include "api/registry.hpp"
#include "api/sweep.hpp"
#include "core/evaluation.hpp"
#include "io/problem_io.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "router/router.hpp"
#include "server/server.hpp"
#include "sim/simulator.hpp"
#include "util/fdio.hpp"
#include "util/numeric.hpp"
#include "util/retry.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace pipeopt;

int usage() {
  std::fputs(
      "usage: pipeopt <problem-file> <command> [args]\n"
      "       pipeopt serve|route|client [args]\n"
      "  show                       echo the parsed instance\n"
      "  solve --objective period|latency|energy [--solver auto|<name>]\n"
      "        [--kind interval|one-to-one] [--period-bounds T[,T...]]\n"
      "        [--latency-bounds L[,L...]] [--energy-budget E]\n"
      "        [--weights unit|priority|stretch] [--node-budget N]\n"
      "        [--time-budget S] [--seed N] [--timeout-ms MS]\n"
      "  solve-batch --objective ... [--jobs N] [--out results.jsonl]\n"
      "                             problem-file is a JSONL manifest; one\n"
      "                             request, one dispatch plan, N workers\n"
      "  pareto --sweep-bounds B1[,B2...] [--sweep period|latency|energy]\n"
      "         [--refine N] [--jobs N] [--out front.jsonl] [solve opts]\n"
      "                             Pareto-front sweep: minimize the\n"
      "                             objective (default energy) under each\n"
      "                             swept bound (default period)\n"
      "  list-solvers               registered solvers in dispatch order\n"
      "  min-period [--exact]       alias: solve --objective period\n"
      "  min-latency                alias: solve --objective latency\n"
      "  min-energy T1,T2,...       alias: solve --objective energy\n"
      "  simulate <datasets>        execute the period-optimal mapping\n"
      "  serve [--host H] [--port N] [--jobs N] [--cache-entries N]\n"
      "        [--backlog N] [--trace-log F] [--fault-spec S] [--stdio]\n"
      "                             JSONL-over-TCP solve service (no\n"
      "                             problem file; --port 0 = ephemeral;\n"
      "                             --cache-entries N = solve cache on;\n"
      "                             --trace-log F = per-request span JSONL;\n"
      "                             --fault-spec seed:prob:kinds = seeded\n"
      "                             fault injection, chaos testing only)\n"
      "  route (--shards H:P,... | --spawn N) [--host H] [--port N]\n"
      "        [--jobs N] [--cache-entries N] [--window N]\n"
      "        [--health-interval-ms MS] [--backlog N] [--trace-log F]\n"
      "        [--shard-trace-log P] [--retries N] [--backoff-ms MS]\n"
      "        [--breaker-threshold N] [--breaker-cooldown-ms MS]\n"
      "        [--fault-spec S]\n"
      "                             sharded front tier over N servers:\n"
      "                             sticky key-hash routing, health checks,\n"
      "                             restarts (--spawn), per-shard circuit\n"
      "                             breakers, budgeted retry/failover,\n"
      "                             deadline-aware shedding, load shedding,\n"
      "                             merged stats + metrics, fleet tracing\n"
      "  client [--host H] --port N\n"
      "         (--manifest M [--pareto] [solve/sweep opts] | F | -)\n"
      "         [--retries N] [--backoff-ms MS]\n"
      "         [--poll-stats MS --poll-out F]\n"
      "                             send request lines, echo responses;\n"
      "                             --retries = code-aware retry with capped\n"
      "                             backoff (exit 3 only after the budget);\n"
      "                             --poll-stats samples stats+metrics to\n"
      "                             a JSONL file while the load runs\n"
      "  top [--host H] --port N [--interval-ms MS] [--iterations N]\n"
      "      [--no-clear]           live fleet view: per-shard liveness and\n"
      "                             per-solver latency quantiles, refreshed\n"
      "                             from stats+metrics every interval\n",
      stderr);
  return 2;
}

using util::parse_number;

/// Parses "T" or "T1,T2,..." into per-application thresholds. Empty tokens
/// (",5", "5,,") are malformed — usage error per the exit-code contract.
std::optional<core::Thresholds> parse_bounds(const core::Problem& problem,
                                             const std::string& text) {
  std::vector<double> bounds;
  std::string token;
  for (std::size_t i = 0;; ++i) {
    if (i == text.size() || text[i] == ',') {
      const auto bound = parse_number<double>(token);
      if (!bound) return std::nullopt;
      bounds.push_back(*bound);
      token.clear();
      if (i == text.size()) break;
    } else {
      token += text[i];
    }
  }
  if (bounds.empty()) return std::nullopt;
  if (bounds.size() == 1) {
    bounds.assign(problem.application_count(), bounds.front());
  }
  if (bounds.size() != problem.application_count()) return std::nullopt;
  return core::Thresholds::per_app(std::move(bounds));
}

void print_result(const core::Problem& problem, const api::SolveRequest& request,
                  const api::SolveResult& result) {
  std::printf("solver: %s\n", result.solver.c_str());
  std::printf("status: %s\n", result.status_name());
  if (!result.solved()) {
    for (const auto& [key, value] : result.diagnostics) {
      std::printf("  %s: %s\n", key.c_str(), value.c_str());
    }
    return;
  }
  std::printf("min %s = %s\n", to_string(request.objective),
              util::format_double(result.value).c_str());
  std::printf("mapping: %s\n", result.mapping->to_string(problem).c_str());
  util::Table table({"application", "period", "latency"});
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    table.add_row({problem.application(a).name(),
                   util::format_double(result.metrics.per_app[a].period, 4),
                   util::format_double(result.metrics.per_app[a].latency, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("energy: %s\n", util::format_double(result.metrics.energy).c_str());
  std::printf("wall: %.3fs\n", result.wall_seconds);
  for (const auto& [key, value] : result.diagnostics) {
    std::printf("  %s: %s\n", key.c_str(), value.c_str());
  }
}

/// Maps a facade status to the exit-code contract.
int exit_code(const api::SolveResult& result) {
  switch (result.status) {
    case api::SolveStatus::Optimal:
    case api::SolveStatus::Feasible:
      return 0;
    case api::SolveStatus::Infeasible:
    case api::SolveStatus::LimitExceeded:
      return 1;
    case api::SolveStatus::NoSolver:
      return 2;
  }
  return 2;
}

int run_solve(const core::Problem& problem, const api::SolveRequest& request) {
  const api::SolveResult result = api::solve(problem, request);
  if (result.status == api::SolveStatus::NoSolver) {
    std::fprintf(stderr, "error: no solver for this request\n");
    for (const auto& [key, value] : result.diagnostics) {
      std::fprintf(stderr, "  %s: %s\n", key.c_str(), value.c_str());
    }
    return 2;
  }
  print_result(problem, request, result);
  return exit_code(result);
}

/// Parses `solve` flags into a request; nullopt on any usage error.
std::optional<api::SolveRequest> parse_solve_args(
    const core::Problem& problem, const std::vector<std::string>& args) {
  api::SolveRequest request;
  bool have_objective = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= args.size()) return std::nullopt;
      return args[++i];
    };
    if (flag == "--objective") {
      const auto value = next();
      if (!value) return std::nullopt;
      const auto objective = api::parse_objective(*value);
      if (!objective) return std::nullopt;
      request.objective = *objective;
      have_objective = true;
    } else if (flag == "--solver") {
      const auto value = next();
      if (!value) return std::nullopt;
      // Last flag wins: "auto" must clear an earlier forced name.
      if (*value == "auto") {
        request.solver.reset();
      } else {
        request.solver = *value;
      }
    } else if (flag == "--kind") {
      const auto value = next();
      if (!value) return std::nullopt;
      const auto kind = api::parse_mapping_kind(*value);
      if (!kind) return std::nullopt;
      request.kind = *kind;
    } else if (flag == "--period-bounds") {
      const auto value = next();
      if (!value) return std::nullopt;
      request.constraints.period = parse_bounds(problem, *value);
      if (!request.constraints.period) return std::nullopt;
    } else if (flag == "--latency-bounds") {
      const auto value = next();
      if (!value) return std::nullopt;
      request.constraints.latency = parse_bounds(problem, *value);
      if (!request.constraints.latency) return std::nullopt;
    } else if (flag == "--energy-budget") {
      const auto value = next();
      if (!value) return std::nullopt;
      request.constraints.energy_budget = parse_number<double>(*value);
      if (!request.constraints.energy_budget) return std::nullopt;
    } else if (flag == "--weights") {
      const auto value = next();
      if (!value) return std::nullopt;
      if (*value == "unit") {
        request.weights = core::WeightPolicy::Unit;
      } else if (*value == "priority") {
        request.weights = core::WeightPolicy::Priority;
      } else if (*value == "stretch") {
        request.weights = core::WeightPolicy::Stretch;
      } else {
        return std::nullopt;
      }
    } else if (flag == "--node-budget") {
      const auto value = next();
      if (!value) return std::nullopt;
      const auto budget = parse_number<std::uint64_t>(*value);
      if (!budget) return std::nullopt;
      request.node_budget = *budget;
    } else if (flag == "--time-budget") {
      const auto value = next();
      if (!value) return std::nullopt;
      request.time_budget_seconds = parse_number<double>(*value);
      if (!request.time_budget_seconds) return std::nullopt;
    } else if (flag == "--seed") {
      const auto value = next();
      if (!value) return std::nullopt;
      const auto seed = parse_number<std::uint64_t>(*value);
      if (!seed) return std::nullopt;
      request.seed = *seed;
    } else if (flag == "--timeout-ms") {
      const auto value = next();
      if (!value) return std::nullopt;
      request.deadline_ms = parse_number<std::uint64_t>(*value);
      if (!request.deadline_ms) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (!have_objective) return std::nullopt;
  return request;
}

/// Parses "B1,B2,..." into raw doubles (no replication); nullopt on any
/// malformed or empty token.
std::optional<std::vector<double>> parse_double_list(const std::string& text) {
  std::vector<double> values;
  std::string token;
  for (std::size_t i = 0;; ++i) {
    if (i == text.size() || text[i] == ',') {
      const auto value = parse_number<double>(token);
      if (!value) return std::nullopt;
      values.push_back(*value);
      token.clear();
      if (i == text.size()) break;
    } else {
      token += text[i];
    }
  }
  if (values.empty()) return std::nullopt;
  return values;
}

/// Parses `pareto` flags into a sweep request: the sweep-specific flags
/// here, everything else through parse_solve_args (with the sweep default
/// of --objective energy when none is given); nullopt on any usage error.
std::optional<api::SweepRequest> parse_sweep_args(
    const core::Problem& problem, const std::vector<std::string>& args) {
  api::SweepRequest sweep;
  std::vector<std::string> solve_args;
  bool have_bounds = false;
  bool have_objective = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--sweep") {
      if (i + 1 >= args.size()) return std::nullopt;
      const auto swept = api::parse_objective(args[++i]);
      if (!swept) return std::nullopt;
      sweep.swept = *swept;
    } else if (flag == "--sweep-bounds") {
      if (i + 1 >= args.size()) return std::nullopt;
      const auto bounds = parse_double_list(args[++i]);
      if (!bounds) return std::nullopt;
      sweep.bounds = *bounds;
      have_bounds = true;
    } else if (flag == "--refine") {
      if (i + 1 >= args.size()) return std::nullopt;
      const auto refine = parse_number<std::size_t>(args[++i]);
      if (!refine) return std::nullopt;
      sweep.refine = *refine;
    } else {
      if (flag == "--objective") have_objective = true;
      solve_args.push_back(flag);
    }
  }
  if (!have_bounds) return std::nullopt;
  if (!have_objective) {
    solve_args.insert(solve_args.begin(), {"--objective", "energy"});
  }
  const auto base = parse_solve_args(problem, solve_args);
  if (!base) return std::nullopt;
  sweep.base = *base;
  return sweep;
}

/// `pareto`: evaluates the sweep on a worker pool, prints the front and
/// optionally writes the wire lines the server would stream. Exit codes:
/// 0 = non-empty complete front, 1 = empty or cut-short front, 2 = usage.
int run_pareto(const core::Problem& problem,
               const std::vector<std::string>& args) {
  std::size_t jobs = 0;
  std::string out_path;
  std::vector<std::string> sweep_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--jobs") {
      if (i + 1 >= args.size()) return usage();
      const auto parsed = parse_number<std::size_t>(args[++i]);
      if (!parsed) return usage();
      jobs = *parsed;
    } else if (args[i] == "--out") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else {
      sweep_args.push_back(args[i]);
    }
  }
  const auto request = parse_sweep_args(problem, sweep_args);
  if (!request) return usage();
  if (const std::string error = api::validate_sweep(*request); !error.empty()) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  api::Executor executor(api::ExecutorOptions{jobs});
  const api::ParetoFront front = executor.sweep(problem, *request);

  if (!out_path.empty()) {
    // Exactly the lines a server streams for the same {"type":"pareto"}
    // request (no id), so captures diff directly once wall_s is stripped.
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    for (const std::size_t index : front.front) {
      const api::SweepEvaluation& evaluation = front.evaluations[index];
      out << io::format_front_point(evaluation.result, evaluation.bound)
          << '\n';
    }
    out << io::format_pareto_summary(front) << '\n';
  }

  std::vector<std::string> columns{to_string(request->swept) +
                                   std::string(" <=")};
  columns.insert(columns.end(), {"period", "latency", "energy", "solver"});
  util::Table table(columns);
  for (const std::size_t index : front.front) {
    const api::SweepEvaluation& evaluation = front.evaluations[index];
    table.add_row({util::format_double(evaluation.bound, 6),
                   util::format_double(
                       evaluation.result.metrics.max_weighted_period, 6),
                   util::format_double(
                       evaluation.result.metrics.max_weighted_latency, 6),
                   util::format_double(evaluation.result.metrics.energy, 6),
                   evaluation.result.solver});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "front: %zu points from %zu evaluations (%zu infeasible, %zu "
      "cancelled)%s\n",
      front.front.size(), front.evaluations.size(), front.infeasible_points,
      front.cancelled_points, front.cancelled ? " [sweep cut short]" : "");
  if (!front.use_latency) {
    std::printf("energy monotone non-increasing in period: %s\n",
                front.monotone() ? "yes" : "NO");
  }
  std::printf("wall: %.3fs\n", front.wall_seconds);
  return front.front.empty() || front.cancelled ? 1 : 0;
}

/// Solves a JSONL manifest of instances under one shared request on a
/// worker pool; exits with the worst per-instance code (2 > 1 > 0).
int run_solve_batch(const std::string& manifest_path,
                    const std::vector<std::string>& args) {
  const std::vector<core::Problem> problems = io::load_batch(manifest_path);
  if (problems.empty()) {
    std::fprintf(stderr, "error: empty batch manifest\n");
    return 2;
  }

  // Split --jobs / --out from the shared solve flags.
  std::size_t jobs = 0;
  std::string out_path;
  std::vector<std::string> solve_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--jobs") {
      if (i + 1 >= args.size()) return usage();
      const auto parsed = parse_number<std::size_t>(args[++i]);
      if (!parsed) return usage();
      jobs = *parsed;  // 0 = hardware concurrency
    } else if (args[i] == "--out") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else {
      solve_args.push_back(args[i]);
    }
  }
  const auto request = parse_solve_args(problems.front(), solve_args);
  if (!request) return usage();
  if (request->constraints.period || request->constraints.latency) {
    // One request serves the whole batch, so per-application thresholds
    // only make sense when every instance has the same application count.
    for (const core::Problem& problem : problems) {
      if (problem.application_count() != problems.front().application_count()) {
        std::fprintf(stderr,
                     "error: per-application bounds require a uniform "
                     "application count across the batch\n");
        return 2;
      }
    }
  }

  api::Executor executor(api::ExecutorOptions{jobs});
  const api::BatchResult batch = executor.solve_batch(problems, *request);

  if (!out_path.empty()) {
    // One result_io line per instance — the same wire format the server
    // speaks, so batch outputs and server responses diff directly.
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 2;
    }
    for (const api::SolveResult& result : batch.results) {
      out << io::format_result(result) << '\n';
    }
  }

  util::Table table({"#", "status", "solver", "value", "wall"});
  int worst = 0;
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    const api::SolveResult& result = batch.results[i];
    worst = std::max(worst, exit_code(result));
    table.add_row({std::to_string(i), result.status_name(), result.solver,
                   result.solved() ? util::format_double(result.value) : "-",
                   util::format_double(result.wall_seconds, 4) + "s"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("batch: %zu instances, jobs=%zu, dispatch plans=%zu, wall=%.3fs\n",
              batch.results.size(), executor.jobs(), batch.dispatch_plans,
              batch.wall_seconds);
  return worst;
}

/// `pipeopt serve`: the long-lived JSONL solve service (src/server/).
int run_serve(const std::vector<std::string>& args) {
  // Process-wide, before any socket exists: a peer that vanishes must
  // surface as a write error on every path (sessions, announce pipe),
  // never as a SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);
  server::ServerOptions options;
  bool stdio = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--help") {
      std::fputs(
          "usage: pipeopt serve [--host H] [--port N] [--jobs N]\n"
          "                     [--cache-entries N] [--backlog N]\n"
          "                     [--trace-log F] [--fault-spec S] [--stdio]\n"
          "JSONL-over-TCP solve service over the api::Executor pool.\n"
          "  --host H    listen address (default 127.0.0.1)\n"
          "  --port N    listen port; 0 picks an ephemeral port (default),\n"
          "              announced as 'pipeopt-server listening on H:P'\n"
          "  --jobs N    worker pool size (default: hardware concurrency)\n"
          "  --cache-entries N\n"
          "              solve-cache capacity; repeated identical requests\n"
          "              (and replayed sweep grid points) answer from the\n"
          "              cache byte-identically; 0 = off (default). Stats\n"
          "              gain cache_hits/cache_misses/cache_evictions.\n"
          "  --backlog N listen(2) queue depth (default 64; raise it when\n"
          "              a router front tier multiplies connection bursts)\n"
          "  --trace-log F\n"
          "              append one JSONL span line per completed solve or\n"
          "              pareto request (trace id + per-phase breakdown);\n"
          "              responses stay byte-identical either way\n"
          "  --fault-spec S\n"
          "              deterministic fault injection on session sockets,\n"
          "              S = seed:prob:kind[,kind...] with kinds close,\n"
          "              truncate, partial, delay, all (chaos testing;\n"
          "              see docs/RESILIENCE.md)\n"
          "  --stdio     serve one session on stdin/stdout instead of TCP\n"
          "Protocol: one JSON object per line; see docs/PROTOCOL.md.\n"
          "SIGINT/SIGTERM drain in-flight solves, then exit 0.\n",
          stdout);
      return 0;
    }
    if (flag == "--stdio") {
      stdio = true;
    } else if (flag == "--host") {
      if (i + 1 >= args.size()) return usage();
      options.host = args[++i];
    } else if (flag == "--port") {
      if (i + 1 >= args.size()) return usage();
      const auto port = parse_number<std::uint16_t>(args[++i]);
      if (!port) return usage();
      options.port = *port;
    } else if (flag == "--jobs") {
      if (i + 1 >= args.size()) return usage();
      const auto jobs = parse_number<std::size_t>(args[++i]);
      if (!jobs) return usage();
      options.jobs = *jobs;
    } else if (flag == "--cache-entries") {
      if (i + 1 >= args.size()) return usage();
      const auto entries = parse_number<std::size_t>(args[++i]);
      if (!entries) return usage();
      options.cache_entries = *entries;
    } else if (flag == "--backlog") {
      if (i + 1 >= args.size()) return usage();
      const auto backlog = parse_number<int>(args[++i]);
      if (!backlog || *backlog <= 0) return usage();
      options.backlog = *backlog;
    } else if (flag == "--trace-log") {
      if (i + 1 >= args.size()) return usage();
      options.trace_log = args[++i];
    } else if (flag == "--fault-spec") {
      if (i + 1 >= args.size()) return usage();
      options.fault_spec = args[++i];
    } else {
      return usage();
    }
  }
  try {
    server::Server server(options);
    if (stdio) {
      server.serve_stream(STDIN_FILENO, STDOUT_FILENO);
      return 0;
    }
    const std::uint16_t port = server.listen();
    std::printf("pipeopt-server listening on %s:%u\n", options.host.c_str(),
                port);
    std::fflush(stdout);  // scripts watch for this line to learn the port
    server::Server::install_signal_handlers(server);
    server.serve();
    std::fprintf(stderr, "pipeopt-server: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

/// Parses "H:P,H:P,..." into shard endpoints; nullopt on any malformed
/// entry (a bare port is malformed on purpose — routing to the wrong host
/// because a colon went missing should be loud).
std::optional<std::vector<router::ShardAddress>> parse_shard_list(
    const std::string& text) {
  std::vector<router::ShardAddress> shards;
  std::string token;
  for (std::size_t i = 0;; ++i) {
    if (i == text.size() || text[i] == ',') {
      const std::size_t colon = token.rfind(':');
      if (colon == std::string::npos || colon == 0) return std::nullopt;
      const auto port = parse_number<std::uint16_t>(token.substr(colon + 1));
      if (!port || *port == 0) return std::nullopt;
      shards.push_back(router::ShardAddress{token.substr(0, colon), *port});
      token.clear();
      if (i == text.size()) break;
    } else {
      token += text[i];
    }
  }
  if (shards.empty()) return std::nullopt;
  return shards;
}

/// `pipeopt route`: the sharded front tier (src/router/).
int run_route(const std::vector<std::string>& args) {
  // Dead shards and vanished clients must surface as write errors on the
  // relay/front sockets, never as a SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);
  router::RouterOptions options;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--help") {
      std::fputs(
          "usage: pipeopt route (--shards H:P,H:P,... | --spawn N)\n"
          "                     [--host H] [--port N] [--jobs N]\n"
          "                     [--cache-entries N] [--window N]\n"
          "                     [--health-interval-ms MS] [--backlog N]\n"
          "                     [--retries N] [--backoff-ms MS]\n"
          "                     [--breaker-threshold N]\n"
          "                     [--breaker-cooldown-ms MS]\n"
          "                     [--trace-log F] [--shard-trace-log P]\n"
          "                     [--fault-spec S]\n"
          "Sharded front tier over N pipeopt servers: speaks the same\n"
          "protocol, routes each request to a shard by its canonical\n"
          "solve key (sticky: byte-equivalent requests share a shard, so\n"
          "per-shard caches stay coherent), streams responses back\n"
          "byte-identically, and answers ping/health itself; stats merge\n"
          "the whole fleet's counters plus router-level ones.\n"
          "  --shards H:P,...  route across these running servers\n"
          "  --spawn N         fork N local servers on ephemeral ports and\n"
          "                    supervise them: health probes every\n"
          "                    interval, dead shards restart, in-flight\n"
          "                    requests fail over or return typed errors\n"
          "  --jobs N          --jobs for spawned shards\n"
          "  --cache-entries N --cache-entries for spawned shards\n"
          "  --window N        per-shard in-flight cap (default 64); when\n"
          "                    every shard is full, requests shed with\n"
          "                    {\"type\":\"error\",\"code\":\"overloaded\"}\n"
          "  --health-interval-ms MS\n"
          "                    probe period (default 250)\n"
          "  --backlog N       front-tier listen(2) queue (default 128)\n"
          "  --retries N       per-request failover budget: N retries after\n"
          "                    the first attempt (default 0 = one attempt\n"
          "                    per shard); retried attempts back off with\n"
          "                    deterministic jitter\n"
          "  --backoff-ms MS   base retry backoff (default 5; doubles per\n"
          "                    attempt, capped; 0 = no sleep)\n"
          "  --breaker-threshold N\n"
          "                    consecutive relay failures that open a\n"
          "                    shard's circuit breaker (default 3)\n"
          "  --breaker-cooldown-ms MS\n"
          "                    how long an open breaker rests before a\n"
          "                    half-open health probe may close it again\n"
          "                    (default 0 = probe at the next interval)\n"
          "  --trace-log F     append one JSONL span line per forwarded\n"
          "                    request (relay time + shared trace id; ids\n"
          "                    are generated and spliced into forwarded\n"
          "                    lines that carry none)\n"
          "  --shard-trace-log P\n"
          "                    spawn mode: shard i traces to P.<i>.jsonl;\n"
          "                    its lines share the router's trace ids\n"
          "  --fault-spec S    deterministic fault injection on front and\n"
          "                    relay sockets, S = seed:prob:kind[,kind...]\n"
          "                    with kinds refuse, close, truncate, partial,\n"
          "                    delay, all (chaos testing; health probes are\n"
          "                    exempt; see docs/RESILIENCE.md)\n"
          "SIGINT/SIGTERM drain in-flight requests, then the shards.\n",
          stdout);
      return 0;
    }
    if (flag == "--shards") {
      if (i + 1 >= args.size()) return usage();
      const auto shards = parse_shard_list(args[++i]);
      if (!shards) return usage();
      options.shards = *shards;
    } else if (flag == "--spawn") {
      if (i + 1 >= args.size()) return usage();
      const auto spawn = parse_number<std::size_t>(args[++i]);
      if (!spawn || *spawn == 0) return usage();
      options.spawn = *spawn;
    } else if (flag == "--host") {
      if (i + 1 >= args.size()) return usage();
      options.host = args[++i];
    } else if (flag == "--port") {
      if (i + 1 >= args.size()) return usage();
      const auto port = parse_number<std::uint16_t>(args[++i]);
      if (!port) return usage();
      options.port = *port;
    } else if (flag == "--jobs") {
      if (i + 1 >= args.size()) return usage();
      const auto jobs = parse_number<std::size_t>(args[++i]);
      if (!jobs) return usage();
      options.spawn_jobs = *jobs;
    } else if (flag == "--cache-entries") {
      if (i + 1 >= args.size()) return usage();
      const auto entries = parse_number<std::size_t>(args[++i]);
      if (!entries) return usage();
      options.spawn_cache_entries = *entries;
    } else if (flag == "--window") {
      if (i + 1 >= args.size()) return usage();
      const auto window = parse_number<std::size_t>(args[++i]);
      if (!window || *window == 0) return usage();
      options.window = *window;
    } else if (flag == "--health-interval-ms") {
      if (i + 1 >= args.size()) return usage();
      const auto interval = parse_number<std::uint64_t>(args[++i]);
      if (!interval || *interval == 0) return usage();
      options.health_interval = std::chrono::milliseconds(*interval);
    } else if (flag == "--backlog") {
      if (i + 1 >= args.size()) return usage();
      const auto backlog = parse_number<int>(args[++i]);
      if (!backlog || *backlog <= 0) return usage();
      options.backlog = *backlog;
    } else if (flag == "--retries") {
      if (i + 1 >= args.size()) return usage();
      const auto retries = parse_number<std::size_t>(args[++i]);
      if (!retries) return usage();
      options.retries = *retries;
    } else if (flag == "--backoff-ms") {
      if (i + 1 >= args.size()) return usage();
      const auto backoff = parse_number<std::uint64_t>(args[++i]);
      if (!backoff) return usage();
      options.retry_backoff = std::chrono::milliseconds(*backoff);
    } else if (flag == "--breaker-threshold") {
      if (i + 1 >= args.size()) return usage();
      const auto threshold = parse_number<std::size_t>(args[++i]);
      if (!threshold || *threshold == 0) return usage();
      options.breaker_threshold = *threshold;
    } else if (flag == "--breaker-cooldown-ms") {
      if (i + 1 >= args.size()) return usage();
      const auto cooldown = parse_number<std::uint64_t>(args[++i]);
      if (!cooldown) return usage();
      options.breaker_cooldown = std::chrono::milliseconds(*cooldown);
    } else if (flag == "--trace-log") {
      if (i + 1 >= args.size()) return usage();
      options.trace_log = args[++i];
    } else if (flag == "--shard-trace-log") {
      if (i + 1 >= args.size()) return usage();
      options.spawn_trace_log = args[++i];
    } else if (flag == "--fault-spec") {
      if (i + 1 >= args.size()) return usage();
      options.fault_spec = args[++i];
    } else {
      return usage();
    }
  }
  if (options.shards.empty() == (options.spawn == 0)) return usage();
  // Shard span logs ride the spawn arguments; endpoint-mode shards are
  // configured by whoever started them.
  if (!options.spawn_trace_log.empty() && options.spawn == 0) return usage();
  const std::string host = options.host;
  try {
    router::Router router(std::move(options));
    const std::uint16_t port = router.listen();
    const std::vector<router::ShardInfo> shards = router.shard_infos();
    for (std::size_t i = 0; i < shards.size(); ++i) {
      if (shards[i].pid > 0) {
        std::printf("pipeopt-router: shard %zu at %s:%u pid %d\n", i,
                    shards[i].host.c_str(), shards[i].port,
                    static_cast<int>(shards[i].pid));
      } else {
        std::printf("pipeopt-router: shard %zu at %s:%u\n", i,
                    shards[i].host.c_str(), shards[i].port);
      }
    }
    std::printf("pipeopt-router listening on %s:%u over %zu shards\n",
                host.c_str(), port, shards.size());
    std::fflush(stdout);  // scripts watch for this line to learn the port
    router::Router::install_signal_handlers(router);
    router.serve();
    std::fprintf(stderr, "pipeopt-router: drained, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}

/// Connects to host:port; -1 on failure with errno describing why (the
/// close must not clobber it — "connection refused" vs "network
/// unreachable" is the whole point of the exit-3 message).
int connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    bool connected = false;
    if (errno == EINTR) {
      // An interrupted connect(2) keeps going in the background; wait for
      // writability and read the real outcome from SO_ERROR instead of
      // reporting a spurious failure.
      pollfd waiter{};
      waiter.fd = fd;
      waiter.events = POLLOUT;
      while (::poll(&waiter, 1, -1) < 0 && errno == EINTR) {
      }
      int error = 0;
      socklen_t error_len = sizeof error;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) == 0 &&
          error == 0) {
        connected = true;
      } else if (error != 0) {
        errno = error;
      }
    }
    if (!connected) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      return -1;
    }
  }
  return fd;
}

/// Maps one server response line onto the CLI exit-code contract: error
/// lines (or unparseable ones) are 2, results map like local solves,
/// pareto summaries map like the local `pareto` command (1 when empty or
/// cut short), and pong/stats lines are 0.
int response_exit_code(const std::string& line) {
  try {
    const io::JsonFields fields = io::parse_flat_json(line);
    std::string type = "result";
    for (const auto& [key, value] : fields) {
      if (key == "type") type = value;
    }
    if (type == "error") return 2;
    if (type == "pareto") {
      const io::WireParetoSummary summary = io::parse_pareto_summary(fields);
      return summary.complete && summary.points > 0 ? 0 : 1;
    }
    if (type != "result") return 0;
    return exit_code(io::parse_result(fields).result);
  } catch (const std::exception&) {
    return 2;
  }
}

/// The "type" field of one JSONL line ("solve", the wire default, when
/// absent or unparseable) — how the client knows a request streams a
/// multi-line pareto response.
std::string line_type(const std::string& line) {
  std::string type = "solve";
  try {
    for (const auto& [key, value] : io::parse_flat_json(line)) {
      if (key == "type") type = value;
    }
  } catch (const std::exception&) {
  }
  return type;
}

/// `pipeopt client`: scripted load generation against a running server.
int run_client(const std::vector<std::string>& args) {
  // Before any socket work: a server that dies mid-write must surface as
  // a write error (exit 3 or a budgeted retry), not a SIGPIPE kill.
  std::signal(SIGPIPE, SIG_IGN);
  std::string host = "127.0.0.1";
  std::optional<std::uint16_t> port;
  std::string manifest, raw_file;
  bool pareto = false;
  std::uint64_t poll_ms = 0;
  std::string poll_out;
  std::size_t retries = 0;
  std::uint64_t backoff_ms = 50;
  std::vector<std::string> solve_args;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--host") {
      if (i + 1 >= args.size()) return usage();
      host = args[++i];
    } else if (flag == "--port") {
      if (i + 1 >= args.size()) return usage();
      port = parse_number<std::uint16_t>(args[++i]);
      if (!port) return usage();
    } else if (flag == "--manifest") {
      if (i + 1 >= args.size()) return usage();
      manifest = args[++i];
    } else if (flag == "--pareto") {
      pareto = true;  // manifest lines become {"type":"pareto"} sweeps
    } else if (flag == "--poll-stats") {
      if (i + 1 >= args.size()) return usage();
      const auto interval = parse_number<std::uint64_t>(args[++i]);
      if (!interval || *interval == 0) return usage();
      poll_ms = *interval;
    } else if (flag == "--poll-out") {
      if (i + 1 >= args.size()) return usage();
      poll_out = args[++i];
    } else if (flag == "--retries") {
      if (i + 1 >= args.size()) return usage();
      const auto budget = parse_number<std::size_t>(args[++i]);
      if (!budget) return usage();
      retries = *budget;
    } else if (flag == "--backoff-ms") {
      if (i + 1 >= args.size()) return usage();
      const auto backoff = parse_number<std::uint64_t>(args[++i]);
      if (!backoff) return usage();
      backoff_ms = *backoff;
    } else if (!manifest.empty()) {
      solve_args.push_back(flag);  // shared solve flags for --manifest mode
    } else if (raw_file.empty()) {
      raw_file = flag;  // positional: raw JSONL request lines ("-" = stdin)
    } else {
      return usage();
    }
  }
  if (!port || (manifest.empty() && raw_file.empty())) return usage();
  if (pareto && manifest.empty()) return usage();
  // The sampler's lines must not interleave with the echoed responses, so
  // polling requires an explicit output file.
  if ((poll_ms > 0) != !poll_out.empty()) return usage();

  // Build the request lines before connecting: a usage error should not
  // show up server-side as half a session.
  std::vector<std::string> lines;
  if (!manifest.empty()) {
    const std::vector<core::Problem> problems = io::load_batch(manifest);
    if (problems.empty()) {
      std::fprintf(stderr, "error: empty manifest\n");
      return 2;
    }
    if (pareto) {
      const auto request = parse_sweep_args(problems.front(), solve_args);
      if (!request) return usage();
      for (const core::Problem& problem : problems) {
        lines.push_back(io::format_pareto_request(problem, *request));
      }
    } else {
      const auto request = parse_solve_args(problems.front(), solve_args);
      if (!request) return usage();
      for (const core::Problem& problem : problems) {
        lines.push_back(io::format_solve_request(problem, *request));
      }
    }
  } else {
    std::ifstream file;
    if (raw_file != "-") {
      file.open(raw_file);
      if (!file) {
        std::fprintf(stderr, "error: cannot read '%s'\n", raw_file.c_str());
        return 2;
      }
    }
    std::istream& in = raw_file == "-" ? std::cin : file;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) lines.push_back(line);
    }
  }

  // Retry machinery (util/retry.hpp): `--retries N` grants N extra
  // attempts per failure point — the initial connect, and each request
  // line — with capped exponential backoff between attempts. The
  // per-code tally feeds the exit summary.
  util::RetryPolicy policy;
  policy.retries = retries;
  policy.backoff_ms = backoff_ms;
  std::map<std::string, std::uint64_t> retry_counts;
  std::uint64_t retries_used = 0;
  const auto print_retry_summary = [&] {
    if (retries == 0) return;  // --retries off: byte-identical stderr
    std::string breakdown;
    for (const auto& [code, count] : retry_counts) {
      breakdown += ' ' + code + '=' + std::to_string(count);
    }
    std::fprintf(stderr, "pipeopt-client: retries used=%llu budget=%zu%s\n",
                 static_cast<unsigned long long>(retries_used), retries,
                 breakdown.c_str());
  };

  int fd = -1;
  for (std::size_t attempt = 0;; ++attempt) {
    fd = connect_to(host, *port);
    if (fd >= 0) break;
    if (attempt >= retries) {
      std::fprintf(
          stderr,
          "error: cannot connect to %s:%u: %s\n"
          "       is a pipeopt server (or router) listening there?\n",
          host.c_str(), *port, std::strerror(errno));
      print_retry_summary();
      return 3;
    }
    ++retries_used;
    ++retry_counts["connect"];
    const std::uint64_t delay = policy.delay_ms(attempt);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }

  // Stats/metrics sampler: its own connection, its own output file, so
  // the periodic `{"type":"stats"}` / `{"type":"metrics"}` probes neither
  // perturb the load connection's lock-step ordering nor interleave with
  // the echoed responses. Each sampled line gains a leading "t_ms" field
  // (milliseconds since the load run started) for time-series plotting.
  std::atomic<bool> poll_stop{false};
  std::thread poller;
  if (poll_ms > 0) {
    poller = std::thread([&poll_stop, poll_ms, poll_out, host,
                          port = *port] {
      std::ofstream out(poll_out, std::ios::trunc);
      const util::Stopwatch elapsed;
      while (!poll_stop.load(std::memory_order_relaxed)) {
        const int poll_fd = connect_to(host, port);
        if (poll_fd >= 0) {
          util::FdLineReader poll_reader(poll_fd);
          for (const char* probe :
               {"{\"type\":\"stats\"}", "{\"type\":\"metrics\"}"}) {
            std::string sample;
            if (!util::write_line(poll_fd, probe) ||
                !poll_reader.next_line(sample)) {
              break;
            }
            const auto t_ms = static_cast<std::uint64_t>(
                elapsed.elapsed_seconds() * 1000.0);
            sample.insert(1, "\"t_ms\":\"" + std::to_string(t_ms) + "\",");
            out << sample << '\n';
          }
          ::close(poll_fd);
          out.flush();
        }
        // Sleep in short steps so the post-run join is snappy.
        for (std::uint64_t waited = 0;
             waited < poll_ms && !poll_stop.load(std::memory_order_relaxed);
             waited += 20) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<std::uint64_t>(20, poll_ms - waited)));
        }
      }
    });
  }
  const auto join_poller = [&poll_stop, &poller] {
    poll_stop.store(true, std::memory_order_relaxed);
    if (poller.joinable()) poller.join();
  };

  // Lock-step request/response keeps the output aligned with the input
  // order (the server answers each connection's lines in order anyway).
  // Each line's responses are buffered and echoed only once the attempt
  // is accepted, so a retried request never leaks a half-streamed or
  // torn answer to stdout.
  int worst = 0;
  auto reader = std::make_unique<util::FdLineReader>(fd);
  const auto drop_connection = [&] {
    if (fd >= 0) ::close(fd);
    fd = -1;
    reader.reset();
  };
  const auto echo = [&](const std::vector<std::string>& responses) {
    for (const std::string& response : responses) {
      std::printf("%s\n", response.c_str());
      worst = std::max(worst, response_exit_code(response));
    }
  };
  const auto fail = [&](const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    drop_connection();
    join_poller();
    print_retry_summary();
    return 3;
  };

  for (const std::string& line : lines) {
    // A pareto request streams result lines until its terminal summary (or
    // an error); everything else answers with exactly one line.
    const bool streamed = line_type(line) == "pareto";
    // Budgeted wall-clock fields make a retried execution observable
    // (the rerun races a different remaining budget), so only requests
    // without them may be replayed after work possibly started.
    bool idempotent = true;
    try {
      for (const auto& [key, value] : io::parse_flat_json(line)) {
        if (key == "deadline_ms" || key == "time_budget_s") idempotent = false;
      }
    } catch (const std::exception&) {
    }
    std::size_t attempt = 0;
    // Spends one retry from the line's budget (tallying it under `code`)
    // and sleeps the backoff; false = budget exhausted, caller gives up.
    const auto budget_retry = [&](const std::string& code) -> bool {
      if (attempt >= retries) return false;
      ++attempt;
      ++retries_used;
      ++retry_counts[code];
      const std::uint64_t delay = policy.delay_ms(attempt - 1);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      return true;
    };

    bool delivered = false;
    while (!delivered) {
      if (fd < 0) {
        fd = connect_to(host, *port);
        if (fd < 0) {
          const int saved = errno;
          if (budget_retry("connect")) continue;
          return fail("cannot connect to " + host + ":" +
                      std::to_string(*port) + ": " + std::strerror(saved));
        }
        reader = std::make_unique<util::FdLineReader>(fd);
      }
      if (!util::write_line(fd, line)) {
        drop_connection();
        if (budget_retry("transport")) continue;
        return fail("connection lost mid-request");
      }
      std::vector<std::string> responses;
      bool complete = false;
      bool torn = false;
      for (;;) {
        std::string response;
        if (!reader->next_line(response)) break;
        if (!reader->last_terminated()) {
          torn = true;  // a truncated frame is transport loss, not an answer
          break;
        }
        responses.push_back(std::move(response));
        if (!streamed || line_type(responses.back()) != "result") {
          complete = true;
          break;
        }
      }
      if (!complete) {
        drop_connection();
        // Loss before the first response byte cannot have echoed anything
        // and retries unconditionally; loss mid-response means the server
        // may have done (and streamed) work, so only idempotent requests
        // replay.
        const bool pre_response = responses.empty() && !torn;
        if ((pre_response || idempotent) &&
            budget_retry(pre_response ? "transport" : "mid-response")) {
          continue;
        }
        echo(responses);
        return fail("connection closed before a response");
      }
      // A typed retryable error (docs/PROTOCOL.md retryability table) is
      // retried on the still-live connection — but only as the first
      // response line; once results streamed, the work happened.
      if (responses.size() == 1) {
        std::string type = "result", code;
        try {
          for (const auto& [key, value] :
               io::parse_flat_json(responses.front())) {
            if (key == "type") type = value;
            if (key == "code") code = value;
          }
        } catch (const std::exception&) {
        }
        if (type == "error") {
          const util::Retryability retryable = util::classify_error_code(code);
          if ((retryable == util::Retryability::Always ||
               (retryable == util::Retryability::IfIdempotent && idempotent)) &&
              budget_retry(code)) {
            continue;
          }
        }
      }
      echo(responses);
      delivered = true;
    }
  }
  drop_connection();
  join_poller();
  print_retry_summary();
  return worst;
}

/// First value for `key` in `fields`, or "" when absent.
std::string field_value(const io::JsonFields& fields, const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return {};
}

/// Numeric field as double; 0.0 when absent or malformed (display-only).
double field_number(const io::JsonFields& fields, const std::string& key) {
  const std::string value = field_value(fields, key);
  return value.empty() ? 0.0 : std::strtod(value.c_str(), nullptr);
}

/// A µs-valued field rendered as milliseconds with 2 decimals.
std::string field_ms(const io::JsonFields& fields, const std::string& key) {
  const std::string value = field_value(fields, key);
  if (value.empty()) return "-";
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.2f",
                std::strtod(value.c_str(), nullptr) / 1000.0);
  return buffer;
}

/// `pipeopt top`: a refreshing fleet view polled from a running server or
/// router — stats counters, per-shard liveness (router), and the
/// per-solver latency table with the fleet-merged p50/p90/p99 quantiles
/// that `{"type":"metrics"}` derives from its histogram buckets.
int run_top(const std::vector<std::string>& args) {
  std::string host = "127.0.0.1";
  std::optional<std::uint16_t> port;
  std::uint64_t interval_ms = 1000;
  std::uint64_t iterations = 0;  // 0 = until interrupted
  bool clear = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--help") {
      std::fputs(
          "usage: pipeopt top [--host H] --port N [--interval-ms MS]\n"
          "                   [--iterations N] [--no-clear]\n"
          "Live fleet view against a pipeopt server or router: polls\n"
          "{\"type\":\"stats\"} and {\"type\":\"metrics\"} every interval and\n"
          "renders the fleet counters, per-shard liveness (router) and the\n"
          "per-solver latency quantile table.\n"
          "  --interval-ms MS  poll period (default 1000)\n"
          "  --iterations N    render N frames then exit (default: forever)\n"
          "  --no-clear        append frames instead of redrawing (logs)\n",
          stdout);
      return 0;
    }
    if (flag == "--host") {
      if (i + 1 >= args.size()) return usage();
      host = args[++i];
    } else if (flag == "--port") {
      if (i + 1 >= args.size()) return usage();
      port = parse_number<std::uint16_t>(args[++i]);
      if (!port) return usage();
    } else if (flag == "--interval-ms") {
      if (i + 1 >= args.size()) return usage();
      const auto interval = parse_number<std::uint64_t>(args[++i]);
      if (!interval || *interval == 0) return usage();
      interval_ms = *interval;
    } else if (flag == "--iterations") {
      if (i + 1 >= args.size()) return usage();
      const auto n = parse_number<std::uint64_t>(args[++i]);
      if (!n) return usage();
      iterations = *n;
    } else if (flag == "--no-clear") {
      clear = false;
    } else {
      return usage();
    }
  }
  if (!port) return usage();
  std::signal(SIGPIPE, SIG_IGN);

  // Redraw only on an interactive screen; piped output gets appended
  // frames regardless of --no-clear (ANSI codes in a log help nobody).
  const bool redraw = clear && ::isatty(STDOUT_FILENO) == 1;
  // Poll round-trip times through the streaming Summary window — the
  // util::stats quantile path the metrics histograms share.
  util::Summary rtt(32);
  for (std::uint64_t tick = 0; iterations == 0 || tick < iterations; ++tick) {
    const util::Stopwatch poll_watch;
    io::JsonFields stats, metrics;
    {
      const int fd = connect_to(host, *port);
      if (fd < 0) {
        std::fprintf(stderr,
                     "error: cannot connect to %s:%u: %s\n"
                     "       is a pipeopt server (or router) listening there?\n",
                     host.c_str(), *port, std::strerror(errno));
        return 3;
      }
      util::FdLineReader reader(fd);
      bool ok = true;
      for (auto* slot : {&stats, &metrics}) {
        const char* probe = slot == &stats ? "{\"type\":\"stats\"}"
                                           : "{\"type\":\"metrics\"}";
        std::string response;
        if (!util::write_line(fd, probe) || !reader.next_line(response)) {
          ok = false;
          break;
        }
        try {
          *slot = io::parse_flat_json(response);
        } catch (const io::ParseError&) {
          ok = false;
        }
      }
      ::close(fd);
      if (!ok) {
        std::fprintf(stderr, "error: connection lost while polling\n");
        return 3;
      }
    }
    rtt.add(poll_watch.elapsed_seconds() * 1000.0);

    std::string frame;
    const auto line = [&frame](const std::string& text) {
      frame += text;
      frame += '\n';
    };
    {
      char head[160];
      std::snprintf(head, sizeof head,
                    "pipeopt top - %s:%u  tick %llu  poll p50 %.1f ms",
                    host.c_str(), *port, static_cast<unsigned long long>(tick),
                    rtt.quantile(0.5));
      line(head);
    }
    // Fleet counters: the router-level fields exist only through a router;
    // a direct server shows its own stats line instead.
    const std::string shards = field_value(stats, "shards");
    std::string fleet = "requests " + field_value(stats, "requests") +
                        "  solves " + field_value(stats, "solves") +
                        "  errors " + field_value(stats, "errors");
    if (!shards.empty()) {
      fleet += "  routed " + field_value(stats, "routed") + "  shed " +
               field_value(stats, "shed") + "  shards " +
               field_value(stats, "shards_up") + "/" + shards;
    } else {
      fleet += "  jobs " + field_value(stats, "jobs") + "  pending " +
               field_value(stats, "pending");
    }
    line(fleet);
    if (field_number(metrics, "request.n") > 0) {
      line("request latency ms: p50 " + field_ms(metrics, "request.p50_us") +
           "  p90 " + field_ms(metrics, "request.p90_us") + "  p99 " +
           field_ms(metrics, "request.p99_us"));
    }
    if (field_number(metrics, "phase.relay.n") > 0) {
      line("relay latency ms:   p50 " +
           field_ms(metrics, "phase.relay.p50_us") + "  p90 " +
           field_ms(metrics, "phase.relay.p90_us") + "  p99 " +
           field_ms(metrics, "phase.relay.p99_us"));
    }
    if (!shards.empty()) {
      util::Table table({"shard", "up", "in_flight"});
      for (std::size_t i = 0;; ++i) {
        const std::string prefix = "shard." + std::to_string(i) + ".";
        const std::string up = field_value(metrics, prefix + "up");
        if (up.empty()) break;
        table.add_row({std::to_string(i), up == "1" ? "up" : "DOWN",
                       field_value(metrics, prefix + "in_flight")});
      }
      frame += table.render();
    }
    // Per-solver rows, discovered from the merged metric names: one
    // `solver.<name>.latency.*` histogram group per solver seen fleetwide.
    util::Table table(
        {"solver", "solves", "evals", "mean ms", "p50", "p90", "p99"});
    bool any_solver = false;
    for (const auto& [key, value] : metrics) {
      constexpr const char kPrefix[] = "solver.";
      constexpr const char kSuffix[] = ".latency.n";
      if (key.rfind(kPrefix, 0) != 0 || key.size() <= sizeof kPrefix - 1) {
        continue;
      }
      if (key.size() < sizeof kSuffix ||
          key.compare(key.size() - (sizeof kSuffix - 1), sizeof kSuffix - 1,
                      kSuffix) != 0) {
        continue;
      }
      const std::string name = key.substr(
          sizeof kPrefix - 1, key.size() - sizeof kPrefix - sizeof kSuffix + 2);
      const std::string histogram = std::string(kPrefix) + name + ".latency";
      const double n = field_number(metrics, histogram + ".n");
      if (n <= 0) continue;
      any_solver = true;
      char mean[32];
      std::snprintf(mean, sizeof mean, "%.2f",
                    field_number(metrics, histogram + ".sum_us") / n / 1000.0);
      const std::string evals = field_value(metrics, kPrefix + name + ".evals");
      table.add_row({name, value, evals.empty() ? "0" : evals, mean,
                     field_ms(metrics, histogram + ".p50_us"),
                     field_ms(metrics, histogram + ".p90_us"),
                     field_ms(metrics, histogram + ".p99_us")});
    }
    if (any_solver) {
      frame += table.render();
    } else {
      line("(no solves recorded yet)");
    }

    if (redraw) std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(frame.c_str(), stdout);
    if (!redraw) std::fputs("\n", stdout);
    std::fflush(stdout);
    if (iterations == 0 || tick + 1 < iterations) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

int run_list_solvers(const core::Problem& problem) {
  const api::SolverRegistry& registry = api::default_registry();
  util::Table table(
      {"solver", "tier", "family", "optimal", "applicable*", "summary"});
  api::SolveRequest probe;  // default request: interval period, no bounds
  for (const api::Solver* solver : registry.solvers()) {
    const api::SolverInfo& info = solver->info();
    // Probe applicability in the solver's own family so one-to-one solvers
    // are not all reported inapplicable under the default interval kind.
    probe.kind = info.family.value_or(api::MappingKind::Interval);
    table.add_row({info.name, to_string(info.tier),
                   info.family ? to_string(*info.family) : "any",
                   info.exact ? "yes" : "no",
                   solver->applicable(problem, probe) ? "yes" : "no",
                   info.summary});
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("* for this instance, per family, period objective, no bounds");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // serve/client run without a problem file and come first on the line.
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return run_serve(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (argc >= 2 && std::strcmp(argv[1], "route") == 0) {
    return run_route(std::vector<std::string>(argv + 2, argv + argc));
  }
  if (argc >= 2 && std::strcmp(argv[1], "client") == 0) {
    try {
      return run_client(std::vector<std::string>(argv + 2, argv + argc));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (argc >= 2 && std::strcmp(argv[1], "top") == 0) {
    try {
      return run_top(std::vector<std::string>(argv + 2, argv + argc));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  }
  if (argc < 3) return usage();
  const std::string command = argv[2];
  std::vector<std::string> args(argv + 3, argv + argc);

  // solve-batch reads a JSONL manifest, not a single instance file.
  if (command == "solve-batch") {
    try {
      return run_solve_batch(argv[1], args);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error reading %s: %s\n", argv[1], e.what());
      return 2;
    }
  }

  core::Problem problem = [&] {
    try {
      return io::load_problem(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error reading %s: %s\n", argv[1], e.what());
      std::exit(2);
    }
  }();

  try {
    if (command == "show") {
      std::fputs(io::format_problem(problem).c_str(), stdout);
      std::printf("# platform class: %s, N=%zu stages on p=%zu processors\n",
                  to_string(problem.platform().classify()),
                  problem.total_stages(), problem.platform().processor_count());
      return 0;
    }
    if (command == "solve") {
      const auto request = parse_solve_args(problem, args);
      if (!request) return usage();
      return run_solve(problem, *request);
    }
    if (command == "pareto") {
      return run_pareto(problem, args);
    }
    if (command == "list-solvers") {
      return run_list_solvers(problem);
    }
    if (command == "min-period") {
      api::SolveRequest request;
      request.objective = api::Objective::Period;
      if (!args.empty() && args[0] == "--exact") {
        request.solver = "exact-enumeration";
      }
      return run_solve(problem, request);
    }
    if (command == "min-latency") {
      api::SolveRequest request;
      request.objective = api::Objective::Latency;
      return run_solve(problem, request);
    }
    if (command == "min-energy") {
      if (args.empty()) return usage();
      api::SolveRequest request;
      request.objective = api::Objective::Energy;
      request.constraints.period = parse_bounds(problem, args[0]);
      if (!request.constraints.period) return usage();
      return run_solve(problem, request);
    }
    if (command == "simulate") {
      if (args.empty()) return usage();
      api::SolveRequest request;  // defaults: period, interval, auto
      const api::SolveResult solution = api::solve(problem, request);
      if (!solution.solved()) {
        std::puts("infeasible");
        return exit_code(solution);
      }
      const auto datasets = parse_number<std::size_t>(args[0]);
      if (!datasets) return usage();
      sim::SimConfig config;
      config.datasets = *datasets;
      const auto result = sim::simulate(problem, *solution.mapping, config);
      // Only an exact solve proves optimality; a heuristic fallback (e.g.
      // past the node budget) yields a feasible, possibly suboptimal mapping.
      std::printf("%s mapping (%s): %s\n",
                  solution.status == api::SolveStatus::Optimal
                      ? "period-optimal"
                      : "period-feasible",
                  solution.solver.c_str(),
                  solution.mapping->to_string(problem).c_str());
      util::Table table({"application", "steady period", "first latency",
                         "max latency"});
      for (std::size_t a = 0; a < result.apps.size(); ++a) {
        table.add_row({problem.application(a).name(),
                       util::format_double(result.apps[a].steady_period, 6),
                       util::format_double(result.apps[a].first_latency, 6),
                       util::format_double(result.apps[a].max_latency, 6)});
      }
      std::fputs(table.render().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
