/// \file pipeopt_cli.cpp
/// Command-line front end: solve a problem file with any of the library's
/// optimizers.
///
///   pipeopt <problem-file> <command> [args]
///
/// commands:
///   show                         parse + echo the instance
///   min-period [--exact]         interval period (Thm 3 / exact fallback)
///   min-latency                  interval latency (Thm 12)
///   min-energy T1,T2,...         min energy under per-app period bounds
///                                (Thm 19/21 where polynomial, else exact)
///   simulate D                   run the period-optimal mapping for D data
///                                sets and report measured period/latency
///
/// Exit code 0 on success, 1 on infeasible, 2 on usage/parse errors.

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "algorithms/energy_interval_dp.hpp"
#include "algorithms/interval_period_multi.hpp"
#include "algorithms/latency_algorithms.hpp"
#include "core/evaluation.hpp"
#include "exact/exact_solvers.hpp"
#include "io/problem_io.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"

namespace {

using namespace pipeopt;

int usage() {
  std::fputs(
      "usage: pipeopt <problem-file> <command> [args]\n"
      "  show                       echo the parsed instance\n"
      "  min-period [--exact]       minimize max_a W_a*T_a (interval)\n"
      "  min-latency                minimize max_a W_a*L_a (interval)\n"
      "  min-energy T1,T2,...       minimize energy, per-app period bounds\n"
      "  simulate <datasets>        execute the period-optimal mapping\n",
      stderr);
  return 2;
}

void print_solution(const core::Problem& problem, const char* objective,
                    double value, const core::Mapping& mapping) {
  const auto metrics = core::evaluate(problem, mapping);
  std::printf("%s = %s\n", objective, util::format_double(value).c_str());
  std::printf("mapping: %s\n", mapping.to_string(problem).c_str());
  util::Table table({"application", "period", "latency"});
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    table.add_row({problem.application(a).name(),
                   util::format_double(metrics.per_app[a].period, 4),
                   util::format_double(metrics.per_app[a].latency, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("energy: %s\n", util::format_double(metrics.energy).c_str());
}

/// Period minimization: the polynomial DP where the paper allows it,
/// otherwise exhaustive search (with a size guard).
std::optional<algorithms::Solution> solve_min_period(
    const core::Problem& problem, bool force_exact) {
  if (!force_exact &&
      problem.platform().classify() == core::PlatformClass::FullyHomogeneous) {
    return algorithms::interval_min_period(problem);
  }
  const auto exact_result =
      exact::exact_min_period(problem, exact::MappingKind::Interval);
  if (!exact_result) return std::nullopt;
  return algorithms::Solution{exact_result->value, exact_result->mapping};
}

std::optional<algorithms::Solution> solve_min_energy(
    const core::Problem& problem, const core::Thresholds& bounds) {
  if (problem.platform().classify() == core::PlatformClass::FullyHomogeneous) {
    return algorithms::interval_min_energy_under_period(problem, bounds);
  }
  const auto exact_result = exact::exact_min_energy_under_period(
      problem, exact::MappingKind::Interval, bounds);
  if (!exact_result) return std::nullopt;
  return algorithms::Solution{exact_result->value, exact_result->mapping};
}

core::Thresholds parse_bounds(const core::Problem& problem, const char* text) {
  std::vector<double> bounds;
  std::string token;
  for (const char* c = text;; ++c) {
    if (*c == ',' || *c == '\0') {
      if (!token.empty()) bounds.push_back(std::stod(token));
      token.clear();
      if (*c == '\0') break;
    } else {
      token += *c;
    }
  }
  if (bounds.size() == 1) {
    bounds.assign(problem.application_count(), bounds.front());
  }
  return core::Thresholds::per_app(std::move(bounds));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  core::Problem problem = [&] {
    try {
      return io::load_problem(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error reading %s: %s\n", argv[1], e.what());
      std::exit(2);
    }
  }();
  const std::string command = argv[2];

  try {
    if (command == "show") {
      std::fputs(io::format_problem(problem).c_str(), stdout);
      std::printf("# platform class: %s, N=%zu stages on p=%zu processors\n",
                  to_string(problem.platform().classify()),
                  problem.total_stages(), problem.platform().processor_count());
      return 0;
    }
    if (command == "min-period") {
      const bool force_exact = argc > 3 && std::strcmp(argv[3], "--exact") == 0;
      const auto solution = solve_min_period(problem, force_exact);
      if (!solution) {
        std::puts("infeasible");
        return 1;
      }
      print_solution(problem, "min weighted period", solution->value,
                     solution->mapping);
      return 0;
    }
    if (command == "min-latency") {
      const auto solution = algorithms::interval_min_latency(problem);
      if (!solution) {
        std::puts("infeasible");
        return 1;
      }
      print_solution(problem, "min weighted latency", solution->value,
                     solution->mapping);
      return 0;
    }
    if (command == "min-energy") {
      if (argc < 4) return usage();
      const auto bounds = parse_bounds(problem, argv[3]);
      const auto solution = solve_min_energy(problem, bounds);
      if (!solution) {
        std::puts("infeasible under the given period bounds");
        return 1;
      }
      print_solution(problem, "min energy", solution->value, solution->mapping);
      return 0;
    }
    if (command == "simulate") {
      if (argc < 4) return usage();
      const auto solution = solve_min_period(problem, false);
      if (!solution) {
        std::puts("infeasible");
        return 1;
      }
      sim::SimConfig config;
      config.datasets = static_cast<std::size_t>(std::stoul(argv[3]));
      const auto result = sim::simulate(problem, solution->mapping, config);
      std::printf("period-optimal mapping: %s\n",
                  solution->mapping.to_string(problem).c_str());
      util::Table table({"application", "steady period", "first latency",
                         "max latency"});
      for (std::size_t a = 0; a < result.apps.size(); ++a) {
        table.add_row({problem.application(a).name(),
                       util::format_double(result.apps[a].steady_period, 6),
                       util::format_double(result.apps[a].first_latency, 6),
                       util::format_double(result.apps[a].max_latency, 6)});
      }
      std::fputs(table.render().c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
