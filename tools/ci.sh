#!/bin/sh
# CI entry point: the tier-1 verify line (see ROADMAP.md) with warnings
# promoted to errors, then the full ctest suite (unit + property tests and
# the CLI exit-code smoke test, including solve-batch and pareto), then an
# eval-perf smoke stage (bench_eval_hot_path --quick: SoA batch/delta
# evaluations bit-identity-gated against the scalar path, evals/sec and
# nodes/sec written to BENCH_eval.json), then a
# pipeopt-server smoke stage (live TCP server driven by the client
# subcommand, responses diffed bit-identical against solve-batch --out,
# plus one streamed Pareto sweep diffed against the CLI pareto --out
# file), then a solve-cache smoke stage (the same manifest replayed twice
# against a --cache-entries server: replays must be byte-identical,
# cache-on must match cache-off modulo wall_s, and cache_hits must be
# nonzero), then a pipeopt-router smoke stage (route --spawn fleet:
# byte-identity through the front tier, SIGKILL a shard under traffic and
# assert the supervisor restarts it, SIGTERM drains), then an
# observability smoke stage (a traced --spawn fleet: solve bytes
# diff-identical to the obs-off baseline, span logs parse and cover every
# phase, merged metrics carry fleet quantiles, pipeopt top renders, the
# client's --poll-stats sampler writes timestamped samples), then a
# chaos smoke stage (a --fault-spec seeded campaign against the front
# tier absorbed by client --retries: byte-identical to the clean
# baseline, replayable under the same seed, plus a SIGKILL breaker pass
# asserting the transition counters and breaker_state gauges), then a
# ThreadSanitizer pass over the threaded executor/plan/sweep/server/cache/
# router/obs/resilience subsystems plus the wire fuzz, then an ASan/UBSan
# pass over the fuzz suites and the MIP engine.
#
# The ctest suite runs staged by label (tier1, then the exact-backend
# crosscheck harness, then the fuzz slices), followed by a CLI-level
# backend cross-check: every exact backend forced via `solve --solver`
# must print the same optimum.
#
#   tools/ci.sh [build-dir]
#
# PIPEOPT_WERROR=ON applies -Wall -Wextra -Werror to every target,
# including the src/api/ facade, executor and server layers.
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S . -DPIPEOPT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Staged test run, cheapest signal first. The labels partition the suite
# (CMakeLists.txt discovers each slice with a disjoint gtest filter):
#   tier1      everything but the differential/fuzz slices — the verify line
#   crosscheck the exact-backend differential harness (includes the slow
#              200-instance random sweep, labeled crosscheck;slow)
#   fuzz       seeded property fuzz + wire-protocol robustness fuzz
ctest --test-dir "$BUILD_DIR" -L tier1 --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L crosscheck --output-on-failure -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" -L fuzz --output-on-failure -j "$(nproc)"

# Backend cross-check through the CLI: every exact backend this build
# carries, forced by name via `solve --solver`, must print the same optimum
# for one Table 1-shaped instance (an OR-tools build adds ortools-cpsat to
# the list; the comparison is on the printed shortest-round-trip value, so
# bit-exact backends must collide exactly).
CROSS_DIR=$(mktemp -d "${TMPDIR:-/tmp}/pipeopt_crosscheck.XXXXXX")
trap 'rm -rf "$CROSS_DIR"' EXIT
cat > "$CROSS_DIR/cell.txt" <<'PROB'
comm overlap
bandwidth 2
processor P1 static=0.5 speeds=3,6
processor P2 static=1 speeds=6,8
processor P3 static=0 speeds=1,6
app A weight=1 input=1 stages=3:3,2:2,1:0
app B weight=2 input=0 stages=4:1
PROB
BACKENDS="branch-and-bound exact-enumeration mip-branch-cut"
if "$BUILD_DIR/pipeopt" "$CROSS_DIR/cell.txt" list-solvers | grep -q ortools-cpsat; then
  BACKENDS="$BACKENDS ortools-cpsat"
fi
REFERENCE=""
for BACKEND in $BACKENDS; do
  VALUE=$("$BUILD_DIR/pipeopt" "$CROSS_DIR/cell.txt" solve --objective period \
      --solver "$BACKEND" | sed -n 's/^min period = //p')
  [ -n "$VALUE" ] || { echo "ci: $BACKEND produced no value" >&2; exit 1; }
  if [ -z "$REFERENCE" ]; then
    REFERENCE="$VALUE"
  elif [ "$VALUE" != "$REFERENCE" ]; then
    echo "ci: backend disagreement: $BACKEND=$VALUE, reference=$REFERENCE" >&2
    exit 1
  fi
done
rm -rf "$CROSS_DIR"
trap - EXIT
echo "ci: backend cross-check green ($BACKENDS agree on value=$REFERENCE)"

# Eval-perf smoke: the evaluation hot path in quick mode. The bench
# cross-checks every SoA batch/delta evaluation bit-identical against the
# scalar core::evaluate path (exact double equality) and exits nonzero on
# any divergence; the evals/sec and nodes/sec numbers land in
# BENCH_eval.json for trend tracking. The >= 3x delta speedup gate is
# enforced by full (non-quick) runs, where timings are stable.
"$BUILD_DIR/bench_eval_hot_path" --quick --json "$BUILD_DIR/BENCH_eval.json" || {
  echo "ci: eval hot-path bench failed (bit-identity or setup)" >&2; exit 1;
}
[ -s "$BUILD_DIR/BENCH_eval.json" ] || {
  echo "ci: bench_eval_hot_path did not write BENCH_eval.json" >&2; exit 1;
}
echo "ci: eval smoke green ($(cat "$BUILD_DIR/BENCH_eval.json"))"

# Server smoke: start pipeopt-server on an ephemeral port, drive it with
# the client subcommand over a small Table 1-shaped manifest for every
# objective, and require the wire results to be byte-identical to
# solve-batch --out (same wire format; wall time is the one honest field
# stripped before the diff). SIGTERM must drain and exit 0.
SMOKE_DIR=$(mktemp -d "${TMPDIR:-/tmp}/pipeopt_server_smoke.XXXXXX")
trap 'rm -rf "$SMOKE_DIR"' EXIT
BIN="$BUILD_DIR/pipeopt"

cat > "$SMOKE_DIR/hom.txt" <<'PROB'
comm overlap
bandwidth 1
processor P1 static=0 speeds=2
processor P2 static=0 speeds=2
processor P3 static=0 speeds=2
app A weight=1 input=1 stages=3:1,2:1
app B weight=2 input=0 stages=4:1
PROB
cat > "$SMOKE_DIR/het.txt" <<'PROB'
# comm-homogeneous, multi-modal (the paper's motivating shape)
comm no-overlap
alpha 3
bandwidth 2
processor P1 static=0.5 speeds=3,6
processor P2 static=1 speeds=6,8
processor P3 static=0 speeds=1,6
app A weight=1 input=1 stages=3:3,2:2,1:0
app B weight=1 input=0 stages=2:2,6:1,4:1,2:1
PROB
cat > "$SMOKE_DIR/batch.jsonl" <<PROB
{"path": "hom.txt"}
{"path": "het.txt"}
{"path": "hom.txt"}
PROB

"$BIN" serve --port 0 --jobs 2 > "$SMOKE_DIR/server.out" 2>"$SMOKE_DIR/server.err" &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/server.out")
  [ -n "$PORT" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$PORT" ] || { echo "ci: server never announced its port" >&2; exit 1; }

for OBJECTIVE in period latency energy; do
  EXTRA=""
  [ "$OBJECTIVE" = energy ] && EXTRA="--period-bounds 100"
  "$BIN" client --port "$PORT" --manifest "$SMOKE_DIR/batch.jsonl" \
      --objective "$OBJECTIVE" $EXTRA > "$SMOKE_DIR/wire.jsonl"
  "$BIN" "$SMOKE_DIR/batch.jsonl" solve-batch --objective "$OBJECTIVE" $EXTRA \
      --out "$SMOKE_DIR/local.jsonl" > /dev/null
  sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/wire.jsonl" > "$SMOKE_DIR/wire.cmp"
  sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/local.jsonl" > "$SMOKE_DIR/local.cmp"
  diff "$SMOKE_DIR/wire.cmp" "$SMOKE_DIR/local.cmp" || {
    echo "ci: server results diverged from solve-batch ($OBJECTIVE)" >&2; exit 1;
  }
done

# Pareto smoke: one sweep streamed over live TCP (client --pareto), then
# the same sweep through the in-process CLI (pareto --out). The wire
# format is identical by design, so after stripping the honest wall_s
# field the two captures must be byte-identical: front points, bounds,
# witness mappings, summary counters and all.
cat > "$SMOKE_DIR/pareto.jsonl" <<PROB
{"path": "het.txt"}
PROB
"$BIN" client --port "$PORT" --manifest "$SMOKE_DIR/pareto.jsonl" --pareto \
    --sweep-bounds 1,2,4,8 --refine 1 > "$SMOKE_DIR/pareto_wire.jsonl"
"$BIN" "$SMOKE_DIR/het.txt" pareto --sweep-bounds 1,2,4,8 --refine 1 \
    --out "$SMOKE_DIR/pareto_local.jsonl" > /dev/null
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/pareto_wire.jsonl" > "$SMOKE_DIR/pareto_wire.cmp"
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/pareto_local.jsonl" > "$SMOKE_DIR/pareto_local.cmp"
diff "$SMOKE_DIR/pareto_wire.cmp" "$SMOKE_DIR/pareto_local.cmp" || {
  echo "ci: streamed pareto front diverged from the CLI sweep" >&2; exit 1;
}

# Cache smoke: replay the same manifest twice against a --cache-entries
# server. The two replays must be byte-identical INCLUDING wall_s (hits
# return the stored result verbatim), the cache-enabled responses must
# equal the cache-disabled server's (modulo wall_s, the one honest field),
# and the stats line must show a nonzero cache_hits counter.
"$BIN" client --port "$PORT" --manifest "$SMOKE_DIR/batch.jsonl" \
    --objective period > "$SMOKE_DIR/off.jsonl"

"$BIN" serve --port 0 --jobs 2 --cache-entries 256 \
    > "$SMOKE_DIR/cache_server.out" 2>"$SMOKE_DIR/cache_server.err" &
CACHE_PID=$!
trap 'kill "$SERVER_PID" "$CACHE_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
CPORT=""
i=0
while [ $i -lt 100 ]; do
  CPORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/cache_server.out")
  [ -n "$CPORT" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$CPORT" ] || { echo "ci: cache server never announced its port" >&2; exit 1; }

"$BIN" client --port "$CPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
    --objective period > "$SMOKE_DIR/replay1.jsonl"
"$BIN" client --port "$CPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
    --objective period > "$SMOKE_DIR/replay2.jsonl"
diff "$SMOKE_DIR/replay1.jsonl" "$SMOKE_DIR/replay2.jsonl" || {
  echo "ci: cache replay was not byte-identical (wall_s included)" >&2; exit 1;
}
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/off.jsonl" > "$SMOKE_DIR/off.cmp"
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/replay1.jsonl" > "$SMOKE_DIR/replay1.cmp"
diff "$SMOKE_DIR/off.cmp" "$SMOKE_DIR/replay1.cmp" || {
  echo "ci: cache-enabled responses diverged from the cache-disabled server" >&2; exit 1;
}
printf '{"type":"stats"}\n' | "$BIN" client --port "$CPORT" - \
    > "$SMOKE_DIR/cache_stats.jsonl"
HITS=$(sed -n 's/.*"cache_hits":"\([0-9]*\)".*/\1/p' "$SMOKE_DIR/cache_stats.jsonl")
[ -n "$HITS" ] && [ "$HITS" -gt 0 ] || {
  echo "ci: expected a nonzero cache_hits counter, got '${HITS:-absent}'" >&2; exit 1;
}
kill -TERM "$CACHE_PID"
wait "$CACHE_PID" || { echo "ci: cache server did not drain cleanly on SIGTERM" >&2; exit 1; }

kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "ci: server did not drain cleanly on SIGTERM" >&2; exit 1; }
echo "ci: server smoke green (3 objectives + 1 pareto sweep bit-identical over TCP; cache replay byte-identical, cache_hits=$HITS)"

# Router smoke: a spawn-mode fleet (route --spawn forks two pipeopt-server
# children and supervises them). Byte-identity through the front tier for
# every objective and a streamed pareto sweep, then the recovery story:
# SIGKILL one shard, drive traffic through the failover path (every
# request must still be answered — the router retries admitted requests on
# the surviving shard), and poll the merged stats until the supervisor has
# respawned the child (restarts >= 1, shards_up back to 2). Post-recovery
# traffic must be byte-identical again. SIGTERM must drain and exit 0.
"$BIN" route --spawn 2 --jobs 2 --health-interval-ms 100 \
    > "$SMOKE_DIR/router.out" 2>"$SMOKE_DIR/router.err" &
ROUTER_PID=$!
trap 'kill "$SERVER_PID" "$CACHE_PID" "$ROUTER_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
RPORT=""
i=0
while [ $i -lt 100 ]; do
  RPORT=$(sed -n 's/.*router listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/router.out")
  [ -n "$RPORT" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$RPORT" ] || { echo "ci: router never announced its port" >&2; exit 1; }

for OBJECTIVE in period latency energy; do
  EXTRA=""
  [ "$OBJECTIVE" = energy ] && EXTRA="--period-bounds 100"
  "$BIN" client --port "$RPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
      --objective "$OBJECTIVE" $EXTRA > "$SMOKE_DIR/routed.jsonl"
  "$BIN" "$SMOKE_DIR/batch.jsonl" solve-batch --objective "$OBJECTIVE" $EXTRA \
      --out "$SMOKE_DIR/local.jsonl" > /dev/null
  sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/routed.jsonl" > "$SMOKE_DIR/routed.cmp"
  sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/local.jsonl" > "$SMOKE_DIR/local.cmp"
  diff "$SMOKE_DIR/routed.cmp" "$SMOKE_DIR/local.cmp" || {
    echo "ci: routed results diverged from solve-batch ($OBJECTIVE)" >&2; exit 1;
  }
done
"$BIN" client --port "$RPORT" --manifest "$SMOKE_DIR/pareto.jsonl" --pareto \
    --sweep-bounds 1,2,4,8 --refine 1 > "$SMOKE_DIR/routed_pareto.jsonl"
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/routed_pareto.jsonl" > "$SMOKE_DIR/routed_pareto.cmp"
diff "$SMOKE_DIR/routed_pareto.cmp" "$SMOKE_DIR/pareto_local.cmp" || {
  echo "ci: routed pareto front diverged from the CLI sweep" >&2; exit 1;
}

# SIGKILL-recovery: murder shard 0 (its pid is in the announce lines),
# immediately push traffic through the failover path, then wait for the
# supervisor to respawn it.
SHARD0_PID=$(sed -n 's/.*shard 0 at [^ ]* pid \([0-9]*\).*/\1/p' "$SMOKE_DIR/router.out")
[ -n "$SHARD0_PID" ] || { echo "ci: router never announced shard 0's pid" >&2; exit 1; }
kill -KILL "$SHARD0_PID"
"$BIN" client --port "$RPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
    --objective period > "$SMOKE_DIR/failover.jsonl" || {
  echo "ci: traffic through the failover path failed" >&2; exit 1;
}
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/failover.jsonl" > "$SMOKE_DIR/failover.cmp"
"$BIN" "$SMOKE_DIR/batch.jsonl" solve-batch --objective period \
    --out "$SMOKE_DIR/local.jsonl" > /dev/null
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/local.jsonl" > "$SMOKE_DIR/local.cmp"
diff "$SMOKE_DIR/failover.cmp" "$SMOKE_DIR/local.cmp" || {
  echo "ci: failover results diverged from solve-batch" >&2; exit 1;
}
RESTARTS=""
i=0
while [ $i -lt 100 ]; do
  printf '{"type":"stats"}\n' | "$BIN" client --port "$RPORT" - \
      > "$SMOKE_DIR/router_stats.jsonl" 2>/dev/null || true
  RESTARTS=$(sed -n 's/.*"restarts":"\([0-9]*\)".*/\1/p' "$SMOKE_DIR/router_stats.jsonl")
  UP=$(sed -n 's/.*"shards_up":"\([0-9]*\)".*/\1/p' "$SMOKE_DIR/router_stats.jsonl")
  [ "${RESTARTS:-0}" -ge 1 ] && [ "${UP:-0}" = 2 ] && break
  i=$((i + 1)); sleep 0.1
done
[ "${RESTARTS:-0}" -ge 1 ] && [ "${UP:-0}" = 2 ] || {
  echo "ci: shard was not respawned (restarts='${RESTARTS:-absent}', shards_up='${UP:-absent}')" >&2
  exit 1
}
# Post-recovery traffic is byte-identical again (the respawned shard
# serves its key range afresh).
"$BIN" client --port "$RPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
    --objective period > "$SMOKE_DIR/recovered.jsonl"
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/recovered.jsonl" > "$SMOKE_DIR/recovered.cmp"
diff "$SMOKE_DIR/recovered.cmp" "$SMOKE_DIR/local.cmp" || {
  echo "ci: post-recovery results diverged from solve-batch" >&2; exit 1;
}

kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID" || { echo "ci: router did not drain cleanly on SIGTERM" >&2; exit 1; }
grep -q "drained" "$SMOKE_DIR/router.err" || {
  echo "ci: router did not report a drained exit" >&2; exit 1;
}
echo "ci: router smoke green (3 objectives + 1 pareto bit-identical through the front tier; SIGKILL recovery restarts=$RESTARTS)"

# Observability smoke: the same spawn-mode fleet shape, now fully traced
# (--trace-log on the router, --shard-trace-log on the children). The
# contract under test: observability changes NOTHING on the wire — solve
# bytes diff-identical to the obs-off solve-batch baseline — while the
# side channels fill up: the router's span log and both shard span logs
# parse as flat JSONL, cover every phase (relay on the router; parse,
# queue_wait, bind, solve, format on the shards — cache off, so no
# cache_lookup), and share trace ids; {"type":"metrics"} through the
# router returns fleet-merged histograms with derived quantiles; pipeopt
# top renders one frame against the live fleet; and client --poll-stats
# writes timestamped stats+metrics samples alongside a load run.
"$BIN" route --spawn 2 --jobs 2 --health-interval-ms 100 \
    --trace-log "$SMOKE_DIR/router_trace.jsonl" \
    --shard-trace-log "$SMOKE_DIR/shard_trace" \
    > "$SMOKE_DIR/obs_router.out" 2>"$SMOKE_DIR/obs_router.err" &
OBS_PID=$!
trap 'kill "$SERVER_PID" "$CACHE_PID" "$ROUTER_PID" "$OBS_PID" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
OPORT=""
i=0
while [ $i -lt 100 ]; do
  OPORT=$(sed -n 's/.*router listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/obs_router.out")
  [ -n "$OPORT" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$OPORT" ] || { echo "ci: traced router never announced its port" >&2; exit 1; }

"$BIN" client --port "$OPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
    --objective period --poll-stats 50 --poll-out "$SMOKE_DIR/poll.jsonl" \
    > "$SMOKE_DIR/obs_routed.jsonl"
sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/obs_routed.jsonl" > "$SMOKE_DIR/obs_routed.cmp"
diff "$SMOKE_DIR/obs_routed.cmp" "$SMOKE_DIR/local.cmp" || {
  echo "ci: solve bytes changed with tracing enabled" >&2; exit 1;
}

# Fleet-merged metrics: summable histogram fields plus derived quantiles.
printf '{"type":"metrics"}\n' | "$BIN" client --port "$OPORT" - \
    > "$SMOKE_DIR/fleet_metrics.jsonl"
REQ_N=$(sed -n 's/.*"request\.n":"\([0-9]*\)".*/\1/p' "$SMOKE_DIR/fleet_metrics.jsonl")
[ -n "$REQ_N" ] && [ "$REQ_N" -gt 0 ] || {
  echo "ci: merged metrics missing a positive request.n (got '${REQ_N:-absent}')" >&2; exit 1;
}
grep -q '"request\.p50_us"' "$SMOKE_DIR/fleet_metrics.jsonl" &&
grep -q '"request\.p99_us"' "$SMOKE_DIR/fleet_metrics.jsonl" || {
  echo "ci: merged metrics missing derived quantile fields" >&2; exit 1;
}
grep -q '"shard\.0\.up":"1"' "$SMOKE_DIR/fleet_metrics.jsonl" &&
grep -q '"shard\.1\.up":"1"' "$SMOKE_DIR/fleet_metrics.jsonl" || {
  echo "ci: merged metrics missing per-shard liveness fields" >&2; exit 1;
}

# The top view renders one frame against the live fleet.
"$BIN" top --port "$OPORT" --iterations 1 --no-clear > "$SMOKE_DIR/top.out" || {
  echo "ci: pipeopt top failed against the live fleet" >&2; exit 1;
}
grep -q "pipeopt top" "$SMOKE_DIR/top.out" &&
grep -q "shards 2/2" "$SMOKE_DIR/top.out" || {
  echo "ci: pipeopt top did not render the fleet view" >&2; exit 1;
}

# The poll sampler wrote timestamped stats+metrics lines.
[ -s "$SMOKE_DIR/poll.jsonl" ] || {
  echo "ci: client --poll-stats wrote no samples" >&2; exit 1;
}
BAD=$(grep -cv '^{"t_ms":"[0-9]*","type":"\(stats\|metrics\)"' "$SMOKE_DIR/poll.jsonl" || true)
[ "$BAD" = 0 ] || { echo "ci: poll log has $BAD malformed sample lines" >&2; exit 1; }

# Drain the fleet BEFORE inspecting span logs: a shard appends its span
# line after the response bytes, so only the reaped-children barrier
# makes the logs complete.
kill -TERM "$OBS_PID"
wait "$OBS_PID" || { echo "ci: traced router did not drain cleanly on SIGTERM" >&2; exit 1; }

# Span-log shape: every line of every log is flat JSONL with a 16-hex
# trace id, and the fleet's logs jointly cover the full phase vocabulary.
for LOG in "$SMOKE_DIR/router_trace.jsonl" \
           "$SMOKE_DIR/shard_trace.0.jsonl" "$SMOKE_DIR/shard_trace.1.jsonl"; do
  [ -s "$LOG" ] || [ "$LOG" != "$SMOKE_DIR/router_trace.jsonl" ] || {
    echo "ci: $LOG is empty" >&2; exit 1;
  }
  if [ -s "$LOG" ]; then
    BAD=$(grep -cv '^{"trace":"[0-9a-f]\{16\}",' "$LOG" || true)
    [ "$BAD" = 0 ] || { echo "ci: $LOG has $BAD malformed span lines" >&2; exit 1; }
  fi
done
grep -q '"span\.relay_us"' "$SMOKE_DIR/router_trace.jsonl" || {
  echo "ci: router span log never recorded a relay span" >&2; exit 1;
}
cat "$SMOKE_DIR/shard_trace.0.jsonl" "$SMOKE_DIR/shard_trace.1.jsonl" \
    2>/dev/null > "$SMOKE_DIR/shard_trace.all.jsonl"
[ -s "$SMOKE_DIR/shard_trace.all.jsonl" ] || {
  echo "ci: no shard ever wrote a span line" >&2; exit 1;
}
for PHASE in parse queue_wait bind solve format; do
  grep -q "\"span\.${PHASE}_us\"" "$SMOKE_DIR/shard_trace.all.jsonl" || {
    echo "ci: shard span logs never covered phase '$PHASE'" >&2; exit 1;
  }
done
# One id stitches the tiers: every router-logged trace id reappears in
# exactly one shard's log.
while read -r TRACE_ID; do
  grep -q "\"trace\":\"$TRACE_ID\"" "$SMOKE_DIR/shard_trace.all.jsonl" || {
    echo "ci: trace id $TRACE_ID in the router log but no shard log" >&2; exit 1;
  }
done <<TRACE_IDS
$(sed -n 's/^{"trace":"\([0-9a-f]\{16\}\)".*/\1/p' "$SMOKE_DIR/router_trace.jsonl")
TRACE_IDS
echo "ci: obs smoke green (traced fleet byte-identical; span logs cover all phases; request.n=$REQ_N)"

# Chaos smoke: the front tier under a seeded fault campaign
# (--fault-spec on the router: accepted connections close, frames
# truncate or land in pieces, relay connects refuse, reads stall),
# driven by a client with a retry budget. The contract under test
# (docs/RESILIENCE.md): every admitted request still gets exactly one
# response, the bytes match the fault-free solve-batch baseline modulo
# wall_s, and the same seed replays the same campaign byte-for-byte.
CHAOS_SPEC="13:0.25:close,truncate,partial,delay"
chaos_campaign() { # $1 = campaign tag (a, b)
  "$BIN" route --spawn 2 --jobs 2 --health-interval-ms 100 \
      --fault-spec "$CHAOS_SPEC" --retries 8 --backoff-ms 5 \
      > "$SMOKE_DIR/chaos_router.$1.out" 2>"$SMOKE_DIR/chaos_router.$1.err" &
  CHAOS_PID=$!
  CPORT=""
  i=0
  while [ $i -lt 100 ]; do
    CPORT=$(sed -n 's/.*router listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        "$SMOKE_DIR/chaos_router.$1.out")
    [ -n "$CPORT" ] && break
    i=$((i + 1)); sleep 0.1
  done
  [ -n "$CPORT" ] || { echo "ci: chaos router ($1) never announced its port" >&2; exit 1; }
  "$BIN" client --port "$CPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
      --objective period --retries 25 --backoff-ms 5 \
      > "$SMOKE_DIR/chaos.$1.jsonl" 2>"$SMOKE_DIR/chaos_client.$1.err" || {
    echo "ci: chaos campaign ($1) exhausted the client retry budget" >&2
    cat "$SMOKE_DIR/chaos_client.$1.err" >&2
    exit 1
  }
  sed 's/,"wall_s":"[^"]*"//' "$SMOKE_DIR/chaos.$1.jsonl" > "$SMOKE_DIR/chaos.$1.cmp"
  kill -TERM "$CHAOS_PID"
  wait "$CHAOS_PID" || { echo "ci: chaos router ($1) did not drain cleanly" >&2; exit 1; }
}
trap 'kill "$SERVER_PID" "$CACHE_PID" "$ROUTER_PID" "$OBS_PID" "${CHAOS_PID:-}" "${BRK_PID:-}" 2>/dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
chaos_campaign a
diff "$SMOKE_DIR/chaos.a.cmp" "$SMOKE_DIR/local.cmp" || {
  echo "ci: faulted campaign responses diverged from the clean baseline" >&2; exit 1;
}
# The client reports its retry accounting; the campaign must actually
# have injected something the budget absorbed (fixed seed, so this is a
# deterministic expectation, not a flake).
grep -q 'retries used=' "$SMOKE_DIR/chaos_client.a.err" || {
  echo "ci: chaos client never printed its retry summary" >&2; exit 1;
}
USED=$(sed -n 's/.*retries used=\([0-9]*\).*/\1/p' "$SMOKE_DIR/chaos_client.a.err")
[ "${USED:-0}" -ge 1 ] || {
  echo "ci: chaos campaign injected nothing the client had to retry (used='${USED:-absent}')" >&2
  exit 1
}
chaos_campaign b
diff "$SMOKE_DIR/chaos.a.cmp" "$SMOKE_DIR/chaos.b.cmp" || {
  echo "ci: the same fault seed did not replay the same campaign" >&2; exit 1;
}

# Breaker pass: SIGKILL a shard under a fault-free router and assert the
# circuit breaker opens (down transition), the supervisor's respawn
# closes it again (up transition), and both surface through stats and
# metrics alongside the failover's per-code retry counters.
"$BIN" route --spawn 2 --jobs 2 --health-interval-ms 100 \
    > "$SMOKE_DIR/brk_router.out" 2>"$SMOKE_DIR/brk_router.err" &
BRK_PID=$!
BPORT=""
i=0
while [ $i -lt 100 ]; do
  BPORT=$(sed -n 's/.*router listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$SMOKE_DIR/brk_router.out")
  [ -n "$BPORT" ] && break
  i=$((i + 1)); sleep 0.1
done
[ -n "$BPORT" ] || { echo "ci: breaker-pass router never announced its port" >&2; exit 1; }
BRK_SHARD0=$(sed -n 's/.*shard 0 at [^ ]* pid \([0-9]*\).*/\1/p' "$SMOKE_DIR/brk_router.out")
[ -n "$BRK_SHARD0" ] || { echo "ci: breaker-pass router never announced shard 0's pid" >&2; exit 1; }
kill -KILL "$BRK_SHARD0"
"$BIN" client --port "$BPORT" --manifest "$SMOKE_DIR/batch.jsonl" \
    --objective period > /dev/null || {
  echo "ci: traffic through the open-breaker failover path failed" >&2; exit 1;
}
DOWN=""; UPT=""
i=0
while [ $i -lt 100 ]; do
  printf '{"type":"stats"}\n' | "$BIN" client --port "$BPORT" - \
      > "$SMOKE_DIR/brk_stats.jsonl" 2>/dev/null || true
  DOWN=$(sed -n 's/.*"shard_down_transitions":"\([0-9]*\)".*/\1/p' "$SMOKE_DIR/brk_stats.jsonl")
  UPT=$(sed -n 's/.*"shard_up_transitions":"\([0-9]*\)".*/\1/p' "$SMOKE_DIR/brk_stats.jsonl")
  SUP=$(sed -n 's/.*"shards_up":"\([0-9]*\)".*/\1/p' "$SMOKE_DIR/brk_stats.jsonl")
  [ "${DOWN:-0}" -ge 1 ] && [ "${UPT:-0}" -ge 1 ] && [ "${SUP:-0}" = 2 ] && break
  i=$((i + 1)); sleep 0.1
done
[ "${DOWN:-0}" -ge 1 ] && [ "${UPT:-0}" -ge 1 ] || {
  echo "ci: breaker transitions never surfaced (down='${DOWN:-absent}', up='${UPT:-absent}')" >&2
  exit 1
}
printf '{"type":"metrics"}\n' | "$BIN" client --port "$BPORT" - \
    > "$SMOKE_DIR/brk_metrics.jsonl"
grep -q '"shard\.0\.breaker_state":"0"' "$SMOKE_DIR/brk_metrics.jsonl" &&
grep -q '"shard\.1\.breaker_state":"0"' "$SMOKE_DIR/brk_metrics.jsonl" || {
  echo "ci: recovered fleet metrics missing closed breaker_state gauges" >&2; exit 1;
}
grep -q '"retries_by_code\.' "$SMOKE_DIR/brk_metrics.jsonl" || {
  echo "ci: failover retries never surfaced in retries_by_code.*" >&2; exit 1;
}
kill -TERM "$BRK_PID"
wait "$BRK_PID" || { echo "ci: breaker-pass router did not drain cleanly on SIGTERM" >&2; exit 1; }
echo "ci: chaos smoke green (faulted campaign byte-identical and seed-replayable, retries used=${USED:-0}; breaker down=$DOWN up=$UPT)"

# ThreadSanitizer build of the executor, plan, cancellation, server and
# router tests — the code that actually runs worker pools, session threads
# and the router's relay/health threads, plus the striped metric
# registries and trace contexts they now record into.
# Skipped (loudly) when the toolchain has no libtsan; everything above has
# already gated the merge. The probe uses the same compiler CMake will
# ($CXX when set), so probe and build cannot disagree.
if echo 'int main(){}' | "${CXX:-c++}" -fsanitize=thread -x c++ - -o "${TMPDIR:-/tmp}/pipeopt_tsan_probe.$$" 2>/dev/null; then
  rm -f "${TMPDIR:-/tmp}/pipeopt_tsan_probe.$$"
  cmake -B "$BUILD_DIR-tsan" -S . -DPIPEOPT_WERROR=ON -DPIPEOPT_TSAN=ON
  cmake --build "$BUILD_DIR-tsan" -j "$(nproc)" --target pipeopt_tests
  "$BUILD_DIR-tsan/pipeopt_tests" \
      --gtest_filter='Executor.*:Plan.*:DispatchPlan.*:Server.*:Deadline.*:Cancel.*:Sweep.*:Cache.*:Router.*:StatsMerge.*:EvalBatch.*:*/EvalBatch.*:Obs.*:Metrics.*:*WireFuzz*:Chaos.*:Retry.*:Fault.*'
else
  echo "ci: ThreadSanitizer unavailable, skipping the tsan pass" >&2
fi

# Address+UB sanitizer pass over the fuzz surfaces: the wire-protocol
# robustness fuzz (truncations, byte mutations, duplicate/unknown fields)
# and the solver-property fuzz, where a latent out-of-bounds or UB would
# hide behind a benign-looking wrong answer. Probed like the tsan pass so
# a toolchain without libasan skips loudly instead of failing the merge.
if echo 'int main(){}' | "${CXX:-c++}" -fsanitize=address,undefined -x c++ - -o "${TMPDIR:-/tmp}/pipeopt_asan_probe.$$" 2>/dev/null; then
  rm -f "${TMPDIR:-/tmp}/pipeopt_asan_probe.$$"
  cmake -B "$BUILD_DIR-asan" -S . -DPIPEOPT_WERROR=ON -DPIPEOPT_ASAN=ON
  cmake --build "$BUILD_DIR-asan" -j "$(nproc)" --target pipeopt_tests
  "$BUILD_DIR-asan/pipeopt_tests" \
      --gtest_filter='*WireFuzz*:*PropertyFuzz*:*MappingFuzz*:MipLp.*:MipBackend.*'
else
  echo "ci: Address/UB sanitizer unavailable, skipping the asan pass" >&2
fi

echo "ci: all green"
