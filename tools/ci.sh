#!/bin/sh
# CI entry point: the tier-1 verify line (see ROADMAP.md) with warnings
# promoted to errors, then the full ctest suite (unit + property tests and
# the CLI exit-code smoke test, including solve-batch), then a
# ThreadSanitizer pass over the threaded executor/plan subsystem.
#
#   tools/ci.sh [build-dir]
#
# PIPEOPT_WERROR=ON applies -Wall -Wextra -Werror to every target,
# including the src/api/ facade and executor layers.
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S . -DPIPEOPT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# ThreadSanitizer build of the executor, plan and cancellation tests — the
# code that actually runs worker pools. Skipped (loudly) when the toolchain
# has no libtsan; everything above has already gated the merge. The probe
# uses the same compiler CMake will ($CXX when set), so probe and build
# cannot disagree.
if echo 'int main(){}' | "${CXX:-c++}" -fsanitize=thread -x c++ - -o "${TMPDIR:-/tmp}/pipeopt_tsan_probe.$$" 2>/dev/null; then
  rm -f "${TMPDIR:-/tmp}/pipeopt_tsan_probe.$$"
  cmake -B "$BUILD_DIR-tsan" -S . -DPIPEOPT_WERROR=ON -DPIPEOPT_TSAN=ON
  cmake --build "$BUILD_DIR-tsan" -j "$(nproc)" --target pipeopt_tests
  "$BUILD_DIR-tsan/pipeopt_tests" --gtest_filter='Executor.*:Plan.*:DispatchPlan.*'
else
  echo "ci: ThreadSanitizer unavailable, skipping the tsan pass" >&2
fi

echo "ci: all green"
