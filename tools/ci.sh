#!/bin/sh
# CI entry point: the tier-1 verify line (see ROADMAP.md) with warnings
# promoted to errors, then the full ctest suite (unit + property tests and
# the CLI exit-code smoke test).
#
#   tools/ci.sh [build-dir]
#
# PIPEOPT_WERROR=ON applies -Wall -Wextra -Werror to every target,
# including the new src/api/ facade layer.
set -eu
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S . -DPIPEOPT_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
echo "ci: all green"
