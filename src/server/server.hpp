#pragma once

/// \file server.hpp
/// pipeopt-server: a long-lived JSONL-over-TCP solve service on top of
/// `api::Executor` — the ROADMAP's server front end.
///
/// Protocol: newline-delimited JSON, one flat object per line (json.hpp
/// dialect). Request lines:
///
///  * `{"type":"solve", ...}` — a request_io.hpp solve request (instance
///    inline or by path). Answered with one result_io.hpp
///    `{"type":"result", ...}` line; the optional `id` is echoed back.
///  * `{"type":"pareto", ...}` — a Pareto-front sweep (api/sweep.hpp over
///    the wire). Answered with one `{"type":"result", ...}` line *per
///    front point* (each carrying its producing `bound`), streamed in
///    front order on the same connection, then one terminal
///    `{"type":"pareto", ...}` summary line. `deadline_ms` bounds the
///    whole sweep; grid points ride the shared executor pool.
///  * `{"type":"stats"}` — answered with `{"type":"stats", ...}`: the
///    ServerStats counters plus the executor pool's size and occupancy.
///  * `{"type":"metrics"}` — answered with `{"type":"metrics", ...}`: the
///    server's obs::MetricsRegistry snapshot — request/phase/per-solver
///    latency histograms as fleet-summable bucket fields, with derived
///    p50/p90/p99 quantile fields appended (obs/metrics.hpp).
///  * `{"type":"health"}` — answered with `{"type":"health", ...}`: pid,
///    uptime and in-flight count, assembled in constant time (no pool
///    round trip, no per-solver scan) — the probe the router's health
///    loop beats on, cheap enough to answer at any load.
///  * `{"type":"ping"}` — answered with `{"type":"pong"}` (liveness).
///
/// A malformed or unsupported line is answered with a structured
/// `{"type":"error","message":...}` line — the connection (and the server)
/// survives. Requests on one connection are served strictly in order;
/// concurrency comes from concurrent connections multiplexed over one
/// shared `api::Executor` pool.
///
/// Cancellation: each solve or sweep runs under its own
/// `util::CancelSource`. The wire `deadline_ms` arms a wall-clock deadline
/// inside the plan (`SolveRequest::deadline_ms`; sweep-wide for pareto),
/// and while a solve or sweep is in flight the session watches its TCP
/// connection — a client that disconnects cancels its in-flight work
/// within one watch interval (for a sweep, the remaining grid points come
/// back as typed cancelled results and never reach the front), without
/// touching other connections. Both paths surface as the typed LimitExceeded "cancelled"
/// result (the disconnected client just never reads it). The protocol
/// contract for TCP clients is therefore: keep the write side open until
/// every pending response has arrived — closing the connection (half- or
/// full-close alike; the two are indistinguishable at FIN time) tells the
/// server the answers are unwanted. In --stdio mode there is no such
/// watch: EOF on stdin only ends the request stream, and everything
/// already read is still solved and flushed to stdout.
///
/// Shutdown: `shutdown()` (also wired to SIGINT/SIGTERM by
/// `install_signal_handlers`) stops accepting, half-closes every session
/// so no further requests are read, lets in-flight solves finish and their
/// responses flush, then `serve()` returns — the executor pool drains, no
/// future is abandoned.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/executor.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/stats.hpp"
#include "util/cancel.hpp"

namespace pipeopt::server {

struct ServerOptions {
  /// Listen address (TCP mode).
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via `port()`).
  std::uint16_t port = 0;
  /// Executor pool size; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Solve-cache capacity in entries (`serve --cache-entries N`); 0 = off.
  /// When on, repeated byte-identical requests — including every grid
  /// point of a replayed sweep — are answered from the executor's
  /// `api::SolveCache` with the stored result verbatim, and the
  /// `{"type":"stats"}` response grows `cache_hits` / `cache_misses` /
  /// `cache_evictions` / `cache_entries` counters.
  std::size_t cache_entries = 0;
  /// listen(2) backlog. The historical 64 suits direct clients; a router
  /// front tier multiplies connection bursts onto each shard, so the
  /// fan-in side raises it (`serve --backlog N`).
  int backlog = 64;
  /// Span-log path (`serve --trace-log FILE`); empty = tracing off. When
  /// set, every completed solve/pareto request appends one JSONL line with
  /// its trace id and phase breakdown (obs/trace.hpp). Response bytes are
  /// unchanged either way.
  std::string trace_log{};
  /// Deterministic fault injection (`serve --fault-spec seed:prob:kinds`,
  /// net/fault.hpp grammar); empty = off. Applies to the session sockets:
  /// `close` drops freshly accepted connections, `truncate`/`partial`/
  /// `delay` hook the session read/write paths. Chaos testing only — the
  /// flag is rejected at construction when malformed.
  std::string fault_spec{};
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Joins the accept loop if still running (via shutdown) and the pool.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; returns the bound port (the ephemeral one when
  /// options.port was 0). \throws std::runtime_error on bind failures.
  std::uint16_t listen();

  /// Accept loop: serves connections until `shutdown()`. Call from the
  /// thread that owns the server's lifetime; sessions run on their own
  /// threads. Implies `listen()` when not yet listening. When this
  /// returns, every session is joined and every response flushed.
  void serve();

  /// Serves one already-open stream (the --stdio mode: in_fd = stdin,
  /// out_fd = stdout) until EOF on in_fd. Does not require listen().
  void serve_stream(int in_fd, int out_fd);

  /// Initiates graceful shutdown: stop accepting, half-close sessions,
  /// finish in-flight solves. Thread-safe, idempotent, returns
  /// immediately; `serve()` returning marks the drain complete.
  void shutdown();

  /// Routes SIGINT/SIGTERM to this server's `shutdown()` (one server per
  /// process; the last call wins). Also ignores SIGPIPE, so a client that
  /// vanishes mid-response surfaces as a write error, not a process kill.
  static void install_signal_handlers(Server& server);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const ServerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] api::Executor& executor() noexcept { return executor_; }
  /// The server's metric registry — what `{"type":"metrics"}` snapshots.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }
  /// The fault injector behind `--fault-spec`; nullptr when injection is
  /// off (chaos tests assert on its injected() counters).
  [[nodiscard]] net::FaultInjector* fault_injector() noexcept {
    return fault_.get();
  }

 private:
  struct Session {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
  };

  /// One connection's read-dispatch-respond loop. `is_socket` enables the
  /// disconnect watch (TCP sessions only; see the file comment).
  void session_loop(int in_fd, int out_fd, bool is_socket, Session* session);

  /// Handles one request line. Every request type answers with exactly one
  /// response line except `pareto`, which streams one line per front point
  /// plus a terminal summary.
  void handle_line(const std::string& line, int out_fd, int watch_fd,
                   bool is_socket, bool input_buffered);

  /// Waits until `ready(interval)` reports the in-flight work done,
  /// watching the client connection meanwhile (`watching`: TCP sessions
  /// with no pipelined input only): a client that disconnects has `source`
  /// fired, and the wait continues until the worker's typed cancelled
  /// result lands. Returns true when the watch cancelled.
  bool await_with_watch(
      const std::function<bool(std::chrono::milliseconds)>& ready,
      util::CancelSource& source, int watch_fd, bool watching);

  /// Joins sessions that have finished (`done` set); `all` joins the rest.
  void reap_sessions(bool all);

  /// Records one finished solve into the metric registry: the per-solver
  /// latency histogram (`solver.<name>.latency`, from the result's solve
  /// wall) and evals counter, mirroring ServerStats's per-solver counts.
  void record_result_metrics(const api::SolveResult& result);

  /// Session-socket write that honors the fault hooks (all responses go
  /// through here so injected truncation hits real traffic paths).
  bool send_line(int out_fd, std::string line) const;

  ServerOptions options_;
  api::Executor executor_;
  ServerStats stats_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceLog> trace_log_;  ///< null = tracing off
  std::unique_ptr<net::FaultInjector> fault_;  ///< null = injection off
  const util::IoHooks* session_hooks_ = nullptr;  ///< fault_'s front_io()
  /// Construction time — the zero point of the health response's uptime.
  std::chrono::steady_clock::time_point started_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  ///< shutdown/signal wakeup for the poll loop
  std::atomic<bool> stopping_{false};
  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
};

}  // namespace pipeopt::server
