#pragma once

/// \file stats.hpp
/// Live counters of one pipeopt-server process, answered over the wire by
/// the `{"type":"stats"}` request: lines served, solves dispatched
/// (pareto sweeps count one solve per grid point), sweeps accepted,
/// cancellations (deadline- or disconnect-driven), structured errors,
/// per-solver dispatch counts, and — when the server runs with
/// `--cache-entries` — the solve cache's hit/miss/eviction counters. All
/// counters are monotone and thread-safe —
/// every session thread records into the same instance while other
/// sessions snapshot it.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "api/result.hpp"

namespace pipeopt::api {
class SolveCache;
}  // namespace pipeopt::api

namespace pipeopt::server {

class ServerStats {
 public:
  /// One accepted connection (TCP) or attached stream (--stdio).
  void record_connection() noexcept { ++connections_; }

  /// One request line handled (any type, well-formed or not).
  void record_request() noexcept { ++requests_; }

  /// One malformed or unsupported line answered with a structured error.
  void record_error() noexcept { ++errors_; }

  /// One solve dispatched into the executor pool. Pareto sweeps record one
  /// dispatch per evaluated grid point (each is a full solve).
  void record_dispatch() noexcept { ++solves_; }

  /// One `{"type":"pareto"}` sweep accepted.
  void record_sweep() noexcept { ++sweeps_; }

  /// One solve finished: bumps the producing solver's dispatch count, the
  /// cancellation counter when the result carries the "cancelled"
  /// diagnostic (expired deadline, fired token or vanished client alike),
  /// and the cumulative evaluation counter from the "evals" diagnostic the
  /// exact/heuristic adapters attach.
  void record_result(const api::SolveResult& result);

  /// One in-flight solve cancelled because its client disconnected.
  void record_disconnect_cancel() noexcept { ++disconnect_cancels_; }

  /// Surfaces a solve cache's counters in every future `snapshot()`; a
  /// null pointer (no cache configured) keeps the historical field set.
  /// The cache must outlive this stats object (the server owns both).
  void attach_cache(const api::SolveCache* cache) noexcept { cache_ = cache; }

  /// Ordered wire fields for the stats response (decimal-string values):
  /// requests, solves, evals, sweeps, errors, cancelled,
  /// disconnect_cancels, connections, then — when a cache is attached —
  /// cache_hits, cache_misses, cache_evictions, cache_entries, then one
  /// "solver.<name>" field per solver in first-dispatch order. `evals` is
  /// the fleet-observable evaluation throughput: io::merge_stats_fields
  /// sums it field-wise when the router merges shard snapshots.
  [[nodiscard]] std::vector<std::pair<std::string, std::string>> snapshot() const;

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t solves() const noexcept { return solves_; }
  [[nodiscard]] std::uint64_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }
  [[nodiscard]] std::uint64_t evals() const noexcept { return evals_; }
  [[nodiscard]] std::uint64_t disconnect_cancels() const noexcept {
    return disconnect_cancels_;
  }

 private:
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> solves_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> evals_{0};
  std::atomic<std::uint64_t> disconnect_cancels_{0};
  const api::SolveCache* cache_ = nullptr;  ///< set once at server start
  mutable std::mutex mutex_;  ///< guards per_solver_
  std::vector<std::pair<std::string, std::uint64_t>> per_solver_;
};

}  // namespace pipeopt::server
