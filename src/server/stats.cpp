#include "server/stats.hpp"

#include <cstdlib>

#include "api/cache.hpp"

namespace pipeopt::server {

void ServerStats::record_result(const api::SolveResult& result) {
  if (result.was_cancelled()) ++cancelled_;
  for (const auto& [key, value] : result.diagnostics) {
    if (key == "evals") {
      evals_ += std::strtoull(value.c_str(), nullptr, 10);
      break;
    }
  }
  const std::string solver = result.solver.empty() ? "(none)" : result.solver;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, count] : per_solver_) {
    if (name == solver) {
      ++count;
      return;
    }
  }
  per_solver_.emplace_back(solver, 1);
}

std::vector<std::pair<std::string, std::string>> ServerStats::snapshot() const {
  std::vector<std::pair<std::string, std::string>> fields;
  fields.emplace_back("requests", std::to_string(requests_.load()));
  fields.emplace_back("solves", std::to_string(solves_.load()));
  fields.emplace_back("evals", std::to_string(evals_.load()));
  fields.emplace_back("sweeps", std::to_string(sweeps_.load()));
  fields.emplace_back("errors", std::to_string(errors_.load()));
  fields.emplace_back("cancelled", std::to_string(cancelled_.load()));
  fields.emplace_back("disconnect_cancels",
                      std::to_string(disconnect_cancels_.load()));
  fields.emplace_back("connections", std::to_string(connections_.load()));
  if (cache_ != nullptr) {
    const api::CacheCounters counters = cache_->counters();
    fields.emplace_back("cache_hits", std::to_string(counters.hits));
    fields.emplace_back("cache_misses", std::to_string(counters.misses));
    fields.emplace_back("cache_evictions", std::to_string(counters.evictions));
    fields.emplace_back("cache_entries", std::to_string(counters.entries));
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, count] : per_solver_) {
    fields.emplace_back("solver." + name, std::to_string(count));
  }
  return fields;
}

}  // namespace pipeopt::server
