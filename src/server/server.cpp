#include "server/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <future>
#include <optional>
#include <stdexcept>
#include <utility>

#include "io/json.hpp"
#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "util/cancel.hpp"
#include "util/fdio.hpp"
#include "util/timing.hpp"

namespace pipeopt::server {

namespace {

/// How often an in-flight solve's session polls for client disconnect.
constexpr auto kWatchInterval = std::chrono::milliseconds(10);

#ifdef POLLRDHUP
constexpr short kHupEvents = POLLRDHUP | POLLHUP | POLLERR;
#else
constexpr short kHupEvents = POLLHUP | POLLERR;
#endif

/// The signal-handler target of install_signal_handlers: handlers may only
/// touch async-signal-safe state, so they write one byte into the server's
/// wake pipe and let the poll loop do the actual shutdown.
std::atomic<int> g_signal_wake_fd{-1};

void signal_to_pipe(int) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

using util::FdLineReader;
using util::write_line;

std::string error_line(const std::string& id, const std::string& message) {
  return io::format_error(message, id);
}

/// Best-effort id extraction so even a semantically broken request gets
/// its error echoed back under the right tag.
std::string peek_id(const io::JsonFields& fields) {
  for (const auto& [key, value] : fields) {
    if (key == "id") return value;
  }
  return {};
}

/// The optional wire trace id ("" when the request is untraced).
std::string peek_trace(const io::JsonFields& fields) {
  for (const auto& [key, value] : fields) {
    if (key == "trace") return value;
  }
  return {};
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      executor_(api::ExecutorOptions{.jobs = options_.jobs,
                                     .cache_entries = options_.cache_entries}),
      started_(std::chrono::steady_clock::now()) {
  // Stats snapshots include the cache counters iff the cache exists, so a
  // cache-disabled server's stats line keeps its exact historical bytes.
  stats_.attach_cache(executor_.cache());
  if (!options_.trace_log.empty()) {
    trace_log_ = std::make_unique<obs::TraceLog>(options_.trace_log);
  }
  if (!options_.fault_spec.empty()) {
    const auto spec = net::parse_fault_spec(options_.fault_spec);
    if (!spec) {
      throw std::runtime_error("pipeopt-server: bad --fault-spec '" +
                               options_.fault_spec +
                               "' (want seed:prob:kind[,kind...])");
    }
    fault_ = std::make_unique<net::FaultInjector>(*spec);
    session_hooks_ = &fault_->front_io();
  }
  if (::pipe(wake_pipe_) != 0) {
    throw std::runtime_error("pipeopt-server: cannot create wake pipe");
  }
}

Server::~Server() {
  shutdown();
  reap_sessions(/*all=*/true);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

std::uint16_t Server::listen() {
  if (listen_fd_ >= 0) return port_;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("pipeopt-server: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("pipeopt-server: bad listen address '" +
                             options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, options_.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("pipeopt-server: cannot listen on " +
                             options_.host + ":" +
                             std::to_string(options_.port) + ": " + reason);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("pipeopt-server: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  return port_;
}

void Server::serve() {
  listen();
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown() or a signal woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    if (fault_ && fault_->accept_should_close()) {
      // Injected accept-then-close: the peer sees its connection die
      // before a byte moves — the request provably never executed, so a
      // retrying client is always safe.
      ::close(client);
      continue;
    }
    stats_.record_connection();
    auto session = std::make_unique<Session>();
    Session* raw = session.get();
    raw->fd = client;
    raw->thread = std::thread([this, client, raw] {
      session_loop(client, client, /*is_socket=*/true, raw);
    });
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
    reap_sessions(/*all=*/false);
  }
  // Drain: close the listener so late connects are refused instead of
  // parked in the backlog, half-close every session so its next read sees
  // EOF, then wait for the in-flight responses to flush.
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& session : sessions_) {
      if (session->fd >= 0) ::shutdown(session->fd, SHUT_RD);
    }
  }
  reap_sessions(/*all=*/true);
}

void Server::serve_stream(int in_fd, int out_fd) {
  stats_.record_connection();
  session_loop(in_fd, out_fd, /*is_socket=*/false, nullptr);
}

void Server::shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Server::install_signal_handlers(Server& server) {
  g_signal_wake_fd.store(server.wake_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = signal_to_pipe;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

void Server::reap_sessions(bool all) {
  std::vector<std::unique_ptr<Session>> finished;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void Server::session_loop(int in_fd, int out_fd, bool is_socket,
                          Session* session) {
  FdLineReader reader(in_fd, session_hooks_);
  std::string line;
  while (reader.next_line(line)) {
    // A socket stream that dies mid-line left a torn prefix, not a
    // request: never parse (let alone execute) it. Stdio keeps the
    // historical final-unterminated-line behavior.
    if (is_socket && !reader.last_terminated()) break;
    if (line.empty() || line == "\r") continue;
    handle_line(line, out_fd, in_fd, is_socket, reader.buffered());
    if (stopping_.load(std::memory_order_relaxed) && is_socket) break;
  }
  if (session != nullptr) {
    // The drain path half-closes fds it reads under the same lock, so the
    // close (and the -1 that retires the fd) must not race with it.
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex_);
      ::close(session->fd);
      session->fd = -1;
    }
    session->done.store(true, std::memory_order_release);
  }
}

bool Server::send_line(int out_fd, std::string line) const {
  return write_line(out_fd, std::move(line), session_hooks_);
}

void Server::record_result_metrics(const api::SolveResult& result) {
  const std::string solver = result.solver.empty() ? "(none)" : result.solver;
  const double wall_us = std::max(0.0, result.wall_seconds) * 1e6;
  metrics_.histogram("solver." + solver + ".latency")
      .record_us(static_cast<std::uint64_t>(wall_us));
  for (const auto& [key, value] : result.diagnostics) {
    if (key == "evals") {
      metrics_.counter("solver." + solver + ".evals")
          .add(std::strtoull(value.c_str(), nullptr, 10));
      break;
    }
  }
}

void Server::handle_line(const std::string& line, int out_fd, int watch_fd,
                         bool is_socket, bool input_buffered) {
  stats_.record_request();
  // Zero point for the request's end-to-end latency histogram and its
  // parse span (everything until the work is dispatched counts as parse).
  const util::Stopwatch request_watch;
  io::JsonFields fields;
  try {
    fields = io::parse_flat_json(line);
  } catch (const io::ParseError& e) {
    stats_.record_error();
    send_line(out_fd, error_line("", e.what()));
    return;
  }
  const std::string id = peek_id(fields);

  std::string type = "solve";
  for (const auto& [key, value] : fields) {
    if (key == "type") type = value;
  }
  if (type == "ping") {
    io::FlatJsonWriter out;
    out.field("type", "pong");
    if (!id.empty()) out.field("id", id);
    send_line(out_fd, std::move(out).str());
    return;
  }
  if (type == "health") {
    // Constant-time by contract: the router probes this at every health
    // interval, so it must answer instantly even when the pool is buried.
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    io::FlatJsonWriter out;
    out.field("type", "health");
    if (!id.empty()) out.field("id", id);
    out.field("pid", std::to_string(::getpid()));
    out.field("uptime_s", io::format_double_exact(uptime));
    out.field("in_flight", std::to_string(executor_.pending()));
    send_line(out_fd, std::move(out).str());
    return;
  }
  if (type == "stats") {
    io::FlatJsonWriter out;
    out.field("type", "stats");
    if (!id.empty()) out.field("id", id);
    for (const auto& [key, value] : stats_.snapshot()) out.field(key, value);
    out.field("jobs", std::to_string(executor_.jobs()));
    out.field("pending", std::to_string(executor_.pending()));
    send_line(out_fd, std::move(out).str());
    return;
  }
  if (type == "metrics") {
    // The registry snapshot: summable counter/gauge/bucket fields (what a
    // router merges field-wise across the fleet) with the derived
    // p50/p90/p99 fields appended per histogram.
    metrics_.gauge("in_flight").set(executor_.pending());
    io::FlatJsonWriter out;
    out.field("type", "metrics");
    if (!id.empty()) out.field("id", id);
    for (const auto& [key, value] : obs::with_quantiles(metrics_.snapshot())) {
      out.field(key, value);
    }
    send_line(out_fd, std::move(out).str());
    return;
  }
  if (type == "pareto") {
    std::optional<io::WireParetoRequest> wire;
    try {
      wire = io::parse_pareto_request(fields);
    } catch (const io::ParseError& e) {
      stats_.record_error();
      send_line(out_fd, error_line(id, e.what()));
      return;
    }
    // Reject unusable sweeps before spawning any work (the driver would
    // re-check, but an error line beats an empty front).
    if (const std::string error = api::validate_sweep(wire->request);
        !error.empty()) {
      stats_.record_error();
      send_line(out_fd, error_line(id, error));
      return;
    }

    // One source per sweep; the sweep-wide deadline arms inside the
    // driver. Executor::sweep blocks, so it runs on a session-side thread
    // (its grid points ride the shared pool — it must not run *on* the
    // pool) while this thread keeps the disconnect watch.
    util::CancelSource source;
    wire->request.base.cancel = source.token();
    // Everything up to the dispatch was parsing/validation; sweep point
    // requests inherit the context, so their cache_lookup/queue_wait/
    // bind/solve spans aggregate into this one trace.
    obs::TraceContext trace(peek_trace(fields), &metrics_);
    trace.record("parse", request_watch.elapsed_micros());
    wire->request.base.trace = &trace;
    stats_.record_sweep();
    std::future<api::ParetoFront> future =
        std::async(std::launch::async, [this, w = std::move(*wire)] {
          return executor_.sweep(w.problem, w.request);
        });
    const bool watching = is_socket && !input_buffered;
    await_with_watch(
        [&future](std::chrono::milliseconds interval) {
          return future.wait_for(interval) == std::future_status::ready;
        },
        source, watch_fd, watching);

    const api::ParetoFront front = future.get();
    // Every grid point was one solve through the pool: count each (a
    // disconnect mid-sweep is thus observable as `cancelled` growing by
    // the number of grid points it killed).
    for (const api::SweepEvaluation& evaluation : front.evaluations) {
      stats_.record_dispatch();
      stats_.record_result(evaluation.result);
      record_result_metrics(evaluation.result);
    }
    {
      const obs::SpanTimer format_span(&trace, "format");
      for (const std::size_t index : front.front) {
        const api::SweepEvaluation& evaluation = front.evaluations[index];
        send_line(
            out_fd,
            io::format_front_point(evaluation.result, evaluation.bound, id));
      }
      send_line(out_fd, io::format_pareto_summary(front, id));
    }
    const std::uint64_t total_us = request_watch.elapsed_micros();
    metrics_.histogram("request").record_us(total_us);
    if (trace_log_) trace_log_->write(trace, "pareto", id, total_us);
    return;
  }

  if (type != "solve") {
    stats_.record_error();
    send_line(out_fd, error_line(id, "unknown request type '" + type + "'"));
    return;
  }

  std::optional<io::WireSolveRequest> wire;
  try {
    wire = io::parse_solve_request(fields);
  } catch (const io::ParseError& e) {
    stats_.record_error();
    send_line(out_fd, error_line(id, e.what()));
    return;
  }

  // Every solve runs under its own source: the deadline (if any) arms
  // inside the plan, and the disconnect watch fires this source.
  util::CancelSource source;
  wire->request.cancel = source.token();
  // The context lives on this session stack until the future resolves —
  // exactly the lifetime request.hpp's trace contract requires.
  obs::TraceContext trace(peek_trace(fields), &metrics_);
  trace.record("parse", request_watch.elapsed_micros());
  wire->request.trace = &trace;
  stats_.record_dispatch();
  std::future<api::SolveResult> future = executor_.solve_async(
      std::move(wire->problem), std::move(wire->request));

  await_with_watch(
      [&future](std::chrono::milliseconds interval) {
        return future.wait_for(interval) == std::future_status::ready;
      },
      source, watch_fd, is_socket && !input_buffered);

  const api::SolveResult result = future.get();
  stats_.record_result(result);
  record_result_metrics(result);
  {
    const obs::SpanTimer format_span(&trace, "format");
    send_line(out_fd, io::format_result(result, id));
  }
  const std::uint64_t total_us = request_watch.elapsed_micros();
  metrics_.histogram("request").record_us(total_us);
  if (trace_log_) trace_log_->write(trace, "solve", id, total_us);
}

bool Server::await_with_watch(
    const std::function<bool(std::chrono::milliseconds)>& ready,
    util::CancelSource& source, int watch_fd, bool watching) {
  // While the work is in flight, watch the connection. The watch only
  // makes sense on sockets: closing a TCP connection signals the client
  // abandoned its pending responses (the protocol contract — keep the
  // write side open until the answers arrive), whereas in --stdio mode
  // EOF on stdin merely ends the request stream while the stdout reader
  // is usually still there. Pipelined input means the client is
  // demonstrably alive (and the probe would misread the buffered bytes),
  // so the watch only runs on an idle connection.
  bool cancelled_by_disconnect = false;
  for (;;) {
    if (ready(kWatchInterval)) return cancelled_by_disconnect;
    if (!watching || cancelled_by_disconnect ||
        stopping_.load(std::memory_order_relaxed)) {
      continue;  // graceful drain: let the work finish, never cancel it
    }
    pollfd probe{watch_fd, static_cast<short>(POLLIN | kHupEvents), 0};
    if (::poll(&probe, 1, 0) <= 0) continue;
    bool gone = false;
    if (probe.revents & POLLIN) {
      char byte;
      const ssize_t n = ::recv(watch_fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n == 0) {
        gone = true;  // orderly EOF: the client hung up on its response
      } else if (n > 0) {
        watching = false;  // a pipelined request arrived: alive
        continue;
      } else if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
        gone = true;  // reset under us
      }
    } else if (probe.revents & kHupEvents) {
      gone = true;
    }
    if (gone && !stopping_.load(std::memory_order_relaxed)) {
      source.request_cancel();
      cancelled_by_disconnect = true;
      stats_.record_disconnect_cancel();
      // Keep waiting: the worker returns a typed cancelled result, which
      // record_result counts even though the client will never read it.
    }
  }
}

}  // namespace pipeopt::server
