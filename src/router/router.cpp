#include "router/router.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "io/request_io.hpp"
#include "io/result_io.hpp"
#include "io/stats_io.hpp"
#include "util/timing.hpp"

namespace pipeopt::router {

namespace {

/// How often an in-flight forward's session polls for client disconnect,
/// and how often a slot waiter rechecks the fleet.
constexpr auto kWatchInterval = std::chrono::milliseconds(10);
constexpr auto kSlotWaitInterval = std::chrono::milliseconds(50);
/// How long a spawned child gets to announce its port before the spawn
/// counts as failed (solver registration is cheap; this is pure margin).
constexpr auto kSpawnDeadline = std::chrono::seconds(10);

#ifdef POLLRDHUP
constexpr short kHupEvents = POLLRDHUP | POLLHUP | POLLERR;
#else
constexpr short kHupEvents = POLLHUP | POLLERR;
#endif

/// Signal-handler target of install_signal_handlers (same pattern as the
/// server: one byte into the wake pipe, the poll loop does the shutdown).
std::atomic<int> g_signal_wake_fd{-1};

void signal_to_pipe(int) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

using util::FdLineReader;
using util::write_line;

/// Every router fd is close-on-exec: the health thread forks shard
/// children concurrently with accepts, and a child that inherits the
/// front listener or a client socket keeps it alive past its owner.
int connect_endpoint(const std::string& host, std::uint16_t port,
                     std::chrono::milliseconds timeout) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINTR) {
      ::close(fd);
      return -1;
    }
    // A blocking connect interrupted by a signal keeps completing in the
    // background; retrying connect() would yield EALREADY. Wait for
    // writability and read the real outcome from SO_ERROR.
    pollfd probe{fd, POLLOUT, 0};
    for (;;) {
      const int ready = ::poll(
          &probe, 1,
          timeout.count() > 0 ? static_cast<int>(timeout.count()) : -1);
      if (ready > 0) break;
      if (ready < 0 && errno == EINTR) continue;
      ::close(fd);
      return -1;
    }
    int error = 0;
    socklen_t error_len = sizeof error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &error_len) != 0 ||
        error != 0) {
      ::close(fd);
      return -1;
    }
  }
  return fd;
}

/// The "type" of a server response line. Every server-written line starts
/// with `{"type":"..."` (FlatJsonWriter field order), so a prefix scan is
/// enough — and cheap enough to run per relayed line.
std::string response_type(const std::string& line) {
  constexpr const char kPrefix[] = "{\"type\":\"";
  constexpr std::size_t kPrefixLen = sizeof kPrefix - 1;
  if (line.compare(0, kPrefixLen, kPrefix) != 0) return {};
  const std::size_t end = line.find('"', kPrefixLen);
  if (end == std::string::npos) return {};
  return line.substr(kPrefixLen, end - kPrefixLen);
}

enum class ClientProbe { Idle, Gone, Busy };

/// One non-blocking look at the client connection while its response is
/// pending elsewhere — the server's await_with_watch probe, shared
/// semantics: orderly EOF or reset = Gone, pipelined input = Busy
/// (demonstrably alive; stop probing, the bytes are a request).
ClientProbe probe_client(int fd) {
  pollfd probe{fd, static_cast<short>(POLLIN | kHupEvents), 0};
  if (::poll(&probe, 1, 0) <= 0) return ClientProbe::Idle;
  if (probe.revents & POLLIN) {
    char byte;
    const ssize_t n = ::recv(fd, &byte, 1, MSG_PEEK | MSG_DONTWAIT);
    if (n == 0) return ClientProbe::Gone;
    if (n > 0) return ClientProbe::Busy;
    if (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return ClientProbe::Gone;
    }
    return ClientProbe::Idle;
  }
  if (probe.revents & kHupEvents) return ClientProbe::Gone;
  return ClientProbe::Idle;
}

std::size_t line_hash(const std::string& text) {
  return std::hash<std::string>{}(text);
}

/// `line` with `"trace":"<id>"` spliced in as the first field. Only called
/// on lines that parsed (so byte 0 is '{'); the splice point right after
/// the brace keeps every original byte — shard-side parsing is order-free.
std::string splice_trace(const std::string& line, const std::string& id) {
  std::string traced = line;
  traced.insert(1, "\"trace\":\"" + id + "\",");
  return traced;
}

}  // namespace

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      started_(std::chrono::steady_clock::now()) {
  const bool endpoint_mode = !options_.shards.empty();
  const bool spawn_mode = options_.spawn > 0;
  if (endpoint_mode == spawn_mode) {
    throw std::runtime_error(
        "pipeopt-router: configure either --shards or --spawn (exactly one)");
  }
  if (options_.window == 0) {
    throw std::runtime_error("pipeopt-router: --window must be positive");
  }
  if (options_.breaker_threshold == 0 || options_.breaker_close_successes == 0) {
    throw std::runtime_error(
        "pipeopt-router: breaker threshold/close-successes must be positive");
  }
  if (!options_.fault_spec.empty()) {
    const auto spec = net::parse_fault_spec(options_.fault_spec);
    if (!spec) {
      throw std::runtime_error("pipeopt-router: bad --fault-spec '" +
                               options_.fault_spec +
                               "' (want seed:prob:kind[,kind...])");
    }
    fault_ = std::make_unique<net::FaultInjector>(*spec);
    front_hooks_ = &fault_->front_io();
    relay_hooks_ = &fault_->relay_io();
  }
  if (spawn_mode) {
    for (std::size_t i = 0; i < options_.spawn; ++i) {
      auto shard = std::make_unique<Shard>();
      shard->host = "127.0.0.1";
      shard->healthy = false;  // up once spawned and announced
      shard->breaker = BreakerState::Open;
      shards_.push_back(std::move(shard));
    }
  } else {
    for (const ShardAddress& address : options_.shards) {
      auto shard = std::make_unique<Shard>();
      shard->host = address.host;
      shard->port = address.port;
      shards_.push_back(std::move(shard));
    }
  }
  if (!options_.trace_log.empty()) {
    trace_log_ = std::make_unique<obs::TraceLog>(options_.trace_log);
  }
  if (::pipe2(wake_pipe_, O_CLOEXEC) != 0) {
    throw std::runtime_error("pipeopt-router: cannot create wake pipe");
  }
}

Router::~Router() {
  shutdown();
  reap_sessions(/*all=*/true);
  stop_health_thread();
  terminate_children();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  ::close(wake_pipe_[0]);
  ::close(wake_pipe_[1]);
}

std::size_t Router::shard_count() const noexcept { return shards_.size(); }

std::vector<ShardInfo> Router::shard_infos() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<ShardInfo> infos;
  infos.reserve(shards_.size());
  for (const auto& shard : shards_) {
    infos.push_back(ShardInfo{shard->host, shard->port, shard->pid,
                              shard->healthy, shard->in_flight,
                              shard->breaker, shard->up_transitions,
                              shard->down_transitions});
  }
  return infos;
}

std::uint64_t Router::up_transitions() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->up_transitions;
  return total;
}

std::uint64_t Router::down_transitions() const {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->down_transitions;
  return total;
}

std::uint16_t Router::listen() {
  if (listen_fd_ >= 0) return port_;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("pipeopt-router: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("pipeopt-router: bad listen address '" +
                             options_.host + "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, options_.backlog) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("pipeopt-router: cannot listen on " +
                             options_.host + ":" +
                             std::to_string(options_.port) + ": " + reason);
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("pipeopt-router: getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;

  // Spawn before serving: a front tier with no backend would shed every
  // request of its first clients for one health interval.
  if (options_.spawn > 0) {
    for (std::size_t i = 0; i < shards_.size(); ++i) spawn_shard(i);
  }
  health_thread_ = std::thread([this] { health_loop(); });
  return port_;
}

void Router::serve() {
  listen();
  while (!stopping_.load(std::memory_order_relaxed)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown() or a signal woke us
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) continue;
    if (fault_ && fault_->accept_should_close()) {
      // Injected accept-then-close: the client sees its connection die
      // before a byte moves, so a retry is always safe.
      ::close(client);
      continue;
    }
    auto session = std::make_unique<Session>();
    Session* raw = session.get();
    raw->fd = client;
    raw->conns.resize(shards_.size());
    raw->thread = std::thread([this, raw] { session_loop(raw); });
    {
      const std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
    reap_sessions(/*all=*/false);
  }
  // Drain in dependency order: refuse new connections, half-close the
  // sessions so no further requests are read, let the in-flight forwards
  // finish and flush — and only then take the shard fleet down, so every
  // accepted request that can complete does.
  stopping_.store(true, std::memory_order_relaxed);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (const auto& session : sessions_) {
      if (session->fd >= 0) ::shutdown(session->fd, SHUT_RD);
    }
  }
  reap_sessions(/*all=*/true);
  stop_health_thread();
  terminate_children();
}

void Router::shutdown() {
  stopping_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Router::install_signal_handlers(Router& router) {
  g_signal_wake_fd.store(router.wake_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = signal_to_pipe;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);
}

void Router::reap_sessions(bool all) {
  std::vector<std::unique_ptr<Session>> finished;
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void Router::session_loop(Session* session) {
  FdLineReader reader(session->fd, front_hooks_);
  std::string line;
  while (reader.next_line(line)) {
    // A client stream that dies mid-line left a torn prefix, not a
    // request: never forward it (the shard would execute a request the
    // client never finished sending).
    if (!reader.last_terminated()) break;
    if (line.empty() || line == "\r") continue;
    if (handle_line(line, *session, reader.buffered()) == Relay::ClientGone) {
      break;
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
  }
  // Closing the shard connections first propagates the disconnect: a shard
  // still computing for this client sees its own session vanish and
  // cancels, exactly as if the client had connected to it directly.
  for (ShardConn& conn : session->conns) {
    if (conn.fd >= 0) {
      ::close(conn.fd);
      conn.fd = -1;
      conn.reader.reset();
    }
  }
  {
    const std::lock_guard<std::mutex> lock(sessions_mutex_);
    ::close(session->fd);
    session->fd = -1;
  }
  session->done.store(true, std::memory_order_release);
}

Router::Relay Router::handle_line(const std::string& line, Session& session,
                                  bool input_buffered) {
  // Zero point of the request's relative deadline: the moment its line
  // arrived (time spent in backpressure waits or retry backoff counts
  // against it).
  const util::Stopwatch arrival;
  io::JsonFields fields;
  bool parsed = true;
  try {
    fields = io::parse_flat_json(line);
  } catch (const io::ParseError&) {
    parsed = false;  // forward anyway: the shard's error line is the answer
  }
  std::string id;
  std::string type = "solve";
  std::uint64_t deadline_ms = 0;
  if (parsed) {
    for (const auto& [key, value] : fields) {
      if (key == "id") id = value;
      if (key == "type") type = value;
      if (key == "deadline_ms") {
        deadline_ms = std::strtoull(value.c_str(), nullptr, 10);
      }
    }
  }
  if (parsed && type == "ping") {
    io::FlatJsonWriter out;
    out.field("type", "pong");
    if (!id.empty()) out.field("id", id);
    return send_front(session.fd, std::move(out).str()) ? Relay::Done
                                                        : Relay::ClientGone;
  }
  if (parsed && type == "health") {
    answer_health(id, session.fd);
    return Relay::Done;
  }
  if (parsed && type == "stats") {
    answer_stats(id, session.fd);
    return Relay::Done;
  }
  if (parsed && type == "metrics") {
    answer_metrics(id, session.fd);
    return Relay::Done;
  }

  // The routing key: canonical request bytes where the line parses (so
  // wire-presentation differences — field order, whitespace, an `id` —
  // cannot split byte-equivalent work across shards), raw bytes otherwise
  // (identical garbage still lands on one shard).
  std::size_t key_hash = line_hash(line);
  bool streamed = false;
  if (parsed && type == "solve") {
    try {
      const io::WireSolveRequest wire = io::parse_solve_request(fields);
      key_hash = line_hash(io::format_solve_key(wire.problem, wire.request));
    } catch (const std::exception&) {
    }
  } else if (parsed && type == "pareto") {
    streamed = true;
    try {
      const io::WireParetoRequest wire = io::parse_pareto_request(fields);
      key_hash = line_hash(io::format_pareto_request(wire.problem, wire.request));
    } catch (const std::exception&) {
    }
  }
  // The router's own phase is `relay`: forward plus response stream,
  // recorded per solve/pareto line. With a trace log configured the
  // request additionally carries a fleet-wide id — reused from the wire
  // when the client sent one, generated and spliced into the forwarded
  // bytes otherwise — so the router's span line and the shard's join on
  // it. The splice happens after key_hash was computed, so sticky routing
  // sees identical bytes with tracing on or off.
  const bool traceable = parsed && (type == "solve" || type == "pareto");
  if (trace_log_ != nullptr && traceable) {
    std::string trace_id;
    for (const auto& [key, value] : fields) {
      if (key == "trace") trace_id = value;
    }
    const bool splice = trace_id.empty();
    obs::TraceContext trace(std::move(trace_id), &metrics_);
    const util::Stopwatch watch;
    const Relay relay =
        forward_line(splice ? splice_trace(line, trace.id()) : line, id,
                     streamed, key_hash, session, input_buffered, deadline_ms,
                     arrival);
    const auto total_us = static_cast<std::uint64_t>(watch.elapsed_micros());
    trace.record("relay", total_us);
    trace_log_->write(trace, type, id, total_us);
    return relay;
  }
  const util::Stopwatch watch;
  const Relay relay = forward_line(line, id, streamed, key_hash, session,
                                   input_buffered, deadline_ms, arrival);
  if (traceable) {
    metrics_.histogram("phase.relay")
        .record_us(static_cast<std::uint64_t>(watch.elapsed_micros()));
  }
  return relay;
}

Router::Admit Router::acquire_slot(std::size_t key_hash,
                                   std::size_t& shard_index, int client_fd,
                                   bool watching,
                                   const std::vector<bool>& tried,
                                   std::uint64_t deadline_ms,
                                   const util::Stopwatch& arrival) {
  std::unique_lock<std::mutex> lock(state_mutex_);
  for (;;) {
    // Deadline-aware admission: a request whose relative deadline already
    // elapsed (arrival-relative, so backpressure waits count) is shed
    // typed instead of burning a shard slot on unwanted work.
    if (deadline_ms > 0 &&
        arrival.elapsed_seconds() * 1000.0 >= static_cast<double>(deadline_ms)) {
      return Admit::Expired;
    }
    const std::size_t n = shards_.size();
    std::size_t healthy = 0;
    std::size_t sticky = n;
    bool any_free = false;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t i = (key_hash + k) % n;
      if (!shards_[i]->healthy) continue;
      ++healthy;
      if (tried[i]) continue;  // already failed this request: fail over
      if (sticky == n) sticky = i;
      if (shards_[i]->in_flight < options_.window) any_free = true;
    }
    if (healthy == 0) return Admit::Unavailable;
    if (sticky == n) return Admit::Exhausted;
    if (shards_[sticky]->in_flight < options_.window) {
      ++shards_[sticky]->in_flight;
      shard_index = sticky;
      return Admit::Ok;
    }
    // Sticky target saturated. With the whole fleet saturated a
    // deadline-less request is shed now (queueing would just move the
    // overload into the router); one that carries a deadline told us how
    // long it is willing to wait, so it queues until a slot frees or the
    // loop top sheds it typed `expired`. With room elsewhere the request
    // WAITS for its sticky shard instead of spilling — stickiness is what
    // keeps the shard caches coherent, and a saturated-but-alive shard
    // frees a slot soon.
    if (!any_free && deadline_ms == 0) return Admit::Overloaded;
    state_changed_.wait_for(lock, kSlotWaitInterval);
    if (watching) {
      lock.unlock();
      const ClientProbe probe = probe_client(client_fd);
      lock.lock();
      if (probe == ClientProbe::Gone) return Admit::ClientGone;
      if (probe == ClientProbe::Busy) watching = false;
    }
  }
}

void Router::release_slot(std::size_t shard_index) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    Shard& shard = *shards_[shard_index];
    if (shard.in_flight > 0) --shard.in_flight;
  }
  state_changed_.notify_all();
}

void Router::mark_down(std::size_t shard_index) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    Shard& shard = *shards_[shard_index];
    shard.consecutive_ok = 0;
    if (shard.breaker == BreakerState::Open) return;
    // Only Closed→Open counts as a down transition: a half-open shard
    // already left rotation when it opened (the flapping invariant the
    // chaos tests assert — oscillating probes must not pump the counter).
    if (shard.breaker == BreakerState::Closed) ++shard.down_transitions;
    shard.breaker = BreakerState::Open;
    shard.healthy = false;
    shard.opened_at = std::chrono::steady_clock::now();
  }
  // Waiters re-resolve their sticky target (or flip to Overloaded/
  // Unavailable) against the new fleet shape.
  state_changed_.notify_all();
}

void Router::mark_up(std::size_t shard_index) {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    Shard& shard = *shards_[shard_index];
    shard.strikes = 0;
    shard.consecutive_ok = 0;
    if (shard.breaker == BreakerState::Closed) return;
    shard.breaker = BreakerState::Closed;
    shard.healthy = true;
    ++shard.up_transitions;
  }
  state_changed_.notify_all();
}

void Router::record_failure(std::size_t shard_index) {
  bool flipped = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    Shard& shard = *shards_[shard_index];
    shard.consecutive_ok = 0;
    switch (shard.breaker) {
      case BreakerState::Closed:
        // Strikes survive isolated successes: only close_successes
        // consecutive successes annul them (record_success), so an
        // alternating accept/refuse shard still converges to Open.
        if (++shard.strikes >= options_.breaker_threshold) {
          shard.breaker = BreakerState::Open;
          shard.healthy = false;
          shard.opened_at = std::chrono::steady_clock::now();
          ++shard.down_transitions;
          flipped = true;
        }
        break;
      case BreakerState::HalfOpen:
        // Failed recovery probe: back to Open with a fresh cooldown. No
        // down transition — the shard never re-entered rotation.
        shard.breaker = BreakerState::Open;
        shard.opened_at = std::chrono::steady_clock::now();
        break;
      case BreakerState::Open:
        break;  // request-path stragglers; nothing new to learn
    }
  }
  if (flipped) state_changed_.notify_all();
}

void Router::record_success(std::size_t shard_index) {
  bool flipped = false;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    Shard& shard = *shards_[shard_index];
    ++shard.consecutive_ok;
    if (shard.consecutive_ok < options_.breaker_close_successes) return;
    if (shard.breaker == BreakerState::Closed) {
      shard.strikes = 0;  // a genuinely recovered shard sheds its history
    } else {
      shard.breaker = BreakerState::Closed;
      shard.healthy = true;
      shard.strikes = 0;
      ++shard.up_transitions;
      flipped = true;
    }
  }
  if (flipped) state_changed_.notify_all();
}

bool Router::ensure_conn(Session& session, std::size_t shard_index) {
  ShardConn& conn = session.conns[shard_index];
  if (conn.fd >= 0) return true;
  std::string host;
  std::uint16_t port = 0;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    host = shards_[shard_index]->host;
    port = shards_[shard_index]->port;
  }
  if (port == 0) return false;  // spawn pending: no endpoint yet
  if (fault_ && fault_->connect_should_refuse()) return false;
  const int fd = connect_endpoint(host, port, std::chrono::milliseconds(0));
  if (fd < 0) return false;
  conn.fd = fd;
  conn.reader = std::make_unique<FdLineReader>(fd, relay_hooks_);
  return true;
}

bool Router::send_front(int fd, std::string line) const {
  return write_line(fd, std::move(line), front_hooks_);
}

Router::Relay Router::forward_line(const std::string& line,
                                   const std::string& id, bool streamed,
                                   std::size_t key_hash, Session& session,
                                   bool input_buffered,
                                   std::uint64_t deadline_ms,
                                   const util::Stopwatch& arrival) {
  // The retry budget: each failover or stale-connection retry consumes
  // one attempt. The default (retries == 0) keeps the historical budget
  // of one attempt per shard plus one stale-connection retry; exhaustion
  // means every option failed even though probes say shards are up —
  // answer typed, don't spin. Backoff between attempts follows the shared
  // RetryPolicy, seeded by the routing key so a replayed request replays
  // its exact schedule.
  const std::size_t max_attempts = options_.retries > 0
                                       ? options_.retries + 1
                                       : shards_.size() + 1;
  util::RetryPolicy policy;
  policy.retries = max_attempts - 1;
  policy.backoff_ms =
      static_cast<std::uint64_t>(options_.retry_backoff.count());
  policy.seed = static_cast<std::uint64_t>(key_hash);
  std::size_t attempt = 0;  // failures so far
  // Shards that already failed this request on a fresh connection; the
  // failover scan skips them so a striking-but-not-yet-open shard cannot
  // eat the whole budget.
  std::vector<bool> tried(shards_.size(), false);
  const auto respond_error = [&](const std::string& code,
                                 const std::string& message) {
    ++shed_;
    return send_front(session.fd, io::format_error(message, id, code))
               ? Relay::Done
               : Relay::ClientGone;
  };
  // Counts one consumed attempt under `code`; returns false when the
  // budget is exhausted (time to answer typed).
  const auto count_retry = [&](const char* code) {
    ++retries_;
    metrics_.counter(std::string("retries_by_code.") + code).add(1);
    ++attempt;
    if (attempt >= max_attempts) return false;
    const std::uint64_t delay = policy.delay_ms(attempt - 1);
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    return true;
  };
  for (;;) {
    std::size_t shard = 0;
    switch (acquire_slot(key_hash, shard, session.fd, !input_buffered, tried,
                         deadline_ms, arrival)) {
      case Admit::Overloaded:
        return respond_error("overloaded",
                             "every shard is at its in-flight window");
      case Admit::Unavailable:
        return respond_error("unavailable", "no healthy shard available");
      case Admit::Exhausted:
        // Every shard failed this request once. Transient faults (a
        // dropped accept, a stale pool entry) are exactly what the
        // budget is for: while attempts remain, wipe the tried set and
        // take another round — each failure already consumed an attempt
        // and slept its backoff, so this cannot spin.
        if (attempt < max_attempts) {
          std::fill(tried.begin(), tried.end(), false);
          continue;
        }
        return respond_error("unavailable", "request failed on every shard");
      case Admit::Expired:
        ++shed_expired_;
        metrics_.counter("shed_expired").add(1);
        return send_front(session.fd,
                          io::format_error("deadline expired before dispatch",
                                           id, "expired"))
                   ? Relay::Done
                   : Relay::ClientGone;
      case Admit::ClientGone:
        return Relay::ClientGone;
      case Admit::Ok:
        break;
    }

    // A connection that existed before this attempt may be stale (the
    // shard restarted since); its failure earns one retry on a fresh
    // connection to the SAME shard before the shard takes a strike.
    const bool reused = session.conns[shard].fd >= 0;
    const auto drop_conn = [&] {
      ShardConn& conn = session.conns[shard];
      if (conn.fd >= 0) ::close(conn.fd);
      conn.fd = -1;
      conn.reader.reset();
    };
    if (!ensure_conn(session, shard)) {
      release_slot(shard);
      record_failure(shard);
      tried[shard] = true;
      if (!count_retry("connect")) {
        return respond_error("unavailable", "request failed on every shard");
      }
      continue;
    }
    ShardConn& conn = session.conns[shard];

    bool shard_dead = !write_line(conn.fd, line, relay_hooks_);
    bool relayed_bytes = false;
    bool watching = !input_buffered;
    std::string response;
    while (!shard_dead) {
      // Wait until the shard connection is readable, watching the client
      // meanwhile: a vanished client gets its shard connection closed,
      // which cancels the in-flight work shard-side.
      for (;;) {
        if (conn.reader->buffered()) break;
        pollfd probe{conn.fd, static_cast<short>(POLLIN | kHupEvents), 0};
        const int ready =
            ::poll(&probe, 1, static_cast<int>(kWatchInterval.count()));
        if (ready > 0) break;
        if (ready < 0 && errno != EINTR) break;
        if (watching) {
          switch (probe_client(session.fd)) {
            case ClientProbe::Gone:
              drop_conn();
              release_slot(shard);
              return Relay::ClientGone;
            case ClientProbe::Busy:
              watching = false;
              break;
            case ClientProbe::Idle:
              break;
          }
        }
      }
      if (!conn.reader->next_line(response) || !conn.reader->last_terminated()) {
        // EOF, or a torn line: a response fragment must never reach the
        // client as if it were a complete wire message.
        shard_dead = true;
        break;
      }
      if (!send_front(session.fd, response)) {
        drop_conn();  // mid-response client loss: cancel shard-side too
        release_slot(shard);
        return Relay::ClientGone;
      }
      relayed_bytes = true;
      if (!streamed || response_type(response) != "result") {
        // Single-line response, the pareto terminal summary, or a typed
        // error line: the response is complete.
        release_slot(shard);
        ++routed_;
        record_success(shard);
        return Relay::Done;
      }
    }

    // The shard connection died. With response bytes already relayed the
    // request cannot be retried (the client would see a torn stream); a
    // typed error closes the response instead — the client may re-send it
    // under its own policy if (and only if) the request is idempotent.
    drop_conn();
    release_slot(shard);
    if (relayed_bytes) {
      record_failure(shard);
      ++shard_lost_errors_;
      return send_front(session.fd,
                        io::format_error("shard connection lost mid-response",
                                         id, "shard-lost"))
                 ? Relay::Done
                 : Relay::ClientGone;
    }
    // Nothing relayed: safe to resend. A reused connection's death is
    // first blamed on the connection (shard may have restarted behind
    // it); a fresh connection's death earns the shard a strike and takes
    // it out of this request's scan.
    if (!reused) {
      record_failure(shard);
      tried[shard] = true;
    }
    if (!count_retry("transport")) {
      return respond_error("unavailable", "request failed on every shard");
    }
  }
}

void Router::answer_metrics(const std::string& id, int out_fd) {
  // Same fan-out shape as answer_stats, but the merge goes through
  // obs::merge_metrics_fields: derived quantile fields are stripped from
  // every shard snapshot, the summable counter/bucket fields sum, and the
  // fleet quantiles are re-derived from the merged buckets — a merging
  // tier never averages two medians. The router's own snapshot goes first
  // so its `phase.relay` fields lead the merged block.
  struct Liveness {
    bool up;
    std::size_t in_flight;
    BreakerState breaker;
  };
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  std::size_t up = 0;
  std::vector<Liveness> liveness;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    for (const auto& shard : shards_) {
      liveness.push_back(
          Liveness{shard->healthy, shard->in_flight, shard->breaker});
      if (!shard->healthy) continue;
      ++up;
      endpoints.emplace_back(shard->host, shard->port);
    }
  }
  std::vector<obs::MetricFields> snapshots;
  snapshots.push_back(metrics_.snapshot());
  for (const auto& [host, port] : endpoints) {
    const int fd = connect_endpoint(host, port, options_.probe_timeout);
    if (fd < 0) continue;
    if (write_line(fd, "{\"type\":\"metrics\"}")) {
      FdLineReader reader(fd);
      std::string response;
      if (reader.next_line(response) && response_type(response) == "metrics") {
        try {
          snapshots.push_back(io::parse_flat_json(response));
        } catch (const io::ParseError&) {
          // A torn shard line must not kill the whole answer.
        }
      }
    }
    ::close(fd);
  }
  obs::MetricFields merged;
  try {
    merged = obs::merge_metrics_fields(snapshots);
  } catch (const std::exception&) {
    merged.clear();
  }

  io::FlatJsonWriter out;
  out.field("type", "metrics");
  if (!id.empty()) out.field("id", id);
  out.field("shards", std::to_string(shards_.size()));
  out.field("shards_up", std::to_string(up));
  for (std::size_t i = 0; i < liveness.size(); ++i) {
    const std::string prefix = "shard." + std::to_string(i) + ".";
    out.field(prefix + "up", liveness[i].up ? "1" : "0");
    out.field(prefix + "in_flight", std::to_string(liveness[i].in_flight));
    out.field(prefix + "breaker_state",
              std::to_string(static_cast<int>(liveness[i].breaker)));
  }
  for (const auto& [key, value] : merged) out.field(key, value);
  send_front(out_fd, std::move(out).str());
}

void Router::answer_health(const std::string& id, int out_fd) {
  const double uptime = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_)
                            .count();
  std::size_t up = 0;
  std::size_t in_flight = 0;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    for (const auto& shard : shards_) {
      if (shard->healthy) ++up;
      in_flight += shard->in_flight;
    }
  }
  io::FlatJsonWriter out;
  out.field("type", "health");
  if (!id.empty()) out.field("id", id);
  out.field("pid", std::to_string(::getpid()));
  out.field("uptime_s", io::format_double_exact(uptime));
  out.field("in_flight", std::to_string(in_flight));
  out.field("shards", std::to_string(shards_.size()));
  out.field("shards_up", std::to_string(up));
  send_front(out_fd, std::move(out).str());
}

void Router::answer_stats(const std::string& id, int out_fd) {
  // Fan out to the healthy shards over short-lived probe connections (the
  // session's cached connections would work too, but a down shard must
  // not stall the merge — the probe timeout bounds each leg).
  std::vector<std::pair<std::string, std::uint16_t>> endpoints;
  std::size_t up = 0;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    for (const auto& shard : shards_) {
      if (!shard->healthy) continue;
      ++up;
      endpoints.emplace_back(shard->host, shard->port);
    }
  }
  std::vector<std::string> lines;
  for (const auto& [host, port] : endpoints) {
    const int fd = connect_endpoint(host, port, options_.probe_timeout);
    if (fd < 0) continue;
    if (write_line(fd, "{\"type\":\"stats\"}")) {
      FdLineReader reader(fd);
      std::string response;
      if (reader.next_line(response) && response_type(response) == "stats") {
        lines.push_back(std::move(response));
      }
    }
    ::close(fd);
  }
  io::JsonFields merged;
  try {
    merged = io::merge_stats_lines(lines);
  } catch (const std::exception&) {
    merged.clear();  // a torn shard line must not kill the whole answer
  }

  io::FlatJsonWriter out;
  out.field("type", "stats");
  if (!id.empty()) out.field("id", id);
  out.field("shards", std::to_string(shards_.size()));
  out.field("shards_up", std::to_string(up));
  out.field("routed", std::to_string(routed_.load()));
  out.field("shed", std::to_string(shed_.load()));
  out.field("shed_expired", std::to_string(shed_expired_.load()));
  out.field("retries", std::to_string(retries_.load()));
  out.field("restarts", std::to_string(restarts_.load()));
  out.field("shard_up_transitions", std::to_string(up_transitions()));
  out.field("shard_down_transitions", std::to_string(down_transitions()));
  out.field("shard_lost_errors", std::to_string(shard_lost_errors_.load()));
  for (const auto& [key, value] : merged) out.field(key, value);
  send_front(out_fd, std::move(out).str());
}

void Router::health_loop() {
  std::unique_lock<std::mutex> lock(health_mutex_);
  while (!health_stop_) {
    health_wake_.wait_for(lock, options_.health_interval);
    if (health_stop_) break;
    lock.unlock();
    check_shards();
    lock.lock();
  }
}

void Router::check_shards() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::string host;
    std::uint16_t port = 0;
    pid_t pid = -1;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      host = shards_[i]->host;
      port = shards_[i]->port;
      pid = shards_[i]->pid;
    }
    if (options_.spawn > 0) {
      if (pid > 0) {
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
          // The child is gone (killed, crashed, OOMed). Mark it down first
          // so no new request targets the dead port, then respawn.
          mark_down(i);
          {
            const std::lock_guard<std::mutex> lock(state_mutex_);
            shards_[i]->pid = -1;
            if (shards_[i]->stdout_fd >= 0) {
              ::close(shards_[i]->stdout_fd);
              shards_[i]->stdout_fd = -1;
            }
          }
          pid = -1;
        }
      }
      if (pid <= 0) {
        try {
          spawn_shard(i);
          ++restarts_;
        } catch (const std::exception&) {
          continue;  // stays down; retried next interval
        }
        const std::lock_guard<std::mutex> lock(state_mutex_);
        host = shards_[i]->host;
        port = shards_[i]->port;
      }
    }
    if (port == 0) {
      mark_down(i);
      continue;
    }
    // An open breaker gates its recovery probes behind the cooldown;
    // once it elapses the shard moves to HalfOpen and the probe outcome
    // decides (breaker_close_successes successes close it,
    // record_failure re-opens with a fresh cooldown).
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      Shard& shard = *shards_[i];
      if (shard.breaker == BreakerState::Open) {
        if (std::chrono::steady_clock::now() <
            shard.opened_at + options_.breaker_cooldown) {
          continue;
        }
        shard.breaker = BreakerState::HalfOpen;
      }
    }
    // The probe: connect, ping `{"type":"health"}`, expect the typed
    // answer within the probe timeout. The health handler is constant-time
    // server-side, so a timeout means wedged, not busy. Probes use plain
    // (un-hooked) IO on purpose: fault campaigns stay deterministic per
    // request stream, and breaker state reflects the shard, not the shim.
    bool alive = false;
    const int fd = connect_endpoint(host, port, options_.probe_timeout);
    if (fd >= 0) {
      if (write_line(fd, "{\"type\":\"health\"}")) {
        FdLineReader reader(fd);
        std::string response;
        alive = reader.next_line(response) && reader.last_terminated() &&
                response_type(response) == "health";
      }
      ::close(fd);
    }
    if (alive) {
      record_success(i);
    } else {
      record_failure(i);
    }
  }
}

void Router::spawn_shard(std::size_t shard_index) {
  int announce[2];
  if (::pipe2(announce, O_CLOEXEC) != 0) {
    throw std::runtime_error("pipeopt-router: cannot create announce pipe");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(announce[0]);
    ::close(announce[1]);
    throw std::runtime_error("pipeopt-router: fork() failed");
  }
  if (pid == 0) {
    // Child: stdout carries the port announcement to the router (dup2
    // clears close-on-exec on the duplicate); stderr stays shared.
    ::dup2(announce[1], STDOUT_FILENO);
    std::vector<std::string> args{options_.spawn_binary, "serve",
                                  "--host",             "127.0.0.1",
                                  "--port",             "0"};
    if (options_.spawn_jobs > 0) {
      args.push_back("--jobs");
      args.push_back(std::to_string(options_.spawn_jobs));
    }
    if (options_.spawn_cache_entries > 0) {
      args.push_back("--cache-entries");
      args.push_back(std::to_string(options_.spawn_cache_entries));
    }
    if (!options_.spawn_trace_log.empty()) {
      args.push_back("--trace-log");
      args.push_back(options_.spawn_trace_log + "." +
                     std::to_string(shard_index) + ".jsonl");
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(options_.spawn_binary.c_str(), argv.data());
    ::_exit(127);  // exec failed; the parent sees EOF before any announce
  }
  ::close(announce[1]);

  // Parent: wait for "pipeopt-server listening on H:P" on the child's
  // stdout, bounded by kSpawnDeadline (a child that dies first closes the
  // pipe and fails the parse immediately).
  const auto deadline = std::chrono::steady_clock::now() + kSpawnDeadline;
  std::string buffered;
  std::uint16_t port = 0;
  bool announced = false;
  while (!announced) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) break;
    pollfd probe{announce[0], POLLIN, 0};
    const int ready = ::poll(&probe, 1, static_cast<int>(remaining.count()));
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      break;
    }
    char chunk[256];
    const ssize_t n = ::read(announce[0], chunk, sizeof chunk);
    if (n < 0 && errno == EINTR) continue;  // interrupted, not EOF
    if (n <= 0) break;  // EOF: the child died before announcing
    buffered.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while (!announced && (newline = buffered.find('\n')) != std::string::npos) {
      const std::string line = buffered.substr(0, newline);
      buffered.erase(0, newline + 1);
      constexpr const char kMarker[] = " listening on ";
      const std::size_t at = line.find(kMarker);
      const std::size_t colon = line.rfind(':');
      if (at == std::string::npos || colon == std::string::npos) continue;
      unsigned long value = 0;
      bool numeric = colon + 1 < line.size();
      for (std::size_t j = colon + 1; j < line.size(); ++j) {
        if (line[j] < '0' || line[j] > '9') {
          numeric = false;
          break;
        }
        value = value * 10 + static_cast<unsigned long>(line[j] - '0');
      }
      if (!numeric || value == 0 || value > 65535) continue;
      port = static_cast<std::uint16_t>(value);
      announced = true;
    }
  }
  if (!announced) {
    ::close(announce[0]);
    ::kill(pid, SIGKILL);
    while (::waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {
    }
    throw std::runtime_error("pipeopt-router: spawned shard " +
                             std::to_string(shard_index) +
                             " failed to announce a port");
  }
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    Shard& shard = *shards_[shard_index];
    shard.host = "127.0.0.1";
    shard.port = port;
    shard.pid = pid;
    // Keep the announce pipe open for the child's lifetime: closing it
    // would turn any later stdout write in the child into EPIPE noise.
    shard.stdout_fd = announce[0];
  }
  mark_up(shard_index);
}

void Router::stop_health_thread() {
  {
    const std::lock_guard<std::mutex> lock(health_mutex_);
    health_stop_ = true;
  }
  health_wake_.notify_all();
  if (health_thread_.joinable()) health_thread_.join();
}

void Router::terminate_children() {
  if (options_.spawn == 0) return;
  // SIGTERM everyone first (they drain concurrently), then reap.
  std::vector<pid_t> pids;
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    for (const auto& shard : shards_) {
      if (shard->pid > 0) {
        ::kill(shard->pid, SIGTERM);
        pids.push_back(shard->pid);
        shard->pid = -1;
      }
      if (shard->stdout_fd >= 0) {
        ::close(shard->stdout_fd);
        shard->stdout_fd = -1;
      }
      shard->healthy = false;
    }
  }
  for (const pid_t pid : pids) {
    while (::waitpid(pid, nullptr, 0) < 0 && errno == EINTR) {
    }
  }
}

}  // namespace pipeopt::router
