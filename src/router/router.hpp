#pragma once

/// \file router.hpp
/// pipeopt-router: the sharded front tier in front of N `pipeopt-server`
/// processes — the horizontal half of the serving story (CLI:
/// `pipeopt route --shards host:port,... | --spawn N`).
///
/// The router speaks the exact server wire protocol on its front side
/// (docs/PROTOCOL.md) and forwards almost every line verbatim to one
/// backend shard, streaming the response bytes back untouched — a routed
/// solve, batch stream or pareto stream is byte-identical to what a
/// single `pipeopt-server` would have answered. Three request types are
/// answered at the router itself:
///
///  * `{"type":"ping"}` — router liveness, answered inline.
///  * `{"type":"health"}` — router pid/uptime/in-flight plus shard counts.
///  * `{"type":"stats"}` — fanned out to every healthy shard; the shard
///    counters come back merged field-wise (io/stats_io.hpp), prefixed by
///    the router-level fields: shards, shards_up, routed, shed,
///    shed_expired, retries, restarts, shard_up_transitions,
///    shard_down_transitions, shard_lost_errors.
///  * `{"type":"metrics"}` — fanned out likewise; the shard metric
///    snapshots and the router's own (its `phase.relay` histogram and the
///    `retries_by_code.*` / `shed_expired` counters) merge bucket-wise
///    through `obs::merge_metrics_fields`, quantiles re-derived from the
///    merged buckets, prefixed by per-shard liveness fields
///    (`shard.<i>.up`, `shard.<i>.in_flight`, `shard.<i>.breaker_state`)
///    for the `pipeopt top` view.
///
/// Tracing (`--trace-log`): the router peeks each solve/pareto line's
/// optional `"trace"` id, generates one when absent and splices it into the
/// forwarded bytes, so the shard's span log and the router's share one id
/// per request (obs/trace.hpp). Responses are relayed untouched — routed
/// bytes stay identical with tracing on or off.
///
/// Routing is sticky by request identity: a solve line hashes its
/// canonical cache-key bytes (`io::format_solve_key` — already the
/// `api::SolveCache` key), a pareto line its canonical sweep form, so
/// byte-equivalent requests always land on the same shard and the
/// per-shard solve caches are shard-coherent for free — a fleet of
/// cache-enabled shards behaves like one big cache with no invalidation
/// protocol. An unparseable line hashes its raw bytes and is forwarded
/// anyway: the shard produces the exact error line a single server would.
///
/// Robustness:
///
///  * Each shard carries a circuit breaker (see docs/RESILIENCE.md).
///    Failures — failed relay connects, connections that die before a
///    response byte, failed health probes — add strikes; at
///    `breaker_threshold` consecutive strikes the breaker opens and the
///    shard leaves rotation. An open breaker admits only timed half-open
///    health probes; `breaker_close_successes` consecutive successes
///    close it. Hard evidence short-circuits the ladder: a reaped child
///    opens the breaker at once, a spawn announce closes it. A request
///    whose sticky shard is open fails over to the next closed shard in
///    hash order. In `--spawn` mode the probe loop also reaps dead
///    children and restarts them on a fresh ephemeral port.
///  * Failover is budgeted by a shared `util::RetryPolicy`
///    (`--retries/--backoff-ms`; the default budget is one attempt per
///    shard plus one stale-connection retry) with capped exponential
///    backoff between attempts, each attempt targeting a shard not yet
///    tried for this request.
///  * Deadline-aware admission: a request whose relative `deadline_ms`
///    has already elapsed by the time a slot frees is shed with a typed
///    `{"type":"error","code":"expired"}` line instead of forwarded —
///    work the client stopped waiting for never burns a shard slot.
///  * Each shard carries a bounded in-flight window. A request whose
///    sticky shard is saturated waits (backpressure — stickiness is worth
///    more than latency while any slot may free); when EVERY healthy
///    shard is saturated it is shed immediately with a typed
///    `{"type":"error","code":"overloaded"}` line, and with no healthy
///    shard at all with `code":"unavailable"`. The connection survives
///    either way.
///  * A shard that dies mid-request: if no response byte was relayed yet
///    the request is retried — first on a fresh connection to the same
///    shard (a restarted shard's stale connections heal transparently),
///    then failing over — and only a mid-stream loss surfaces as a typed
///    `{"type":"error","code":"shard-lost"}` line.
///  * While a forward is in flight the session watches the client
///    connection exactly like the server does; a vanished client gets its
///    shard connection closed, which propagates the disconnect (and the
///    in-flight cancellation) to the shard.
///
/// Shutdown mirrors the server: `shutdown()` (wired to SIGINT/SIGTERM by
/// `install_signal_handlers`) stops accepting, half-closes sessions, lets
/// in-flight forwards finish, then — spawn mode — SIGTERMs the shards and
/// reaps them: requests drain first, shards second.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <sys/types.h>
#include <thread>
#include <vector>

#include "io/json.hpp"
#include "net/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fdio.hpp"
#include "util/retry.hpp"
#include "util/timing.hpp"

namespace pipeopt::router {

/// One backend `pipeopt-server` endpoint.
struct ShardAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct RouterOptions {
  /// Listen address of the front tier.
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via `port()`).
  std::uint16_t port = 0;
  /// Endpoint mode: route across these already-running servers. Mutually
  /// exclusive with `spawn`.
  std::vector<ShardAddress> shards;
  /// Spawn mode: fork/exec this many local `pipeopt-server` children on
  /// ephemeral ports and supervise them (restart on death).
  std::size_t spawn = 0;
  /// Binary to exec in spawn mode. The default re-execs the running
  /// binary (Linux), which is exactly right for the `pipeopt route` CLI.
  std::string spawn_binary = "/proc/self/exe";
  /// `serve --jobs` for spawned shards; 0 = hardware concurrency.
  std::size_t spawn_jobs = 0;
  /// `serve --cache-entries` for spawned shards; 0 = cache off.
  std::size_t spawn_cache_entries = 0;
  /// Max in-flight requests per shard before backpressure/shedding.
  std::size_t window = 64;
  /// Health probe period (also the shard-restart detection latency).
  std::chrono::milliseconds health_interval{250};
  /// Socket send/receive timeout on health probes: a wedged shard must
  /// fail the probe, not hang the probe loop.
  std::chrono::milliseconds probe_timeout{2000};
  /// listen(2) backlog of the front tier.
  int backlog = 128;
  /// Span-log path of the router itself (`route --trace-log FILE`); empty
  /// = tracing off. When set, every forwarded solve/pareto request appends
  /// one JSONL line (its `relay` span plus the shard index), and the
  /// router splices a generated `"trace"` id into forwarded lines that
  /// carry none — see the file comment. Routed bytes are unchanged.
  std::string trace_log{};
  /// Spawn mode: per-shard span-log prefix; shard i logs to
  /// `<prefix>.<i>.jsonl` (passed as the child's `serve --trace-log`).
  /// Empty = shards run untraced.
  std::string spawn_trace_log{};
  /// Extra forward attempts after the first per request (`route
  /// --retries`); 0 = auto: one attempt per shard plus one
  /// stale-connection retry (the historical failover budget).
  std::size_t retries = 0;
  /// Base backoff between failed forward attempts (`route --backoff-ms`);
  /// doubles per attempt with deterministic jitter (util/retry.hpp), 0 =
  /// no delay.
  std::chrono::milliseconds retry_backoff{5};
  /// Consecutive failures (strikes) that open a shard's circuit breaker.
  std::size_t breaker_threshold = 3;
  /// Consecutive successes that close an open/half-open breaker (and
  /// clear accumulated strikes on a closed one).
  std::size_t breaker_close_successes = 2;
  /// Minimum time an open breaker holds before half-open probes resume
  /// (`route --breaker-cooldown-ms`); 0 = probe at the next interval.
  std::chrono::milliseconds breaker_cooldown{0};
  /// Deterministic fault injection (`route --fault-spec seed:prob:kinds`,
  /// net/fault.hpp grammar); empty = off. `close` drops freshly accepted
  /// front connections, `refuse` fails relay connects, `truncate`/
  /// `partial`/`delay` hook the front and relay read/write paths. Health
  /// probes and stats fan-out stay un-hooked so fault campaigns are
  /// deterministic per request stream.
  std::string fault_spec{};
};

/// Circuit-breaker state of one shard (docs/RESILIENCE.md).
enum class BreakerState {
  Closed = 0,    ///< in rotation
  HalfOpen = 1,  ///< out of rotation; probes may close it
  Open = 2,      ///< out of rotation; probes gated by the cooldown
};

/// Live view of one shard, for announcements, tests and the CLI.
struct ShardInfo {
  std::string host;
  std::uint16_t port = 0;
  pid_t pid = -1;  ///< -1 in endpoint mode
  bool healthy = false;  ///< derived: breaker == Closed
  std::size_t in_flight = 0;
  BreakerState breaker = BreakerState::Closed;
  std::uint64_t up_transitions = 0;
  std::uint64_t down_transitions = 0;
};

class Router {
 public:
  /// Validates options; spawn-mode children are NOT started here but in
  /// `listen()` (so a constructed-but-never-served router owns no
  /// processes). \throws std::runtime_error on empty/ambiguous shard
  /// configuration.
  explicit Router(RouterOptions options);
  /// Joins everything still running (via shutdown) and, in spawn mode,
  /// terminates and reaps the children.
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Binds and listens, spawns the shards (spawn mode) and starts the
  /// health thread; returns the bound front port. \throws
  /// std::runtime_error on bind or spawn failures.
  std::uint16_t listen();

  /// Accept loop until `shutdown()`; implies `listen()`. When this
  /// returns, every session is joined, every response flushed, and spawn
  /// mode shards are terminated and reaped.
  void serve();

  /// Initiates graceful shutdown (see the file comment). Thread-safe,
  /// idempotent, returns immediately.
  void shutdown();

  /// Routes SIGINT/SIGTERM to `shutdown()` (one router per process; the
  /// last call wins) and ignores SIGPIPE.
  static void install_signal_handlers(Router& router);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] std::size_t shard_count() const noexcept;
  [[nodiscard]] std::vector<ShardInfo> shard_infos() const;

  // Router-level counters (the `stats` fields of the same name).
  [[nodiscard]] std::uint64_t routed() const noexcept { return routed_; }
  [[nodiscard]] std::uint64_t shed() const noexcept { return shed_; }
  [[nodiscard]] std::uint64_t shed_expired() const noexcept {
    return shed_expired_;
  }
  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }
  [[nodiscard]] std::uint64_t restarts() const noexcept { return restarts_; }
  [[nodiscard]] std::uint64_t shard_lost_errors() const noexcept {
    return shard_lost_errors_;
  }
  [[nodiscard]] std::uint64_t up_transitions() const;
  [[nodiscard]] std::uint64_t down_transitions() const;

  /// The router's own metric registry — what its `{"type":"metrics"}`
  /// answer merges in ahead of the shard snapshots.
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// The fault injector behind `--fault-spec`; nullptr when injection is
  /// off (chaos tests assert on its injected() counters).
  [[nodiscard]] net::FaultInjector* fault_injector() noexcept {
    return fault_.get();
  }

 private:
  /// One backend shard. Endpoint, health and window state are guarded by
  /// `state_mutex_` (the endpoint moves when a spawned shard restarts).
  struct Shard {
    std::string host;
    std::uint16_t port = 0;
    pid_t pid = -1;       ///< spawn mode only; -1 = no live child
    int stdout_fd = -1;   ///< spawn mode: the child's announce pipe
    bool healthy = true;  ///< derived: breaker == Closed (routing predicate)
    std::size_t in_flight = 0;
    std::uint64_t up_transitions = 0;
    std::uint64_t down_transitions = 0;
    // Circuit breaker (docs/RESILIENCE.md). `strikes` counts failures not
    // yet annulled by `breaker_close_successes` consecutive successes;
    // `opened_at` gates half-open probes behind the cooldown.
    BreakerState breaker = BreakerState::Closed;
    std::size_t strikes = 0;
    std::size_t consecutive_ok = 0;
    std::chrono::steady_clock::time_point opened_at{};
  };

  /// One cached session→shard connection (its reader keeps the framing
  /// buffer across requests).
  struct ShardConn {
    int fd = -1;
    std::unique_ptr<util::FdLineReader> reader;
  };

  /// One client connection's state.
  struct Session {
    int fd = -1;
    std::atomic<bool> done{false};
    std::thread thread;
    std::vector<ShardConn> conns;  ///< one slot per shard, lazily opened
  };

  enum class Admit { Ok, Overloaded, Unavailable, ClientGone, Expired,
                     Exhausted };
  enum class Relay { Done, ClientGone };

  void session_loop(Session* session);
  /// Handles one client line: router-level answers or `forward_line`.
  Relay handle_line(const std::string& line, Session& session,
                    bool input_buffered);
  /// Forwards one line to its sticky shard and relays the response
  /// stream; implements the RetryPolicy-budgeted retry/failover scan,
  /// deadline-aware admission and shedding. `deadline_ms` is the parsed
  /// wire field (0 = none), measured from `arrival`.
  Relay forward_line(const std::string& line, const std::string& id,
                     bool streamed, std::size_t key_hash, Session& session,
                     bool input_buffered, std::uint64_t deadline_ms,
                     const util::Stopwatch& arrival);
  /// Sticky slot acquisition under backpressure (see file comment); while
  /// waiting it keeps the client-disconnect watch (`watching`) and the
  /// request deadline. `tried` excludes shards that already failed this
  /// request (Exhausted when every healthy shard is excluded).
  Admit acquire_slot(std::size_t key_hash, std::size_t& shard_index,
                     int client_fd, bool watching,
                     const std::vector<bool>& tried,
                     std::uint64_t deadline_ms,
                     const util::Stopwatch& arrival);
  void release_slot(std::size_t shard_index);
  /// Hard evidence the shard is gone (reaped child, lost endpoint):
  /// opens the breaker immediately.
  void mark_down(std::size_t shard_index);
  /// Hard evidence the shard is up (spawn announce): closes the breaker
  /// immediately.
  void mark_up(std::size_t shard_index);
  /// Graded breaker inputs (request-path failures, probe outcomes).
  void record_failure(std::size_t shard_index);
  void record_success(std::size_t shard_index);
  bool ensure_conn(Session& session, std::size_t shard_index);
  /// Front-session write honoring the fault hooks.
  bool send_front(int fd, std::string line) const;
  /// `{"type":"stats"}`: fan out, merge, answer.
  void answer_stats(const std::string& id, int out_fd);
  /// `{"type":"metrics"}`: fan out, bucket-wise merge with the router's
  /// own snapshot, re-derive quantiles, answer (see the file comment).
  void answer_metrics(const std::string& id, int out_fd);
  void answer_health(const std::string& id, int out_fd);

  void health_loop();
  /// One probe/restart pass over every shard.
  void check_shards();
  /// Fork/execs one shard server and parses its announced port. \throws
  /// std::runtime_error when the child fails to come up.
  void spawn_shard(std::size_t shard_index);
  void stop_health_thread();
  void terminate_children();
  void reap_sessions(bool all);

  RouterOptions options_;
  std::chrono::steady_clock::time_point started_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex state_mutex_;
  std::condition_variable state_changed_;  ///< slots freed / health flips

  std::thread health_thread_;
  std::mutex health_mutex_;
  std::condition_variable health_wake_;
  bool health_stop_ = false;

  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;

  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::TraceLog> trace_log_;  ///< null = tracing off
  std::unique_ptr<net::FaultInjector> fault_;  ///< null = injection off
  const util::IoHooks* front_hooks_ = nullptr;  ///< fault_'s front_io()
  const util::IoHooks* relay_hooks_ = nullptr;  ///< fault_'s relay_io()

  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> shed_expired_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> shard_lost_errors_{0};
};

}  // namespace pipeopt::router
