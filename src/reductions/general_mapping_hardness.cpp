#include "reductions/general_mapping_hardness.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/numeric.hpp"

namespace pipeopt::reductions {
namespace {

/// Branch-and-bound over per-stage processor choices (identical processors,
/// so the first processor hosts stage 0 WLOG).
void search(const std::vector<double>& works, std::size_t next,
            std::vector<double>& load, double& best) {
  if (next == works.size()) {
    best = std::min(best, *std::max_element(load.begin(), load.end()));
    return;
  }
  for (std::size_t u = 0; u < load.size(); ++u) {
    if (next == 0 && u > 0) break;  // symmetry: stage 0 on processor 0
    if (load[u] + works[next] >= best) continue;  // bound
    load[u] += works[next];
    search(works, next + 1, load, best);
    load[u] -= works[next];
    // Identical empty processors are interchangeable: placing on the first
    // empty one covers them all.
    if (load[u] == 0.0) break;
  }
}

}  // namespace

double general_mapping_min_period(const std::vector<double>& works,
                                  std::size_t procs) {
  if (works.empty() || procs == 0) {
    throw std::invalid_argument("general_mapping_min_period: empty input");
  }
  if (works.size() > 24) {
    throw std::invalid_argument(
        "general_mapping_min_period: demonstration solver, max 24 stages");
  }
  const double total = std::accumulate(works.begin(), works.end(), 0.0);
  double best = total;  // everything on one processor
  std::vector<double> load(procs, 0.0);
  search(works, 0, load, best);
  return best;
}

GeneralMappingGadget encode_two_partition_general(
    const std::vector<std::int64_t>& values) {
  GeneralMappingGadget gadget;
  gadget.works.reserve(values.size());
  std::int64_t total = 0;
  for (std::int64_t v : values) {
    if (v <= 0) {
      throw std::invalid_argument(
          "encode_two_partition_general: values must be positive");
    }
    gadget.works.push_back(static_cast<double>(v));
    total += v;
  }
  gadget.yes_period = static_cast<double>(total) / 2.0;
  return gadget;
}

bool general_gadget_is_yes(const GeneralMappingGadget& gadget) {
  const double optimum = general_mapping_min_period(gadget.works, 2);
  return util::approx_le(optimum, gadget.yes_period);
}

}  // namespace pipeopt::reductions
