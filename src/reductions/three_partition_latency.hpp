#pragma once

/// \file three_partition_latency.hpp
/// Theorem 9's reduction: 3-PARTITION ≤p one-to-one latency minimization
/// with heterogeneous processors, homogeneous pipelines, no communication.
///
/// Encoding: m applications of 3 unit stages each; 3m processors of speeds
/// 1/a_j; the question "global latency <= B?" is YES iff the partition
/// exists (application j's three stages cost a_{t1} + a_{t2} + a_{t3}).

#include <array>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "core/problem.hpp"
#include "solvers/partition.hpp"

namespace pipeopt::reductions {

/// The scheduling instance built from a 3-PARTITION instance.
struct LatencyGadget {
  core::Problem problem;
  double target_latency = 0.0;  ///< B
};

/// Builds the Theorem 9 instance (canonical input required).
[[nodiscard]] LatencyGadget encode_three_partition_latency(
    const solvers::ThreePartitionInstance& instance);

/// Witness one-to-one mapping from a partition: application j's stage t runs
/// on processor triples[j][t].
[[nodiscard]] core::Mapping certificate_mapping_latency(
    const solvers::ThreePartitionInstance& instance,
    const std::vector<std::array<std::size_t, 3>>& triples);

/// Recovers the partition from a one-to-one mapping of latency <= B.
[[nodiscard]] std::optional<std::vector<std::array<std::size_t, 3>>>
decode_three_partition_latency(const solvers::ThreePartitionInstance& instance,
                               const LatencyGadget& gadget,
                               const core::Mapping& mapping);

}  // namespace pipeopt::reductions
