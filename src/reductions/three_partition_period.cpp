#include "reductions/three_partition_period.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "core/evaluation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::reductions {

PeriodGadget encode_three_partition_period(
    const solvers::ThreePartitionInstance& instance) {
  if (!instance.is_canonical()) {
    throw std::invalid_argument(
        "encode_three_partition_period: non-canonical 3-PARTITION instance");
  }
  const std::size_t m = instance.group_count();
  const auto b = static_cast<std::size_t>(instance.target);

  std::vector<core::Application> apps;
  apps.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<core::StageSpec> stages(b, core::StageSpec{1.0, 0.0});
    apps.push_back(core::Application(0.0, std::move(stages), 1.0,
                                     "pipe" + std::to_string(j)));
  }
  std::vector<core::Processor> procs;
  procs.reserve(instance.values.size());
  for (std::size_t j = 0; j < instance.values.size(); ++j) {
    procs.emplace_back(
        std::vector<double>{static_cast<double>(instance.values[j])}, 0.0,
        "P" + std::to_string(j));
  }
  // Uniform bandwidth is irrelevant (no data flows) but must be positive.
  core::Platform platform(std::move(procs), 1.0, 2.0);
  return PeriodGadget{
      core::Problem(std::move(apps), std::move(platform)), 1.0};
}

core::Mapping certificate_mapping(
    const solvers::ThreePartitionInstance& instance,
    const std::vector<std::array<std::size_t, 3>>& triples) {
  std::vector<core::IntervalAssignment> intervals;
  for (std::size_t j = 0; j < triples.size(); ++j) {
    std::size_t first = 0;
    for (std::size_t t = 0; t < 3; ++t) {
      const std::size_t proc = triples[j][t];
      const auto len = static_cast<std::size_t>(instance.values[proc]);
      intervals.push_back({j, first, first + len - 1, proc, 0});
      first += len;
    }
  }
  return core::Mapping(std::move(intervals));
}

std::optional<std::vector<std::array<std::size_t, 3>>>
decode_three_partition_period(const solvers::ThreePartitionInstance& instance,
                              const PeriodGadget& gadget,
                              const core::Mapping& mapping) {
  if (mapping.validate(gadget.problem).has_value()) return std::nullopt;
  const core::Metrics metrics = core::evaluate(gadget.problem, mapping);
  if (!util::approx_le(metrics.max_weighted_period, gadget.target_period)) {
    return std::nullopt;
  }
  // Period <= 1 with Σ speeds == Σ work forces exactly three processors per
  // application (B/4 < a_j < B/2) — collect them.
  std::vector<std::array<std::size_t, 3>> triples;
  for (std::size_t j = 0; j < gadget.problem.application_count(); ++j) {
    const auto ivs = mapping.intervals_of(j);
    if (ivs.size() != 3) return std::nullopt;
    std::array<std::size_t, 3> triple{};
    std::int64_t sum = 0;
    for (std::size_t t = 0; t < 3; ++t) {
      triple[t] = ivs[t].proc;
      sum += instance.values[ivs[t].proc];
    }
    if (sum != instance.target) return std::nullopt;
    triples.push_back(triple);
  }
  return triples;
}

namespace {

/// Minimum period of one uniform B-stage no-comm application on processors
/// with the given speeds: smallest T with Σ_i floor(T·s_i) >= B.
double min_uniform_chain_period(std::size_t stages,
                                const std::vector<double>& speeds) {
  if (speeds.empty()) return util::kInfinity;
  const auto feasible = [&](double t) {
    std::size_t capacity = 0;
    for (double s : speeds) {
      capacity += static_cast<std::size_t>(
          std::floor(t * s * (1.0 + util::kRelTol) + util::kAbsTol));
      if (capacity >= stages) return true;
    }
    return false;
  };
  double best = util::kInfinity;
  for (double s : speeds) {
    for (std::size_t len = 1; len <= stages; ++len) {
      const double t = static_cast<double>(len) / s;
      if (t < best && feasible(t)) best = t;
    }
  }
  return best;
}

}  // namespace

double special_app_exact_period(const core::Problem& problem) {
  if (!problem.is_special_app_family() || !problem.platform().is_uni_modal()) {
    throw std::invalid_argument(
        "special_app_exact_period: requires uniform no-comm applications on "
        "uni-modal processors");
  }
  const std::size_t p = problem.platform().processor_count();
  const std::size_t a_count = problem.application_count();
  // Owner of each processor: application index, or a_count for "unused".
  std::vector<std::size_t> owner(p, a_count);
  double best = util::kInfinity;

  const std::function<void(std::size_t)> assign = [&](std::size_t u) {
    if (u == p) {
      double period = 0.0;
      for (std::size_t a = 0; a < a_count && period < best; ++a) {
        std::vector<double> speeds;
        for (std::size_t v = 0; v < p; ++v) {
          if (owner[v] == a) {
            speeds.push_back(problem.platform().processor(v).max_speed());
          }
        }
        // Unit stages with uniform weight w: period scales by w.
        const double w = problem.application(a).compute(0);
        period = std::max(
            period, problem.application(a).weight() * w *
                        min_uniform_chain_period(
                            problem.application(a).stage_count(), speeds));
      }
      best = std::min(best, period);
      return;
    }
    for (std::size_t o = 0; o <= a_count; ++o) {
      owner[u] = o;
      assign(u + 1);
    }
    owner[u] = a_count;
  };
  assign(0);
  return best;
}

}  // namespace pipeopt::reductions
