#pragma once

/// \file two_partition_tricriteria.hpp
/// Theorem 26's reduction: 2-PARTITION ≤p the tri-criteria one-to-one
/// problem on a fully homogeneous *multi-modal* platform with a single
/// application and no communication — the paper's headline hardness result.
///
/// Encoding (α = 2): stage weights w_i = K^{i(α+1)}; n identical processors
/// whose mode set pairs, for every i, a "slow" speed K^i with a "fast"
/// speed K^i + a_i·X / K^{iα}. K is chosen large enough that stage i must
/// run at one of its own pair's speeds; X small enough that the linearized
/// energy/latency deltas dominate the higher-order terms. Choosing the fast
/// speed for exactly the stages of a subset I costs ~α·X·Σ_I a_i extra
/// energy and saves ~X·Σ_I a_i latency, so the bounds
///   E° = E* + α·X·(S/2 + 1/2),  L° = L* − X·(S/2 − 1/2),  T° = L°
/// are achievable iff some subset hits S/2 exactly.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "core/objectives.hpp"
#include "core/problem.hpp"

namespace pipeopt::reductions {

/// The scheduling instance built from a 2-PARTITION instance.
struct TricriteriaGadget {
  core::Problem problem;
  core::ConstraintSet constraints;  ///< period, latency and energy bounds
  double k = 0.0;                   ///< chosen gadget base K
  double x = 0.0;                   ///< chosen perturbation X
};

/// Builds the Theorem 26 instance from positive integers a_1..a_n
/// (n >= 2; kept small — the stage weights grow as K^{3n}).
[[nodiscard]] TricriteriaGadget encode_two_partition_tricriteria(
    const std::vector<std::int64_t>& values);

/// Witness mapping: stage i on processor i, fast mode iff i ∈ subset.
[[nodiscard]] core::Mapping certificate_mapping_tricriteria(
    const TricriteriaGadget& gadget, const std::vector<std::size_t>& subset);

/// Recovers the subset from a mapping satisfying all three bounds.
[[nodiscard]] std::optional<std::vector<std::size_t>>
decode_two_partition_tricriteria(const TricriteriaGadget& gadget,
                                 const core::Mapping& mapping);

}  // namespace pipeopt::reductions
