#pragma once

/// \file three_partition_period.hpp
/// Theorem 5's reduction, as an executable gadget: 3-PARTITION ≤p interval
/// period minimization with heterogeneous (uni-modal) processors,
/// homogeneous pipelines and no communication.
///
/// Encoding: a canonical 3-PARTITION instance (3m integers a_j, target B)
/// becomes m identical applications of B unit stages and 3m processors of
/// speeds a_j; the question "global period <= 1?" is YES iff the partition
/// exists. The decoder recovers the partition from any period-1 mapping:
/// each application's processors form one triple.

#include <array>
#include <optional>
#include <vector>

#include "core/mapping.hpp"
#include "core/problem.hpp"
#include "solvers/partition.hpp"

namespace pipeopt::reductions {

/// The scheduling instance built from a 3-PARTITION instance.
struct PeriodGadget {
  core::Problem problem;
  double target_period = 1.0;
};

/// Builds the Theorem 5 instance. The input must be canonical
/// (B/4 < a_j < B/2, Σ = m·B); \throws std::invalid_argument otherwise.
[[nodiscard]] PeriodGadget encode_three_partition_period(
    const solvers::ThreePartitionInstance& instance);

/// Builds the witness mapping from a partition (triples of processor
/// indices): application j's B stages split into three intervals of sizes
/// a_{t1}, a_{t2}, a_{t3} on those processors.
[[nodiscard]] core::Mapping certificate_mapping(
    const solvers::ThreePartitionInstance& instance,
    const std::vector<std::array<std::size_t, 3>>& triples);

/// Recovers the partition from a mapping of period <= 1 (+tolerance).
/// Returns std::nullopt when the mapping does not certify the bound.
[[nodiscard]] std::optional<std::vector<std::array<std::size_t, 3>>>
decode_three_partition_period(const solvers::ThreePartitionInstance& instance,
                              const PeriodGadget& gadget,
                              const core::Mapping& mapping);

/// Specialized exact period solver for special-app instances (uniform unit
/// stages, no communication, uni-modal processors): enumerates processor-to-
/// application assignments ((A+1)^p) and checks each by a capacity argument —
/// a processor of speed s can absorb at most floor(T·s) unit stages within
/// period T. Exponential in p only, which makes the B-stage gadget chains
/// (intractable for full mapping enumeration) solvable exactly.
/// \throws std::invalid_argument when the problem is not of this family.
[[nodiscard]] double special_app_exact_period(const core::Problem& problem);

}  // namespace pipeopt::reductions
