#include "reductions/two_partition_tricriteria.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/evaluation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::reductions {
namespace {

constexpr double kAlpha = 2.0;  // the gadget is built for α = 2

/// The fast speed of pair i (1-based): K^i · (1 + a_i·X / K^{iα}).
///
/// Note: the paper prints the perturbation as a_i·X / K^{iα} *added* to K^i,
/// but its own first-order expansions (ΔE_i ≈ α·a_i·X, ΔL_i ≈ a_i·X) only
/// come out if the relative perturbation is a_i·X / K^{iα}, i.e. the
/// *multiplicative* form used here — a typo in the report, recorded in
/// EXPERIMENTS.md.
double fast_speed(double k, double x, std::int64_t a, std::size_t i) {
  const double base = std::pow(k, static_cast<double>(i));
  const double z = static_cast<double>(a) * x /
                   std::pow(k, kAlpha * static_cast<double>(i));
  return base * (1.0 + z);
}

double slow_speed(double k, std::size_t i) {
  return std::pow(k, static_cast<double>(i));
}

}  // namespace

TricriteriaGadget encode_two_partition_tricriteria(
    const std::vector<std::int64_t>& values) {
  const std::size_t n = values.size();
  if (n < 2) {
    throw std::invalid_argument(
        "encode_two_partition_tricriteria: need at least two values");
  }
  for (std::int64_t a : values) {
    if (a <= 0) {
      throw std::invalid_argument(
          "encode_two_partition_tricriteria: values must be positive");
    }
  }
  const std::int64_t s_total =
      std::accumulate(values.begin(), values.end(), std::int64_t{0});
  const double s = static_cast<double>(s_total);

  // Pick K: stage weights must dominate so stage i is forced onto pair i
  // (the paper's two inequality families, α = 2, conservative margins).
  double k = std::max(2.0, s);
  const auto inequalities_hold = [&](double kk) {
    for (std::size_t j = 2; j <= n; ++j) {
      double sum_below = 0.0;
      for (std::size_t i = 1; i < j; ++i) {
        sum_below += std::pow(kk, 2.0 * static_cast<double>(i));
      }
      const double lhs_energy = std::pow(kk, 2.0 * static_cast<double>(j));
      if (!(lhs_energy > sum_below + kAlpha * (s / 2.0 + 0.5))) return false;
      const double lhs_latency =
          std::pow(kk, 2.0 * static_cast<double>(j) + 1.0);
      const double spill =
          std::pow(kk, 3.0) * static_cast<double>(values[j - 2]) /
              std::pow(kk, static_cast<double>(j - 1)) +
          1.0 + s / 2.0;
      if (!(lhs_latency > sum_below +
                              std::pow(kk, 2.0 * static_cast<double>(j)) +
                              spill)) {
        return false;
      }
    }
    return true;
  };
  while (!inequalities_hold(k)) k *= 2.0;

  // Pick X: second-order terms must stay below the ±1/2 slack. The error in
  // both ΔE and ΔL sums is bounded by X·Σ a_i²·z_i <= X²·Σa_i²/K^α, so
  // X <= K^α / (4·Σ a_i²) suffices with a 2× margin.
  double sum_sq = 0.0;
  for (std::int64_t a : values) {
    sum_sq += static_cast<double>(a) * static_cast<double>(a);
  }
  const double x =
      std::min(0.25, std::pow(k, kAlpha) / (4.0 * std::max(sum_sq, 1.0)));

  // Build the application (one chain, no communication) and the platform
  // (n identical processors, 2n modes each).
  std::vector<core::StageSpec> stages;
  stages.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    stages.push_back(core::StageSpec{
        std::pow(k, (kAlpha + 1.0) * static_cast<double>(i)), 0.0});
  }
  std::vector<double> modes;
  modes.reserve(2 * n);
  for (std::size_t i = 1; i <= n; ++i) {
    modes.push_back(slow_speed(k, i));
    modes.push_back(fast_speed(k, x, values[i - 1], i));
  }
  std::vector<core::Processor> procs;
  procs.reserve(n);
  for (std::size_t u = 0; u < n; ++u) {
    procs.emplace_back(modes, 0.0, "P" + std::to_string(u));
  }

  std::vector<core::Application> apps;
  apps.push_back(
      core::Application(0.0, std::move(stages), 1.0, "gadget-chain"));
  core::Platform platform(std::move(procs), 1.0, kAlpha);
  core::Problem problem(std::move(apps), std::move(platform));

  // Reference values E* = L* = Σ K^{iα} (all-slow certificate).
  double e_star = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    e_star += std::pow(k, kAlpha * static_cast<double>(i));
  }
  const double e_bound = e_star + kAlpha * x * (s / 2.0 + 0.5);
  const double l_bound = e_star - x * (s / 2.0 - 0.5);

  TricriteriaGadget gadget{std::move(problem), {}, k, x};
  gadget.constraints.period = core::Thresholds::per_app({l_bound});
  gadget.constraints.latency = core::Thresholds::per_app({l_bound});
  gadget.constraints.energy_budget = e_bound;
  return gadget;
}

core::Mapping certificate_mapping_tricriteria(
    const TricriteriaGadget& gadget, const std::vector<std::size_t>& subset) {
  const std::size_t n = gadget.problem.application(0).stage_count();
  std::vector<char> fast(n, 0);
  for (std::size_t i : subset) {
    if (i >= n) {
      throw std::out_of_range("certificate_mapping_tricriteria: subset index");
    }
    fast[i] = 1;
  }
  std::vector<core::IntervalAssignment> intervals;
  intervals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Pair i+1 occupies sorted mode slots 2i (slow) and 2i+1 (fast).
    intervals.push_back({0, i, i, i, 2 * i + (fast[i] ? 1u : 0u)});
  }
  return core::Mapping(std::move(intervals));
}

std::optional<std::vector<std::size_t>> decode_two_partition_tricriteria(
    const TricriteriaGadget& gadget, const core::Mapping& mapping) {
  if (!mapping.is_one_to_one()) return std::nullopt;
  if (mapping.validate(gadget.problem).has_value()) return std::nullopt;
  const core::Metrics metrics = core::evaluate(gadget.problem, mapping);
  if (!gadget.constraints.satisfied_by(metrics)) return std::nullopt;

  // Stage i (0-based) must sit on mode 2i or 2i+1 — the forcing argument
  // guarantees this for any feasible mapping; reject defensively otherwise.
  std::vector<std::size_t> subset;
  for (const core::IntervalAssignment& iv : mapping.intervals()) {
    const std::size_t slow_slot = 2 * iv.first;
    if (iv.mode == slow_slot + 1) {
      subset.push_back(iv.first);
    } else if (iv.mode != slow_slot) {
      return std::nullopt;
    }
  }
  return subset;
}

}  // namespace pipeopt::reductions
