#include "reductions/three_partition_latency.hpp"

#include <stdexcept>

#include "core/evaluation.hpp"
#include "util/numeric.hpp"

namespace pipeopt::reductions {

LatencyGadget encode_three_partition_latency(
    const solvers::ThreePartitionInstance& instance) {
  if (!instance.is_canonical()) {
    throw std::invalid_argument(
        "encode_three_partition_latency: non-canonical 3-PARTITION instance");
  }
  const std::size_t m = instance.group_count();

  std::vector<core::Application> apps;
  apps.reserve(m);
  for (std::size_t j = 0; j < m; ++j) {
    std::vector<core::StageSpec> stages(3, core::StageSpec{1.0, 0.0});
    apps.push_back(core::Application(0.0, std::move(stages), 1.0,
                                     "pipe" + std::to_string(j)));
  }
  std::vector<core::Processor> procs;
  procs.reserve(instance.values.size());
  for (std::size_t j = 0; j < instance.values.size(); ++j) {
    procs.emplace_back(
        std::vector<double>{1.0 / static_cast<double>(instance.values[j])}, 0.0,
        "P" + std::to_string(j));
  }
  core::Platform platform(std::move(procs), 1.0, 2.0);
  return LatencyGadget{core::Problem(std::move(apps), std::move(platform)),
                       static_cast<double>(instance.target)};
}

core::Mapping certificate_mapping_latency(
    const solvers::ThreePartitionInstance& /*instance*/,
    const std::vector<std::array<std::size_t, 3>>& triples) {
  std::vector<core::IntervalAssignment> intervals;
  for (std::size_t j = 0; j < triples.size(); ++j) {
    for (std::size_t t = 0; t < 3; ++t) {
      intervals.push_back({j, t, t, triples[j][t], 0});
    }
  }
  return core::Mapping(std::move(intervals));
}

std::optional<std::vector<std::array<std::size_t, 3>>>
decode_three_partition_latency(const solvers::ThreePartitionInstance& instance,
                               const LatencyGadget& gadget,
                               const core::Mapping& mapping) {
  if (!mapping.is_one_to_one()) return std::nullopt;
  if (mapping.validate(gadget.problem).has_value()) return std::nullopt;
  const core::Metrics metrics = core::evaluate(gadget.problem, mapping);
  if (!util::approx_le(metrics.max_weighted_latency, gadget.target_latency)) {
    return std::nullopt;
  }
  std::vector<std::array<std::size_t, 3>> triples;
  for (std::size_t j = 0; j < gadget.problem.application_count(); ++j) {
    const auto ivs = mapping.intervals_of(j);
    if (ivs.size() != 3) return std::nullopt;
    std::array<std::size_t, 3> triple{};
    std::int64_t sum = 0;
    for (std::size_t t = 0; t < 3; ++t) {
      triple[t] = ivs[t].proc;
      sum += instance.values[ivs[t].proc];
    }
    // Latency <= B per application and Σ_j (sum_j) = m·B force equality.
    if (sum != instance.target) return std::nullopt;
    triples.push_back(triple);
  }
  return triples;
}

}  // namespace pipeopt::reductions
