#pragma once

/// \file general_mapping_hardness.hpp
/// The §3.3 remark, executable: if mappings may assign *arbitrary* stage
/// subsets to processors ("general mappings"), period minimization is
/// NP-hard already for one application on two identical uni-modal
/// processors with no communication — a straight reduction from
/// 2-PARTITION. This module carries a tiny standalone general-mapping
/// solver to demonstrate the claim (and why the library's Mapping type
/// deliberately excludes that regime).

#include <cstdint>
#include <optional>
#include <vector>

namespace pipeopt::reductions {

/// Minimum period of a *general* mapping of independent stage works onto
/// `procs` identical unit-speed processors (no communication): the classic
/// multiprocessor-makespan problem. Exact exponential search; intended for
/// small demonstrations only.
/// \throws std::invalid_argument when works is empty or procs == 0.
[[nodiscard]] double general_mapping_min_period(
    const std::vector<double>& works, std::size_t procs);

/// The reduction: 2-PARTITION(values) is YES iff the general-mapping period
/// of those works on 2 processors equals Σ/2.
struct GeneralMappingGadget {
  std::vector<double> works;
  double yes_period = 0.0;  ///< Σ values / 2
};

[[nodiscard]] GeneralMappingGadget encode_two_partition_general(
    const std::vector<std::int64_t>& values);

/// Evaluates the gadget: true iff the optimal general-mapping period hits
/// the YES bound (i.e. the partition exists).
[[nodiscard]] bool general_gadget_is_yes(const GeneralMappingGadget& gadget);

}  // namespace pipeopt::reductions
