#pragma once

/// \file partition.hpp
/// Exact decision solvers for 2-PARTITION and 3-PARTITION.
///
/// These back the NP-hardness reduction gadgets (src/reductions): tests
/// solve the combinatorial side exactly and check that the scheduling
/// instance built from it is a YES instance iff the partition exists
/// (Theorems 5, 9, 26 and the §3.3 general-mapping remark).

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

namespace pipeopt::solvers {

/// 2-PARTITION: does a subset of `values` sum to half the total?
/// Returns the subset (as indices) if one exists. Pseudo-polynomial
/// subset-sum DP with bitset-free reconstruction; total sum must be
/// manageable (guarded).
[[nodiscard]] std::optional<std::vector<std::size_t>> two_partition(
    const std::vector<std::int64_t>& values);

/// A 3-PARTITION instance: 3m integers with total m·B; every value must lie
/// strictly between B/4 and B/2 for the canonical form.
struct ThreePartitionInstance {
  std::vector<std::int64_t> values;  ///< size 3m
  std::int64_t target = 0;           ///< B

  [[nodiscard]] std::size_t group_count() const { return values.size() / 3; }
  /// Checks structural validity (size multiple of 3, sum == m·B,
  /// B/4 < a_i < B/2).
  [[nodiscard]] bool is_canonical() const;
};

/// 3-PARTITION: partition into m triples each summing to B. Returns the
/// triples (index triples) if a partition exists. Exact backtracking,
/// intended for the small instances of the reduction tests.
[[nodiscard]] std::optional<std::vector<std::array<std::size_t, 3>>> three_partition(
    const ThreePartitionInstance& instance);

}  // namespace pipeopt::solvers
