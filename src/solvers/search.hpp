#pragma once

/// \file search.hpp
/// Candidate-set binary search (the driver behind Theorems 1, 12 and 15).
///
/// The paper's polynomial algorithms share one pattern: the optimal objective
/// value belongs to a finite candidate set (all values the objective
/// expression can take); sort it and binary-search the smallest feasible
/// candidate using a monotone feasibility oracle.

#include <algorithm>
#include <functional>
#include <optional>
#include <vector>

namespace pipeopt::solvers {

/// Sorts + deduplicates a candidate set in place and returns it.
[[nodiscard]] std::vector<double> normalize_candidates(std::vector<double> values);

/// Finds the smallest candidate c with feasible(c) == true.
///
/// Requires monotonicity: feasible(x) implies feasible(y) for every y >= x
/// (thresholds only relax as they grow). Returns std::nullopt when no
/// candidate is feasible. O(log |candidates|) oracle calls.
[[nodiscard]] std::optional<double> min_feasible_candidate(
    const std::vector<double>& sorted_candidates,
    const std::function<bool(double)>& feasible);

}  // namespace pipeopt::solvers
