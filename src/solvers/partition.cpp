#include "solvers/partition.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pipeopt::solvers {

std::optional<std::vector<std::size_t>> two_partition(
    const std::vector<std::int64_t>& values) {
  for (std::int64_t v : values) {
    if (v <= 0) throw std::invalid_argument("two_partition: values must be > 0");
  }
  const std::int64_t total = std::accumulate(values.begin(), values.end(),
                                             std::int64_t{0});
  if (total % 2 != 0) return std::nullopt;
  const std::int64_t half = total / 2;
  if (half > 5'000'000) {
    throw std::invalid_argument("two_partition: instance sum too large for DP");
  }

  // reach[s] = index of the last value used to first reach sum s (or npos).
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> reach(static_cast<std::size_t>(half) + 1, kNone);
  std::vector<std::size_t> prev_sum(static_cast<std::size_t>(half) + 1, 0);
  reach[0] = values.size();  // sentinel: sum 0 reachable with no items
  for (std::size_t i = 0; i < values.size(); ++i) {
    const auto v = static_cast<std::size_t>(values[i]);
    for (std::size_t s = static_cast<std::size_t>(half); s >= v; --s) {
      if (reach[s] == kNone && reach[s - v] != kNone && reach[s - v] != i) {
        reach[s] = i;
        prev_sum[s] = s - v;
      }
      if (s == v) break;  // avoid size_t underflow in loop condition
    }
  }
  if (reach[static_cast<std::size_t>(half)] == kNone) return std::nullopt;

  std::vector<std::size_t> subset;
  std::size_t s = static_cast<std::size_t>(half);
  while (s != 0) {
    const std::size_t i = reach[s];
    subset.push_back(i);
    s = prev_sum[s];
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

bool ThreePartitionInstance::is_canonical() const {
  if (values.empty() || values.size() % 3 != 0) return false;
  const auto m = static_cast<std::int64_t>(values.size() / 3);
  const std::int64_t total = std::accumulate(values.begin(), values.end(),
                                             std::int64_t{0});
  if (total != m * target) return false;
  return std::all_of(values.begin(), values.end(), [&](std::int64_t v) {
    return 4 * v > target && 2 * v < target;
  });
}

namespace {

/// Backtracking over groups: repeatedly take the smallest unused index and
/// search for two partners completing a triple of sum B.
bool solve_triples(const std::vector<std::int64_t>& values, std::int64_t target,
                   std::vector<char>& used,
                   std::vector<std::array<std::size_t, 3>>& out) {
  // Find the anchor: first unused element.
  std::size_t anchor = values.size();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!used[i]) {
      anchor = i;
      break;
    }
  }
  if (anchor == values.size()) return true;  // all grouped

  used[anchor] = 1;
  for (std::size_t j = anchor + 1; j < values.size(); ++j) {
    if (used[j]) continue;
    used[j] = 1;
    const std::int64_t rest = target - values[anchor] - values[j];
    for (std::size_t k = j + 1; k < values.size(); ++k) {
      if (used[k] || values[k] != rest) continue;
      used[k] = 1;
      out.push_back({anchor, j, k});
      if (solve_triples(values, target, used, out)) return true;
      out.pop_back();
      used[k] = 0;
    }
    used[j] = 0;
  }
  used[anchor] = 0;
  return false;
}

}  // namespace

std::optional<std::vector<std::array<std::size_t, 3>>> three_partition(
    const ThreePartitionInstance& instance) {
  const std::size_t n = instance.values.size();
  if (n == 0 || n % 3 != 0) return std::nullopt;
  const auto m = static_cast<std::int64_t>(n / 3);
  const std::int64_t total = std::accumulate(instance.values.begin(),
                                             instance.values.end(), std::int64_t{0});
  if (total != m * instance.target) return std::nullopt;

  std::vector<char> used(n, 0);
  std::vector<std::array<std::size_t, 3>> out;
  if (solve_triples(instance.values, instance.target, used, out)) return out;
  return std::nullopt;
}

}  // namespace pipeopt::solvers
