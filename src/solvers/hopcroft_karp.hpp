#pragma once

/// \file hopcroft_karp.hpp
/// Maximum bipartite matching in O(E·√V) (Hopcroft–Karp).
///
/// Serves as an independent feasibility oracle for Algorithm 1's greedy
/// assignment: a period threshold T is feasible for a one-to-one mapping on
/// a comm-homogeneous platform iff the bipartite graph {stages} × {processors}
/// with an edge whenever the stage fits within T admits a perfect matching on
/// the stage side. Property tests check greedy-success ⟺ HK-perfect-matching.

#include <cstddef>
#include <vector>

namespace pipeopt::solvers {

/// Bipartite graph with `left` and `right` vertex counts and adjacency from
/// left vertices to right vertices.
class BipartiteGraph {
 public:
  BipartiteGraph(std::size_t left, std::size_t right);

  void add_edge(std::size_t l, std::size_t r);

  [[nodiscard]] std::size_t left_count() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t right_count() const noexcept { return right_; }
  [[nodiscard]] const std::vector<std::size_t>& neighbours(std::size_t l) const {
    return adj_.at(l);
  }

 private:
  std::size_t right_;
  std::vector<std::vector<std::size_t>> adj_;
};

/// Result of a maximum matching.
struct MatchingResult {
  std::size_t size = 0;
  /// For each left vertex, matched right vertex or npos.
  std::vector<std::size_t> match_left;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Computes a maximum matching.
[[nodiscard]] MatchingResult hopcroft_karp(const BipartiteGraph& graph);

/// True when every left vertex can be matched.
[[nodiscard]] bool has_left_perfect_matching(const BipartiteGraph& graph);

}  // namespace pipeopt::solvers
