#include "solvers/search.hpp"

namespace pipeopt::solvers {

std::vector<double> normalize_candidates(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

std::optional<double> min_feasible_candidate(
    const std::vector<double>& sorted_candidates,
    const std::function<bool(double)>& feasible) {
  if (sorted_candidates.empty()) return std::nullopt;
  std::size_t lo = 0;
  std::size_t hi = sorted_candidates.size();  // exclusive
  // Invariant: everything before lo is infeasible; if a feasible candidate
  // exists, the smallest lies in [lo, hi).
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible(sorted_candidates[mid])) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == sorted_candidates.size()) return std::nullopt;
  return sorted_candidates[lo];
}

}  // namespace pipeopt::solvers
