#include "solvers/hopcroft_karp.hpp"

#include <limits>
#include <queue>
#include <stdexcept>

namespace pipeopt::solvers {

BipartiteGraph::BipartiteGraph(std::size_t left, std::size_t right)
    : right_(right), adj_(left) {}

void BipartiteGraph::add_edge(std::size_t l, std::size_t r) {
  if (l >= adj_.size() || r >= right_) {
    throw std::out_of_range("BipartiteGraph::add_edge");
  }
  adj_[l].push_back(r);
}

namespace {
constexpr std::size_t kNpos = MatchingResult::npos;
constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
}  // namespace

MatchingResult hopcroft_karp(const BipartiteGraph& graph) {
  const std::size_t nl = graph.left_count();
  const std::size_t nr = graph.right_count();
  std::vector<std::size_t> match_l(nl, kNpos), match_r(nr, kNpos);
  std::vector<std::size_t> dist(nl, kInf);

  auto bfs = [&]() -> bool {
    std::queue<std::size_t> q;
    for (std::size_t l = 0; l < nl; ++l) {
      if (match_l[l] == kNpos) {
        dist[l] = 0;
        q.push(l);
      } else {
        dist[l] = kInf;
      }
    }
    bool reachable_free = false;
    while (!q.empty()) {
      const std::size_t l = q.front();
      q.pop();
      for (std::size_t r : graph.neighbours(l)) {
        const std::size_t l2 = match_r[r];
        if (l2 == kNpos) {
          reachable_free = true;
        } else if (dist[l2] == kInf) {
          dist[l2] = dist[l] + 1;
          q.push(l2);
        }
      }
    }
    return reachable_free;
  };

  // DFS over the BFS layering; iterative to keep stack depth flat.
  auto try_augment = [&](std::size_t root) -> bool {
    struct Frame {
      std::size_t l;
      std::size_t edge_idx;
    };
    std::vector<Frame> stack{{root, 0}};
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto& nbrs = graph.neighbours(frame.l);
      if (frame.edge_idx >= nbrs.size()) {
        dist[frame.l] = kInf;  // dead end: prune from this phase
        stack.pop_back();
        if (!stack.empty()) ++stack.back().edge_idx;
        continue;
      }
      const std::size_t r = nbrs[frame.edge_idx];
      const std::size_t l2 = match_r[r];
      if (l2 == kNpos || dist[l2] == dist[frame.l] + 1) {
        if (l2 == kNpos) {
          // Augment along the current stack: match every (l, chosen r).
          for (std::size_t i = stack.size(); i-- > 0;) {
            const std::size_t ll = stack[i].l;
            const std::size_t rr = graph.neighbours(ll)[stack[i].edge_idx];
            match_l[ll] = rr;
            match_r[rr] = ll;
          }
          return true;
        }
        stack.push_back({l2, 0});
      } else {
        ++frame.edge_idx;
      }
    }
    return false;
  };

  MatchingResult result;
  while (bfs()) {
    for (std::size_t l = 0; l < nl; ++l) {
      if (match_l[l] == kNpos && dist[l] == 0) {
        if (try_augment(l)) ++result.size;
      }
    }
  }
  result.match_left = std::move(match_l);
  return result;
}

bool has_left_perfect_matching(const BipartiteGraph& graph) {
  return hopcroft_karp(graph).size == graph.left_count();
}

}  // namespace pipeopt::solvers
