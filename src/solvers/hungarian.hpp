#pragma once

/// \file hungarian.hpp
/// Minimum-cost rectangular assignment (Hungarian method with potentials,
/// Jonker–Volgenant row-by-row variant, O(n² m)).
///
/// Used by Theorem 19: minimum-energy one-to-one mapping under period
/// thresholds reduces to a minimum-weight bipartite matching of stages to
/// processors. (The paper cites Hopcroft–Karp, which solves the *unweighted*
/// problem; the weighted matching the proof needs is exactly this solver.
/// The discrepancy is recorded in EXPERIMENTS.md.)
///
/// Infeasible pairs are encoded as +infinity cost; the solver reports
/// infeasibility if any row would be forced onto an infinite edge.

#include <cstddef>
#include <optional>
#include <vector>

namespace pipeopt::solvers {

/// Result of a rectangular assignment: for each row r (r < rows), column
/// `column_of[r]`, all distinct; `total_cost` is the sum of chosen entries.
struct Assignment {
  std::vector<std::size_t> column_of;
  double total_cost = 0.0;
};

/// Solves min Σ cost[r][column_of[r]] over injective row→column maps.
/// \param cost rows×cols matrix with rows <= cols; +inf marks forbidden.
/// \returns std::nullopt when no finite-cost assignment exists.
[[nodiscard]] std::optional<Assignment> solve_assignment(
    const std::vector<std::vector<double>>& cost);

}  // namespace pipeopt::solvers
