#include "solvers/hungarian.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pipeopt::solvers {

std::optional<Assignment> solve_assignment(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t n = cost.size();  // rows
  if (n == 0) return Assignment{};
  const std::size_t m = cost.front().size();  // cols
  if (m < n) {
    throw std::invalid_argument("solve_assignment: needs rows <= cols");
  }
  for (const auto& row : cost) {
    if (row.size() != m) {
      throw std::invalid_argument("solve_assignment: ragged cost matrix");
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1-based arrays in the classic formulation; index 0 is a sentinel column.
  // p[j] = row assigned to column j (0 = none); u/v = potentials.
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<std::size_t> p(m + 1, 0), way(m + 1, 0);

  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      if (!std::isfinite(delta)) return std::nullopt;  // row i cannot be placed
      for (std::size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the found path.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Assignment result;
  result.column_of.assign(n, m);  // placeholder
  for (std::size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) result.column_of[p[j] - 1] = j - 1;
  }
  for (std::size_t r = 0; r < n; ++r) {
    const double c = cost[r][result.column_of[r]];
    if (!std::isfinite(c)) return std::nullopt;
    result.total_cost += c;
  }
  return result;
}

}  // namespace pipeopt::solvers
