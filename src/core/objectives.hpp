#pragma once

/// \file objectives.hpp
/// Objective machinery (paper §3.4, Eq. 6) and multi-criteria thresholds
/// (§5 preamble: "one single criterion is optimized, under the condition
/// that a threshold is enforced for all other criteria").

#include <cstddef>
#include <optional>
#include <vector>

#include "core/evaluation.hpp"
#include "core/problem.hpp"

namespace pipeopt::core {

/// Which performance criterion a weight applies to.
enum class Criterion { Period, Latency };

/// Weighting policies of Eq. 6. `Unit` is W_a = 1 (plain maximum);
/// `Priority` uses the weights stored on each Application; `Stretch` is
/// W_a = 1/X*_a where X*_a is the solo optimum supplied by the caller
/// (Section 3.4's maximum stretch, after [2]).
enum class WeightPolicy { Unit, Priority, Stretch };

/// Resolved per-application weights for one criterion.
class Weights {
 public:
  /// Unit weights.
  static Weights unit(std::size_t count);
  /// Weights taken from Application::weight().
  static Weights priority(const Problem& problem);
  /// Stretch weights 1/X*_a from solo optima (must be positive).
  static Weights stretch(const std::vector<double>& solo_optima);

  [[nodiscard]] double operator[](std::size_t a) const { return weights_.at(a); }
  [[nodiscard]] std::size_t size() const noexcept { return weights_.size(); }

  /// max_a W_a · values[a].
  [[nodiscard]] double weighted_max(const std::vector<double>& values) const;

 private:
  explicit Weights(std::vector<double> weights) : weights_(std::move(weights)) {}
  std::vector<double> weights_;
};

/// Per-application thresholds for multi-criteria problems ("a table of
/// period or latency values", §5). An unset entry means unconstrained.
class Thresholds {
 public:
  Thresholds() = default;
  /// Bounds derived from one global bound X on the weighted objective:
  /// max_a W_a·X_a <= X is equivalent to the per-app bounds X / W_a, which
  /// is what this builds (with W_a = 1 under WeightPolicy::Unit).
  static Thresholds uniform(const Problem& problem, double global_bound,
                            WeightPolicy policy = WeightPolicy::Priority);
  /// Explicit per-application bounds.
  static Thresholds per_app(std::vector<double> bounds);
  /// No constraint for any application.
  static Thresholds unconstrained(std::size_t count);

  [[nodiscard]] double bound(std::size_t a) const { return bounds_.at(a); }
  [[nodiscard]] std::size_t size() const noexcept { return bounds_.size(); }
  [[nodiscard]] bool is_unconstrained(std::size_t a) const;

  /// True when `values[a] <= bound(a)` (with tolerance) for all a.
  [[nodiscard]] bool satisfied_by(const std::vector<double>& values) const;

 private:
  explicit Thresholds(std::vector<double> bounds) : bounds_(std::move(bounds)) {}
  std::vector<double> bounds_;  ///< +inf = unconstrained
};

/// Extracts per-application periods (or latencies) from Metrics.
[[nodiscard]] std::vector<double> per_app_values(const Metrics& metrics,
                                                 Criterion criterion);

/// Checks a full multi-criteria constraint set against a mapping's metrics:
/// period thresholds, latency thresholds and an energy budget (any may be
/// absent). This is the generic "is this mapping acceptable" predicate used
/// by exact solvers and heuristics.
struct ConstraintSet {
  std::optional<Thresholds> period;
  std::optional<Thresholds> latency;
  std::optional<double> energy_budget;

  [[nodiscard]] bool satisfied_by(const Metrics& metrics) const;
};

}  // namespace pipeopt::core
