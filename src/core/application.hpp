#pragma once

/// \file application.hpp
/// Linear-chain pipelined application model (paper §3.1).
///
/// An application has n stages S^1..S^n. Stage k has computation requirement
/// w^k and produces output of size δ^k; the application receives its input
/// (size δ^0) from a virtual source processor P_in and delivers its result
/// (size δ^n) to a virtual sink P_out.
///
/// Internally stages are 0-based: stage k ∈ [0, n) computes `compute(k)`,
/// reads the data crossing boundary k and writes the data crossing boundary
/// k+1, where `boundary_size(i)` for i ∈ [0, n] is δ^i of the paper.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace pipeopt::core {

/// One pipeline stage: computation requirement w and output data size δ.
struct StageSpec {
  double compute = 0.0;      ///< w^k: operations to perform per data set
  double output_size = 0.0;  ///< δ^k: size of the data produced
};

/// Immutable linear chain application with an optional priority weight W_a
/// (Eq. 6). Construction validates that all quantities are non-negative and
/// that there is at least one stage.
class Application {
 public:
  /// \param input_size   δ^0, the size of data entering stage 0.
  /// \param stages       per-stage (w^k, δ^k), k = 1..n in paper indexing.
  /// \param weight       W_a > 0 (Eq. 6); defaults to 1.
  /// \param name         label used in reports.
  Application(double input_size, std::vector<StageSpec> stages,
              double weight = 1.0, std::string name = {});

  [[nodiscard]] std::size_t stage_count() const noexcept { return stages_.size(); }
  [[nodiscard]] double weight() const noexcept { return weight_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// w of 0-based stage k.
  [[nodiscard]] double compute(std::size_t k) const { return stages_.at(k).compute; }

  /// δ^i of the paper: size of the data crossing boundary i ∈ [0, n].
  /// boundary_size(0) is the external input; boundary_size(n) the output.
  [[nodiscard]] double boundary_size(std::size_t i) const;

  /// Σ_{k=first..last} w^k over an inclusive 0-based stage range, O(1).
  [[nodiscard]] double total_compute(std::size_t first, std::size_t last) const;

  /// Σ over all stages.
  [[nodiscard]] double total_compute() const {
    return total_compute(0, stage_count() - 1);
  }

  [[nodiscard]] std::span<const StageSpec> stages() const noexcept { return stages_; }

  /// True when every stage has the same w and every boundary size is zero —
  /// the paper's "homogeneous pipeline without communication" shape (the
  /// special-app column of Tables 1 and 2 requires all *applications* of an
  /// instance to be of this shape; see Problem::is_special_app_family).
  [[nodiscard]] bool is_uniform_no_comm() const noexcept;

  /// Returns a copy whose stage computations are scaled by `factor`
  /// (used by the W_a-scaling argument of Theorem 6).
  [[nodiscard]] Application scaled_compute(double factor) const;

 private:
  double input_size_;
  std::vector<StageSpec> stages_;
  std::vector<double> compute_prefix_;  ///< prefix sums of w, size n+1
  double weight_;
  std::string name_;
};

}  // namespace pipeopt::core
