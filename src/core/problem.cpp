#include "core/problem.hpp"

#include <algorithm>
#include <stdexcept>

namespace pipeopt::core {

const char* to_string(CommModel m) noexcept {
  switch (m) {
    case CommModel::Overlap: return "overlap";
    case CommModel::NoOverlap: return "no-overlap";
  }
  return "?";
}

Problem::Problem(std::vector<Application> applications, Platform platform,
                 CommModel comm)
    : apps_(std::move(applications)),
      platform_(std::move(platform)),
      comm_(comm),
      total_stages_(0),
      max_stages_(0) {
  if (apps_.empty()) {
    throw std::invalid_argument("Problem: needs at least one application");
  }
  for (const Application& a : apps_) {
    total_stages_ += a.stage_count();
    max_stages_ = std::max(max_stages_, a.stage_count());
  }
}

bool Problem::is_special_app_family() const {
  return std::all_of(apps_.begin(), apps_.end(), [](const Application& a) {
    return a.is_uniform_no_comm();
  });
}

}  // namespace pipeopt::core
