#pragma once

/// \file eval_batch.hpp
/// The evaluation hot path: a structure-of-arrays workspace bound once per
/// Problem that evaluates candidate mappings allocation-free and supports
/// incremental (delta) re-evaluation of neighborhood moves.
///
/// `core::evaluate` is executed millions of times inside branch-and-bound,
/// the heuristic ladder and Pareto sweeps. Each call walks the object graph
/// (`Problem` → `Application`/`Platform` accessors, all bounds-checked) and
/// allocates a fresh `Metrics::per_app` plus one `intervals_of` vector per
/// application. `BatchEvaluator` flattens everything those calls ever read
/// into dense arrays at bind time — per-app compute prefix sums and boundary
/// sizes δ^0..δ^n, per-(processor, mode) speed and E_stat + s^α energy
/// tables, dense p×p link and A×p source/sink bandwidth matrices — and then
/// serves evaluations out of one reusable `Metrics` workspace.
///
/// **Bit-exactness contract.** Every number produced here is byte-identical
/// to the scalar path: the tables are built with the same operations in the
/// same order as the `Application`/`Platform` constructors, and the
/// evaluation kernel replays `core::evaluate`'s exact floating-point
/// association order (the PR 5 1-ULP lessons — FP addition is not
/// associative, so the operation *order* is the spec). Tests and the ci.sh
/// bench gate assert `evaluate`/`evaluate_delta` ≡ `core::evaluate` with
/// `memcmp`-style double equality on every integrated path.
///
/// **Delta evaluation.** All neighborhood moves (split/merge/relocate/swap/
/// mode changes) touch the intervals of at most two applications, and an
/// application's period/latency depend only on its *own* intervals (inter-
/// application coupling exists only through the shared-processor constraint,
/// not through Eqs. 3–5). `bind_base` caches the per-app metrics of the
/// incumbent; `evaluate_delta` recomputes just the touched applications and
/// re-combines the cached remainder — O(affected app) divisions instead of
/// O(whole mapping) — then re-derives the weighted maxima and energy with
/// the scalar combination order so the result stays bit-identical.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/evaluation.hpp"
#include "core/mapping.hpp"
#include "core/problem.hpp"

namespace pipeopt::core {

/// Bind-once, evaluate-many workspace. Not thread-safe (one per worker);
/// the bound Problem must outlive the evaluator. References returned by
/// the evaluate calls point into the internal workspace and are invalidated
/// by the next evaluation.
class BatchEvaluator {
 public:
  explicit BatchEvaluator(const Problem& problem);

  BatchEvaluator(const BatchEvaluator&) = delete;
  BatchEvaluator& operator=(const BatchEvaluator&) = delete;
  BatchEvaluator(BatchEvaluator&&) = default;
  BatchEvaluator& operator=(BatchEvaluator&&) = default;

  [[nodiscard]] const Problem& problem() const noexcept { return *problem_; }

  // ---- full evaluation (allocation-free after the first call) ----

  /// Evaluates a mapping; bit-identical to `core::evaluate(problem, mapping,
  /// /*check_valid=*/false)`. The returned reference is the internal
  /// workspace — copy it if it must survive the next call.
  const Metrics& evaluate(const Mapping& mapping);

  /// Same, over a raw interval span sorted by (app, first stage) — the order
  /// `Mapping::intervals()` stores and `exact::enumerate_mappings` emits.
  /// Lets exact leaves skip `Mapping` construction entirely. Throws
  /// std::invalid_argument when some application has no interval or the span
  /// is not grouped by ascending application.
  const Metrics& evaluate(std::span<const IntervalAssignment> intervals);

  /// Evaluates a contiguous batch; `out` is resized to `candidates.size()`.
  void evaluate_batch(std::span<const Mapping> candidates, std::vector<Metrics>& out);

  // ---- incremental (delta) evaluation ----

  /// Caches the per-application metrics of `base` (one full evaluation) so
  /// subsequent `evaluate_delta` calls only recompute touched applications.
  void bind_base(const Mapping& base);
  void bind_base(std::span<const IntervalAssignment> intervals);
  /// Binds the base from an already-computed evaluation of it (no
  /// recomputation, no eval counted). Typical use: a search accepts the
  /// candidate it just delta-evaluated and adopts that result as the new
  /// base. The caller vouches that `metrics` belongs to the new base.
  void adopt_base(const Metrics& metrics);
  [[nodiscard]] bool has_base() const noexcept { return has_base_; }

  /// Evaluates a candidate that differs from the bound base only in the
  /// intervals of `touched_apps` (at most a handful; duplicates allowed).
  /// Bit-identical to a full evaluation of the candidate. The caller owns
  /// the touched-set contract — passing a stale/incomplete set silently
  /// reuses wrong cached values (the property test covers every
  /// neighborhood move kind).
  const Metrics& evaluate_delta(const Mapping& candidate,
                                std::span<const std::size_t> touched_apps);
  const Metrics& evaluate_delta(std::span<const IntervalAssignment> intervals,
                                std::span<const std::size_t> touched_apps);

  /// Evaluations served (full + batch + delta + base binds) since
  /// construction — the `evals` diagnostic surfaced on the stats wire line.
  [[nodiscard]] std::uint64_t evals() const noexcept { return evals_; }

  // ---- flat SoA lookups (bit-identical to the Problem accessors) ----
  // Branch-and-bound reads these in its inner loop instead of the
  // bounds-checked object-graph accessors; indices must be in range.

  [[nodiscard]] std::size_t application_count() const noexcept { return app_count_; }
  [[nodiscard]] std::size_t processor_count() const noexcept { return proc_count_; }
  [[nodiscard]] CommModel comm_model() const noexcept { return comm_; }

  [[nodiscard]] double weight(std::size_t a) const noexcept { return weights_[a]; }
  [[nodiscard]] std::size_t stage_count(std::size_t a) const noexcept {
    return stage_count_[a];
  }
  /// Σ w over the inclusive stage range — the same prefix-sum difference
  /// `Application::total_compute` computes (identical doubles).
  [[nodiscard]] double compute_sum(std::size_t a, std::size_t first,
                                   std::size_t last) const noexcept {
    const std::size_t off = app_offset_[a];
    return compute_prefix_[off + last + 1] - compute_prefix_[off + first];
  }
  /// δ^i of application a, i ∈ [0, n_a].
  [[nodiscard]] double boundary(std::size_t a, std::size_t i) const noexcept {
    return boundaries_[app_offset_[a] + i];
  }
  [[nodiscard]] double link_bandwidth(std::size_t u, std::size_t v) const noexcept {
    return link_bw_[u * proc_count_ + v];
  }
  [[nodiscard]] double input_bandwidth(std::size_t a, std::size_t u) const noexcept {
    return in_bw_[a * proc_count_ + u];
  }
  [[nodiscard]] double output_bandwidth(std::size_t a, std::size_t u) const noexcept {
    return out_bw_[a * proc_count_ + u];
  }
  [[nodiscard]] std::size_t mode_count(std::size_t u) const noexcept {
    return mode_offset_[u + 1] - mode_offset_[u];
  }
  [[nodiscard]] std::size_t max_mode(std::size_t u) const noexcept {
    return mode_count(u) - 1;
  }
  [[nodiscard]] double speed(std::size_t u, std::size_t m) const noexcept {
    return speeds_[mode_offset_[u] + m];
  }
  [[nodiscard]] double max_speed(std::size_t u) const noexcept {
    return speeds_[mode_offset_[u + 1] - 1];
  }
  /// E_stat(u) + s_{u,m}^α — identical to `Platform::processor_energy`.
  [[nodiscard]] double processor_energy(std::size_t u, std::size_t m) const noexcept {
    return energies_[mode_offset_[u] + m];
  }

 private:
  /// Period/latency of one application's ordered interval run — the scalar
  /// `application_period` + `application_latency` loops fused into one pass
  /// (each accumulator still sees the exact scalar operand sequence).
  void app_metrics(std::span<const IntervalAssignment> ivs, std::size_t a,
                   AppMetrics& out) const;
  /// Full evaluation into the workspace (common core of the public calls).
  const Metrics& eval_full(std::span<const IntervalAssignment> intervals);
  /// Weighted-maxima + energy combination pass shared by full and delta.
  void combine(std::span<const IntervalAssignment> intervals);

  const Problem* problem_;
  CommModel comm_;
  std::size_t app_count_ = 0;
  std::size_t proc_count_ = 0;

  // Applications: per-app weight; concatenated prefix sums / boundary sizes,
  // both n_a+1 long per app at offset app_offset_[a].
  std::vector<double> weights_;
  std::vector<std::size_t> stage_count_;
  std::vector<std::size_t> app_offset_;
  std::vector<double> compute_prefix_;
  std::vector<double> boundaries_;

  // Platform: concatenated per-mode speed/energy tables at mode_offset_[u];
  // dense bandwidth matrices (uniform platforms expanded).
  std::vector<std::size_t> mode_offset_;
  std::vector<double> speeds_;
  std::vector<double> energies_;
  std::vector<double> link_bw_;
  std::vector<double> in_bw_;
  std::vector<double> out_bw_;

  // Workspace + delta state.
  Metrics metrics_;
  std::vector<AppMetrics> base_per_app_;
  bool has_base_ = false;
  std::uint64_t evals_ = 0;
};

}  // namespace pipeopt::core
