#pragma once

/// \file problem.hpp
/// A problem instance: concurrent applications + platform + communication
/// model (paper §3). All algorithms take a Problem.

#include <cstddef>
#include <vector>

#include "core/application.hpp"
#include "core/platform.hpp"

namespace pipeopt::core {

/// Communication model (paper §3.2): overlapped send/compute/receive
/// (Eq. 3) or fully serialized operations (Eq. 4).
enum class CommModel {
  Overlap,   ///< multi-threaded communication; cycle-time is a max
  NoOverlap  ///< single-threaded; cycle-time is a sum
};

[[nodiscard]] const char* to_string(CommModel m) noexcept;

/// Instance of the concurrent mapping problem.
class Problem {
 public:
  Problem(std::vector<Application> applications, Platform platform,
          CommModel comm = CommModel::Overlap);

  [[nodiscard]] std::size_t application_count() const noexcept { return apps_.size(); }
  [[nodiscard]] const Application& application(std::size_t a) const { return apps_.at(a); }
  [[nodiscard]] const std::vector<Application>& applications() const noexcept { return apps_; }
  [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] CommModel comm_model() const noexcept { return comm_; }

  /// Total number of stages N = Σ_a n_a.
  [[nodiscard]] std::size_t total_stages() const noexcept { return total_stages_; }

  /// Largest application size n_max.
  [[nodiscard]] std::size_t max_stages() const noexcept { return max_stages_; }

  /// One-to-one mappings require p >= N.
  [[nodiscard]] bool one_to_one_applicable() const noexcept {
    return platform_.processor_count() >= total_stages_;
  }

  /// The paper's "special-app" column: heterogeneous processors, homogeneous
  /// pipelines (all stages of every application share one w), and no
  /// communication cost anywhere.
  [[nodiscard]] bool is_special_app_family() const;

  /// Returns a copy with a different communication model.
  [[nodiscard]] Problem with_comm_model(CommModel m) const {
    return Problem(apps_, platform_, m);
  }

 private:
  std::vector<Application> apps_;
  Platform platform_;
  CommModel comm_;
  std::size_t total_stages_;
  std::size_t max_stages_;
};

}  // namespace pipeopt::core
