#include "core/platform.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

namespace pipeopt::core {

Processor::Processor(std::vector<double> speeds, double static_energy,
                     std::string name)
    : speeds_(std::move(speeds)),
      static_energy_(static_energy),
      name_(std::move(name)) {
  if (speeds_.empty()) {
    throw std::invalid_argument("Processor: needs at least one speed mode");
  }
  for (double s : speeds_) {
    if (!(s > 0.0)) throw std::invalid_argument("Processor: speeds must be > 0");
  }
  if (!(static_energy_ >= 0.0)) {
    throw std::invalid_argument("Processor: static energy must be >= 0");
  }
  std::sort(speeds_.begin(), speeds_.end());
  speeds_.erase(std::unique(speeds_.begin(), speeds_.end()), speeds_.end());
}

std::optional<std::size_t> Processor::slowest_mode_at_least(double s) const {
  const auto it = std::lower_bound(speeds_.begin(), speeds_.end(), s);
  if (it == speeds_.end()) return std::nullopt;
  return static_cast<std::size_t>(it - speeds_.begin());
}

const char* to_string(PlatformClass c) noexcept {
  switch (c) {
    case PlatformClass::FullyHomogeneous: return "fully-homogeneous";
    case PlatformClass::CommHomogeneous: return "comm-homogeneous";
    case PlatformClass::FullyHeterogeneous: return "fully-heterogeneous";
  }
  return "?";
}

Platform::Platform(std::vector<Processor> processors, double uniform_bandwidth,
                   double alpha)
    : procs_(std::move(processors)), uniform_bw_(uniform_bandwidth), alpha_(alpha) {
  if (!(uniform_bandwidth > 0.0)) {
    throw std::invalid_argument("Platform: uniform bandwidth must be > 0");
  }
  validate();
}

Platform::Platform(std::vector<Processor> processors,
                   std::vector<std::vector<double>> link_bandwidth,
                   std::vector<std::vector<double>> in_bandwidth,
                   std::vector<std::vector<double>> out_bandwidth, double alpha)
    : procs_(std::move(processors)),
      link_bw_(std::move(link_bandwidth)),
      in_bw_(std::move(in_bandwidth)),
      out_bw_(std::move(out_bandwidth)),
      alpha_(alpha) {
  validate();
  const std::size_t p = procs_.size();
  if (link_bw_.size() != p) {
    throw std::invalid_argument("Platform: link bandwidth matrix must be p x p");
  }
  for (std::size_t u = 0; u < p; ++u) {
    if (link_bw_[u].size() != p) {
      throw std::invalid_argument("Platform: link bandwidth matrix must be p x p");
    }
    for (std::size_t v = 0; v < p; ++v) {
      if (u != v && !(link_bw_[u][v] > 0.0)) {
        throw std::invalid_argument("Platform: link bandwidths must be > 0");
      }
      if (link_bw_[u][v] != link_bw_[v][u]) {
        throw std::invalid_argument("Platform: links are bidirectional (symmetric)");
      }
    }
  }
  if (in_bw_.size() != out_bw_.size()) {
    throw std::invalid_argument("Platform: in/out bandwidth tables must agree on A");
  }
  for (const auto& table : {std::cref(in_bw_), std::cref(out_bw_)}) {
    for (const auto& row : table.get()) {
      if (row.size() != p) {
        throw std::invalid_argument("Platform: in/out bandwidth rows must have p entries");
      }
      for (double b : row) {
        if (!(b > 0.0)) {
          throw std::invalid_argument("Platform: in/out bandwidths must be > 0");
        }
      }
    }
  }
}

void Platform::validate() const {
  if (procs_.empty()) throw std::invalid_argument("Platform: needs >= 1 processor");
  if (!(alpha_ > 1.0)) {
    throw std::invalid_argument("Platform: energy exponent alpha must be > 1");
  }
}

double Platform::bandwidth(std::size_t u, std::size_t v) const {
  if (u >= procs_.size() || v >= procs_.size()) {
    throw std::out_of_range("Platform::bandwidth: processor index");
  }
  if (uniform_bw_) return *uniform_bw_;
  return link_bw_[u][v];
}

double Platform::in_bandwidth(std::size_t app, std::size_t u) const {
  if (u >= procs_.size()) throw std::out_of_range("Platform::in_bandwidth: processor");
  if (uniform_bw_) return *uniform_bw_;
  return in_bw_.at(app).at(u);
}

double Platform::out_bandwidth(std::size_t app, std::size_t u) const {
  if (u >= procs_.size()) throw std::out_of_range("Platform::out_bandwidth: processor");
  if (uniform_bw_) return *uniform_bw_;
  return out_bw_.at(app).at(u);
}

double Platform::uniform_bandwidth() const {
  if (!uniform_bw_) {
    throw std::logic_error("Platform::uniform_bandwidth on heterogeneous platform");
  }
  return *uniform_bw_;
}

double Platform::dynamic_energy(double speed) const {
  return std::pow(speed, alpha_);
}

double Platform::processor_energy(std::size_t u, std::size_t mode) const {
  const Processor& proc = procs_.at(u);
  return proc.static_energy() + dynamic_energy(proc.speed(mode));
}

double Platform::min_processor_energy(std::size_t u) const {
  return processor_energy(u, 0);
}

PlatformClass Platform::classify() const {
  if (!uniform_bw_) return PlatformClass::FullyHeterogeneous;
  const Processor& first = procs_.front();
  const bool identical = std::all_of(
      procs_.begin(), procs_.end(), [&](const Processor& p) {
        return p.speeds() == first.speeds() &&
               p.static_energy() == first.static_energy();
      });
  return identical ? PlatformClass::FullyHomogeneous
                   : PlatformClass::CommHomogeneous;
}

bool Platform::is_uni_modal() const noexcept {
  return std::all_of(procs_.begin(), procs_.end(),
                     [](const Processor& p) { return p.is_uni_modal(); });
}

std::vector<std::size_t> Platform::processors_by_max_speed_desc() const {
  std::vector<std::size_t> order(procs_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return procs_[a].max_speed() > procs_[b].max_speed();
  });
  return order;
}

}  // namespace pipeopt::core
