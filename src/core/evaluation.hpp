#pragma once

/// \file evaluation.hpp
/// Closed-form evaluation of mappings (paper §3.4–3.5).
///
/// Period:
///   overlap    T_a = max_j max( δ^{d_j-1}/b_in , Σ w/s , δ^{e_j}/b_out )   (Eq. 3)
///   no-overlap T_a = max_j ( δ^{d_j-1}/b_in + Σ w/s + δ^{e_j}/b_out )      (Eq. 4)
/// Latency (identical in both models):
///   L_a = δ^0/b_in(first) + Σ_j ( Σ w/s + δ^{e_j}/b_out )                  (Eq. 5)
/// Energy:
///   E   = Σ_{u enrolled} ( E_stat(u) + s_u^α )                             (§3.5)
///
/// Transfers between two stages hosted by the same processor are free; the
/// in/out terms use the bandwidth of the link actually crossed (previous /
/// next interval's processor, or the application's virtual source/sink).

#include <cstddef>
#include <span>
#include <vector>

#include "core/mapping.hpp"
#include "core/problem.hpp"

namespace pipeopt::core {

/// Per-application performance numbers (unweighted).
struct AppMetrics {
  double period = 0.0;
  double latency = 0.0;
};

/// Full evaluation of a mapping.
struct Metrics {
  std::vector<AppMetrics> per_app;
  double max_weighted_period = 0.0;   ///< max_a W_a · T_a  (Eq. 6)
  double max_weighted_latency = 0.0;  ///< max_a W_a · L_a
  double energy = 0.0;                ///< Σ enrolled processor energy
};

/// Cycle-time pieces of one interval (before max/sum combination).
struct IntervalCost {
  double in_comm = 0.0;   ///< δ^{d_j - 1} / b(prev, this)
  double compute = 0.0;   ///< Σ w / s
  double out_comm = 0.0;  ///< δ^{e_j} / b(this, next)

  /// Combines the three pieces per the communication model.
  [[nodiscard]] double cycle_time(CommModel model) const noexcept;
};

/// Cost pieces of interval j of the given per-app interval list.
/// `intervals` must be the ordered intervals of one application.
[[nodiscard]] IntervalCost interval_cost(const Problem& problem,
                                         std::span<const IntervalAssignment> intervals,
                                         std::size_t j);

/// Period of one application under the problem's communication model.
[[nodiscard]] double application_period(const Problem& problem,
                                        std::span<const IntervalAssignment> intervals);

/// Latency of one application (Eq. 5; model-independent).
[[nodiscard]] double application_latency(const Problem& problem,
                                         std::span<const IntervalAssignment> intervals);

/// Evaluates period/latency/energy of a full mapping.
/// The mapping must be valid (checked in debug; callers on hot paths may
/// pass `check_valid = false`).
[[nodiscard]] Metrics evaluate(const Problem& problem, const Mapping& mapping,
                               bool check_valid = true);

/// Energy of a mapping alone (Σ over enrolled processors).
[[nodiscard]] double mapping_energy(const Problem& problem, const Mapping& mapping);

/// Cycle-time of a single stage (a, k) on processor u at speed s when its
/// neighbours are mapped elsewhere — the one-to-one building block used by
/// Algorithm 1 and the candidate sets of Theorem 1. On comm-homogeneous
/// platforms this is independent of the neighbour processors.
[[nodiscard]] double one_to_one_cycle_time(const Problem& problem, std::size_t a,
                                           std::size_t k, std::size_t u, double speed);

}  // namespace pipeopt::core
