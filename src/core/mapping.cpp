#include "core/mapping.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace pipeopt::core {

Mapping::Mapping(std::vector<IntervalAssignment> intervals)
    : intervals_(std::move(intervals)) {
  std::sort(intervals_.begin(), intervals_.end(),
            [](const IntervalAssignment& a, const IntervalAssignment& b) {
              if (a.app != b.app) return a.app < b.app;
              return a.first < b.first;
            });
}

std::vector<IntervalAssignment> Mapping::intervals_of(std::size_t app) const {
  std::vector<IntervalAssignment> out;
  for (const IntervalAssignment& iv : intervals_) {
    if (iv.app == app) out.push_back(iv);
  }
  return out;
}

std::vector<std::size_t> Mapping::enrolled_processors() const {
  std::vector<std::size_t> procs;
  procs.reserve(intervals_.size());
  for (const IntervalAssignment& iv : intervals_) procs.push_back(iv.proc);
  std::sort(procs.begin(), procs.end());
  return procs;
}

bool Mapping::is_one_to_one() const noexcept {
  return std::all_of(intervals_.begin(), intervals_.end(),
                     [](const IntervalAssignment& iv) { return iv.first == iv.last; });
}

std::optional<std::string> Mapping::validate(const Problem& problem) const {
  const Platform& platform = problem.platform();
  std::set<std::size_t> used_procs;
  // Track per-application coverage.
  std::vector<std::size_t> next_stage(problem.application_count(), 0);

  for (const IntervalAssignment& iv : intervals_) {
    if (iv.app >= problem.application_count()) {
      return "interval references unknown application";
    }
    const Application& app = problem.application(iv.app);
    if (iv.first > iv.last || iv.last >= app.stage_count()) {
      return "interval stage range out of bounds";
    }
    if (iv.proc >= platform.processor_count()) {
      return "interval references unknown processor";
    }
    if (iv.mode >= platform.processor(iv.proc).mode_count()) {
      return "interval references unknown mode";
    }
    if (!used_procs.insert(iv.proc).second) {
      return "processor assigned more than one interval (sharing forbidden)";
    }
    if (iv.first != next_stage[iv.app]) {
      return "intervals of an application must tile its stages in order";
    }
    next_stage[iv.app] = iv.last + 1;
  }
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    if (next_stage[a] != problem.application(a).stage_count()) {
      return "application not fully covered by intervals";
    }
  }
  return std::nullopt;
}

void Mapping::validate_or_throw(const Problem& problem) const {
  if (auto reason = validate(problem)) {
    throw std::invalid_argument("invalid mapping: " + *reason);
  }
}

Mapping Mapping::at_max_speed(const Problem& problem) const {
  std::vector<IntervalAssignment> fast = intervals_;
  for (IntervalAssignment& iv : fast) {
    iv.mode = problem.platform().processor(iv.proc).max_mode();
  }
  return Mapping(std::move(fast));
}

std::string Mapping::to_string(const Problem& problem) const {
  std::ostringstream os;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    if (a > 0) os << "; ";
    const std::string& name = problem.application(a).name();
    os << (name.empty() ? "app" + std::to_string(a) : name) << ":";
    for (const IntervalAssignment& iv : intervals_) {
      if (iv.app != a) continue;
      os << " [" << iv.first << ".." << iv.last << "]->P" << iv.proc
         << "@s=" << problem.platform().processor(iv.proc).speed(iv.mode);
    }
  }
  return os.str();
}

Mapping make_one_to_one(const Problem& problem,
                        const std::vector<std::vector<std::size_t>>& procs,
                        const std::vector<std::vector<std::size_t>>* modes) {
  if (procs.size() != problem.application_count()) {
    throw std::invalid_argument("make_one_to_one: per-application rows required");
  }
  std::vector<IntervalAssignment> intervals;
  intervals.reserve(problem.total_stages());
  for (std::size_t a = 0; a < procs.size(); ++a) {
    if (procs[a].size() != problem.application(a).stage_count()) {
      throw std::invalid_argument("make_one_to_one: one processor per stage required");
    }
    for (std::size_t k = 0; k < procs[a].size(); ++k) {
      IntervalAssignment iv;
      iv.app = a;
      iv.first = iv.last = k;
      iv.proc = procs[a][k];
      iv.mode = modes != nullptr
                    ? (*modes)[a][k]
                    : problem.platform().processor(iv.proc).max_mode();
      intervals.push_back(iv);
    }
  }
  return Mapping(std::move(intervals));
}

}  // namespace pipeopt::core
