#include "core/pareto.hpp"

#include <algorithm>

#include "util/numeric.hpp"

namespace pipeopt::core {

bool dominates(const ParetoPoint& p, const ParetoPoint& q, bool use_latency) {
  const bool le = p.period <= q.period && p.energy <= q.energy &&
                  (!use_latency || p.latency <= q.latency);
  if (!le) return false;
  return p.period < q.period || p.energy < q.energy ||
         (use_latency && p.latency < q.latency);
}

std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points,
                                      bool use_latency) {
  std::vector<ParetoPoint> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < points.size() && keep; ++j) {
      if (i == j) continue;
      if (dominates(points[j], points[i], use_latency)) keep = false;
      // Deduplicate exact ties: keep the first occurrence only.
      if (j < i && !dominates(points[j], points[i], use_latency) &&
          points[j].period == points[i].period &&
          points[j].energy == points[i].energy &&
          (!use_latency || points[j].latency == points[i].latency)) {
        keep = false;
      }
    }
    if (keep) front.push_back(std::move(points[i]));
  }
  std::sort(front.begin(), front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.period != b.period) return a.period < b.period;
              return a.energy < b.energy;
            });
  return front;
}

bool energy_monotone_in_period(const std::vector<ParetoPoint>& front) {
  for (std::size_t i = 1; i < front.size(); ++i) {
    if (!util::approx_ge(front[i - 1].energy, front[i].energy)) return false;
  }
  return true;
}

}  // namespace pipeopt::core
