#include "core/eval_batch.hpp"

#include <algorithm>
#include <stdexcept>

namespace pipeopt::core {

BatchEvaluator::BatchEvaluator(const Problem& problem)
    : problem_(&problem),
      comm_(problem.comm_model()),
      app_count_(problem.application_count()),
      proc_count_(problem.platform().processor_count()) {
  // ---- applications: weights, prefix sums, boundary sizes ----
  weights_.reserve(app_count_);
  stage_count_.reserve(app_count_);
  app_offset_.reserve(app_count_ + 1);
  app_offset_.push_back(0);
  for (std::size_t a = 0; a < app_count_; ++a) {
    const Application& app = problem.application(a);
    const std::size_t n = app.stage_count();
    weights_.push_back(app.weight());
    stage_count_.push_back(n);
    app_offset_.push_back(app_offset_.back() + n + 1);
    // Rebuild the prefix sums with the same left-to-right additions the
    // Application constructor performs, so compute_sum() reproduces
    // total_compute() bit-for-bit.
    compute_prefix_.push_back(0.0);
    for (std::size_t k = 0; k < n; ++k) {
      compute_prefix_.push_back(compute_prefix_.back() + app.compute(k));
    }
    for (std::size_t i = 0; i <= n; ++i) {
      boundaries_.push_back(app.boundary_size(i));
    }
  }

  // ---- platform: per-mode speed/energy tables, dense bandwidths ----
  const Platform& platform = problem.platform();
  mode_offset_.reserve(proc_count_ + 1);
  mode_offset_.push_back(0);
  for (std::size_t u = 0; u < proc_count_; ++u) {
    const Processor& proc = platform.processor(u);
    mode_offset_.push_back(mode_offset_.back() + proc.mode_count());
    for (std::size_t m = 0; m < proc.mode_count(); ++m) {
      const double s = proc.speed(m);
      speeds_.push_back(s);
      // Same expression as Platform::processor_energy — identical doubles.
      energies_.push_back(proc.static_energy() + platform.dynamic_energy(s));
    }
  }
  link_bw_.resize(proc_count_ * proc_count_);
  for (std::size_t u = 0; u < proc_count_; ++u) {
    for (std::size_t v = 0; v < proc_count_; ++v) {
      link_bw_[u * proc_count_ + v] = platform.bandwidth(u, v);
    }
  }
  in_bw_.resize(app_count_ * proc_count_);
  out_bw_.resize(app_count_ * proc_count_);
  for (std::size_t a = 0; a < app_count_; ++a) {
    for (std::size_t u = 0; u < proc_count_; ++u) {
      in_bw_[a * proc_count_ + u] = platform.in_bandwidth(a, u);
      out_bw_[a * proc_count_ + u] = platform.out_bandwidth(a, u);
    }
  }

  metrics_.per_app.resize(app_count_);
  base_per_app_.resize(app_count_);
}

void BatchEvaluator::app_metrics(std::span<const IntervalAssignment> ivs,
                                 std::size_t a, AppMetrics& out) const {
  // Fusion of the scalar application_period / application_latency loops:
  // interval j's cost pieces are computed once and fed to both accumulators.
  // Each accumulator sees the operand sequence of its scalar counterpart,
  // so both results are bit-identical to the two-pass version.
  const std::size_t off = app_offset_[a];
  const std::size_t m = ivs.size();
  double period = 0.0;
  double latency = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const IntervalAssignment& iv = ivs[j];
    const double s = speeds_[mode_offset_[iv.proc] + iv.mode];
    const double compute =
        (compute_prefix_[off + iv.last + 1] - compute_prefix_[off + iv.first]) / s;
    const double in_b = (j == 0) ? in_bw_[a * proc_count_ + iv.proc]
                                 : link_bw_[ivs[j - 1].proc * proc_count_ + iv.proc];
    const double in_comm = boundaries_[off + iv.first] / in_b;
    const double out_b = (j + 1 == m)
                             ? out_bw_[a * proc_count_ + iv.proc]
                             : link_bw_[iv.proc * proc_count_ + ivs[j + 1].proc];
    const double out_comm = boundaries_[off + iv.last + 1] / out_b;
    const double cycle = (comm_ == CommModel::Overlap)
                             ? std::max({in_comm, compute, out_comm})
                             : in_comm + compute + out_comm;
    period = std::max(period, cycle);
    if (j == 0) latency += in_comm;
    latency += compute + out_comm;
  }
  out.period = period;
  out.latency = latency;
}

void BatchEvaluator::combine(std::span<const IntervalAssignment> intervals) {
  // Scalar combination order: weighted maxima in ascending app order, then
  // energy summed over the (app, first)-sorted interval list.
  metrics_.max_weighted_period = 0.0;
  metrics_.max_weighted_latency = 0.0;
  for (std::size_t a = 0; a < app_count_; ++a) {
    metrics_.max_weighted_period = std::max(
        metrics_.max_weighted_period, weights_[a] * metrics_.per_app[a].period);
    metrics_.max_weighted_latency = std::max(
        metrics_.max_weighted_latency, weights_[a] * metrics_.per_app[a].latency);
  }
  double energy = 0.0;
  for (const IntervalAssignment& iv : intervals) {
    energy += energies_[mode_offset_[iv.proc] + iv.mode];
  }
  metrics_.energy = energy;
}

const Metrics& BatchEvaluator::eval_full(std::span<const IntervalAssignment> intervals) {
  std::size_t i = 0;
  for (std::size_t a = 0; a < app_count_; ++a) {
    const std::size_t begin = i;
    while (i < intervals.size() && intervals[i].app == a) ++i;
    if (i == begin) {
      throw std::invalid_argument(
          "BatchEvaluator: application without intervals (span must cover "
          "every application, grouped in ascending order)");
    }
    app_metrics(intervals.subspan(begin, i - begin), a, metrics_.per_app[a]);
  }
  if (i != intervals.size()) {
    throw std::invalid_argument(
        "BatchEvaluator: intervals not grouped by ascending application");
  }
  combine(intervals);
  ++evals_;
  return metrics_;
}

const Metrics& BatchEvaluator::evaluate(const Mapping& mapping) {
  return eval_full(mapping.intervals());
}

const Metrics& BatchEvaluator::evaluate(std::span<const IntervalAssignment> intervals) {
  return eval_full(intervals);
}

void BatchEvaluator::evaluate_batch(std::span<const Mapping> candidates,
                                    std::vector<Metrics>& out) {
  out.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    out[i] = eval_full(candidates[i].intervals());
  }
}

void BatchEvaluator::bind_base(const Mapping& base) { bind_base(base.intervals()); }

void BatchEvaluator::bind_base(std::span<const IntervalAssignment> intervals) {
  eval_full(intervals);
  base_per_app_ = metrics_.per_app;
  has_base_ = true;
}

void BatchEvaluator::adopt_base(const Metrics& metrics) {
  if (metrics.per_app.size() != app_count_) {
    throw std::invalid_argument("BatchEvaluator::adopt_base: wrong per-app size");
  }
  base_per_app_ = metrics.per_app;
  has_base_ = true;
}

const Metrics& BatchEvaluator::evaluate_delta(
    const Mapping& candidate, std::span<const std::size_t> touched_apps) {
  return evaluate_delta(candidate.intervals(), touched_apps);
}

const Metrics& BatchEvaluator::evaluate_delta(
    std::span<const IntervalAssignment> intervals,
    std::span<const std::size_t> touched_apps) {
  if (!has_base_) {
    throw std::logic_error("BatchEvaluator::evaluate_delta: no base bound");
  }
  metrics_.per_app = base_per_app_;
  for (std::size_t t = 0; t < touched_apps.size(); ++t) {
    const std::size_t a = touched_apps[t];
    if (a >= app_count_) {
      throw std::out_of_range("BatchEvaluator::evaluate_delta: touched app index");
    }
    bool seen = false;
    for (std::size_t s = 0; s < t; ++s) seen = seen || touched_apps[s] == a;
    if (seen) continue;
    const auto begin = std::lower_bound(
        intervals.begin(), intervals.end(), a,
        [](const IntervalAssignment& iv, std::size_t app) { return iv.app < app; });
    auto end = begin;
    while (end != intervals.end() && end->app == a) ++end;
    if (begin == end) {
      throw std::invalid_argument(
          "BatchEvaluator::evaluate_delta: touched application has no intervals");
    }
    app_metrics(std::span<const IntervalAssignment>(begin, end), a,
                metrics_.per_app[a]);
  }
  combine(intervals);
  ++evals_;
  return metrics_;
}

}  // namespace pipeopt::core
