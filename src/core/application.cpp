#include "core/application.hpp"

#include <cmath>
#include <stdexcept>

namespace pipeopt::core {

Application::Application(double input_size, std::vector<StageSpec> stages,
                         double weight, std::string name)
    : input_size_(input_size),
      stages_(std::move(stages)),
      weight_(weight),
      name_(std::move(name)) {
  if (stages_.empty()) {
    throw std::invalid_argument("Application: must have at least one stage");
  }
  if (!(input_size_ >= 0.0)) {
    throw std::invalid_argument("Application: input size must be >= 0");
  }
  if (!(weight_ > 0.0)) {
    throw std::invalid_argument("Application: weight W_a must be > 0");
  }
  compute_prefix_.reserve(stages_.size() + 1);
  compute_prefix_.push_back(0.0);
  for (const StageSpec& s : stages_) {
    if (!(s.compute >= 0.0) || !(s.output_size >= 0.0)) {
      throw std::invalid_argument("Application: stage w and delta must be >= 0");
    }
    compute_prefix_.push_back(compute_prefix_.back() + s.compute);
  }
}

double Application::boundary_size(std::size_t i) const {
  if (i > stages_.size()) {
    throw std::out_of_range("Application::boundary_size: index past last boundary");
  }
  return i == 0 ? input_size_ : stages_[i - 1].output_size;
}

double Application::total_compute(std::size_t first, std::size_t last) const {
  if (first > last || last >= stages_.size()) {
    throw std::out_of_range("Application::total_compute: bad stage range");
  }
  return compute_prefix_[last + 1] - compute_prefix_[first];
}

bool Application::is_uniform_no_comm() const noexcept {
  if (input_size_ != 0.0) return false;
  const double w0 = stages_.front().compute;
  for (const StageSpec& s : stages_) {
    if (s.compute != w0 || s.output_size != 0.0) return false;
  }
  return true;
}

Application Application::scaled_compute(double factor) const {
  if (!(factor > 0.0)) {
    throw std::invalid_argument("Application::scaled_compute: factor must be > 0");
  }
  std::vector<StageSpec> scaled = stages_;
  for (StageSpec& s : scaled) s.compute *= factor;
  return Application(input_size_, std::move(scaled), weight_, name_);
}

}  // namespace pipeopt::core
