#include "core/evaluation.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace pipeopt::core {

double IntervalCost::cycle_time(CommModel model) const noexcept {
  if (model == CommModel::Overlap) {
    return std::max({in_comm, compute, out_comm});
  }
  return in_comm + compute + out_comm;
}

IntervalCost interval_cost(const Problem& problem,
                           std::span<const IntervalAssignment> intervals,
                           std::size_t j) {
  if (j >= intervals.size()) {
    throw std::out_of_range("interval_cost: interval index");
  }
  const IntervalAssignment& iv = intervals[j];
  const Application& app = problem.application(iv.app);
  const Platform& platform = problem.platform();
  const double speed = platform.processor(iv.proc).speed(iv.mode);

  IntervalCost cost;
  cost.compute = app.total_compute(iv.first, iv.last) / speed;

  const double in_size = app.boundary_size(iv.first);
  const double in_bw = (j == 0) ? platform.in_bandwidth(iv.app, iv.proc)
                                : platform.bandwidth(intervals[j - 1].proc, iv.proc);
  cost.in_comm = in_size / in_bw;

  const double out_size = app.boundary_size(iv.last + 1);
  const double out_bw = (j + 1 == intervals.size())
                            ? platform.out_bandwidth(iv.app, iv.proc)
                            : platform.bandwidth(iv.proc, intervals[j + 1].proc);
  cost.out_comm = out_size / out_bw;
  return cost;
}

double application_period(const Problem& problem,
                          std::span<const IntervalAssignment> intervals) {
  if (intervals.empty()) {
    throw std::invalid_argument("application_period: empty interval list");
  }
  double period = 0.0;
  for (std::size_t j = 0; j < intervals.size(); ++j) {
    period = std::max(
        period, interval_cost(problem, intervals, j).cycle_time(problem.comm_model()));
  }
  return period;
}

double application_latency(const Problem& problem,
                           std::span<const IntervalAssignment> intervals) {
  if (intervals.empty()) {
    throw std::invalid_argument("application_latency: empty interval list");
  }
  // Eq. 5: input transfer + per-interval (compute + outgoing transfer).
  // interval_cost's in_comm of interval j>0 equals out_comm of j-1, so the
  // sum uses in_comm only for j == 0.
  double latency = 0.0;
  for (std::size_t j = 0; j < intervals.size(); ++j) {
    const IntervalCost cost = interval_cost(problem, intervals, j);
    if (j == 0) latency += cost.in_comm;
    latency += cost.compute + cost.out_comm;
  }
  return latency;
}

Metrics evaluate(const Problem& problem, const Mapping& mapping, bool check_valid) {
  if (check_valid) mapping.validate_or_throw(problem);

  // One pass over the (app, first)-sorted interval list: each application's
  // run is located without the intervals_of copy, and each interval's cost
  // pieces are computed once and shared between the period and latency
  // accumulators (the two-pass version recomputed interval_cost per
  // accumulator). Both accumulators still see the operand sequence of their
  // standalone application_period/application_latency loops, so the results
  // are bit-identical.
  const std::span<const IntervalAssignment> all = mapping.intervals();
  Metrics metrics;
  metrics.per_app.resize(problem.application_count());
  std::size_t i = 0;
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    const std::size_t begin = i;
    while (i < all.size() && all[i].app == a) ++i;
    const std::span<const IntervalAssignment> ivs = all.subspan(begin, i - begin);
    if (ivs.empty()) {
      throw std::invalid_argument("application_period: empty interval list");
    }
    double period = 0.0;
    double latency = 0.0;
    for (std::size_t j = 0; j < ivs.size(); ++j) {
      const IntervalCost cost = interval_cost(problem, ivs, j);
      period = std::max(period, cost.cycle_time(problem.comm_model()));
      if (j == 0) latency += cost.in_comm;
      latency += cost.compute + cost.out_comm;
    }
    metrics.per_app[a].period = period;
    metrics.per_app[a].latency = latency;
    const double w = problem.application(a).weight();
    metrics.max_weighted_period =
        std::max(metrics.max_weighted_period, w * metrics.per_app[a].period);
    metrics.max_weighted_latency =
        std::max(metrics.max_weighted_latency, w * metrics.per_app[a].latency);
  }
  metrics.energy = mapping_energy(problem, mapping);
  return metrics;
}

double mapping_energy(const Problem& problem, const Mapping& mapping) {
  double energy = 0.0;
  for (const IntervalAssignment& iv : mapping.intervals()) {
    energy += problem.platform().processor_energy(iv.proc, iv.mode);
  }
  return energy;
}

double one_to_one_cycle_time(const Problem& problem, std::size_t a, std::size_t k,
                             std::size_t u, double speed) {
  const Application& app = problem.application(a);
  const Platform& platform = problem.platform();
  // For interior boundaries the neighbour's processor is unknown at this
  // granularity; on comm-homogeneous platforms all inter-processor links are
  // equal, which is exactly when this quantity is well defined. We use the
  // uniform bandwidth and leave heterogeneous-link one-to-one costs to the
  // exact solvers (the problem is NP-hard there, Theorem 2).
  const double in_bw = (k == 0) ? platform.in_bandwidth(a, u)
                                : platform.uniform_bandwidth();
  const double out_bw = (k + 1 == app.stage_count())
                            ? platform.out_bandwidth(a, u)
                            : platform.uniform_bandwidth();
  const double in_comm = app.boundary_size(k) / in_bw;
  const double compute = app.compute(k) / speed;
  const double out_comm = app.boundary_size(k + 1) / out_bw;
  if (problem.comm_model() == CommModel::Overlap) {
    return std::max({in_comm, compute, out_comm});
  }
  return in_comm + compute + out_comm;
}

}  // namespace pipeopt::core
