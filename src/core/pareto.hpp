#pragma once

/// \file pareto.hpp
/// Pareto-front utilities for the period/latency/energy trade-off space
/// (the paper's §1 laptop-problem / server-problem narrative, and the §2
/// example's 136 → 46 → 10 energy-vs-period progression). The facade-level
/// sweep machinery that drives solvers across a bound grid and filters
/// through these rules lives in api/sweep.hpp.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/mapping.hpp"

namespace pipeopt::core {

/// One point of the trade-off space. Produced by the `api::sweep` /
/// `Executor::sweep` drivers (which attach witness mappings) and by the
/// bench sweeps (`bench_pareto_front`, values only); unused criteria are
/// set to 0 by those producers and ignored by dominance when `use_latency`
/// is false.
struct ParetoPoint {
  double period = 0.0;
  double latency = 0.0;
  double energy = 0.0;
  std::optional<Mapping> mapping;  ///< witness mapping, if kept
};

/// Dominance: p dominates q when p is <= q on all tracked criteria and
/// strictly < on at least one.
[[nodiscard]] bool dominates(const ParetoPoint& p, const ParetoPoint& q,
                             bool use_latency);

/// Filters a point set down to its Pareto-optimal subset (non-dominated
/// points), removing duplicates; result sorted by ascending period.
[[nodiscard]] std::vector<ParetoPoint> pareto_front(std::vector<ParetoPoint> points,
                                                    bool use_latency);

/// Checks the monotone-trade-off property the §2 example illustrates: along
/// a front sorted by ascending period, energy must be non-increasing.
/// (Only meaningful for 2-D fronts; returns true for empty/singleton.)
[[nodiscard]] bool energy_monotone_in_period(const std::vector<ParetoPoint>& front);

}  // namespace pipeopt::core
