#pragma once

/// \file platform.hpp
/// Target execution platform (paper §3.2).
///
/// p fully-interconnected multi-modal processors. Each processor P_u carries
/// a discrete set of speeds S_u = {s_u,1 < ... < s_u,m_u} (DVFS modes) and a
/// static energy cost E_stat(u); running at speed s costs E_stat(u) + s^α per
/// time unit (§3.5). Bandwidths are either uniform (fully homogeneous /
/// communication homogeneous platforms) or a full p×p matrix plus
/// per-application in/out link capacities (fully heterogeneous platforms).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace pipeopt::core {

/// One multi-modal processor.
class Processor {
 public:
  /// \param speeds        DVFS modes; must be non-empty, positive. Sorted
  ///                      ascending and deduplicated on construction.
  /// \param static_energy E_stat(u) >= 0.
  Processor(std::vector<double> speeds, double static_energy = 0.0,
            std::string name = {});

  [[nodiscard]] std::size_t mode_count() const noexcept { return speeds_.size(); }
  /// Speed of 0-based mode m (ascending order).
  [[nodiscard]] double speed(std::size_t mode) const { return speeds_.at(mode); }
  [[nodiscard]] double min_speed() const noexcept { return speeds_.front(); }
  [[nodiscard]] double max_speed() const noexcept { return speeds_.back(); }
  [[nodiscard]] std::size_t max_mode() const noexcept { return speeds_.size() - 1; }
  [[nodiscard]] double static_energy() const noexcept { return static_energy_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<double>& speeds() const noexcept { return speeds_; }

  /// Index of the slowest mode with speed >= s, if any.
  [[nodiscard]] std::optional<std::size_t> slowest_mode_at_least(double s) const;

  /// True when the processor has a single speed.
  [[nodiscard]] bool is_uni_modal() const noexcept { return speeds_.size() == 1; }

 private:
  std::vector<double> speeds_;
  double static_energy_;
  std::string name_;
};

/// Platform classification (paper §3.2). The classes are nested:
/// FullyHomogeneous ⊂ CommHomogeneous ⊂ FullyHeterogeneous.
enum class PlatformClass {
  FullyHomogeneous,   ///< identical processors, identical links
  CommHomogeneous,    ///< identical links, heterogeneous processors
  FullyHeterogeneous  ///< heterogeneous links and processors
};

[[nodiscard]] const char* to_string(PlatformClass c) noexcept;

/// Fully-connected platform with an energy model.
///
/// Bandwidths: `bandwidth(u, v)` is the capacity of the bidirectional link
/// P_u ↔ P_v; `in_bandwidth(a, u)` / `out_bandwidth(a, u)` are the links from
/// application a's virtual source / to its sink. On uniform-bandwidth
/// platforms all of these equal the single value `b`.
class Platform {
 public:
  /// Uniform-bandwidth platform (fully homogeneous or comm-homogeneous,
  /// depending on the processors).
  /// \param alpha energy exponent α > 1 of E_dyn(s) = s^α.
  Platform(std::vector<Processor> processors, double uniform_bandwidth,
           double alpha = 2.0);

  /// Fully heterogeneous platform. `link_bandwidth` must be p×p symmetric
  /// positive (diagonal ignored: intra-processor transfers are free);
  /// `in_bandwidth` / `out_bandwidth` are A×p (application × processor).
  Platform(std::vector<Processor> processors,
           std::vector<std::vector<double>> link_bandwidth,
           std::vector<std::vector<double>> in_bandwidth,
           std::vector<std::vector<double>> out_bandwidth, double alpha = 2.0);

  [[nodiscard]] std::size_t processor_count() const noexcept { return procs_.size(); }
  [[nodiscard]] const Processor& processor(std::size_t u) const { return procs_.at(u); }
  [[nodiscard]] const std::vector<Processor>& processors() const noexcept { return procs_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

  /// Capacity of link P_u ↔ P_v.
  [[nodiscard]] double bandwidth(std::size_t u, std::size_t v) const;
  /// Capacity of the link from application a's source to P_u.
  [[nodiscard]] double in_bandwidth(std::size_t app, std::size_t u) const;
  /// Capacity of the link from P_u to application a's sink.
  [[nodiscard]] double out_bandwidth(std::size_t app, std::size_t u) const;

  [[nodiscard]] bool has_uniform_bandwidth() const noexcept {
    return uniform_bw_.has_value();
  }
  /// The uniform bandwidth b; throws if the platform is fully heterogeneous.
  [[nodiscard]] double uniform_bandwidth() const;

  /// Dynamic energy per time unit at speed s: s^α (§3.5).
  [[nodiscard]] double dynamic_energy(double speed) const;
  /// Total energy per time unit of P_u running in `mode`.
  [[nodiscard]] double processor_energy(std::size_t u, std::size_t mode) const;
  /// Minimum possible energy of enrolling P_u (its slowest mode).
  [[nodiscard]] double min_processor_energy(std::size_t u) const;

  [[nodiscard]] PlatformClass classify() const;

  /// True when every processor is uni-modal (single speed).
  [[nodiscard]] bool is_uni_modal() const noexcept;

  /// Indices of processors sorted by max speed, descending; ties by index.
  [[nodiscard]] std::vector<std::size_t> processors_by_max_speed_desc() const;

 private:
  void validate() const;

  std::vector<Processor> procs_;
  std::optional<double> uniform_bw_;
  std::vector<std::vector<double>> link_bw_;  ///< empty when uniform
  std::vector<std::vector<double>> in_bw_;    ///< empty when uniform
  std::vector<std::vector<double>> out_bw_;   ///< empty when uniform
  double alpha_;
};

}  // namespace pipeopt::core
