#include "core/objectives.hpp"

#include <limits>
#include <stdexcept>

#include "util/numeric.hpp"

namespace pipeopt::core {

Weights Weights::unit(std::size_t count) {
  return Weights(std::vector<double>(count, 1.0));
}

Weights Weights::priority(const Problem& problem) {
  std::vector<double> w;
  w.reserve(problem.application_count());
  for (const Application& a : problem.applications()) w.push_back(a.weight());
  return Weights(std::move(w));
}

Weights Weights::stretch(const std::vector<double>& solo_optima) {
  std::vector<double> w;
  w.reserve(solo_optima.size());
  for (double x : solo_optima) {
    if (!(x > 0.0)) {
      throw std::invalid_argument("Weights::stretch: solo optima must be > 0");
    }
    w.push_back(1.0 / x);
  }
  return Weights(std::move(w));
}

double Weights::weighted_max(const std::vector<double>& values) const {
  if (values.size() != weights_.size()) {
    throw std::invalid_argument("Weights::weighted_max: arity mismatch");
  }
  double best = 0.0;
  for (std::size_t a = 0; a < values.size(); ++a) {
    best = std::max(best, weights_[a] * values[a]);
  }
  return best;
}

Thresholds Thresholds::uniform(const Problem& problem, double global_bound,
                               WeightPolicy policy) {
  if (!(global_bound > 0.0)) {
    throw std::invalid_argument("Thresholds::uniform: bound must be > 0");
  }
  std::vector<double> bounds;
  bounds.reserve(problem.application_count());
  for (const Application& a : problem.applications()) {
    const double w = (policy == WeightPolicy::Unit) ? 1.0 : a.weight();
    bounds.push_back(global_bound / w);
  }
  return Thresholds(std::move(bounds));
}

Thresholds Thresholds::per_app(std::vector<double> bounds) {
  for (double b : bounds) {
    if (!(b > 0.0)) {
      throw std::invalid_argument("Thresholds::per_app: bounds must be > 0");
    }
  }
  return Thresholds(std::move(bounds));
}

Thresholds Thresholds::unconstrained(std::size_t count) {
  return Thresholds(
      std::vector<double>(count, std::numeric_limits<double>::infinity()));
}

bool Thresholds::is_unconstrained(std::size_t a) const {
  return !std::isfinite(bounds_.at(a));
}

bool Thresholds::satisfied_by(const std::vector<double>& values) const {
  if (values.size() != bounds_.size()) {
    throw std::invalid_argument("Thresholds::satisfied_by: arity mismatch");
  }
  for (std::size_t a = 0; a < values.size(); ++a) {
    if (!util::approx_le(values[a], bounds_[a])) return false;
  }
  return true;
}

std::vector<double> per_app_values(const Metrics& metrics, Criterion criterion) {
  std::vector<double> out;
  out.reserve(metrics.per_app.size());
  for (const AppMetrics& m : metrics.per_app) {
    out.push_back(criterion == Criterion::Period ? m.period : m.latency);
  }
  return out;
}

bool ConstraintSet::satisfied_by(const Metrics& metrics) const {
  if (period && !period->satisfied_by(per_app_values(metrics, Criterion::Period))) {
    return false;
  }
  if (latency &&
      !latency->satisfied_by(per_app_values(metrics, Criterion::Latency))) {
    return false;
  }
  if (energy_budget && !util::approx_le(metrics.energy, *energy_budget)) {
    return false;
  }
  return true;
}

}  // namespace pipeopt::core
