#pragma once

/// \file mapping.hpp
/// Interval and one-to-one mappings (paper §3.3).
///
/// A mapping partitions each application's stage chain into consecutive
/// intervals and assigns every interval to a distinct processor together
/// with one of its speed modes. One-to-one mappings are the special case
/// where every interval holds a single stage. Processor sharing across
/// intervals (and hence across applications) is forbidden.

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/problem.hpp"

namespace pipeopt::core {

/// One interval of consecutive stages of one application, placed on one
/// processor running in one mode.
struct IntervalAssignment {
  std::size_t app = 0;    ///< application index
  std::size_t first = 0;  ///< first stage of the interval (0-based, inclusive)
  std::size_t last = 0;   ///< last stage of the interval (0-based, inclusive)
  std::size_t proc = 0;   ///< processor index
  std::size_t mode = 0;   ///< speed mode index on that processor

  friend bool operator==(const IntervalAssignment&,
                         const IntervalAssignment&) = default;
};

/// A complete mapping for all applications of a Problem.
///
/// Invariants (checked by `validate`):
///  * every application's stages are partitioned into consecutive intervals;
///  * all intervals are mapped to pairwise distinct processors;
///  * processor/mode indices are valid for the platform.
class Mapping {
 public:
  Mapping() = default;
  explicit Mapping(std::vector<IntervalAssignment> intervals);

  [[nodiscard]] std::span<const IntervalAssignment> intervals() const noexcept {
    return intervals_;
  }
  [[nodiscard]] std::size_t interval_count() const noexcept { return intervals_.size(); }

  /// Intervals of application a, ordered by first stage.
  [[nodiscard]] std::vector<IntervalAssignment> intervals_of(std::size_t app) const;

  /// Processors enrolled by this mapping (each appears exactly once).
  [[nodiscard]] std::vector<std::size_t> enrolled_processors() const;

  /// True when every interval is a single stage.
  [[nodiscard]] bool is_one_to_one() const noexcept;

  /// Returns std::nullopt when valid, otherwise a human-readable reason.
  [[nodiscard]] std::optional<std::string> validate(const Problem& problem) const;

  /// Convenience: throws std::invalid_argument when invalid.
  void validate_or_throw(const Problem& problem) const;

  /// Returns a copy with every enrolled processor switched to its fastest
  /// mode (the §4 normalization for problems that ignore energy).
  [[nodiscard]] Mapping at_max_speed(const Problem& problem) const;

  /// Human-readable rendering ("app0: [0..2]->P1@mode1 ...").
  [[nodiscard]] std::string to_string(const Problem& problem) const;

 private:
  std::vector<IntervalAssignment> intervals_;  ///< sorted by (app, first)
};

/// Builds a one-to-one mapping from per-stage processor (and optional mode)
/// choices; stage (a, k) -> procs[a][k]. Modes default to fastest.
[[nodiscard]] Mapping make_one_to_one(
    const Problem& problem, const std::vector<std::vector<std::size_t>>& procs,
    const std::vector<std::vector<std::size_t>>* modes = nullptr);

}  // namespace pipeopt::core
