#include "api/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/adapters.hpp"
#include "util/timing.hpp"

namespace pipeopt::api {

namespace {

/// Dispatch order: cheapest tier first, then rank, then name (total order so
/// dispatch is deterministic regardless of registration order). `solvers_`
/// is kept sorted by this at registration time.
bool dispatch_before(const Solver* a, const Solver* b) {
  const auto& ia = a->info();
  const auto& ib = b->info();
  if (ia.tier != ib.tier) return ia.tier < ib.tier;
  if (ia.rank != ib.rank) return ia.rank < ib.rank;
  return ia.name < ib.name;
}

}  // namespace

const char* to_string(CostTier t) noexcept {
  switch (t) {
    case CostTier::Polynomial: return "polynomial";
    case CostTier::Exact: return "exact";
    case CostTier::Heuristic: return "heuristic";
  }
  return "?";
}

void SolverRegistry::add(std::unique_ptr<Solver> solver) {
  if (!solver) throw std::invalid_argument("null solver");
  if (find(solver->name()) != nullptr) {
    throw std::invalid_argument("duplicate solver name: " + solver->name());
  }
  // Kept sorted in dispatch order so every solve walks solvers_ directly.
  const auto pos = std::find_if(
      solvers_.begin(), solvers_.end(),
      [&](const auto& other) { return dispatch_before(solver.get(), other.get()); });
  solvers_.insert(pos, std::move(solver));
}

const Solver* SolverRegistry::find(std::string_view name) const noexcept {
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

std::vector<const Solver*> SolverRegistry::solvers() const {
  std::vector<const Solver*> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver.get());
  return out;
}

std::vector<const Solver*> SolverRegistry::candidates(
    const core::Problem& problem, const SolveRequest& request) const {
  std::vector<const Solver*> out;
  for (const auto& solver : solvers_) {
    if (solver->applicable(problem, request)) out.push_back(solver.get());
  }
  return out;
}

DispatchPlan SolverRegistry::plan_request(SolveRequest request) const {
  return DispatchPlan(*this, std::move(request));
}

SolvePlan SolverRegistry::plan(const core::Problem& problem,
                               const SolveRequest& request) const {
  return plan_request(request).bind(problem);
}

SolveResult SolverRegistry::solve(const core::Problem& problem,
                                  const SolveRequest& request) const {
  const util::Stopwatch watch;
  SolveResult result = plan(problem, request).execute();
  // One-shot calls report planning (weight resolution, capability
  // filtering) and execution as one wall time, as before the split.
  result.wall_seconds = watch.elapsed_seconds();
  return result;
}

const SolverRegistry& default_registry() {
  static const SolverRegistry registry = [] {
    SolverRegistry r;
    register_all_solvers(r);
    return r;
  }();
  return registry;
}

SolveResult solve(const core::Problem& problem, const SolveRequest& request) {
  return default_registry().solve(problem, request);
}

}  // namespace pipeopt::api
