#include "api/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "api/adapters.hpp"
#include "util/numeric.hpp"
#include "util/timing.hpp"

namespace pipeopt::api {

namespace {

constexpr double kInf = util::kInfinity;

/// Dispatch order: cheapest tier first, then rank, then name (total order so
/// dispatch is deterministic regardless of registration order). `solvers_`
/// is kept sorted by this at registration time.
bool dispatch_before(const Solver* a, const Solver* b) {
  const auto& ia = a->info();
  const auto& ib = b->info();
  if (ia.tier != ib.tier) return ia.tier < ib.tier;
  if (ia.rank != ib.rank) return ia.rank < ib.rank;
  return ia.name < ib.name;
}

SolveResult no_solver(std::string reason) {
  SolveResult result;
  result.status = SolveStatus::NoSolver;
  result.value = kInf;
  result.diagnostics.emplace_back("reason", std::move(reason));
  return result;
}

/// Per-application thresholds must match the instance; a mismatched request
/// is a caller error reported as a typed status, not an exception.
bool thresholds_match(const core::ConstraintSet& cs, std::size_t apps) {
  if (cs.period && cs.period->size() != apps) return false;
  if (cs.latency && cs.latency->size() != apps) return false;
  return true;
}

/// Rebuilds an application with a new weight (Application is immutable).
core::Application with_weight(const core::Application& app, double weight) {
  return core::Application(
      app.boundary_size(0),
      std::vector<core::StageSpec>(app.stages().begin(), app.stages().end()),
      weight, app.name());
}

}  // namespace

const char* to_string(CostTier t) noexcept {
  switch (t) {
    case CostTier::Polynomial: return "polynomial";
    case CostTier::Exact: return "exact";
    case CostTier::Heuristic: return "heuristic";
  }
  return "?";
}

void SolverRegistry::add(std::unique_ptr<Solver> solver) {
  if (!solver) throw std::invalid_argument("null solver");
  if (find(solver->name()) != nullptr) {
    throw std::invalid_argument("duplicate solver name: " + solver->name());
  }
  // Kept sorted in dispatch order so every solve walks solvers_ directly.
  const auto pos = std::find_if(
      solvers_.begin(), solvers_.end(),
      [&](const auto& other) { return dispatch_before(solver.get(), other.get()); });
  solvers_.insert(pos, std::move(solver));
}

const Solver* SolverRegistry::find(std::string_view name) const noexcept {
  for (const auto& solver : solvers_) {
    if (solver->name() == name) return solver.get();
  }
  return nullptr;
}

std::vector<const Solver*> SolverRegistry::solvers() const {
  std::vector<const Solver*> out;
  out.reserve(solvers_.size());
  for (const auto& solver : solvers_) out.push_back(solver.get());
  return out;
}

std::vector<const Solver*> SolverRegistry::candidates(
    const core::Problem& problem, const SolveRequest& request) const {
  std::vector<const Solver*> out;
  for (const auto& solver : solvers_) {
    if (solver->applicable(problem, request)) out.push_back(solver.get());
  }
  return out;
}

std::optional<core::Problem> SolverRegistry::weighted_problem(
    const core::Problem& problem, const SolveRequest& request,
    SolveResult& failure,
    std::vector<std::pair<std::string, std::string>>& notes) const {
  // Energy is unweighted (§3.5); only the weighted maxima of Eq. 6 care.
  if (request.weights == core::WeightPolicy::Priority ||
      request.objective == Objective::Energy) {
    return problem;
  }
  std::vector<core::Application> apps;
  apps.reserve(problem.application_count());
  if (request.weights == core::WeightPolicy::Unit) {
    for (const auto& app : problem.applications()) {
      apps.push_back(with_weight(app, 1.0));
    }
    return core::Problem(std::move(apps), problem.platform(),
                         problem.comm_model());
  }
  // Stretch: W_a = 1/X*_a where X*_a is a's solo optimum (§3.4). The solo
  // optima are computed through this registry so stretch works on every
  // platform class, not just the cells with a closed-form solo solver.
  for (std::size_t a = 0; a < problem.application_count(); ++a) {
    core::Problem solo({with_weight(problem.application(a), 1.0)},
                       problem.platform(), problem.comm_model());
    SolveRequest solo_request;
    solo_request.objective = request.objective;
    solo_request.kind = request.kind;
    solo_request.weights = core::WeightPolicy::Unit;  // no further recursion
    solo_request.node_budget = request.node_budget;
    solo_request.time_budget_seconds = request.time_budget_seconds;
    solo_request.seed = request.seed;
    const SolveResult solo_result = solve(solo, solo_request);
    if (!solo_result.solved() || !(solo_result.value > 0.0)) {
      // An application that cannot be mapped even alone makes the whole
      // instance infeasible — keep that status so the CLI exit-code
      // contract (1 = infeasible, 2 = unusable request) holds.
      failure = no_solver("stretch weights: no solo optimum for application " +
                          std::to_string(a) + " (" +
                          to_string(solo_result.status) + ")");
      if (solo_result.status == SolveStatus::Infeasible) {
        failure.status = SolveStatus::Infeasible;
      }
      return std::nullopt;
    }
    if (solo_result.status != SolveStatus::Optimal) {
      // On an NP-hard cell past its budget the solo value is a heuristic
      // upper bound, so W_a = 1/value underestimates the true stretch.
      notes.emplace_back("stretch",
                         "solo value for application " + std::to_string(a) +
                             " is " + to_string(solo_result.status) + " (" +
                             solo_result.solver + "), not proved optimal");
    }
    apps.push_back(with_weight(problem.application(a), 1.0 / solo_result.value));
  }
  return core::Problem(std::move(apps), problem.platform(), problem.comm_model());
}

SolveResult SolverRegistry::solve(const core::Problem& problem,
                                  const SolveRequest& request) const {
  const util::Stopwatch watch;
  SolveResult result;
  const auto finish = [&](SolveResult r) {
    r.wall_seconds = watch.elapsed_seconds();
    return r;
  };
  if (!thresholds_match(request.constraints, problem.application_count())) {
    return finish(no_solver(
        "expected constraint thresholds sized for " +
        std::to_string(problem.application_count()) + " applications"));
  }

  std::vector<std::pair<std::string, std::string>> notes;
  const std::optional<core::Problem> weighted =
      weighted_problem(problem, request, result, notes);
  if (!weighted) return finish(std::move(result));

  if (request.solver) {
    const Solver* forced = find(*request.solver);
    if (forced == nullptr) {
      result = no_solver("unknown solver: " + *request.solver);
    } else if (!forced->applicable(*weighted, request)) {
      result = no_solver("solver " + *request.solver +
                         " is not applicable to this request (platform "
                         "class, mapping kind or constraint shape mismatch)");
    } else {
      result = forced->run(*weighted, request);
      result.solver = forced->name();
    }
    result.diagnostics.insert(result.diagnostics.end(), notes.begin(),
                              notes.end());
    return finish(std::move(result));
  }

  bool exact_budget_blown = false;
  for (const Solver* candidate : candidates(*weighted, request)) {
    if (exact_budget_blown && candidate->info().tier == CostTier::Exact) {
      // The exact engines share the node budget; once one exhausted it, a
      // broader search over the same space is guaranteed to as well.
      notes.emplace_back("skipped",
                         candidate->name() + ": exact node budget exhausted");
      continue;
    }
    result = candidate->run(*weighted, request);
    result.solver = candidate->name();
    if (result.status == SolveStatus::LimitExceeded) {
      // Degrade to the next tier (e.g. exact search out of budget falls
      // through to the heuristic ladder); remember why.
      notes.emplace_back("skipped", candidate->name() + ": budget exhausted");
      if (candidate->info().tier == CostTier::Exact) exact_budget_blown = true;
      continue;
    }
    result.diagnostics.insert(result.diagnostics.end(), notes.begin(),
                              notes.end());
    return finish(std::move(result));
  }
  if (result.status != SolveStatus::LimitExceeded) {
    result = no_solver("no registered solver matches this request");
  }
  result.diagnostics.insert(result.diagnostics.end(), notes.begin(),
                            notes.end());
  return finish(std::move(result));
}

const SolverRegistry& default_registry() {
  static const SolverRegistry registry = [] {
    SolverRegistry r;
    register_all_solvers(r);
    return r;
  }();
  return registry;
}

SolveResult solve(const core::Problem& problem, const SolveRequest& request) {
  return default_registry().solve(problem, request);
}

}  // namespace pipeopt::api
