#pragma once

/// \file executor.hpp
/// Batch and asynchronous execution over the facade — the subsystem a
/// service front end multiplexes requests through.
///
/// `Executor` owns a fixed pool of worker threads fed from one FIFO queue.
/// Two entry points:
///
///  * `solve_batch(problems, request)` — solves many instances under one
///    request, building the request-level `DispatchPlan` exactly once and
///    binding it per instance on the pool. Results are bit-identical to
///    per-call `api::solve` (same code path underneath), in input order.
///  * `solve_async(problem, request)` — enqueues one solve and returns a
///    `std::future<SolveResult>` immediately.
///  * `sweep(problem, sweep_request)` — a Pareto-front sweep (sweep.hpp)
///    whose grid points fan over the same pool, one job per bound, round by
///    refinement round. For sweeps that run to completion, results are
///    bit-identical to the sequential `api::sweep` (same driver, same
///    per-point solve underneath); a token that fires mid-round may cut
///    the two at different grid points, since the pool evaluates a round's
///    bounds concurrently.
///
/// With `ExecutorOptions::cache_entries > 0` the executor also owns a
/// `SolveCache` (cache.hpp): all three entry points serve deterministic
/// repeat requests from it — byte-identical stored results, no pool round
/// trip — and store their misses. This is the redundant-work elimination
/// layer the server's `--cache-entries` flag switches on.
///
/// Cancellation is cooperative and caller-driven: put a
/// `util::CancelSource`'s token into `request.cancel` before submitting,
/// and `request_cancel()` whenever. Running solves observe it within one
/// budget-check interval (`exact::kCancelCheckStride` nodes / one heuristic
/// iteration) and come back as typed `SolveStatus::LimitExceeded` results
/// with a "cancelled" diagnostic — futures never break, workers never die.
///
/// The destructor drains the queue (every accepted job still runs, so every
/// future is satisfied) and joins the workers. `solve_batch` blocks and
/// must not be called from one of this executor's own workers.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/cache.hpp"
#include "api/registry.hpp"
#include "api/sweep.hpp"

namespace pipeopt::api {

struct ExecutorOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency (at least 1).
  std::size_t jobs = 0;

  /// Solve-cache capacity in entries; 0 (the default) disables caching.
  /// When enabled, `solve_async`, `solve_batch` and `sweep` consult a
  /// shared `SolveCache` keyed by the canonical request bytes: hits return
  /// the stored result verbatim (wall time included) without touching the
  /// pool, misses solve normally and store their result. Requests the
  /// cache cannot serve deterministically (deadlines, time budgets,
  /// already-fired tokens) bypass it; cancelled results are never stored.
  std::size_t cache_entries = 0;
};

/// Outcome of one `solve_batch` call.
struct BatchResult {
  /// One result per input problem, in input order.
  std::vector<SolveResult> results;

  /// Request-level dispatch plans built for the batch — 1 by construction,
  /// exposed so tests and benches can assert the amortization happened.
  std::size_t dispatch_plans = 0;

  /// Wall-clock of the whole batch (planning + all executions).
  double wall_seconds = 0.0;

  /// True when every instance came back Optimal or Feasible.
  [[nodiscard]] bool all_solved() const noexcept {
    for (const auto& result : results) {
      if (!result.solved()) return false;
    }
    return true;
  }
};

/// Fixed worker pool with FIFO scheduling over one solver registry.
class Executor {
 public:
  /// Pool over `default_registry()`.
  explicit Executor(ExecutorOptions options = {});
  /// Pool over a caller-owned registry (must outlive the executor).
  Executor(const SolverRegistry& registry, ExecutorOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  [[nodiscard]] std::size_t jobs() const noexcept { return workers_.size(); }

  /// Jobs accepted but not yet finished (queued + running).
  [[nodiscard]] std::size_t pending() const;

  /// FIFO-enqueues one solve. The problem is copied into the job, so the
  /// caller's instance may go away before the future resolves. The future
  /// always yields a typed SolveResult — never an exception for infeasible,
  /// cancelled or unsupported requests.
  [[nodiscard]] std::future<SolveResult> solve_async(core::Problem problem,
                                                     SolveRequest request);

  /// Solves every instance under one request: one DispatchPlan for the
  /// batch, one bind + execute per instance, fanned over the pool. Blocks
  /// until all results are in. The problems span must stay valid for the
  /// duration of the call (instances are NOT copied).
  [[nodiscard]] BatchResult solve_batch(std::span<const core::Problem> problems,
                                        const SolveRequest& request);

  /// Evaluates a Pareto-front sweep with each refinement round's grid
  /// points fanned over the pool (one job per bound, results gathered in
  /// bound order). Blocks until the front is in; like `solve_batch`, it
  /// must not be called from one of this executor's own workers (the
  /// server drives it from a session-side thread for exactly that reason).
  /// Bit-identical to the sequential `api::sweep` for sweeps that run to
  /// completion (see the file comment for the mid-sweep-cancellation
  /// caveat).
  [[nodiscard]] ParetoFront sweep(const core::Problem& problem,
                                  const SweepRequest& request);

  /// The solve cache, or nullptr when `cache_entries` was 0. Exposed so
  /// the server can surface hit/miss/eviction counters and tests can
  /// assert on them.
  [[nodiscard]] const SolveCache* cache() const noexcept {
    return cache_.get();
  }

 private:
  void worker_loop();
  std::future<SolveResult> enqueue(std::packaged_task<SolveResult()> job);

  /// The shared cache policy, split into its two decision points so
  /// solve_async, solve_batch and execute_point cannot drift: whether this
  /// request may consult the cache at all...
  [[nodiscard]] bool cache_usable(const SolveRequest& request) const;
  /// ...and whether a finished result may be stored (only call when
  /// `cache_usable(request)` held at lookup time).
  void cache_store(const std::string& key, const SolveRequest& request,
                   const SolveResult& result);

  /// Cache-aware execution of one sweep point through the sweep-shared
  /// plan; falls through to `plan.execute_for(point)` on a miss or when
  /// the point is not cacheable. `problem` is the caller's original
  /// instance (cache keys are always canonical caller bytes, never the
  /// plan's reweighted rebuild).
  [[nodiscard]] SolveResult execute_point(const SolvePlan& plan,
                                          const core::Problem& problem,
                                          const SolveRequest& point);

  const SolverRegistry* registry_;
  std::unique_ptr<SolveCache> cache_;  ///< null when caching is off
  std::vector<std::thread> workers_;
  // FIFO queue state, guarded by mutex_.
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<std::packaged_task<SolveResult()>> queue_;
  std::size_t in_flight_ = 0;  ///< dequeued, still running
  bool stopping_ = false;
};

/// Process-wide shared executor over `default_registry()` (hardware-sized
/// pool, created on first use) — what the free functions below run on.
[[nodiscard]] Executor& default_executor();

/// `default_executor().solve_async(...)`.
[[nodiscard]] std::future<SolveResult> solve_async(core::Problem problem,
                                                   SolveRequest request);

/// `default_executor().solve_batch(...)`.
[[nodiscard]] BatchResult solve_batch(std::span<const core::Problem> problems,
                                      const SolveRequest& request);

}  // namespace pipeopt::api
