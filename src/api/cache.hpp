#pragma once

/// \file cache.hpp
/// The solve cache — redundant-work elimination for service-scale replay
/// traffic (the ROADMAP's "result caching keyed by canonical request_io
/// lines" item).
///
/// `SolveCache` is a sharded, thread-safe LRU from canonical request bytes
/// (`io::format_solve_key`: the wire solve fields plus the canonical
/// instance text — see request_io.hpp) to complete `SolveResult`s. A hit
/// returns the stored result verbatim, `wall_seconds` included, so a replay
/// of a byte-identical request stream produces byte-identical response
/// streams — the property the CI smoke stage asserts against a live
/// cache-enabled server.
///
/// Correctness rests on solves being deterministic functions of the key
/// bytes. Three request shapes break that determinism, so the cache refuses
/// them wholesale (`cacheable`): wall-clock deadlines (`deadline_ms` or a
/// deadline-bearing token — iterative heuristics stop early on the clock
/// without reporting cancellation), soft time budgets
/// (`time_budget_seconds`), and results that observed a fired cancel token
/// (never stored). Everything else — including budget-exhausted
/// LimitExceeded results, which are deterministic in the node budget — is
/// served and stored.
///
/// Sharding bounds contention: the key hash picks a shard, each shard owns
/// an independent mutex + LRU list, and the global capacity is split across
/// shards at construction. Counters (hits/misses/evictions) are lock-free
/// atomics. Opt in through `ExecutorOptions::cache_entries` /
/// `serve --cache-entries N`; the default everywhere is off.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"
#include "core/problem.hpp"

namespace pipeopt::api {

/// One consistent reading of the cache counters.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;   ///< live entries across all shards
  std::size_t capacity = 0;  ///< configured total capacity
};

/// Sharded LRU of solve results; see the file comment. All methods are
/// thread-safe.
class SolveCache {
 public:
  /// `capacity` total entries, split across `shards` independent LRUs
  /// (clamped so every shard holds at least one entry).
  explicit SolveCache(std::size_t capacity, std::size_t shards = 8);

  SolveCache(const SolveCache&) = delete;
  SolveCache& operator=(const SolveCache&) = delete;

  /// The canonical key of one (problem, request) pair —
  /// `io::format_solve_key` (the cancel token does not participate).
  [[nodiscard]] static std::string key(const core::Problem& problem,
                                       const SolveRequest& request);

  /// True when `request`'s result is a deterministic function of its key
  /// bytes: no wall-clock deadline (field or token-borne) and no soft time
  /// budget. Non-cacheable requests must bypass the cache entirely — both
  /// lookup and insert.
  [[nodiscard]] static bool cacheable(const SolveRequest& request) noexcept;

  /// The stored result for `key`, refreshed to most-recently-used; counts a
  /// hit. std::nullopt (counting a miss) when absent.
  [[nodiscard]] std::optional<SolveResult> lookup(const std::string& key);

  /// Stores (or refreshes) `key -> result`, evicting the shard's
  /// least-recently-used entry when over capacity. Callers must not insert
  /// results that observed a fired cancel token (see file comment).
  void insert(const std::string& key, const SolveResult& result);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_.load(); }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_.load(); }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Live entries across all shards (takes every shard lock briefly).
  [[nodiscard]] std::size_t size() const;

  /// All counters in one snapshot.
  [[nodiscard]] CacheCounters counters() const;

 private:
  struct Entry {
    std::string key;
    SolveResult result;
  };

  /// One independent LRU: list front = most recently used; the map points
  /// into the list for O(1) lookup + splice.
  struct Shard {
    std::mutex mutex;
    std::size_t capacity = 0;
    std::list<Entry> order;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
  };

  [[nodiscard]] Shard& shard_for(const std::string& key);

  std::size_t capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace pipeopt::api
