#pragma once

/// \file adapters.hpp
/// Thin adapters wrapping every pre-existing optimizer entry point —
/// src/algorithms/ (polynomial paper theorems), src/exact/ (enumeration and
/// branch-and-bound) and src/heuristics/ (the greedy -> local-search ->
/// annealing ladder) — behind the uniform `Solver` interface. No behavior
/// change to the underlying math: each adapter only declares its Tables-1/2
/// capability cell and converts the native result type to `SolveResult`.

#include <functional>
#include <memory>
#include <utility>

#include "api/registry.hpp"
#include "api/solver.hpp"

namespace pipeopt::api {

/// Solver built from two callables; the construction idiom of every adapter
/// (and of fake solvers in registry tests).
class LambdaSolver final : public Solver {
 public:
  using ApplicableFn =
      std::function<bool(const core::Problem&, const SolveRequest&)>;
  using RunFn =
      std::function<SolveResult(const core::Problem&, const SolveRequest&)>;

  LambdaSolver(SolverInfo info, ApplicableFn applicable, RunFn run)
      : Solver(std::move(info)),
        applicable_(std::move(applicable)),
        run_(std::move(run)) {}

  [[nodiscard]] bool applicable(const core::Problem& problem,
                                const SolveRequest& request) const override {
    return applicable_(problem, request);
  }
  [[nodiscard]] SolveResult run(const core::Problem& problem,
                                const SolveRequest& request) const override {
    return run_(problem, request);
  }

 private:
  ApplicableFn applicable_;
  RunFn run_;
};

/// Registers the polynomial paper algorithms (Theorems 1-24 cells).
void register_polynomial_solvers(SolverRegistry& registry);
/// Registers exact search (branch-and-bound, exhaustive enumeration).
void register_exact_solvers(SolverRegistry& registry);
/// Registers the heuristic ladder and its individual rungs.
void register_heuristic_solvers(SolverRegistry& registry);
/// Everything above — the content of `default_registry()`.
void register_all_solvers(SolverRegistry& registry);

namespace detail {

/// The achieved objective value of a metrics snapshot.
[[nodiscard]] double objective_value(Objective objective,
                                     const core::Metrics& metrics);

/// Result for a produced mapping: evaluates it, fills value/metrics, sets
/// Optimal (exact solvers) or Feasible (heuristics).
[[nodiscard]] SolveResult solved(const core::Problem& problem,
                                 Objective objective, core::Mapping mapping,
                                 bool optimal);

/// Typed infeasible result (value = +inf, no mapping).
[[nodiscard]] SolveResult infeasible();

/// Typed cancellation result: LimitExceeded with a "cancelled" diagnostic
/// explaining where the token was observed — the one shape every layer
/// (plan, exact adapters, heuristic ladder) reports a fired token with.
[[nodiscard]] SolveResult cancelled(const char* where);

/// Constraint-shape predicates used by the capability lambdas.
[[nodiscard]] bool no_constraints(const core::ConstraintSet& cs);
[[nodiscard]] bool only_period_bounds(const core::ConstraintSet& cs);

/// The given thresholds, or fully unconstrained ones for `apps` applications.
[[nodiscard]] core::Thresholds thresholds_or_unconstrained(
    const std::optional<core::Thresholds>& thresholds, std::size_t apps);

}  // namespace detail

}  // namespace pipeopt::api
