#pragma once

/// \file sweep.hpp
/// Pareto-front sweeps over the facade — the trade-off space of the paper's
/// §1 laptop/server narrative (and the §2 example's 136 → 46 → 10
/// energy-vs-period progression) as a first-class request.
///
/// A `SweepRequest` names an objective pair: the criterion each grid point
/// minimizes (`base.objective`) and the criterion whose bound the grid
/// walks (`swept`). Evaluating the sweep solves one bound-constrained
/// problem per grid value — each exactly the `SolveRequest` a caller would
/// have issued by hand, so every point result is bit-identical to a
/// per-call `api::solve` — optionally refines the grid adaptively, and
/// filters the solved points through the `core::pareto` dominance rules
/// into a `ParetoFront` whose points carry their witness mappings.
///
/// Cancellation and deadlines are sweep-wide: `base.cancel` (and
/// `base.deadline_ms`, armed once onto the token when the sweep starts)
/// bound the *whole* sweep, not each point. A token that fires mid-sweep
/// makes the remaining grid points come back as typed cancelled results;
/// they are counted (`cancelled_points`) and excluded from the front, and
/// the partial front over the points that did finish is still returned.
///
/// Entry points: `api::sweep` evaluates sequentially on a registry;
/// `Executor::sweep` (executor.hpp) fans each refinement round's grid
/// points over the worker pool — same evaluation order, and bit-identical
/// results for sweeps that run to completion (a token firing mid-round may
/// cut the sequential and pooled variants at different grid points). Both
/// share one `detail::run_sweep` driver, which binds a single `SolvePlan`
/// for the whole sweep (grid points differ only in the swept bound's
/// value, and solver applicability is shape-only by contract) and seeds
/// refinement points with `SolveRequest::warm_start` from the nearest
/// tighter solved bound — so per-point planning cost is paid once per
/// sweep, while every point result stays bit-identical to the per-call
/// `api::solve` it replaces. The warm-start seed is request-level
/// plumbing: it is consumed only by hint-honoring exact engines
/// (currently branch-and-bound, whose unconstrained-period cell never
/// matches a bound-carrying sweep point), and by design a consumer MUST
/// be result-preserving — the bit-identity tests compare full wire bytes,
/// node diagnostics included, so a solver that let a hint change its
/// reported bytes inside a sweep would fail them. The server's
/// `{"type":"pareto"}` request streams the resulting front over the wire
/// (docs/PROTOCOL.md).

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"
#include "core/pareto.hpp"
#include "core/problem.hpp"

namespace pipeopt::api {

class SolverRegistry;
class SolvePlan;

/// \brief A Pareto-front sweep: minimize one criterion at each point of a
/// bound grid walked along another criterion.
struct SweepRequest {
  /// \brief Per-point solve settings: objective minimized at every grid
  /// point, mapping family, weight policy, forced solver, budgets and seed.
  ///
  /// `base.constraints` may carry fixed thresholds on the *other* criteria
  /// (they apply to every grid point); the swept criterion's slot must stay
  /// unset — the sweep fills it per point. `base.cancel` and
  /// `base.deadline_ms` bound the whole sweep (see file comment), unlike a
  /// plain solve where `deadline_ms` is per execution. Defaults to
  /// energy-minimization, the paper's §2 progression.
  SolveRequest base = default_base();

  /// \brief Criterion whose bound the grid walks; must differ from
  /// `base.objective`. Period and latency bounds replicate each grid value
  /// per application (the single-value semantics of the wire and CLI
  /// bounds); an energy bound is the global budget.
  Objective swept = Objective::Period;

  /// \brief Grid of bound values. Sorted ascending and deduplicated before
  /// evaluation; at least one value is required.
  std::vector<double> bounds;

  /// \brief Adaptive refinement rounds after the initial grid: each round
  /// bisects every adjacent pair of evaluated bounds whose solved objective
  /// values differ, until no pair does or the rounds are spent. 0 = grid
  /// only.
  std::size_t refine = 0;

  /// The `base` defaults: minimize energy (everything else as SolveRequest).
  [[nodiscard]] static SolveRequest default_base() {
    SolveRequest request;
    request.objective = Objective::Energy;
    return request;
  }
};

/// \brief One evaluated grid point: the bound value and the full solve
/// result it produced (bit-identical to `api::solve` under that bound).
struct SweepEvaluation {
  double bound = 0.0;
  SolveResult result;
};

/// \brief Result of one sweep: every evaluation in ascending bound order
/// and the indices of the Pareto-optimal ones.
///
/// The front is exactly `core::pareto_front` over the solved evaluations'
/// achieved metrics (weighted period/latency, energy), duplicates removed
/// keeping the earliest bound, sorted by ascending period (ties by energy,
/// latency, then bound order — fully deterministic).
struct ParetoFront {
  /// All evaluated grid points, ascending by bound (refinement points
  /// merged in). Cancelled and infeasible points are kept here — they tell
  /// the caller which bounds were tried — but never enter the front.
  std::vector<SweepEvaluation> evaluations;

  /// Indices into `evaluations` of the Pareto-optimal points, in front
  /// order (ascending achieved period).
  std::vector<std::size_t> front;

  /// True when latency takes part in dominance (the objective pair touches
  /// it); otherwise fronts are 2-D period/energy.
  bool use_latency = false;

  /// True when the sweep-wide token fired (deadline or cancel) before the
  /// sweep finished — some grid points came back cancelled, or requested
  /// refinement rounds still had gaps to bisect; the front covers only the
  /// points that completed.
  bool cancelled = false;

  /// Evaluations that came back as typed cancelled results.
  std::size_t cancelled_points = 0;

  /// Evaluations proved infeasible under their bound.
  std::size_t infeasible_points = 0;

  /// Non-empty when the request itself was unusable (empty grid, objective
  /// equal to the swept criterion, a pre-constrained swept axis); no
  /// evaluation happens then.
  std::string error;

  /// Wall-clock of the whole sweep (all rounds, filtering included).
  double wall_seconds = 0.0;

  /// The front as `core::ParetoPoint`s, witness mappings included.
  [[nodiscard]] std::vector<core::ParetoPoint> front_points() const;

  /// True for 2-D fronts that satisfy the §2 monotone trade-off (energy
  /// non-increasing in period); vacuously true when `use_latency`.
  [[nodiscard]] bool monotone() const;
};

/// Validates a sweep request against an instance; empty string when usable.
/// (The same check `sweep` runs — exposed so wire/CLI layers can reject
/// unusable requests before dispatching work.)
[[nodiscard]] std::string validate_sweep(const SweepRequest& request);

/// Evaluates the sweep sequentially on `registry` (ascending bound order,
/// one `registry.solve` per grid point).
[[nodiscard]] ParetoFront sweep(const SolverRegistry& registry,
                                const core::Problem& problem,
                                const SweepRequest& request);

/// `sweep(default_registry(), ...)`.
[[nodiscard]] ParetoFront sweep(const core::Problem& problem,
                                const SweepRequest& request);

namespace detail {

/// Evaluates one refinement round: the per-point requests, in bound order,
/// mapped to their results (same order). `plan` is the sweep-shared
/// `SolvePlan` (one bind for the whole sweep); evaluators run each point
/// through `plan.execute_for(point)`. `Executor::sweep` fans the points
/// over its pool; the sequential path executes in place.
using SweepRoundFn = std::function<std::vector<SolveResult>(
    const SolvePlan& plan, std::vector<SolveRequest> requests)>;

/// The shared sweep driver: grid preparation, sweep-wide token arming,
/// one `DispatchPlan`/`SolvePlan` bind for the whole sweep (Eq. 6 weights,
/// candidate filtering and platform classification happen once, not once
/// per grid point), warm-start seeding of refinement points (each gets the
/// value achieved at the nearest tighter solved bound as
/// `SolveRequest::warm_start` — achievable by constraint monotonicity, so
/// results stay bit-identical to unseeded solves), refinement rounds
/// through `evaluate_round`, and front selection. Both `api::sweep` and
/// `Executor::sweep` are this function with different round evaluators,
/// which is what makes them bit-identical.
[[nodiscard]] ParetoFront run_sweep(const SolverRegistry& registry,
                                    const core::Problem& problem,
                                    const SweepRequest& request,
                                    const SweepRoundFn& evaluate_round);

/// The request one grid point solves: the base request with the swept
/// criterion bounded at `bound` (period/latency bounds replicate per
/// application — the single-value wire and CLI semantics) and `token`
/// spliced in; the per-execution deadline stays unset because the
/// sweep-wide deadline is already folded into the token. Exposed so tests
/// and benches can rebuild the exact per-point request a sweep issued.
[[nodiscard]] SolveRequest sweep_point_request(const core::Problem& problem,
                                              const SweepRequest& sweep,
                                              double bound,
                                              const util::CancelToken& token);

}  // namespace detail

}  // namespace pipeopt::api
