/// \file backends_ortools.cpp
/// Optional OR-tools CP-SAT exact backend, compiled in only under the
/// `PIPEOPT_WITH_ORTOOLS` configure option (OFF by default — the container
/// toolchain has no OR-tools, and CI stays green without it).
///
/// CP-SAT reasons over integers, so every cost is scaled by `kScale` and
/// rounded; the backend therefore registers with `bit_exact = false` and
/// the cross-check harness compares it within tolerance, not by bits. The
/// returned `value` is still computed by re-evaluating the decoded mapping
/// through `core::evaluate`, so whatever mapping CP-SAT picks is reported
/// at its true cost. Capability is limited to the cells whose costs are
/// fully known per interval variable: uniform-bandwidth platforms,
/// unconstrained single-objective requests.

#include "api/exact_backend.hpp"

#ifdef PIPEOPT_WITH_ORTOOLS

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "api/adapters.hpp"
#include "core/evaluation.hpp"
#include "ortools/sat/cp_model.h"

namespace pipeopt::api {
namespace {

constexpr double kScale = 1e6;  ///< cost units per integer tick

std::int64_t scaled(double v) {
  return static_cast<std::int64_t>(std::llround(v * kScale));
}

struct Candidate {
  std::size_t app, first, last, proc, mode;
  double period_cost;   ///< cycle time of this interval (uniform platform)
  double latency_cost;  ///< Eq. 5 contribution
  double energy_cost;
};

class OrtoolsBackend final : public ExactBackend {
 public:
  OrtoolsBackend()
      : ExactBackend({.name = "ortools-cpsat",
                      .summary = "CP-SAT model (scaled integer costs)",
                      .rank = 30,
                      .bit_exact = false}) {}

  bool supports(const core::Problem& problem,
                const SolveRequest& r) const override {
    return problem.platform().has_uniform_bandwidth() &&
           detail::no_constraints(r.constraints);
  }

  std::optional<exact::ExactResult> minimize(
      const core::Problem& problem, const SolveRequest& r) const override {
    using operations_research::sat::CpModelBuilder;
    using operations_research::sat::BoolVar;
    using operations_research::sat::IntVar;
    using operations_research::sat::LinearExpr;

    const core::Platform& plat = problem.platform();
    const bool one_to_one = r.kind == MappingKind::OneToOne;
    const bool modes = r.objective == Objective::Energy;
    const double b = plat.uniform_bandwidth();

    std::vector<Candidate> candidates;
    for (std::size_t a = 0; a < problem.application_count(); ++a) {
      const core::Application& app = problem.application(a);
      const std::size_t n = app.stage_count();
      for (std::size_t f = 0; f < n; ++f) {
        for (std::size_t l = f; l <= (one_to_one ? f : n - 1); ++l) {
          for (std::size_t u = 0; u < plat.processor_count(); ++u) {
            const std::size_t top = plat.processor(u).max_mode();
            for (std::size_t m = modes ? 0 : top; m <= top; ++m) {
              Candidate c{a, f, l, u, m, 0, 0, 0};
              const double in = app.boundary_size(f) /
                                (f == 0 ? plat.in_bandwidth(a, u) : b);
              const double comp =
                  app.total_compute(f, l) / plat.processor(u).speed(m);
              const double out = app.boundary_size(l + 1) /
                                 (l == n - 1 ? plat.out_bandwidth(a, u) : b);
              c.period_cost = problem.comm_model() == core::CommModel::Overlap
                                  ? std::max({in, comp, out})
                                  : in + comp + out;
              c.latency_cost = (f == 0 ? in : 0.0) + comp + out;
              c.energy_cost = plat.processor_energy(u, m);
              candidates.push_back(c);
            }
          }
        }
      }
    }

    CpModelBuilder model;
    std::vector<BoolVar> x;
    x.reserve(candidates.size());
    for (std::size_t j = 0; j < candidates.size(); ++j)
      x.push_back(model.NewBoolVar());

    for (std::size_t a = 0; a < problem.application_count(); ++a) {
      const std::size_t n = problem.application(a).stage_count();
      for (std::size_t k = 0; k < n; ++k) {
        std::vector<BoolVar> covering;
        for (std::size_t j = 0; j < candidates.size(); ++j)
          if (candidates[j].app == a && candidates[j].first <= k &&
              k <= candidates[j].last)
            covering.push_back(x[j]);
        model.AddExactlyOne(covering);
      }
    }
    for (std::size_t u = 0; u < plat.processor_count(); ++u) {
      std::vector<BoolVar> on_u;
      for (std::size_t j = 0; j < candidates.size(); ++j)
        if (candidates[j].proc == u) on_u.push_back(x[j]);
      model.AddAtMostOne(on_u);
    }

    if (r.objective == Objective::Energy) {
      LinearExpr total;
      for (std::size_t j = 0; j < candidates.size(); ++j)
        total += LinearExpr::Term(x[j], scaled(candidates[j].energy_cost));
      model.Minimize(total);
    } else {
      const IntVar obj = model.NewIntVar(
          {0, std::numeric_limits<std::int64_t>::max() / 4});
      for (std::size_t a = 0; a < problem.application_count(); ++a) {
        const double w = problem.application(a).weight();
        if (r.objective == Objective::Period) {
          for (std::size_t j = 0; j < candidates.size(); ++j)
            if (candidates[j].app == a)
              model.AddGreaterOrEqual(
                  obj, LinearExpr::Term(
                           x[j], scaled(w * candidates[j].period_cost)));
        } else {
          LinearExpr lat;
          for (std::size_t j = 0; j < candidates.size(); ++j)
            if (candidates[j].app == a)
              lat += LinearExpr::Term(x[j],
                                      scaled(w * candidates[j].latency_cost));
          model.AddGreaterOrEqual(obj, lat);
        }
      }
      model.Minimize(obj);
    }

    const operations_research::sat::CpSolverResponse response =
        Solve(model.Build());
    if (response.status() != operations_research::sat::CpSolverStatus::OPTIMAL &&
        response.status() != operations_research::sat::CpSolverStatus::FEASIBLE)
      return std::nullopt;

    std::vector<core::IntervalAssignment> intervals;
    for (std::size_t j = 0; j < candidates.size(); ++j) {
      if (SolutionBooleanValue(response, x[j])) {
        const Candidate& c = candidates[j];
        intervals.push_back({c.app, c.first, c.last, c.proc, c.mode});
      }
    }
    exact::ExactResult result;
    result.mapping = core::Mapping(std::move(intervals));
    const core::Metrics metrics = core::evaluate(problem, result.mapping);
    result.value = r.objective == Objective::Period
                       ? metrics.max_weighted_period
                       : r.objective == Objective::Latency
                             ? metrics.max_weighted_latency
                             : metrics.energy;
    result.stats.nodes = static_cast<std::uint64_t>(response.num_branches());
    result.stats.complete = 1;
    return result;
  }
};

}  // namespace

namespace detail {
std::unique_ptr<ExactBackend> make_ortools_backend() {
  return std::make_unique<OrtoolsBackend>();
}
}  // namespace detail

}  // namespace pipeopt::api

#else  // !PIPEOPT_WITH_ORTOOLS

namespace pipeopt::api::detail {
std::unique_ptr<ExactBackend> make_ortools_backend() { return nullptr; }
}  // namespace pipeopt::api::detail

#endif
