#include "api/request.hpp"

#include "api/result.hpp"

namespace pipeopt::api {

const char* to_string(Objective o) noexcept {
  switch (o) {
    case Objective::Period: return "period";
    case Objective::Latency: return "latency";
    case Objective::Energy: return "energy";
  }
  return "?";
}

const char* to_string(MappingKind k) noexcept {
  switch (k) {
    case MappingKind::Interval: return "interval";
    case MappingKind::OneToOne: return "one-to-one";
  }
  return "?";
}

const char* to_string(SolveStatus s) noexcept {
  switch (s) {
    case SolveStatus::Optimal: return "optimal";
    case SolveStatus::Feasible: return "feasible";
    case SolveStatus::Infeasible: return "infeasible";
    case SolveStatus::LimitExceeded: return "limit-exceeded";
    case SolveStatus::NoSolver: return "no-solver";
  }
  return "?";
}

std::optional<Objective> parse_objective(const std::string& text) {
  if (text == "period") return Objective::Period;
  if (text == "latency") return Objective::Latency;
  if (text == "energy") return Objective::Energy;
  return std::nullopt;
}

std::optional<MappingKind> parse_mapping_kind(const std::string& text) {
  if (text == "interval") return MappingKind::Interval;
  if (text == "one-to-one") return MappingKind::OneToOne;
  return std::nullopt;
}

}  // namespace pipeopt::api
