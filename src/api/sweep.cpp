#include "api/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "api/registry.hpp"
#include "util/numeric.hpp"
#include "util/timing.hpp"

namespace pipeopt::api {

namespace {

/// The trade-off point one solved evaluation achieves (weighted metrics,
/// not the bound — several bounds reaching the same mapping dedupe away).
core::ParetoPoint achieved_point(const SweepEvaluation& evaluation,
                                 bool with_mapping) {
  core::ParetoPoint point;
  point.period = evaluation.result.metrics.max_weighted_period;
  point.latency = evaluation.result.metrics.max_weighted_latency;
  point.energy = evaluation.result.metrics.energy;
  if (with_mapping) point.mapping = evaluation.result.mapping;
  return point;
}

}  // namespace

std::string validate_sweep(const SweepRequest& request) {
  if (request.bounds.empty()) {
    return "sweep needs at least one bound value";
  }
  for (const double bound : request.bounds) {
    if (bound != bound) return "sweep bounds must not be NaN";
  }
  if (request.base.objective == request.swept) {
    return std::string("swept criterion equals the objective (") +
           to_string(request.swept) + "); the pair must differ";
  }
  switch (request.swept) {
    case Objective::Period:
      if (request.base.constraints.period) {
        return "base request already carries period bounds; the sweep owns "
               "the swept criterion's constraint";
      }
      break;
    case Objective::Latency:
      if (request.base.constraints.latency) {
        return "base request already carries latency bounds; the sweep owns "
               "the swept criterion's constraint";
      }
      break;
    case Objective::Energy:
      if (request.base.constraints.energy_budget) {
        return "base request already carries an energy budget; the sweep "
               "owns the swept criterion's constraint";
      }
      break;
  }
  return {};
}

std::vector<core::ParetoPoint> ParetoFront::front_points() const {
  std::vector<core::ParetoPoint> points;
  points.reserve(front.size());
  for (const std::size_t index : front) {
    points.push_back(achieved_point(evaluations[index], /*with_mapping=*/true));
  }
  return points;
}

bool ParetoFront::monotone() const {
  if (use_latency) return true;
  std::vector<core::ParetoPoint> points;
  points.reserve(front.size());
  for (const std::size_t index : front) {
    points.push_back(achieved_point(evaluations[index], /*with_mapping=*/false));
  }
  return core::energy_monotone_in_period(points);
}

namespace detail {

SolveRequest sweep_point_request(const core::Problem& problem,
                                 const SweepRequest& sweep, double bound,
                                 const util::CancelToken& token) {
  SolveRequest request = sweep.base;
  request.cancel = token;
  request.deadline_ms.reset();
  switch (sweep.swept) {
    case Objective::Period:
      request.constraints.period = core::Thresholds::per_app(
          std::vector<double>(problem.application_count(), bound));
      break;
    case Objective::Latency:
      request.constraints.latency = core::Thresholds::per_app(
          std::vector<double>(problem.application_count(), bound));
      break;
    case Objective::Energy:
      request.constraints.energy_budget = bound;
      break;
  }
  return request;
}

ParetoFront run_sweep(const SolverRegistry& registry,
                      const core::Problem& problem, const SweepRequest& request,
                      const SweepRoundFn& evaluate_round) {
  const util::Stopwatch watch;
  ParetoFront out;
  out.use_latency = request.base.objective == Objective::Latency ||
                    request.swept == Objective::Latency;
  out.error = validate_sweep(request);
  if (!out.error.empty()) {
    out.wall_seconds = watch.elapsed_seconds();
    return out;
  }

  // The sweep-wide token: the caller's token plus the whole-sweep deadline,
  // armed exactly once here (each point request carries a copy and no
  // per-execution deadline of its own).
  util::CancelToken token = request.base.cancel;
  if (request.base.deadline_ms) {
    token = token.with_timeout(
        std::chrono::milliseconds(*request.base.deadline_ms));
  }

  // Initial grid: sorted ascending, exact duplicates dropped. Prepared
  // before the plan so the plan's representative point is the real first
  // grid point (any bound would do — binding only looks at the shape).
  std::vector<double> grid = request.bounds;
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  // One plan for the whole sweep: grid points share the request modulo the
  // swept bound's value (and the warm-start hint), so Eq. 6 weight
  // resolution — including the Stretch policy's solo solves — candidate
  // filtering and platform classification happen here, exactly once,
  // instead of once per grid point. Applicability is shape-only by the
  // Solver contract, which is what keeps the shared candidate list valid
  // (and every point result bit-identical to a cold registry.solve).
  const DispatchPlan dispatch = registry.plan_request(
      sweep_point_request(problem, request, grid.front(), token));
  const SolvePlan plan = dispatch.bind(problem);

  const auto evaluated = [&](double bound) {
    for (const SweepEvaluation& evaluation : out.evaluations) {
      if (evaluation.bound == bound) return true;
    }
    return false;
  };
  // Warm-start seed for a point at `bound`: the objective value achieved at
  // the nearest tighter (smaller) solved bound. That mapping remains
  // feasible when the swept constraint loosens, so its value is achievable
  // at `bound` by construction — exactly the contract
  // SolveRequest::warm_start demands. Evaluations are kept sorted by
  // bound, so the last solved entry below `bound` wins. Seeds are resolved
  // against *completed* rounds only (requests for one round are built
  // before any of them runs), which keeps sequential and pooled sweeps
  // issuing identical requests: the initial grid runs cold, refinement
  // midpoints warm-start off their tighter neighbour. Note the hint only
  // takes effect when dispatch lands on a hint-honoring engine (see the
  // file comment in sweep.hpp) — any consumer must keep results, wire
  // bytes included, identical to an unhinted solve.
  const auto warm_seed = [&](double bound) {
    std::optional<double> seed;
    for (const SweepEvaluation& evaluation : out.evaluations) {
      if (evaluation.bound >= bound) break;
      if (evaluation.result.solved() &&
          evaluation.result.value < util::kInfinity) {
        seed = evaluation.result.value;
      }
    }
    return seed;
  };
  const auto run_round = [&](std::vector<double> bounds) {
    std::vector<SolveRequest> requests;
    requests.reserve(bounds.size());
    for (const double bound : bounds) {
      SolveRequest point = sweep_point_request(problem, request, bound, token);
      point.warm_start = warm_seed(bound);
      requests.push_back(std::move(point));
    }
    std::vector<SolveResult> results = evaluate_round(plan, std::move(requests));
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      SweepEvaluation evaluation;
      evaluation.bound = bounds[i];
      evaluation.result = std::move(results[i]);
      const auto at = std::upper_bound(
          out.evaluations.begin(), out.evaluations.end(), evaluation.bound,
          [](double b, const SweepEvaluation& e) { return b < e.bound; });
      out.evaluations.insert(at, std::move(evaluation));
    }
  };

  run_round(std::move(grid));

  // Adaptive refinement: bisect every adjacent pair of solved bounds whose
  // objective values differ — the gaps where the front still has structure.
  bool refinement_cut_short = false;
  for (std::size_t round = 0; round < request.refine; ++round) {
    std::vector<double> midpoints;
    for (std::size_t i = 1; i < out.evaluations.size(); ++i) {
      const SweepEvaluation& lo = out.evaluations[i - 1];
      const SweepEvaluation& hi = out.evaluations[i];
      if (!lo.result.solved() || !hi.result.solved()) continue;
      if (lo.result.value == hi.result.value) continue;
      const double mid = lo.bound + (hi.bound - lo.bound) / 2.0;
      // No room left at double resolution, or already covered.
      if (mid == lo.bound || mid == hi.bound || evaluated(mid)) continue;
      midpoints.push_back(mid);
    }
    if (midpoints.empty()) break;  // converged: no gap left to bisect
    if (token.cancelled()) {
      // Requested refinement work remains but the sweep-wide token fired:
      // the front is an honest prefix, not the converged one — report it
      // cut short even though every *evaluated* point finished cleanly.
      refinement_cut_short = true;
      break;
    }
    run_round(std::move(midpoints));
  }

  // Bookkeeping over the finished evaluations.
  for (const SweepEvaluation& evaluation : out.evaluations) {
    if (evaluation.result.was_cancelled()) ++out.cancelled_points;
    if (evaluation.result.status == SolveStatus::Infeasible) {
      ++out.infeasible_points;
    }
  }
  out.cancelled = out.cancelled_points > 0 || refinement_cut_short;

  // Front selection over the solved evaluations: the core::pareto dominance
  // rules (duplicates keep the earliest bound), tracked by index so every
  // front point keeps its producing bound and witness mapping. The sort is
  // fully tie-broken, so in-process and wire fronts order identically.
  std::vector<std::size_t> solved;
  std::vector<core::ParetoPoint> points;
  for (std::size_t i = 0; i < out.evaluations.size(); ++i) {
    if (!out.evaluations[i].result.solved()) continue;
    solved.push_back(i);
    points.push_back(achieved_point(out.evaluations[i], /*with_mapping=*/false));
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool keep = true;
    for (std::size_t j = 0; j < points.size() && keep; ++j) {
      if (i == j) continue;
      if (core::dominates(points[j], points[i], out.use_latency)) keep = false;
      if (j < i && points[j].period == points[i].period &&
          points[j].energy == points[i].energy &&
          (!out.use_latency || points[j].latency == points[i].latency)) {
        keep = false;  // exact tie: the earlier bound already owns the point
      }
    }
    if (keep) out.front.push_back(solved[i]);
  }
  std::sort(out.front.begin(), out.front.end(),
            [&](std::size_t a, std::size_t b) {
              const core::ParetoPoint pa =
                  achieved_point(out.evaluations[a], false);
              const core::ParetoPoint pb =
                  achieved_point(out.evaluations[b], false);
              if (pa.period != pb.period) return pa.period < pb.period;
              if (pa.energy != pb.energy) return pa.energy < pb.energy;
              if (pa.latency != pb.latency) return pa.latency < pb.latency;
              return a < b;
            });

  out.wall_seconds = watch.elapsed_seconds();
  return out;
}

}  // namespace detail

ParetoFront sweep(const SolverRegistry& registry, const core::Problem& problem,
                  const SweepRequest& request) {
  // Same plan objects as the pool-fanned Executor::sweep — the sequential
  // path executes each point in place through the sweep-shared plan, so
  // the two differ only in scheduling, never in planning work.
  return detail::run_sweep(
      registry, problem, request,
      [](const SolvePlan& plan, std::vector<SolveRequest> requests) {
        std::vector<SolveResult> results;
        results.reserve(requests.size());
        for (const SolveRequest& point : requests) {
          results.push_back(plan.execute_for(point));
        }
        return results;
      });
}

ParetoFront sweep(const core::Problem& problem, const SweepRequest& request) {
  return sweep(default_registry(), problem, request);
}

}  // namespace pipeopt::api
