#pragma once

/// \file registry.hpp
/// Capability-based solver dispatch — the single entry point the CLI,
/// benches and any future service front end call.
///
/// `SolverRegistry` owns a set of `Solver`s. `solve(problem, request)`
/// resolves per-application weights (Eq. 6 policies), then either runs the
/// solver named in `request.solver`, or walks every applicable solver in
/// (CostTier, rank) order and returns the first conclusive result:
/// polynomial paper algorithms first, exact search next, the heuristic
/// ladder last. A solver that exhausts its budget (LimitExceeded) is skipped
/// and the degradation continues; the skip is recorded in diagnostics.
///
/// `default_registry()` carries every optimizer in the library;
/// `api::solve` is the one-call facade over it.

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/solver.hpp"

namespace pipeopt::api {

class SolverRegistry {
 public:
  SolverRegistry() = default;
  SolverRegistry(SolverRegistry&&) = default;
  SolverRegistry& operator=(SolverRegistry&&) = default;

  /// Registers a solver. \throws std::invalid_argument on a duplicate name.
  void add(std::unique_ptr<Solver> solver);

  /// Solver by name, nullptr when unknown.
  [[nodiscard]] const Solver* find(std::string_view name) const noexcept;

  /// All solvers in dispatch order (tier, then rank, then name).
  [[nodiscard]] std::vector<const Solver*> solvers() const;

  /// Applicable solvers for (problem, request), in dispatch order — the
  /// auto-dispatch candidate list, exposed for tests and `list-solvers`.
  [[nodiscard]] std::vector<const Solver*> candidates(
      const core::Problem& problem, const SolveRequest& request) const;

  /// Solves the request; see file comment. Never throws for infeasible or
  /// unsupported requests — those come back as typed statuses.
  [[nodiscard]] SolveResult solve(const core::Problem& problem,
                                  const SolveRequest& request) const;

  [[nodiscard]] std::size_t size() const noexcept { return solvers_.size(); }

 private:
  /// Applies request.weights, rebuilding applications with resolved W_a.
  /// Stretch solo optima are computed through this registry itself; when a
  /// solo solve is not provably optimal (NP-hard cell past its budget), the
  /// approximation is recorded in `notes` and surfaces in the result's
  /// diagnostics.
  [[nodiscard]] std::optional<core::Problem> weighted_problem(
      const core::Problem& problem, const SolveRequest& request,
      SolveResult& failure,
      std::vector<std::pair<std::string, std::string>>& notes) const;

  std::vector<std::unique_ptr<Solver>> solvers_;
};

/// The registry holding every optimizer in the library (adapters over
/// src/algorithms/, src/exact/ and src/heuristics/). Built once, immutable
/// afterwards.
[[nodiscard]] const SolverRegistry& default_registry();

/// One-call facade: default_registry().solve(problem, request).
[[nodiscard]] SolveResult solve(const core::Problem& problem,
                                const SolveRequest& request);

}  // namespace pipeopt::api
