#pragma once

/// \file registry.hpp
/// Capability-based solver dispatch — the single entry point the CLI,
/// benches and any future service front end call.
///
/// `SolverRegistry` owns a set of `Solver`s. `solve(problem, request)`
/// resolves per-application weights (Eq. 6 policies), then either runs the
/// solver named in `request.solver`, or walks every applicable solver in
/// (CostTier, rank) order and returns the first conclusive result:
/// polynomial paper algorithms first, exact search next, the heuristic
/// ladder last. A solver that exhausts its budget (LimitExceeded) is skipped
/// and the degradation continues; the skip is recorded in diagnostics.
///
/// `solve` is itself just plan + execute: `plan_request(request)` resolves
/// the problem-independent dispatch state once, `bind(problem)` resolves
/// weights and applicability once per instance, and the resulting
/// `SolvePlan` can be executed any number of times (see plan.hpp). Sweeps
/// and services amortize through those; `solve` stays the one-shot path.
///
/// `default_registry()` carries every optimizer in the library;
/// `api::solve` is the one-call facade over it.

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/plan.hpp"
#include "api/solver.hpp"

namespace pipeopt::api {

class SolverRegistry {
 public:
  SolverRegistry() = default;
  SolverRegistry(SolverRegistry&&) = default;
  SolverRegistry& operator=(SolverRegistry&&) = default;

  /// Registers a solver. \throws std::invalid_argument on a duplicate name.
  void add(std::unique_ptr<Solver> solver);

  /// Solver by name, nullptr when unknown.
  [[nodiscard]] const Solver* find(std::string_view name) const noexcept;

  /// All solvers in dispatch order (tier, then rank, then name).
  [[nodiscard]] std::vector<const Solver*> solvers() const;

  /// Applicable solvers for (problem, request), in dispatch order — the
  /// auto-dispatch candidate list, exposed for tests and `list-solvers`.
  [[nodiscard]] std::vector<const Solver*> candidates(
      const core::Problem& problem, const SolveRequest& request) const;

  /// Resolves the problem-independent dispatch state for one request:
  /// forced-solver lookup and the dispatch-ordered solver snapshot. Build
  /// it once per request shape and `bind` it to each instance — this is
  /// what `Executor::solve_batch` shares across a whole batch. The
  /// registry must outlive the plan.
  [[nodiscard]] DispatchPlan plan_request(SolveRequest request) const;

  /// One-call planning: plan_request + bind. The problem and registry must
  /// outlive the returned plan (on the Priority/Energy fast path the plan
  /// holds the caller's problem by reference, not a copy).
  [[nodiscard]] SolvePlan plan(const core::Problem& problem,
                               const SolveRequest& request) const;

  /// Solves the request; see file comment. Exactly plan + execute. Never
  /// throws for infeasible or unsupported requests — those come back as
  /// typed statuses.
  [[nodiscard]] SolveResult solve(const core::Problem& problem,
                                  const SolveRequest& request) const;

  [[nodiscard]] std::size_t size() const noexcept { return solvers_.size(); }

 private:
  std::vector<std::unique_ptr<Solver>> solvers_;
};

/// The registry holding every optimizer in the library (adapters over
/// src/algorithms/, src/exact/ and src/heuristics/). Built once, immutable
/// afterwards.
[[nodiscard]] const SolverRegistry& default_registry();

/// One-call facade: default_registry().solve(problem, request).
[[nodiscard]] SolveResult solve(const core::Problem& problem,
                                const SolveRequest& request);

}  // namespace pipeopt::api
