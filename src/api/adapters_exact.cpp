/// \file adapters_exact.cpp
/// Adapters over the exponential exact engines. These are the universal
/// fallback of the dispatch order: applicable on every platform class, both
/// communication models, any constraint shape — but bounded by the request's
/// node budget. Blowing the budget returns SolveStatus::LimitExceeded, which
/// auto-dispatch treats as "skip and degrade to the heuristic ladder".

#include "api/adapters.hpp"

#include <memory>
#include <string>

#include "exact/branch_and_bound.hpp"
#include "exact/enumeration.hpp"
#include "exact/exact_solvers.hpp"

namespace pipeopt::api {

namespace {

exact::MappingKind to_exact_kind(MappingKind kind) {
  return kind == MappingKind::OneToOne ? exact::MappingKind::OneToOne
                                       : exact::MappingKind::Interval;
}

exact::Objective to_exact_objective(Objective objective) {
  switch (objective) {
    case Objective::Period: return exact::Objective::Period;
    case Objective::Latency: return exact::Objective::Latency;
    case Objective::Energy: return exact::Objective::Energy;
  }
  return exact::Objective::Period;
}

SolveResult limit_exceeded(std::uint64_t node_budget) {
  SolveResult result = detail::infeasible();
  result.status = SolveStatus::LimitExceeded;
  result.diagnostics.emplace_back("node-budget",
                                  std::to_string(node_budget) + " exhausted");
  return result;
}

/// Cooperative cancellation unwinds through the same bounded-search exit as
/// a blown budget, but is labelled so callers can tell the two apart.
SolveResult cancelled() {
  return detail::cancelled("cancel token fired mid-search");
}

SolveResult from_exact(const core::Problem& problem, Objective objective,
                       const std::optional<exact::ExactResult>& exact_result) {
  if (!exact_result) return detail::infeasible();
  SolveResult result =
      detail::solved(problem, objective, exact_result->mapping, /*optimal=*/true);
  result.diagnostics.emplace_back("nodes",
                                  std::to_string(exact_result->stats.nodes));
  result.diagnostics.emplace_back(
      "mappings", std::to_string(exact_result->stats.complete));
  // Every complete mapping reached is one evaluation: per-leaf batch
  // evaluation in the enumerator, incremental finalized-max evaluation in
  // branch-and-bound. Surfaced so ServerStats can aggregate fleet-wide
  // evaluation throughput on the stats wire line.
  result.diagnostics.emplace_back(
      "evals", std::to_string(exact_result->stats.complete));
  return result;
}

}  // namespace

void register_exact_solvers(SolverRegistry& registry) {
  // Branch-and-bound period minimization: bit-identical to enumeration but
  // with admissible pruning, so it is tried first within the Exact tier.
  registry.add(std::make_unique<LambdaSolver>(
      SolverInfo{.name = "branch-and-bound",
                 .summary = "pruned exact period search, any platform",
                 .tier = CostTier::Exact,
                 .rank = 0,
                 .family = std::nullopt,
                 .exact = true},
      [](const core::Problem&, const SolveRequest& r) {
        return r.objective == Objective::Period &&
               detail::no_constraints(r.constraints);
      },
      [](const core::Problem& p, const SolveRequest& r) {
        try {
          // The warm-start hint prunes strictly-worse subtrees only, so the
          // returned value/mapping equal an unhinted solve (request.hpp).
          return from_exact(p, r.objective,
                            exact::branch_bound_min_period(
                                p, to_exact_kind(r.kind), r.node_budget,
                                r.cancel, r.warm_start));
        } catch (const exact::SearchCancelled&) {
          return cancelled();
        } catch (const exact::SearchLimitExceeded&) {
          return limit_exceeded(r.node_budget);
        }
      }));

  // Exhaustive enumeration: the optimality oracle. Handles every objective
  // and constraint combination of the paper; speed modes are enumerated
  // exactly when energy is involved (objective or budget), otherwise the §4
  // max-speed normalization applies.
  registry.add(std::make_unique<LambdaSolver>(
      SolverInfo{.name = "exact-enumeration",
                 .summary = "exhaustive search, any objective/constraints/platform",
                 .tier = CostTier::Exact,
                 .rank = 10,
                 .family = std::nullopt,
                 .exact = true},
      [](const core::Problem&, const SolveRequest&) { return true; },
      [](const core::Problem& p, const SolveRequest& r) {
        exact::EnumerationOptions options;
        options.kind = to_exact_kind(r.kind);
        options.enumerate_modes = r.objective == Objective::Energy ||
                                  r.constraints.energy_budget.has_value();
        options.node_limit = r.node_budget;
        options.cancel = r.cancel;
        try {
          return from_exact(p, r.objective,
                            exact::exact_minimize(p, options,
                                                  to_exact_objective(r.objective),
                                                  r.constraints));
        } catch (const exact::SearchCancelled&) {
          return cancelled();
        } catch (const exact::SearchLimitExceeded&) {
          return limit_exceeded(r.node_budget);
        }
      }));
}

}  // namespace pipeopt::api
