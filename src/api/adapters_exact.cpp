/// \file adapters_exact.cpp
/// Adapters over the exact backends (api/exact_backend.hpp). These are the
/// universal fallback of the dispatch order: applicable on every platform
/// class, both communication models, any constraint shape — but bounded by
/// the request's node budget. Blowing the budget returns
/// SolveStatus::LimitExceeded, which auto-dispatch treats as "skip and
/// degrade to the heuristic ladder".
///
/// Every backend gets the same wrapper: supports() becomes the capability
/// predicate, minimize() runs under one try/catch that converts budget
/// exhaustion and cancellation to their typed results, and successful
/// results flow through `from_exact` so diagnostics are uniform across
/// engines. Adding an exact engine means implementing ExactBackend — this
/// file never changes again.

#include "api/adapters.hpp"

#include <memory>
#include <string>

#include "api/exact_backend.hpp"
#include "exact/enumeration.hpp"
#include "exact/exact_solvers.hpp"

namespace pipeopt::api {

namespace {

SolveResult limit_exceeded(std::uint64_t node_budget) {
  SolveResult result = detail::infeasible();
  result.status = SolveStatus::LimitExceeded;
  result.diagnostics.emplace_back("node-budget",
                                  std::to_string(node_budget) + " exhausted");
  return result;
}

/// Cooperative cancellation unwinds through the same bounded-search exit as
/// a blown budget, but is labelled so callers can tell the two apart.
SolveResult cancelled() {
  return detail::cancelled("cancel token fired mid-search");
}

SolveResult from_exact(const core::Problem& problem, Objective objective,
                       const std::optional<exact::ExactResult>& exact_result) {
  if (!exact_result) return detail::infeasible();
  SolveResult result =
      detail::solved(problem, objective, exact_result->mapping, /*optimal=*/true);
  result.diagnostics.emplace_back("nodes",
                                  std::to_string(exact_result->stats.nodes));
  result.diagnostics.emplace_back(
      "mappings", std::to_string(exact_result->stats.complete));
  // Every complete mapping reached is one evaluation: per-leaf batch
  // evaluation in the enumerator, incremental finalized-max evaluation in
  // branch-and-bound, exact candidate re-evaluation in branch-and-cut.
  // Surfaced so ServerStats can aggregate fleet-wide evaluation throughput
  // on the stats wire line.
  result.diagnostics.emplace_back(
      "evals", std::to_string(exact_result->stats.complete));
  return result;
}

}  // namespace

void register_exact_solvers(SolverRegistry& registry) {
  for (const ExactBackend* backend : exact_backends()) {
    registry.add(std::make_unique<LambdaSolver>(
        SolverInfo{.name = backend->info().name,
                   .summary = backend->info().summary,
                   .tier = CostTier::Exact,
                   .rank = backend->info().rank,
                   .family = std::nullopt,
                   .exact = true},
        [backend](const core::Problem& p, const SolveRequest& r) {
          return backend->supports(p, r);
        },
        [backend](const core::Problem& p, const SolveRequest& r) {
          try {
            return from_exact(p, r.objective, backend->minimize(p, r));
          } catch (const exact::SearchCancelled&) {
            return cancelled();
          } catch (const exact::SearchLimitExceeded&) {
            return limit_exceeded(r.node_budget);
          }
        }));
  }
}

}  // namespace pipeopt::api
