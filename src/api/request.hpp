#pragma once

/// \file request.hpp
/// The facade's input type: one `SolveRequest` describes any optimization
/// problem of the paper's taxonomy (Tables 1 and 2) — which criterion to
/// minimize, which thresholds bind the other criteria, which mapping family
/// to search, how applications are weighted (Eq. 6), and the budgets that
/// bound exact search and iterative heuristics. Every solver behind
/// `SolverRegistry` consumes this one type; callers never name a concrete
/// algorithm unless they force one via `solver`.

#include <cstdint>
#include <optional>
#include <string>

#include "core/objectives.hpp"
#include "util/cancel.hpp"

namespace pipeopt::obs {
class TraceContext;
}  // namespace pipeopt::obs

namespace pipeopt::api {

/// Criterion to minimize (paper §3.4-3.5). Period and latency are the
/// weighted maxima of Eq. 6; energy is the Σ over enrolled processors.
enum class Objective { Period, Latency, Energy };

/// Mapping family to optimize over (paper §3.3). One-to-one mappings place
/// every stage alone; interval mappings group consecutive stages.
enum class MappingKind { Interval, OneToOne };

[[nodiscard]] const char* to_string(Objective o) noexcept;
[[nodiscard]] const char* to_string(MappingKind k) noexcept;

/// Parses "period" / "latency" / "energy" (case-sensitive).
[[nodiscard]] std::optional<Objective> parse_objective(const std::string& text);
/// Parses "interval" / "one-to-one".
[[nodiscard]] std::optional<MappingKind> parse_mapping_kind(const std::string& text);

/// A complete solve request. Defaults describe the most common call: minimize
/// the weighted period over interval mappings with the applications' own
/// priority weights, auto-dispatching to the cheapest applicable solver.
struct SolveRequest {
  /// Criterion to minimize.
  Objective objective = Objective::Period;

  /// Thresholds on the non-optimized criteria (multi-criteria problems, §5):
  /// per-application period/latency bounds and/or a global energy budget.
  /// All parts optional; an absent part is unconstrained.
  core::ConstraintSet constraints;

  /// Mapping family to search.
  MappingKind kind = MappingKind::Interval;

  /// How per-application weights W_a (Eq. 6) are resolved: `Priority` uses
  /// each Application's stored weight, `Unit` forces W_a = 1, `Stretch` uses
  /// W_a = 1/X*_a where X*_a is application a's solo optimum (computed
  /// through the facade itself, so it works on every platform class).
  core::WeightPolicy weights = core::WeightPolicy::Priority;

  /// Force a specific registered solver by name; empty = capability-based
  /// auto-dispatch (cheapest applicable tier wins).
  std::optional<std::string> solver;

  /// Node budget for exact search; exceeding it yields
  /// SolveStatus::LimitExceeded (auto-dispatch then degrades to heuristics).
  std::uint64_t node_budget = 100'000'000;

  /// Optional wall-clock budget consulted by iterative heuristics between
  /// refinement rungs (greedy -> local search -> annealing).
  std::optional<double> time_budget_seconds;

  /// Seed for stochastic solvers (annealing); fixed default keeps results
  /// reproducible run to run.
  std::uint64_t seed = 42;

  /// \brief Wall-clock deadline for one execution, in milliseconds.
  ///
  /// Armed at
  /// execute time: `SolvePlan::execute` folds `now + deadline_ms` into the
  /// cancel token it hands the solvers, so an expired deadline surfaces
  /// exactly like a fired `cancel` — a typed SolveStatus::LimitExceeded
  /// with a "cancelled" diagnostic. Each execution of a reused plan (and
  /// each stretch solo solve at bind time) gets its own full window.
  /// Unlike `time_budget_seconds` (a soft budget only iterative heuristics
  /// consult between rungs), the deadline also aborts exact search. In a
  /// `SweepRequest` the deadline is armed once for the whole sweep instead
  /// (api/sweep.hpp).
  std::optional<std::uint64_t> deadline_ms;

  /// \brief Optional warm-start hint: a known-achievable objective value
  /// for this exact (problem, request) pair.
  ///
  /// Hint-honoring exact engines (currently `exact::branch_and_bound`)
  /// prune every subtree whose admissible lower bound strictly exceeds the
  /// hint. Because only strictly-worse subtrees die, the returned value and
  /// mapping are bit-identical to an unhinted solve — only the node and
  /// complete-mapping counters shrink. The natural producer is the sweep
  /// driver (api/sweep.hpp), which seeds each refinement point with the
  /// value achieved at the nearest tighter bound: that mapping stays
  /// feasible when the constraint loosens, so its value is achievable by
  /// construction. The hint MUST be achievable — a value below the true
  /// optimum prunes every mapping and the engine reports infeasible.
  std::optional<double> warm_start;

  /// \brief Cooperative cancellation token; default never cancels.
  ///
  /// Polled by exact search every
  /// `exact::kCancelCheckStride` nodes and by the heuristic ladder between
  /// iterations. A fired token makes the solve return a typed
  /// SolveStatus::LimitExceeded with a "cancelled" diagnostic and no
  /// mapping — except the heuristic ladder, which still returns a feasible
  /// incumbent it found before the token fired (an interrupted exact
  /// search proves nothing, so its partial incumbent is withheld).
  util::CancelToken cancel;

  /// \brief Optional observability hook (src/obs): the request's trace
  /// context, or nullptr (the default) for no tracing.
  ///
  /// When set, the plan and executor record their phase spans
  /// (`cache_lookup`, `queue_wait`, `bind`, `solve`) into it — never into
  /// the result, so traced and untraced solves stay byte-identical on the
  /// wire. Like `cancel`, this is transport state, not request identity:
  /// it is excluded from the solve-cache key and from the wire form. The
  /// pointee must outlive every execution of the request (the server keeps
  /// it on the session stack until the future resolves). Sweep point
  /// requests inherit the base request's context.
  obs::TraceContext* trace = nullptr;
};

}  // namespace pipeopt::api
