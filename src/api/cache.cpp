#include "api/cache.hpp"

#include <algorithm>
#include <functional>
#include <utility>

#include "io/request_io.hpp"

namespace pipeopt::api {

SolveCache::SolveCache(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  // Never more shards than entries: a zero-capacity shard could store
  // nothing and would turn every insert routed to it into a silent drop.
  const std::size_t count =
      std::max<std::size_t>(1, std::min(shards, capacity_));
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    // Split the total capacity as evenly as possible (the first
    // `capacity_ % count` shards take the remainder).
    shard->capacity = capacity_ / count + (i < capacity_ % count ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

std::string SolveCache::key(const core::Problem& problem,
                            const SolveRequest& request) {
  return io::format_solve_key(problem, request);
}

bool SolveCache::cacheable(const SolveRequest& request) noexcept {
  return !request.time_budget_seconds && !request.deadline_ms &&
         !request.cancel.has_deadline();
}

SolveCache::Shard& SolveCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<SolveResult> SolveCache::lookup(const std::string& key) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->result;
}

void SolveCache::insert(const std::string& key, const SolveResult& result) {
  Shard& shard = shard_for(key);
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.index.find(key); it != shard.index.end()) {
    // Deterministic solves make a refresh a no-op content-wise; just renew
    // the recency so concurrent duplicate misses don't churn the LRU tail.
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  shard.order.push_front(Entry{key, result});
  shard.index.emplace(key, shard.order.begin());
  while (shard.order.size() > shard.capacity) {
    shard.index.erase(shard.order.back().key);
    shard.order.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t SolveCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->order.size();
  }
  return total;
}

CacheCounters SolveCache::counters() const {
  CacheCounters counters;
  counters.hits = hits();
  counters.misses = misses();
  counters.evictions = evictions();
  counters.entries = size();
  counters.capacity = capacity_;
  return counters;
}

}  // namespace pipeopt::api
