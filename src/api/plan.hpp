#pragma once

/// \file plan.hpp
/// The plan half of the facade's plan/execute split.
///
/// `SolverRegistry::solve` used to re-resolve Eq. 6 weights, re-run every
/// capability predicate and re-rank candidates on each call — fine for one
/// solve, wasteful for the service-scale traffic the ROADMAP targets. The
/// split factors that work into two immutable, reusable plan objects:
///
///  * `DispatchPlan` — the problem-independent half, built once per
///    `SolveRequest`: a validated request copy, the forced solver resolved
///    by name (or its typed failure), and a snapshot of the registry's
///    dispatch-ordered solver table. One DispatchPlan serves a whole batch.
///  * `SolvePlan` — a DispatchPlan bound to one instance: Eq. 6 weights
///    resolved exactly once (including the Stretch policy's solo solves),
///    the applicable-candidate list filtered once, and platform metadata
///    (class, modality) classified once. `execute()` then only runs
///    solvers; it can be called any number of times, from any thread, and
///    always reproduces what a fresh `SolverRegistry::solve` would return.
///
/// Lifetimes: a plan stores raw pointers into the registry it came from and
/// — on the fast path where no weight rebuild is needed — a pointer to the
/// caller's problem instead of a copy. Both must outlive the plan.

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/request.hpp"
#include "api/result.hpp"
#include "core/problem.hpp"
#include "util/cancel.hpp"

namespace pipeopt::api {

class Solver;
class SolverRegistry;
class DispatchPlan;

/// A DispatchPlan bound to one problem instance: everything per-solve
/// dispatch work done once, ready to execute many times. Immutable after
/// construction and safe to execute concurrently from several threads.
class SolvePlan {
 public:
  SolvePlan(SolvePlan&&) = default;
  SolvePlan& operator=(SolvePlan&&) = default;

  /// Runs the plan once using the request's own cancel token; the same
  /// typed-result contract as `SolverRegistry::solve`, minus the planning
  /// cost. `wall_seconds` covers this execution only.
  [[nodiscard]] SolveResult execute() const;

  /// Runs the plan once with `cancel` in place of the request's token —
  /// the plan-reuse idiom: one plan, a fresh token per execution.
  [[nodiscard]] SolveResult execute(util::CancelToken cancel) const;

  /// Runs the plan once for `sibling`, a request that may differ from the
  /// planned one only in constraint *values* (same shape: the same slots
  /// set, thresholds of the same size), `warm_start`, `cancel` and
  /// `deadline_ms` — the sweep plan-reuse idiom (api/sweep.hpp): one bind
  /// per sweep, one execute_for per grid point. Solvers see `sibling`
  /// itself, so the result is bit-identical to a fresh
  /// `SolverRegistry::solve(problem, sibling)` (modulo wall time): the
  /// bind-time work this skips — Eq. 6 weights, candidate filtering,
  /// platform class — depends on the request only through fields that must
  /// not differ. `Solver::applicable` is shape-only by contract
  /// (solver.hpp), which is what makes the shared candidate list valid for
  /// every sibling.
  [[nodiscard]] SolveResult execute_for(const SolveRequest& sibling) const;

  /// The resolved problem solvers run on. On the Priority/Energy fast path
  /// this is the caller's instance itself (no copy was made); under the
  /// Unit/Stretch policies it is the plan-owned reweighted rebuild.
  [[nodiscard]] const core::Problem& problem() const noexcept { return *view_; }

  /// True when planning kept the caller's problem by reference instead of
  /// rebuilding it (the Priority/Energy fast path).
  [[nodiscard]] bool borrows_problem() const noexcept { return !owned_; }

  [[nodiscard]] const SolveRequest& request() const noexcept { return request_; }

  /// Auto-dispatch candidates in execution order (empty when a solver is
  /// forced or planning failed).
  [[nodiscard]] std::span<const Solver* const> candidates() const noexcept {
    return candidates_;
  }

  /// The forced solver, when the request names one that exists and applies.
  [[nodiscard]] const Solver* forced() const noexcept { return forced_; }

  /// False when planning itself already produced a typed failure (unknown
  /// or inapplicable forced solver, mismatched thresholds, no stretch solo
  /// optimum); execute() then returns that failure.
  [[nodiscard]] bool viable() const noexcept { return !failure_.has_value(); }

  /// Platform classification, computed once at bind time.
  [[nodiscard]] core::PlatformClass platform_class() const noexcept {
    return platform_class_;
  }

 private:
  friend class DispatchPlan;
  SolvePlan(const DispatchPlan& dispatch, const core::Problem& problem);

  /// Shared body of execute/execute_for: runs the planned candidates for
  /// `request` with `cancel` spliced in (deadline armed from the request).
  [[nodiscard]] SolveResult run(const SolveRequest& request,
                                util::CancelToken cancel) const;

  SolveRequest request_;
  /// Plan-owned reweighted problem; null on the fast path. A shared_ptr so
  /// moving the plan never invalidates `view_`.
  std::shared_ptr<const core::Problem> owned_;
  const core::Problem* view_ = nullptr;
  const Solver* forced_ = nullptr;
  std::vector<const Solver*> candidates_;
  /// Planning-time diagnostics (stretch solo caveats), appended to every
  /// execution's result.
  std::vector<std::pair<std::string, std::string>> notes_;
  std::optional<SolveResult> failure_;
  core::PlatformClass platform_class_ = core::PlatformClass::FullyHomogeneous;
};

/// The problem-independent half of a plan: one validated request, resolved
/// against a registry's solver table. Built by
/// `SolverRegistry::plan_request`; `bind` it to each instance. Immutable
/// and safe to bind from several threads — `api::Executor::solve_batch`
/// builds exactly one per batch.
class DispatchPlan {
 public:
  DispatchPlan(DispatchPlan&&) = default;
  DispatchPlan& operator=(DispatchPlan&&) = default;
  DispatchPlan(const DispatchPlan&) = default;
  DispatchPlan& operator=(const DispatchPlan&) = default;

  /// Binds the dispatch state to one instance: resolves weights, filters
  /// candidates, classifies the platform. The problem (and the registry
  /// this plan came from) must outlive the returned SolvePlan.
  [[nodiscard]] SolvePlan bind(const core::Problem& problem) const {
    return SolvePlan(*this, problem);
  }

  [[nodiscard]] const SolveRequest& request() const noexcept { return request_; }

 private:
  friend class SolverRegistry;
  friend class SolvePlan;
  DispatchPlan(const SolverRegistry& registry, SolveRequest request);

  const SolverRegistry* registry_;
  SolveRequest request_;
  const Solver* forced_ = nullptr;   ///< resolved once for the whole batch
  bool forced_unknown_ = false;      ///< request named a non-existent solver
  std::vector<const Solver*> ordered_;  ///< dispatch-ordered solver snapshot
};

}  // namespace pipeopt::api
