#include "api/exact_backend.hpp"

#include <utility>

#include "api/adapters.hpp"
#include "exact/branch_and_bound.hpp"
#include "exact/enumeration.hpp"
#include "exact/mip/branch_and_cut.hpp"

namespace pipeopt::api {
namespace {

exact::MappingKind to_exact_kind(MappingKind kind) {
  return kind == MappingKind::OneToOne ? exact::MappingKind::OneToOne
                                       : exact::MappingKind::Interval;
}

exact::Objective to_exact_objective(Objective objective) {
  switch (objective) {
    case Objective::Period: return exact::Objective::Period;
    case Objective::Latency: return exact::Objective::Latency;
    case Objective::Energy: return exact::Objective::Energy;
  }
  return exact::Objective::Period;
}

/// Speed modes are enumerated exactly when energy is involved (objective or
/// budget); otherwise the §4 max-speed normalization applies. Shared by
/// every backend so they search the same mapping space.
bool modes_enumerated(const SolveRequest& r) {
  return r.objective == Objective::Energy ||
         r.constraints.energy_budget.has_value();
}

/// Branch-and-bound period minimization: bit-identical to enumeration but
/// with admissible pruning, so it is tried first within the Exact tier.
class BranchBoundBackend final : public ExactBackend {
 public:
  BranchBoundBackend()
      : ExactBackend({.name = "branch-and-bound",
                      .summary = "pruned exact period search, any platform",
                      .rank = 0,
                      .bit_exact = true}) {}

  bool supports(const core::Problem&,
                const SolveRequest& r) const override {
    return r.objective == Objective::Period &&
           detail::no_constraints(r.constraints);
  }

  std::optional<exact::ExactResult> minimize(
      const core::Problem& p, const SolveRequest& r) const override {
    // The warm-start hint prunes strictly-worse subtrees only, so the
    // returned value/mapping equal an unhinted solve (request.hpp).
    return exact::branch_bound_min_period(p, to_exact_kind(r.kind),
                                          r.node_budget, r.cancel,
                                          r.warm_start);
  }
};

/// Exhaustive enumeration: the optimality oracle. Handles every objective
/// and constraint combination of the paper.
class EnumerationBackend final : public ExactBackend {
 public:
  EnumerationBackend()
      : ExactBackend(
            {.name = "exact-enumeration",
             .summary = "exhaustive search, any objective/constraints/platform",
             .rank = 10,
             .bit_exact = true}) {}

  bool supports(const core::Problem&, const SolveRequest&) const override {
    return true;
  }

  std::optional<exact::ExactResult> minimize(
      const core::Problem& p, const SolveRequest& r) const override {
    exact::EnumerationOptions options;
    options.kind = to_exact_kind(r.kind);
    options.enumerate_modes = modes_enumerated(r);
    options.node_limit = r.node_budget;
    options.cancel = r.cancel;
    return exact::exact_minimize(p, options, to_exact_objective(r.objective),
                                 r.constraints);
  }
};

/// The structurally independent oracle: a MIP formulation of the mapping
/// problem solved by home-grown branch-and-cut (exact/mip/). Shares no
/// search code with the recursive engines — only core::evaluate arithmetic,
/// which is the quantity under test.
class MipBackend final : public ExactBackend {
 public:
  MipBackend()
      : ExactBackend({.name = "mip-branch-cut",
                      .summary = "independent MIP formulation, "
                                 "branch-and-cut over the LP relaxation",
                      .rank = 20,
                      .bit_exact = true}) {}

  bool supports(const core::Problem&, const SolveRequest&) const override {
    return true;
  }

  std::optional<exact::ExactResult> minimize(
      const core::Problem& p, const SolveRequest& r) const override {
    exact::mip::MipOptions options;
    options.kind = to_exact_kind(r.kind);
    options.enumerate_modes = modes_enumerated(r);
    options.node_limit = r.node_budget;
    options.cancel = r.cancel;
    return exact::mip::mip_minimize(p, options,
                                    to_exact_objective(r.objective),
                                    r.constraints);
  }
};

}  // namespace

const std::vector<const ExactBackend*>& exact_backends() {
  static const std::vector<const ExactBackend*>& backends = *[] {
    auto* list = new std::vector<const ExactBackend*>;
    list->push_back(new BranchBoundBackend());
    list->push_back(new EnumerationBackend());
    list->push_back(new MipBackend());
    if (std::unique_ptr<ExactBackend> ortools = detail::make_ortools_backend())
      list->push_back(ortools.release());
    return list;
  }();
  return backends;
}

const ExactBackend* find_exact_backend(std::string_view name) {
  for (const ExactBackend* backend : exact_backends())
    if (backend->info().name == name) return backend;
  return nullptr;
}

}  // namespace pipeopt::api
