/// \file adapters_heuristics.cpp
/// Adapters over the §6 heuristic ladder for the NP-hard cells. The
/// "heuristic-ladder" solver is the graceful-degradation terminus of
/// auto-dispatch: constructive start (greedy intervals / rank matching),
/// DVFS downscaling when energy is the goal, best-improvement local search,
/// then simulated annealing — keeping the best feasible incumbent and
/// recording every rung's value in the diagnostics. The individual rungs are
/// also registered as named solvers so benches and the CLI can force any of
/// them in isolation.

#include "api/adapters.hpp"

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/eval_batch.hpp"
#include "core/evaluation.hpp"
#include "util/numeric.hpp"
#include "heuristics/annealing.hpp"
#include "heuristics/interval_greedy.hpp"
#include "heuristics/list_heuristics.hpp"
#include "heuristics/local_search.hpp"
#include "heuristics/speed_scaling.hpp"
#include "heuristics/tabu_search.hpp"
#include "util/random.hpp"
#include "util/timing.hpp"

namespace pipeopt::api {

namespace {

constexpr double kInf = util::kInfinity;

heuristics::Goal to_goal(Objective objective) {
  switch (objective) {
    case Objective::Period: return heuristics::Goal::Period;
    case Objective::Latency: return heuristics::Goal::Latency;
    case Objective::Energy: return heuristics::Goal::Energy;
  }
  return heuristics::Goal::Period;
}

/// Structure-preserving copy of a mapping with every interval at its
/// processor's slowest mode — the minimum-energy configuration of that
/// placement, used to probe binding energy budgets a max-speed start
/// violates (scale_down_speeds cannot repair an infeasible start).
core::Mapping at_min_modes(const core::Mapping& mapping) {
  std::vector<core::IntervalAssignment> intervals(mapping.intervals().begin(),
                                                  mapping.intervals().end());
  for (auto& interval : intervals) interval.mode = 0;
  return core::Mapping(std::move(intervals));
}

/// Constructive start of the requested family: greedy interval mapping
/// (needs p >= A) or LPT-style rank matching (needs p >= N).
std::optional<core::Mapping> start_mapping(const core::Problem& problem,
                                           MappingKind kind) {
  return kind == MappingKind::OneToOne
             ? heuristics::one_to_one_rank_matching(problem)
             : heuristics::greedy_interval_mapping(problem);
}

/// A heuristic cannot prove infeasibility; every Infeasible it returns
/// carries this caveat so callers do not over-read the status.
SolveResult heuristic_infeasible(const char* what) {
  SolveResult result = detail::infeasible();
  result.diagnostics.emplace_back(
      "caveat", std::string(what) + " (heuristic result, not a proof)");
  return result;
}

/// Budget-check predicate shared by the rungs: the request's cancel token
/// or its wall-clock budget, measured from `watch`.
std::function<bool()> stop_check(const SolveRequest& request,
                                 const util::Stopwatch& watch) {
  return [&request, &watch] {
    return request.cancel.cancelled() ||
           (request.time_budget_seconds &&
            watch.elapsed_seconds() > *request.time_budget_seconds);
  };
}

/// A cancellation observed without any feasible incumbent: typed like a
/// blown budget, never Infeasible (nothing was proved).
SolveResult ladder_cancelled() {
  return detail::cancelled("cancel token fired before any incumbent");
}

/// Feasible-or-infeasible classification of one constructed mapping.
SolveResult classify(const core::Problem& problem, const SolveRequest& request,
                     core::Mapping mapping) {
  const core::Metrics metrics = core::evaluate(problem, mapping);
  if (!request.constraints.satisfied_by(metrics)) {
    return heuristic_infeasible("constructed mapping violates the constraints");
  }
  SolveResult result = detail::solved(problem, request.objective,
                                      std::move(mapping), /*optimal=*/false);
  result.diagnostics.emplace_back("evals", "1");
  return result;
}

void add(SolverRegistry& registry, SolverInfo info,
         LambdaSolver::ApplicableFn applicable, LambdaSolver::RunFn run) {
  registry.add(std::make_unique<LambdaSolver>(std::move(info),
                                              std::move(applicable),
                                              std::move(run)));
}

std::string fmt(double v) {
  return v == kInf ? "inf" : std::to_string(v);
}

SolveResult run_ladder(const core::Problem& problem,
                       const SolveRequest& request) {
  const util::Stopwatch watch;
  // One combined budget check — wall-clock and cancellation — consulted
  // between rungs here and inside each rung's iteration loop.
  const std::function<bool()> out_of_budget = stop_check(request, watch);
  const heuristics::Goal goal = to_goal(request.objective);
  // The shared neighbourhood's split/merge moves leave the one-to-one
  // family, so for OneToOne requests the ladder stops after the
  // structure-preserving rungs (rank matching + DVFS downscaling).
  const bool search_rungs = request.kind == MappingKind::Interval;

  auto start = start_mapping(problem, request.kind);
  if (!start) {
    return heuristic_infeasible("too few processors for a constructive start");
  }

  // One evaluation workspace for the whole ladder: bind-time SoA work and
  // the evals count are shared across rungs, and structural validation runs
  // exactly once — here, on the constructive start. Every rung preserves
  // validity (the neighbourhood and mode moves are validity-preserving), so
  // the rungs are told to skip their own start re-validation.
  core::BatchEvaluator evaluator(problem);
  start->validate_or_throw(problem);

  SolveResult result;
  // Best feasible incumbent across the rungs.
  std::optional<core::Mapping> best;
  double best_value = kInf;
  core::Mapping current = std::move(*start);
  const auto consider = [&](const core::Mapping& mapping, const char* rung) {
    const core::Metrics& metrics = evaluator.evaluate(mapping);
    const double value = detail::objective_value(request.objective, metrics);
    result.diagnostics.emplace_back(rung, fmt(value));
    if (request.constraints.satisfied_by(metrics) && value < best_value) {
      best = mapping;
      best_value = value;
    }
  };

  consider(current, request.kind == MappingKind::OneToOne ? "rank-matching"
                                                          : "greedy");
  // A binding energy budget is almost always violated by the max-speed
  // start; the same placement at the slowest modes is its minimum-energy
  // configuration and preserves the mapping family.
  if (!best && request.constraints.energy_budget) {
    const core::Mapping floored = at_min_modes(current);
    consider(floored, "min-modes");
    if (best) current = floored;
  }
  const bool start_feasible = best.has_value();

  // Energy goal: trade the performance slack of the max-speed start for
  // energy before searching — scale_down_speeds needs a feasible mapping.
  if (request.objective == Objective::Energy && start_feasible &&
      !out_of_budget()) {
    heuristics::SpeedScalingOptions options;
    options.evaluator = &evaluator;
    options.validate_start = false;
    const auto scaled = heuristics::scale_down_speeds(problem, current,
                                                      request.constraints, options);
    current = scaled.mapping;
    consider(current, "speed-scaling");
  }

  // Local search strictly improves from a feasible start only.
  if (search_rungs && start_feasible && !out_of_budget()) {
    heuristics::LocalSearchOptions options;
    options.should_stop = out_of_budget;
    options.evaluator = &evaluator;
    options.validate_start = false;
    const auto improved = heuristics::local_search(problem, *best, goal,
                                                   request.constraints, options);
    current = improved.mapping;
    consider(current, "local-search");
  }

  // Annealing explores from any start, feasible or not.
  if (search_rungs && !out_of_budget()) {
    util::Rng rng(request.seed);
    heuristics::AnnealingOptions options;
    options.should_stop = out_of_budget;
    options.evaluator = &evaluator;
    options.validate_start = false;
    const auto annealed = heuristics::simulated_annealing(
        problem, current, goal, request.constraints, rng, options);
    if (annealed.value < kInf) consider(annealed.mapping, "annealing");
  } else if (out_of_budget()) {
    result.diagnostics.emplace_back(
        "budget", request.cancel.cancelled() ? "cancelled" : "time budget exhausted");
  }

  result.diagnostics.emplace_back("evals", std::to_string(evaluator.evals()));

  if (!best) {
    // Distinguish "searched and found nothing feasible" from "was told to
    // stop": only the former may claim (heuristic) infeasibility.
    SolveResult failed =
        request.cancel.cancelled()
            ? ladder_cancelled()
            : heuristic_infeasible(
                  "no rung found a constraint-satisfying mapping");
    failed.diagnostics.insert(failed.diagnostics.begin(),
                              result.diagnostics.begin(),
                              result.diagnostics.end());
    return failed;
  }
  SolveResult final_result = detail::solved(problem, request.objective,
                                            std::move(*best), /*optimal=*/false);
  final_result.diagnostics = std::move(result.diagnostics);
  return final_result;
}

}  // namespace

void register_heuristic_solvers(SolverRegistry& registry) {
  // The degradation terminus: applicable to everything.
  add(registry,
      {.name = "heuristic-ladder",
       .summary = "greedy -> speed-scaling -> local search -> annealing, "
                  "best feasible incumbent",
       .tier = CostTier::Heuristic,
       .rank = 0,
       .family = std::nullopt,
       .exact = false},
      [](const core::Problem&, const SolveRequest&) { return true; },
      run_ladder);

  // Individual rungs, each forcible by name.
  add(registry,
      {.name = "greedy-interval",
       .summary = "constructive interval mapping (weighted-work allocation)",
       .tier = CostTier::Heuristic,
       .rank = 10,
       .family = MappingKind::Interval,
       .exact = false},
      [](const core::Problem&, const SolveRequest& r) {
        return r.kind == MappingKind::Interval;
      },
      [](const core::Problem& p, const SolveRequest& r) {
        auto mapping = heuristics::greedy_interval_mapping(p);
        if (!mapping) {
          return heuristic_infeasible("fewer processors than applications");
        }
        return classify(p, r, std::move(*mapping));
      });

  add(registry,
      {.name = "rank-matching",
       .summary = "LPT-style one-to-one rank matching",
       .tier = CostTier::Heuristic,
       .rank = 10,
       .family = MappingKind::OneToOne,
       .exact = false},
      [](const core::Problem&, const SolveRequest& r) {
        return r.kind == MappingKind::OneToOne;
      },
      [](const core::Problem& p, const SolveRequest& r) {
        auto mapping = heuristics::one_to_one_rank_matching(p);
        if (!mapping) {
          return heuristic_infeasible("fewer processors than stages");
        }
        return classify(p, r, std::move(*mapping));
      });

  add(registry,
      {.name = "local-search",
       .summary = "best-improvement hill climbing from a constructive start",
       .tier = CostTier::Heuristic,
       .rank = 20,
       // The shared neighbourhood's split/merge moves leave the one-to-one
       // family, so the search heuristics only serve interval requests.
       .family = MappingKind::Interval,
       .exact = false},
      [](const core::Problem&, const SolveRequest& r) {
        return r.kind == MappingKind::Interval;
      },
      [](const core::Problem& p, const SolveRequest& r) {
        const auto start = start_mapping(p, r.kind);
        if (!start) {
          return heuristic_infeasible("too few processors for a start");
        }
        core::BatchEvaluator evaluator(p);
        start->validate_or_throw(p);
        if (!r.constraints.satisfied_by(evaluator.evaluate(*start))) {
          return heuristic_infeasible(
              "constructive start violates the constraints; hill climbing "
              "cannot repair it");
        }
        const util::Stopwatch watch;
        heuristics::LocalSearchOptions options;
        options.should_stop = stop_check(r, watch);
        options.evaluator = &evaluator;
        options.validate_start = false;  // validated once above
        const auto improved = heuristics::local_search(
            p, *start, to_goal(r.objective), r.constraints, options);
        SolveResult result = detail::solved(p, r.objective, improved.mapping,
                                            /*optimal=*/false);
        result.diagnostics.emplace_back("steps", std::to_string(improved.steps));
        result.diagnostics.emplace_back("evals",
                                        std::to_string(evaluator.evals()));
        return result;
      });

  add(registry,
      {.name = "tabu-search",
       .summary = "tabu search over the shared mapping neighbourhood",
       .tier = CostTier::Heuristic,
       .rank = 25,
       .family = MappingKind::Interval,
       .exact = false},
      [](const core::Problem&, const SolveRequest& r) {
        return r.kind == MappingKind::Interval;
      },
      [](const core::Problem& p, const SolveRequest& r) {
        const auto start = start_mapping(p, r.kind);
        if (!start) {
          return heuristic_infeasible("too few processors for a start");
        }
        core::BatchEvaluator evaluator(p);
        const util::Stopwatch watch;
        heuristics::TabuOptions options;
        options.should_stop = stop_check(r, watch);
        options.evaluator = &evaluator;
        const auto searched = heuristics::tabu_search(
            p, *start, to_goal(r.objective), r.constraints, options);
        if (searched.value == kInf) {
          return heuristic_infeasible("no feasible state visited");
        }
        SolveResult result = detail::solved(p, r.objective, searched.mapping,
                                            /*optimal=*/false);
        result.diagnostics.emplace_back("moves", std::to_string(searched.moves));
        result.diagnostics.emplace_back("evals",
                                        std::to_string(searched.evals));
        return result;
      });

  add(registry,
      {.name = "annealing",
       .summary = "simulated annealing (seeded, penalty-guided)",
       .tier = CostTier::Heuristic,
       .rank = 30,
       .family = MappingKind::Interval,
       .exact = false},
      [](const core::Problem&, const SolveRequest& r) {
        return r.kind == MappingKind::Interval;
      },
      [](const core::Problem& p, const SolveRequest& r) {
        const auto start = start_mapping(p, r.kind);
        if (!start) {
          return heuristic_infeasible("too few processors for a start");
        }
        core::BatchEvaluator evaluator(p);
        util::Rng rng(r.seed);
        const util::Stopwatch watch;
        heuristics::AnnealingOptions options;
        options.should_stop = stop_check(r, watch);
        options.evaluator = &evaluator;
        const auto annealed = heuristics::simulated_annealing(
            p, *start, to_goal(r.objective), r.constraints, rng, options);
        if (annealed.value == kInf) {
          return heuristic_infeasible("no feasible state visited");
        }
        SolveResult result = detail::solved(p, r.objective, annealed.mapping,
                                            /*optimal=*/false);
        result.diagnostics.emplace_back("accepted",
                                        std::to_string(annealed.accepted));
        result.diagnostics.emplace_back("evals",
                                        std::to_string(annealed.evals));
        return result;
      });
}

}  // namespace pipeopt::api
